#!/bin/sh
# Regenerate every paper table and figure. Writes text to results/*.txt and
# machine-readable JSON to results/*.json. Full fidelity takes ~30 min.
set -e
mkdir -p results
run() {
  name=$1; shift
  echo "=== $name ==="
  cargo run --release -p tero-bench --bin "$name" -- "$@" | tee "results/$name.txt"
}
run fig04_gaming_vs_network --scale 1.0 --reps 3
run tab03_location_errors --n 8000
run tab04_fig05_ocr_errors --n 4000 --reps 3
run fig05b_glitch_audit --n 60 --days 5
run fig06_ocr_examples
run fig07_continents --n 6000
run fig08_unevenness --n 150 --days 7
run fig02_latency_clusters --per 60 --days 8
run fig09_regional_latency --per 70 --days 9
run fig10_us_doughnuts --per 60 --days 8
run fig11_eu_doughnuts --per 60 --days 8
run fig12_underserved --per 60 --days 8
run fig13_interarrival --n 80
run fig15_sensitivity --n 220 --days 10
run fig16_maxspikes --n 220 --days 10
run fig17_18_anomaly_baselines --n 180 --days 8
run tab05_behavior_probit --n 840 --days 21
run fig_anecdote_shared_event --n 360 --days 12
run tab06_07_servers
run summary_volume --n 400 --days 10
echo "all experiments regenerated."
