//! Storage-substrate operation costs: the KV store's queue pattern (the
//! pipeline's inter-process backbone, App. B), the object store's put/get,
//! and document inserts/queries.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use serde::{Deserialize, Serialize};
use tero_store::{DocumentStore, KvStore, ObjectStore};

fn bench_kv(c: &mut Criterion) {
    let mut group = c.benchmark_group("kv");
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("set_get_1k", |b| {
        b.iter(|| {
            let kv = KvStore::new();
            for i in 0..1_000 {
                kv.set(&format!("key:{i}"), i.to_string());
            }
            (0..1_000)
                .filter(|i| kv.get(&format!("key:{i}")).is_some())
                .count()
        })
    });
    group.bench_function("queue_push_pop_1k", |b| {
        b.iter(|| {
            let kv = KvStore::new();
            for i in 0..1_000 {
                kv.rpush("q", i.to_string());
            }
            let mut n = 0;
            while kv.lpop("q").is_some() {
                n += 1;
            }
            n
        })
    });
    group.finish();
}

fn bench_object_store(c: &mut Criterion) {
    let payload = vec![0u8; 160 * 90]; // one thumbnail
    c.bench_function("object_put_get_thumbnail", |b| {
        let store = ObjectStore::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = format!("s/{i}");
            store.put("thumbs", &key, payload.clone());
            store.get("thumbs", &key).map(|b| b.len())
        })
    });
}

#[derive(Serialize, Deserialize)]
struct Doc {
    anon: u64,
    game: String,
    latency_ms: u32,
}

fn bench_document_store(c: &mut Criterion) {
    c.bench_function("doc_insert_find_500", |b| {
        b.iter(|| {
            let db = DocumentStore::new();
            for i in 0..500u32 {
                db.insert(
                    "meas",
                    &Doc {
                        anon: i as u64 % 20,
                        game: "lol".into(),
                        latency_ms: 20 + i % 80,
                    },
                );
            }
            let high: Vec<Doc> = db.find("meas", |v| v["latency_ms"].as_u64().unwrap_or(0) > 60);
            high.len()
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_kv, bench_object_store, bench_document_store);
criterion_main!(benches);
