//! Streamer generation: identity, location, games, network profile, social
//! presence, HUD quirks and behavioural propensities.

use crate::latency::NetProfile;
use crate::textgen::{
    sample_description_style, sample_twitter_style, twitch_description, twitter_field, username,
    DescriptionStyle, TwitterFieldStyle,
};
use tero_geoparse::profiles::SocialPlatform;
use tero_geoparse::{Gazetteer, Place, PlaceKind, SocialProfile};
use tero_types::{GameId, SimRng, SimTime, StreamerId};

/// Per-streamer HUD quirks — the knobs that drive the image-processing
/// failure modes of Fig 6 and Table 4. (Where the readout sits, its scale
/// and its decoration are properties of the *game*, not the streamer —
/// see [`crate::games::hud_spec`].)
#[derive(Debug, Clone, PartialEq)]
pub struct HudTraits {
    /// Salt-and-pepper noise probability per thumbnail pixel.
    pub noise: f64,
    /// Gaussian frame grain (σ).
    pub grain: f64,
    /// The streamer's overlay uses a light font (Fig 6b) — extraction
    /// mostly fails for them.
    pub light_font: bool,
    /// Per-thumbnail probability that a menu partially hides the value
    /// (Fig 6c → digit drops).
    pub occlusion_rate: f64,
    /// The streamer replaced the latency readout with a clock (Fig 6d).
    pub clock_overlay: bool,
    /// The streamer mislabels their game (§3.3.3: image-processing then
    /// reads the wrong screen area).
    pub mislabels_game: bool,
}

impl HudTraits {
    /// Sample HUD traits.
    pub fn sample(rng: &mut SimRng) -> HudTraits {
        HudTraits {
            noise: 0.005 + rng.f64() * 0.06,
            grain: 1.0 + rng.f64() * 7.0,
            light_font: rng.chance(0.15),
            occlusion_rate: 0.03 + rng.f64() * 0.12,
            clock_overlay: rng.chance(0.005),
            mislabels_game: rng.chance(0.02),
        }
    }
}

/// Behavioural propensities — the ground truth behind Table 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Behavior {
    /// Base probability of a server change per stream (absent spikes).
    pub base_server_change: f64,
    /// Additional per-spike server-change probability at full spike
    /// magnitude (scaled by `min(magnitude, 40)/40`).
    pub spike_server_coeff: f64,
    /// Base probability of switching games between streams.
    pub base_game_change: f64,
    /// Additional per-spike game-change probability at full magnitude.
    pub spike_game_coeff: f64,
}

impl Behavior {
    /// Game-specific propensities. The game-change coefficients are an
    /// order of magnitude above the server-change ones, matching Table 5's
    /// headline contrast ("significantly easier to change games than
    /// servers").
    pub fn for_game(game: GameId, rng: &mut SimRng) -> Behavior {
        // Server-change propensities sit well above the paper's real-world
        // rates (3.12 % of tuples ever change): our worlds are three orders
        // of magnitude smaller than 196k tuples, so the rates are scaled up
        // to keep the *detected* change population statistically usable.
        // The game-vs-server effect ordering is preserved.
        // The *base* server-change rate is scaled up from the paper's
        // real-world prevalence (3.12 % of tuples ever change) so the
        // detected-changer population stays statistically usable at our
        // world sizes; the *per-spike* coefficients preserve the paper's
        // ordering: an order of magnitude below the game-change effects.
        let (server_coeff, game_coeff) = match game {
            GameId::LeagueOfLegends => (0.008, 0.035),
            GameId::CodWarzone => (0.012, 0.035),
            GameId::GenshinImpact => (0.012, 0.050),
            GameId::TeamfightTactics => (0.013, 0.030),
            GameId::Dota2 => (0.010, 0.022),
            GameId::AmongUs => (0.020, 0.050),
            GameId::LostArk => (0.016, 0.040),
            GameId::ApexLegends => (0.010, 0.030),
            GameId::Valorant => (0.009, 0.030),
        };
        let personal = 0.7 + 0.6 * rng.f64();
        Behavior {
            base_server_change: 0.012 * personal,
            spike_server_coeff: server_coeff * personal,
            base_game_change: 0.12 * personal,
            spike_game_coeff: game_coeff * personal,
        }
    }
}

/// A fully generated streamer.
#[derive(Debug, Clone)]
pub struct Streamer {
    /// Twitch username.
    pub id: StreamerId,
    /// True home (city granularity).
    pub home: Place,
    /// For mobile streamers: the place they move to, and when.
    pub second_home: Option<(Place, SimTime)>,
    /// Games the streamer plays, in preference order.
    pub games: Vec<GameId>,
    /// Network profile at home.
    pub net: NetProfile,
    /// Network profile at the second home, if any.
    pub net_second: Option<NetProfile>,
    /// Twitch profile description.
    pub description: String,
    /// Ground truth: what kind of description was generated.
    pub description_style: DescriptionStyle,
    /// Twitter profile, if the streamer has one.
    pub twitter: Option<SocialProfile>,
    /// Ground truth: style of the Twitter location field.
    pub twitter_style: Option<TwitterFieldStyle>,
    /// Steam profile, if any.
    pub steam: Option<SocialProfile>,
    /// Whether the streamer sets a country-level stream tag.
    pub uses_country_tag: bool,
    /// Habitual off-primary play (§2.1: players may join another server
    /// "to interact with a particular player crowd"): `None` plays on the
    /// primary; `Some(false)` habitually picks the second-closest server;
    /// `Some(true)` a fixed far server (friends abroad).
    pub off_primary: Option<bool>,
    /// HUD quirks.
    pub hud: HudTraits,
    /// Per-game behavioural propensities (parallel to `games`).
    pub behavior: Vec<Behavior>,
    /// Probability of streaming on any given day.
    pub daily_stream_prob: f64,
    /// Mean session length in hours.
    pub session_mean_hours: f64,
    /// Preferred session start hour (UTC).
    pub preferred_utc_hour: u64,
}

/// Game popularity weights used when assigning games to streamers
/// (League of Legends and Warzone dominate, as in the paper's Nobs).
pub fn game_weights() -> [(GameId, f64); 9] {
    [
        (GameId::LeagueOfLegends, 0.25),
        (GameId::CodWarzone, 0.22),
        (GameId::GenshinImpact, 0.12),
        (GameId::ApexLegends, 0.10),
        (GameId::Dota2, 0.10),
        (GameId::TeamfightTactics, 0.07),
        (GameId::Valorant, 0.06),
        (GameId::AmongUs, 0.04),
        (GameId::LostArk, 0.04),
    ]
}

impl Streamer {
    /// Generate a streamer living at `home`.
    pub fn generate(gaz: &Gazetteer, home: Place, horizon: SimTime, rng: &mut SimRng) -> Streamer {
        let name = username(rng);
        let id = StreamerId::new(name.clone());

        // Games: 1-3 distinct picks by popularity.
        let weights = game_weights();
        let n_games = 1 + rng.choose_weighted(&[0.55, 0.35, 0.10]);
        let mut games: Vec<GameId> = Vec::new();
        while games.len() < n_games {
            let w: Vec<f64> = weights.iter().map(|&(_, w)| w).collect();
            let pick = weights[rng.choose_weighted(&w)].0;
            if !games.contains(&pick) {
                games.push(pick);
            }
        }
        let behavior = games.iter().map(|&g| Behavior::for_game(g, rng)).collect();

        // ~1.5 % of streamers move during the data-set (§3.1.1).
        let second_home = if rng.chance(0.015) {
            let candidates: Vec<&Place> = gaz
                .places()
                .iter()
                .filter(|p| p.kind == PlaceKind::City && p.location != home.location)
                .collect();
            let pick = (*rng.choose(&candidates)).clone();
            let move_at =
                SimTime::from_micros((horizon.as_micros() as f64 * (0.3 + 0.4 * rng.f64())) as u64);
            Some((pick, move_at))
        } else {
            None
        };

        let net = NetProfile::sample(&home, rng);
        let net_second = second_home
            .as_ref()
            .map(|(p, _)| NetProfile::sample(p, rng));

        // Twitch description.
        let description_style = sample_description_style(rng);
        let description = twitch_description(description_style, &home, rng);

        // Social profiles: ~55 % have a same-username Twitter with a
        // backlink; ~12 % a Steam profile; ~8 % a Twitter under a
        // different name (unfindable by the §3.1 rules).
        let (twitter, twitter_style) = if rng.chance(0.55) {
            let style = sample_twitter_style(rng);
            let field = twitter_field(style, &home, rng);
            (
                Some(SocialProfile {
                    platform: SocialPlatform::Twitter,
                    username: name.clone(),
                    location_field: if field.is_empty() { None } else { Some(field) },
                    bio: format!("streams on twitch.tv/{name}"),
                    links_to_twitch: Some(name.clone()),
                }),
                Some(style),
            )
        } else if rng.chance(0.08) {
            // Different username — correct profile exists but can't be
            // matched (contributes to the 97 %+ unlocated mass).
            let style = sample_twitter_style(rng);
            let field = twitter_field(style, &home, rng);
            (
                Some(SocialProfile {
                    platform: SocialPlatform::Twitter,
                    username: format!("{name}_alt"),
                    location_field: if field.is_empty() { None } else { Some(field) },
                    bio: String::new(),
                    links_to_twitch: Some(name.clone()),
                }),
                Some(style),
            )
        } else {
            (None, None)
        };
        let steam = if rng.chance(0.12) {
            Some(SocialProfile {
                platform: SocialPlatform::Steam,
                username: name.clone(),
                location_field: Some(home.location.country.clone()),
                bio: String::new(),
                links_to_twitch: Some(name.clone()),
            })
        } else {
            None
        };

        Streamer {
            id,
            home,
            second_home,
            games,
            net,
            net_second,
            description,
            description_style,
            twitter,
            twitter_style,
            steam,
            uses_country_tag: rng.chance(0.075),
            off_primary: if rng.chance(0.08) {
                Some(false)
            } else if rng.chance(0.02) {
                Some(true)
            } else {
                None
            },
            hud: HudTraits::sample(rng),
            behavior,
            daily_stream_prob: 0.2 + 0.6 * rng.f64(),
            session_mean_hours: 1.5 + rng.exponential(1.5),
            preferred_utc_hour: rng.below(24),
        }
    }

    /// The streamer's true location at time `t` (handles moves).
    pub fn location_at(&self, t: SimTime) -> &Place {
        match &self.second_home {
            Some((place, move_at)) if t >= *move_at => place,
            _ => &self.home,
        }
    }

    /// The network profile in effect at time `t`.
    pub fn net_at(&self, t: SimTime) -> &NetProfile {
        match (&self.second_home, &self.net_second) {
            (Some((_, move_at)), Some(net2)) if t >= *move_at => net2,
            _ => &self.net,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn home(gaz: &Gazetteer) -> Place {
        gaz.lookup_kind("Chicago", PlaceKind::City)[0].clone()
    }

    #[test]
    fn generation_is_sane() {
        let gaz = Gazetteer::new();
        let mut rng = SimRng::new(42);
        let horizon = SimTime::from_hours(24 * 30);
        for _ in 0..50 {
            let s = Streamer::generate(&gaz, home(&gaz), horizon, &mut rng);
            assert!(!s.games.is_empty() && s.games.len() <= 3);
            let mut dedup = s.games.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), s.games.len(), "games distinct");
            assert_eq!(s.behavior.len(), s.games.len());
            assert!(s.net.path_stretch >= 1.0);
            assert!(s.daily_stream_prob > 0.0 && s.daily_stream_prob < 1.0);
            assert!(!s.description.is_empty());
        }
    }

    #[test]
    fn moves_change_location_at_the_right_time() {
        let gaz = Gazetteer::new();
        let mut rng = SimRng::new(7);
        let horizon = SimTime::from_hours(24 * 30);
        // Force generation until we get a mover.
        let mover = (0..2_000)
            .map(|_| Streamer::generate(&gaz, home(&gaz), horizon, &mut rng))
            .find(|s| s.second_home.is_some())
            .expect("no mover generated in 2000 draws");
        let (second, move_at) = mover.second_home.clone().unwrap();
        assert_eq!(
            mover.location_at(SimTime::EPOCH).location,
            mover.home.location
        );
        assert_eq!(mover.location_at(move_at).location, second.location);
        assert!(move_at > SimTime::EPOCH && move_at < horizon);
        // Net profile switches too.
        let _ = mover.net_at(move_at);
    }

    #[test]
    fn social_profile_rates() {
        let gaz = Gazetteer::new();
        let mut rng = SimRng::new(9);
        let horizon = SimTime::from_hours(24 * 30);
        let n = 1_000;
        let streamers: Vec<Streamer> = (0..n)
            .map(|_| Streamer::generate(&gaz, home(&gaz), horizon, &mut rng))
            .collect();
        let with_matching_twitter = streamers
            .iter()
            .filter(|s| {
                s.twitter
                    .as_ref()
                    .is_some_and(|p| p.username == s.id.as_str())
            })
            .count() as f64
            / n as f64;
        assert!(
            (0.45..0.65).contains(&with_matching_twitter),
            "{with_matching_twitter}"
        );
        let movers = streamers.iter().filter(|s| s.second_home.is_some()).count();
        assert!(movers < 60, "movers {movers}");
    }

    #[test]
    fn game_weights_sum_to_one() {
        let total: f64 = game_weights().iter().map(|&(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
