//! A Redis-like, sharded, thread-safe key-value store.
//!
//! Supports the subset of Redis that the Tero pipeline uses (App. B):
//! strings, counters, lists with blocking pop (work queues), hashes
//! (streamer-location state), key scans by prefix, and TTLs against the
//! simulation's logical clock.
//!
//! The public API is a *facade* over one of two backends: the
//! in-process shard array (the default), or a [`RemoteStore`] client
//! speaking a wire protocol to networked store servers (see
//! `tero-net`). Metrics and chaos write-drops live in the facade, so
//! both deployments observe identical `store.kv.*` accounting and
//! fault-injection draw order.

use crate::remote::{KvRequest, KvResponse, RemoteStore};
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, OnceLock};
use tero_chaos::ChaosInjector;
use tero_obs::{CounterHandle, HistogramHandle, Registry, StageTimer};
use tero_types::SimTime;

const SHARDS: usize = 16;

/// Key prefix reserved for pipeline control-plane state (stage cursors,
/// committed counters, the provenance ledger). Writes under this prefix
/// bypass fault injection: chaos targets the *data* plane (queues,
/// leases, tag lists) the way a flaky Redis would, while the engine's
/// own commit records stay trustworthy — losing a commit marker would
/// corrupt resume bookkeeping rather than exercise recovery paths.
pub const PROTECTED_PREFIX: &str = "engine:";

/// Metric handles installed by [`KvStore::instrument`].
struct KvMetrics {
    reads: CounterHandle,
    writes: CounterHandle,
    op_us: HistogramHandle,
    registry: Registry,
}

/// A value held in the store.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    List(VecDeque<String>),
    Hash(HashMap<String, String>),
}

#[derive(Debug)]
struct Entry {
    value: Value,
    expires_at: Option<SimTime>,
}

#[derive(Default)]
struct Shard {
    map: Mutex<HashMap<String, Entry>>,
    /// Signalled whenever a list in this shard grows.
    list_grew: Condvar,
}

/// Where the data actually lives.
enum Backend {
    /// The in-process shard array.
    Local(Arc<[Shard; SHARDS]>),
    /// A networked client (routing, retries and failover live there).
    Remote(Arc<dyn RemoteStore>),
}

impl Clone for Backend {
    fn clone(&self) -> Self {
        match self {
            Backend::Local(shards) => Backend::Local(Arc::clone(shards)),
            Backend::Remote(r) => Backend::Remote(Arc::clone(r)),
        }
    }
}

/// A sharded key-value store. Cloning is cheap (shared handle).
#[derive(Clone)]
pub struct KvStore {
    backend: Backend,
    metrics: Arc<OnceLock<KvMetrics>>,
    chaos: Arc<OnceLock<ChaosInjector>>,
}

impl Default for KvStore {
    fn default() -> Self {
        Self::new()
    }
}

fn key_hash(key: &str) -> usize {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % SHARDS as u64) as usize
}

impl KvStore {
    /// Create an empty in-process store.
    pub fn new() -> Self {
        KvStore {
            backend: Backend::Local(Arc::new(std::array::from_fn(|_| Shard::default()))),
            metrics: Arc::new(OnceLock::new()),
            chaos: Arc::new(OnceLock::new()),
        }
    }

    /// Create a store whose operations execute on a [`RemoteStore`]
    /// client instead of in-process memory. The facade semantics
    /// (metrics, chaos draws, the protected prefix) are unchanged —
    /// only the backend differs.
    pub fn remote(backend: Arc<dyn RemoteStore>) -> Self {
        KvStore {
            backend: Backend::Remote(backend),
            metrics: Arc::new(OnceLock::new()),
            chaos: Arc::new(OnceLock::new()),
        }
    }

    /// Install a fault injector: insert-type writes (`set`, `set_with_ttl`,
    /// `rpush`, `hset`) may then be acked but silently lost, per the
    /// injector's `kv_write_drop_rate`. Deletes and pops are never dropped
    /// (a lost delete would mask rather than surface pipeline bugs). First
    /// call wins; every clone shares the injector.
    pub fn inject_faults(&self, injector: ChaosInjector) {
        let _ = self.chaos.set(injector);
    }

    /// Whether a write to `key` should be silently dropped. Control-plane
    /// keys under [`PROTECTED_PREFIX`] are never dropped (and consume no
    /// fault-injection randomness).
    #[inline]
    fn dropped_write(&self, key: &str) -> bool {
        if key.starts_with(PROTECTED_PREFIX) {
            return false;
        }
        self.chaos.get().is_some_and(|c| c.drop_kv_write())
    }

    /// Register this store's operation metrics (`store.kv.*`) with a
    /// registry. The first call wins; every clone of this store — taken
    /// before or after — shares the installed handles. Un-instrumented
    /// stores pay a single atomic load per operation.
    pub fn instrument(&self, registry: &Registry) {
        let _ = self.metrics.set(KvMetrics {
            reads: registry.counter("store.kv.reads"),
            writes: registry.counter("store.kv.writes"),
            op_us: registry.histogram("store.kv.op_us"),
            registry: registry.clone(),
        });
    }

    /// Count one operation and (when timing is enabled) time it. Returns
    /// the guard whose drop records the elapsed microseconds.
    #[inline]
    fn observe(&self, write: bool) -> Option<StageTimer> {
        let m = self.metrics.get()?;
        if write {
            m.writes.inc();
        } else {
            m.reads.inc();
        }
        Some(m.registry.stage_timer(&m.op_us))
    }

    /// The local shard owning `key`. Panics on a remote backend — every
    /// caller dispatches on the backend first.
    fn local_shard<'a>(shards: &'a Arc<[Shard; SHARDS]>, key: &str) -> &'a Shard {
        &shards[key_hash(key)]
    }

    /// Set a string value (no TTL).
    pub fn set(&self, key: &str, value: impl Into<String>) {
        let _op = self.observe(true);
        if self.dropped_write(key) {
            return;
        }
        match &self.backend {
            Backend::Local(shards) => {
                let mut map = Self::local_shard(shards, key).map.lock();
                map.insert(
                    key.to_string(),
                    Entry {
                        value: Value::Str(value.into()),
                        expires_at: None,
                    },
                );
            }
            Backend::Remote(r) => {
                r.kv(KvRequest::Set {
                    key: key.to_string(),
                    value: value.into(),
                });
            }
        }
    }

    /// Set a string value that expires at logical time `expires_at`.
    pub fn set_with_ttl(&self, key: &str, value: impl Into<String>, expires_at: SimTime) {
        let _op = self.observe(true);
        if self.dropped_write(key) {
            return;
        }
        match &self.backend {
            Backend::Local(shards) => {
                let mut map = Self::local_shard(shards, key).map.lock();
                map.insert(
                    key.to_string(),
                    Entry {
                        value: Value::Str(value.into()),
                        expires_at: Some(expires_at),
                    },
                );
            }
            Backend::Remote(r) => {
                r.kv(KvRequest::SetWithTtl {
                    key: key.to_string(),
                    value: value.into(),
                    expires_at,
                });
            }
        }
    }

    /// Get a string value. Returns `None` for missing keys or keys holding a
    /// non-string value.
    pub fn get(&self, key: &str) -> Option<String> {
        let _op = self.observe(false);
        match &self.backend {
            Backend::Local(shards) => {
                let map = Self::local_shard(shards, key).map.lock();
                match map.get(key)?.value {
                    Value::Str(ref s) => Some(s.clone()),
                    _ => None,
                }
            }
            Backend::Remote(r) => match r.kv(KvRequest::Get {
                key: key.to_string(),
            }) {
                KvResponse::MaybeStr(v) => v,
                other => unreachable!("get returned {other:?}"),
            },
        }
    }

    /// Delete a key of any type. Returns whether it existed.
    pub fn del(&self, key: &str) -> bool {
        let _op = self.observe(true);
        match &self.backend {
            Backend::Local(shards) => Self::local_shard(shards, key)
                .map
                .lock()
                .remove(key)
                .is_some(),
            Backend::Remote(r) => match r.kv(KvRequest::Del {
                key: key.to_string(),
            }) {
                KvResponse::Bool(b) => b,
                other => unreachable!("del returned {other:?}"),
            },
        }
    }

    /// Whether a key exists (of any type).
    pub fn exists(&self, key: &str) -> bool {
        let _op = self.observe(false);
        match &self.backend {
            Backend::Local(shards) => Self::local_shard(shards, key).map.lock().contains_key(key),
            Backend::Remote(r) => match r.kv(KvRequest::Exists {
                key: key.to_string(),
            }) {
                KvResponse::Bool(b) => b,
                other => unreachable!("exists returned {other:?}"),
            },
        }
    }

    /// Atomically increment a counter key by `delta`, creating it at 0
    /// first if missing. Returns the new value. Panics if the key holds a
    /// non-numeric string or non-string value.
    pub fn incr_by(&self, key: &str, delta: i64) -> i64 {
        let _op = self.observe(true);
        match &self.backend {
            Backend::Local(shards) => {
                let mut map = Self::local_shard(shards, key).map.lock();
                let entry = map.entry(key.to_string()).or_insert(Entry {
                    value: Value::Str("0".to_string()),
                    expires_at: None,
                });
                match entry.value {
                    Value::Str(ref mut s) => {
                        let cur: i64 = s.parse().expect("incr_by on non-numeric value");
                        let next = cur + delta;
                        *s = next.to_string();
                        next
                    }
                    _ => panic!("incr_by on non-string key {key}"),
                }
            }
            Backend::Remote(r) => match r.kv(KvRequest::IncrBy {
                key: key.to_string(),
                delta,
            }) {
                KvResponse::Int(v) => v,
                other => unreachable!("incr_by returned {other:?}"),
            },
        }
    }

    /// Push a value to the tail of the list at `key`, creating the list if
    /// needed, and wake any blocked poppers. Returns the new length.
    pub fn rpush(&self, key: &str, value: impl Into<String>) -> usize {
        let _op = self.observe(true);
        match &self.backend {
            Backend::Local(shards) => {
                let shard = Self::local_shard(shards, key);
                let mut map = shard.map.lock();
                if self.dropped_write(key) {
                    // Acked-but-lost: report the length the client expects to see.
                    return match map.get(key).map(|e| &e.value) {
                        Some(Value::List(l)) => l.len() + 1,
                        _ => 1,
                    };
                }
                let entry = map.entry(key.to_string()).or_insert(Entry {
                    value: Value::List(VecDeque::new()),
                    expires_at: None,
                });
                let len = match entry.value {
                    Value::List(ref mut l) => {
                        l.push_back(value.into());
                        l.len()
                    }
                    _ => panic!("rpush on non-list key {key}"),
                };
                shard.list_grew.notify_all();
                len
            }
            Backend::Remote(r) => {
                if self.dropped_write(key) {
                    // Acked-but-lost: report the expected post-push length.
                    return match r.kv(KvRequest::Llen {
                        key: key.to_string(),
                    }) {
                        KvResponse::Uint(n) => n as usize + 1,
                        other => unreachable!("llen returned {other:?}"),
                    };
                }
                match r.kv(KvRequest::Rpush {
                    key: key.to_string(),
                    value: value.into(),
                }) {
                    KvResponse::Uint(n) => n as usize,
                    other => unreachable!("rpush returned {other:?}"),
                }
            }
        }
    }

    /// Push a batch of values to the tail of the list at `key` under a
    /// single lock acquisition, waking blocked poppers once. Counts as one
    /// store operation. Each element is still subject to an independent
    /// fault-injection draw (matching a loop of [`KvStore::rpush`] calls),
    /// so replay streams line up whichever API the producer uses. Returns
    /// the length the client observes after the push.
    pub fn rpush_batch<I>(&self, key: &str, values: I) -> usize
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let _op = self.observe(true);
        match &self.backend {
            Backend::Local(shards) => {
                let shard = Self::local_shard(shards, key);
                let mut map = shard.map.lock();
                let entry = map.entry(key.to_string()).or_insert(Entry {
                    value: Value::List(VecDeque::new()),
                    expires_at: None,
                });
                let len = match entry.value {
                    Value::List(ref mut l) => {
                        let mut acked = l.len();
                        for v in values {
                            acked += 1;
                            if !self.dropped_write(key) {
                                l.push_back(v.into());
                            }
                        }
                        acked
                    }
                    _ => panic!("rpush_batch on non-list key {key}"),
                };
                shard.list_grew.notify_all();
                len
            }
            Backend::Remote(r) => {
                // Draw the per-element fault decisions at the facade (same
                // stream order as the local path), ship only the kept
                // elements, and ack the full count.
                let mut dropped = 0usize;
                let kept: Vec<String> = values
                    .into_iter()
                    .filter_map(|v| {
                        if self.dropped_write(key) {
                            dropped += 1;
                            None
                        } else {
                            Some(v.into())
                        }
                    })
                    .collect();
                match r.kv(KvRequest::RpushBatch {
                    key: key.to_string(),
                    values: kept,
                }) {
                    KvResponse::Uint(n) => n as usize + dropped,
                    other => unreachable!("rpush_batch returned {other:?}"),
                }
            }
        }
    }

    /// Pop from the head of the list at `key`. Non-blocking.
    pub fn lpop(&self, key: &str) -> Option<String> {
        let _op = self.observe(true);
        match &self.backend {
            Backend::Local(shards) => {
                let mut map = Self::local_shard(shards, key).map.lock();
                match map.get_mut(key)?.value {
                    Value::List(ref mut l) => l.pop_front(),
                    _ => None,
                }
            }
            Backend::Remote(r) => match r.kv(KvRequest::Lpop {
                key: key.to_string(),
            }) {
                KvResponse::MaybeStr(v) => v,
                other => unreachable!("lpop returned {other:?}"),
            },
        }
    }

    /// Pop up to `n` values from the head of the list at `key`. Returns an
    /// empty vector when the list is missing or empty. Tero's batch-pulling
    /// workers use this: "each image-processing process pulls a fixed-size
    /// batch when ready" (App. B).
    pub fn lpop_batch(&self, key: &str, n: usize) -> Vec<String> {
        let _op = self.observe(true);
        match &self.backend {
            Backend::Local(shards) => {
                let mut map = Self::local_shard(shards, key).map.lock();
                match map.get_mut(key) {
                    Some(Entry {
                        value: Value::List(l),
                        ..
                    }) => {
                        let take = n.min(l.len());
                        l.drain(..take).collect()
                    }
                    _ => vec![],
                }
            }
            Backend::Remote(r) => match r.kv(KvRequest::LpopBatch {
                key: key.to_string(),
                n: n as u64,
            }) {
                KvResponse::Strs(v) => v,
                other => unreachable!("lpop_batch returned {other:?}"),
            },
        }
    }

    /// Pop exactly `n` values *only if* at least `n` are available —
    /// otherwise pop nothing. This is the paper's fixed-batch discipline:
    /// "if the available thumbnails are fewer than the batch size, no
    /// process pulls them, and this allows the slower processes to … catch
    /// up" (App. B).
    pub fn lpop_exact_batch(&self, key: &str, n: usize) -> Vec<String> {
        let _op = self.observe(true);
        match &self.backend {
            Backend::Local(shards) => {
                let mut map = Self::local_shard(shards, key).map.lock();
                match map.get_mut(key) {
                    Some(Entry {
                        value: Value::List(l),
                        ..
                    }) if l.len() >= n => l.drain(..n).collect(),
                    _ => vec![],
                }
            }
            Backend::Remote(r) => match r.kv(KvRequest::LpopExactBatch {
                key: key.to_string(),
                n: n as u64,
            }) {
                KvResponse::Strs(v) => v,
                other => unreachable!("lpop_exact_batch returned {other:?}"),
            },
        }
    }

    /// Blocking pop with a wall-clock timeout (used by worker threads).
    /// Returns `None` on timeout. On a remote backend this polls (there is
    /// no cross-host condvar): the caller trades a little latency for the
    /// same contract.
    pub fn blpop(&self, key: &str, timeout: std::time::Duration) -> Option<String> {
        let _op = self.observe(true);
        match &self.backend {
            Backend::Local(shards) => {
                let shard = Self::local_shard(shards, key);
                let deadline = std::time::Instant::now() + timeout;
                let mut map = shard.map.lock();
                loop {
                    if let Some(Entry {
                        value: Value::List(l),
                        ..
                    }) = map.get_mut(key)
                    {
                        if let Some(v) = l.pop_front() {
                            return Some(v);
                        }
                    }
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    if shard.list_grew.wait_until(&mut map, deadline).timed_out() {
                        // Check one last time after the timeout.
                        if let Some(Entry {
                            value: Value::List(l),
                            ..
                        }) = map.get_mut(key)
                        {
                            return l.pop_front();
                        }
                        return None;
                    }
                }
            }
            Backend::Remote(r) => {
                let deadline = std::time::Instant::now() + timeout;
                loop {
                    if let KvResponse::MaybeStr(Some(v)) = r.kv(KvRequest::Lpop {
                        key: key.to_string(),
                    }) {
                        return Some(v);
                    }
                    if std::time::Instant::now() >= deadline {
                        return None;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
        }
    }

    /// Read the list at `key` from index `start` to the tail, without
    /// consuming anything (Redis `LRANGE key start -1`). Returns an empty
    /// vector when the list is missing or `start` is past the end.
    ///
    /// This is the read the streaming consumers use: a cursor-holding
    /// stage (see `tero-core`'s online clean stage) remembers how many
    /// records it has already processed and fetches only the suffix,
    /// while the list itself stays intact for replay after a crash — the
    /// non-destructive complement of [`KvStore::lpop_batch`].
    pub fn lrange_from(&self, key: &str, start: usize) -> Vec<String> {
        let _op = self.observe(false);
        match &self.backend {
            Backend::Local(shards) => {
                let map = Self::local_shard(shards, key).map.lock();
                match map.get(key) {
                    Some(Entry {
                        value: Value::List(l),
                        ..
                    }) => l.iter().skip(start).cloned().collect(),
                    _ => vec![],
                }
            }
            Backend::Remote(r) => match r.kv(KvRequest::LrangeFrom {
                key: key.to_string(),
                start: start as u64,
            }) {
                KvResponse::Strs(v) => v,
                other => unreachable!("lrange_from returned {other:?}"),
            },
        }
    }

    /// Length of the list at `key` (0 when missing).
    pub fn llen(&self, key: &str) -> usize {
        let _op = self.observe(false);
        match &self.backend {
            Backend::Local(shards) => {
                let map = Self::local_shard(shards, key).map.lock();
                match map.get(key) {
                    Some(Entry {
                        value: Value::List(l),
                        ..
                    }) => l.len(),
                    _ => 0,
                }
            }
            Backend::Remote(r) => match r.kv(KvRequest::Llen {
                key: key.to_string(),
            }) {
                KvResponse::Uint(n) => n as usize,
                other => unreachable!("llen returned {other:?}"),
            },
        }
    }

    /// Set a field in the hash at `key`.
    pub fn hset(&self, key: &str, field: &str, value: impl Into<String>) {
        let _op = self.observe(true);
        if self.dropped_write(key) {
            return;
        }
        match &self.backend {
            Backend::Local(shards) => {
                let mut map = Self::local_shard(shards, key).map.lock();
                let entry = map.entry(key.to_string()).or_insert(Entry {
                    value: Value::Hash(HashMap::new()),
                    expires_at: None,
                });
                match entry.value {
                    Value::Hash(ref mut h) => {
                        h.insert(field.to_string(), value.into());
                    }
                    _ => panic!("hset on non-hash key {key}"),
                }
            }
            Backend::Remote(r) => {
                r.kv(KvRequest::Hset {
                    key: key.to_string(),
                    field: field.to_string(),
                    value: value.into(),
                });
            }
        }
    }

    /// Get a field from the hash at `key`.
    pub fn hget(&self, key: &str, field: &str) -> Option<String> {
        let _op = self.observe(false);
        match &self.backend {
            Backend::Local(shards) => {
                let map = Self::local_shard(shards, key).map.lock();
                match map.get(key)?.value {
                    Value::Hash(ref h) => h.get(field).cloned(),
                    _ => None,
                }
            }
            Backend::Remote(r) => match r.kv(KvRequest::Hget {
                key: key.to_string(),
                field: field.to_string(),
            }) {
                KvResponse::MaybeStr(v) => v,
                other => unreachable!("hget returned {other:?}"),
            },
        }
    }

    /// All fields of the hash at `key`.
    pub fn hgetall(&self, key: &str) -> HashMap<String, String> {
        let _op = self.observe(false);
        match &self.backend {
            Backend::Local(shards) => {
                let map = Self::local_shard(shards, key).map.lock();
                match map.get(key) {
                    Some(Entry {
                        value: Value::Hash(h),
                        ..
                    }) => h.clone(),
                    _ => HashMap::new(),
                }
            }
            Backend::Remote(r) => match r.kv(KvRequest::Hgetall {
                key: key.to_string(),
            }) {
                KvResponse::Pairs(pairs) => pairs.into_iter().collect(),
                other => unreachable!("hgetall returned {other:?}"),
            },
        }
    }

    /// All keys starting with `prefix`, across all shards. O(total keys).
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        let _op = self.observe(false);
        match &self.backend {
            Backend::Local(shards) => {
                let mut out = Vec::new();
                for shard in shards.iter() {
                    let map = shard.map.lock();
                    out.extend(map.keys().filter(|k| k.starts_with(prefix)).cloned());
                }
                out.sort_unstable();
                out
            }
            Backend::Remote(r) => match r.kv(KvRequest::KeysWithPrefix {
                prefix: prefix.to_string(),
            }) {
                KvResponse::Strs(mut keys) => {
                    keys.sort_unstable();
                    keys
                }
                other => unreachable!("keys_with_prefix returned {other:?}"),
            },
        }
    }

    /// Drop every key whose TTL is at or before `now` (logical time).
    /// Returns the number of keys removed. The pipeline's coordinator calls
    /// this on its periodic tick.
    pub fn sweep_expired(&self, now: SimTime) -> usize {
        self.sweep_expired_scoped(now, "")
    }

    /// [`KvStore::sweep_expired`] restricted to keys starting with
    /// `prefix` (empty = everything). Multi-tenant servers need the
    /// scope: one tenant's periodic sweep runs at *its* logical clock,
    /// and letting it evict another tenant's TTL leases would expire
    /// them at times the other tenant never chose.
    pub fn sweep_expired_scoped(&self, now: SimTime, prefix: &str) -> usize {
        let _op = self.observe(true);
        match &self.backend {
            Backend::Local(shards) => {
                let mut removed = 0;
                for shard in shards.iter() {
                    let mut map = shard.map.lock();
                    map.retain(|k, e| match e.expires_at {
                        Some(t) if t <= now && k.starts_with(prefix) => {
                            removed += 1;
                            false
                        }
                        _ => true,
                    });
                }
                removed
            }
            Backend::Remote(r) => match r.kv(KvRequest::SweepExpired {
                now,
                prefix: prefix.to_string(),
            }) {
                KvResponse::Uint(n) => n as usize,
                other => unreachable!("sweep_expired returned {other:?}"),
            },
        }
    }

    /// Total number of keys.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Local(shards) => shards.iter().map(|s| s.map.lock().len()).sum(),
            Backend::Remote(r) => match r.kv(KvRequest::Len) {
                KvResponse::Uint(n) => n as usize,
                other => unreachable!("len returned {other:?}"),
            },
        }
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove every key (test helper).
    pub fn clear(&self) {
        match &self.backend {
            Backend::Local(shards) => {
                for shard in shards.iter() {
                    shard.map.lock().clear();
                }
            }
            Backend::Remote(r) => {
                r.kv(KvRequest::Clear);
            }
        }
    }

    /// Capture the full store contents as a deterministic, serializable
    /// snapshot: entries sorted by key, hash fields sorted by field name.
    /// Two stores holding the same data produce equal snapshots however
    /// the data arrived. Administrative — not counted in `store.kv.*`.
    pub fn snapshot(&self) -> KvSnapshot {
        match &self.backend {
            Backend::Local(shards) => {
                let mut entries = Vec::new();
                for shard in shards.iter() {
                    let map = shard.map.lock();
                    for (key, entry) in map.iter() {
                        let value = match &entry.value {
                            Value::Str(s) => SnapshotValue::Str(s.clone()),
                            Value::List(l) => SnapshotValue::List(l.iter().cloned().collect()),
                            Value::Hash(h) => {
                                let mut fields: Vec<(String, String)> =
                                    h.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                                fields.sort();
                                SnapshotValue::Hash(fields)
                            }
                        };
                        entries.push(SnapshotEntry {
                            key: key.clone(),
                            value,
                            expires_at: entry.expires_at,
                        });
                    }
                }
                entries.sort_by(|a, b| a.key.cmp(&b.key));
                KvSnapshot { entries }
            }
            Backend::Remote(r) => match r.kv(KvRequest::Snapshot) {
                KvResponse::Snapshot(s) => s,
                other => unreachable!("snapshot returned {other:?}"),
            },
        }
    }

    /// Replace the full store contents with a snapshot's. TTLs are
    /// restored verbatim (logical clock, so they stay meaningful across
    /// processes). Bypasses fault injection and, like `snapshot`, is not
    /// counted in `store.kv.*`.
    pub fn restore(&self, snapshot: &KvSnapshot) {
        match &self.backend {
            Backend::Local(shards) => {
                self.clear();
                for entry in &snapshot.entries {
                    let value = match &entry.value {
                        SnapshotValue::Str(s) => Value::Str(s.clone()),
                        SnapshotValue::List(l) => Value::List(l.iter().cloned().collect()),
                        SnapshotValue::Hash(fields) => {
                            Value::Hash(fields.iter().cloned().collect())
                        }
                    };
                    let shard = Self::local_shard(shards, &entry.key);
                    shard.map.lock().insert(
                        entry.key.clone(),
                        Entry {
                            value,
                            expires_at: entry.expires_at,
                        },
                    );
                    shard.list_grew.notify_all();
                }
            }
            Backend::Remote(r) => {
                r.kv(KvRequest::Restore {
                    snapshot: snapshot.clone(),
                });
            }
        }
    }
}

/// A point-in-time copy of a [`KvStore`], in deterministic order. Produced
/// by [`KvStore::snapshot`], consumed by [`KvStore::restore`]; serializable
/// so checkpoints can leave the process.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KvSnapshot {
    entries: Vec<SnapshotEntry>,
}

impl KvSnapshot {
    /// Number of keys captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merge entries from several snapshots into one, keeping entries
    /// sorted by key. Later snapshots win on key collisions, except:
    /// lists are concatenated in argument order, and hashes merge
    /// field-wise (later parts win per *field*) — the shapes a sharded
    /// deployment needs when folding disjoint per-streamer key spaces,
    /// shared ledger lists, and hashes whose fields are spread across
    /// engines back together.
    pub fn merged(parts: &[KvSnapshot]) -> KvSnapshot {
        let mut by_key: std::collections::BTreeMap<String, SnapshotEntry> =
            std::collections::BTreeMap::new();
        for part in parts {
            for entry in &part.entries {
                match by_key.get_mut(&entry.key) {
                    Some(prev) => match (&mut prev.value, &entry.value) {
                        (SnapshotValue::List(dst), SnapshotValue::List(src)) => {
                            dst.extend(src.iter().cloned());
                        }
                        (SnapshotValue::Hash(dst), SnapshotValue::Hash(src)) => {
                            for (field, value) in src {
                                match dst.iter_mut().find(|(f, _)| f == field) {
                                    Some((_, v)) => *v = value.clone(),
                                    None => dst.push((field.clone(), value.clone())),
                                }
                            }
                            dst.sort();
                        }
                        _ => *prev = entry.clone(),
                    },
                    None => {
                        by_key.insert(entry.key.clone(), entry.clone());
                    }
                }
            }
        }
        KvSnapshot {
            entries: by_key.into_values().collect(),
        }
    }

    /// A copy holding only the entries whose key starts with `prefix`,
    /// with the prefix stripped. Used by namespaced shard clients to
    /// carve their own view out of a shared server snapshot.
    pub fn strip_prefix(&self, prefix: &str) -> KvSnapshot {
        KvSnapshot {
            entries: self
                .entries
                .iter()
                .filter_map(|e| {
                    e.key.strip_prefix(prefix).map(|k| SnapshotEntry {
                        key: k.to_string(),
                        value: e.value.clone(),
                        expires_at: e.expires_at,
                    })
                })
                .collect(),
        }
    }

    /// Decompose into the per-key write requests that recreate this
    /// snapshot's entries on an empty (or pre-cleared) store. Unlike
    /// [`KvRequest::Restore`], which replaces
    /// a whole server's state, these requests are routable key-by-key —
    /// a namespaced sharded client uses them to restore only its own
    /// slice. List and hash entries are preceded by a `Del` so the
    /// sequence is a replacement even when keys already exist. TTLs are
    /// preserved for string entries (the only kind `set_with_ttl`
    /// produces).
    pub fn restore_requests(&self) -> Vec<crate::KvRequest> {
        use crate::KvRequest;
        let mut reqs = Vec::new();
        for entry in &self.entries {
            match &entry.value {
                SnapshotValue::Str(v) => reqs.push(match entry.expires_at {
                    Some(expires_at) => KvRequest::SetWithTtl {
                        key: entry.key.clone(),
                        value: v.clone(),
                        expires_at,
                    },
                    None => KvRequest::Set {
                        key: entry.key.clone(),
                        value: v.clone(),
                    },
                }),
                SnapshotValue::List(values) => {
                    reqs.push(KvRequest::Del {
                        key: entry.key.clone(),
                    });
                    reqs.push(KvRequest::RpushBatch {
                        key: entry.key.clone(),
                        values: values.clone(),
                    });
                }
                SnapshotValue::Hash(fields) => {
                    reqs.push(KvRequest::Del {
                        key: entry.key.clone(),
                    });
                    for (field, value) in fields {
                        reqs.push(KvRequest::Hset {
                            key: entry.key.clone(),
                            field: field.clone(),
                            value: value.clone(),
                        });
                    }
                }
            }
        }
        reqs
    }

    /// A copy with `prefix` prepended to every key — the inverse of
    /// [`KvSnapshot::strip_prefix`], used when a namespaced client pushes
    /// a snapshot back into the shared servers.
    pub fn with_prefix(&self, prefix: &str) -> KvSnapshot {
        KvSnapshot {
            entries: self
                .entries
                .iter()
                .map(|e| SnapshotEntry {
                    key: format!("{prefix}{}", e.key),
                    value: e.value.clone(),
                    expires_at: e.expires_at,
                })
                .collect(),
        }
    }
}

/// One key in a [`KvSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct SnapshotEntry {
    key: String,
    value: SnapshotValue,
    expires_at: Option<SimTime>,
}

/// Snapshot form of a stored value (hash fields sorted for determinism).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum SnapshotValue {
    /// A string (or counter) value.
    Str(String),
    /// A list, head first.
    List(Vec<String>),
    /// A hash, as sorted `(field, value)` pairs.
    Hash(Vec<(String, String)>),
}

impl std::fmt::Debug for KvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvStore").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn string_roundtrip() {
        let kv = KvStore::new();
        kv.set("a", "1");
        assert_eq!(kv.get("a").as_deref(), Some("1"));
        assert!(kv.exists("a"));
        assert!(kv.del("a"));
        assert!(!kv.exists("a"));
        assert!(!kv.del("a"));
        assert_eq!(kv.get("missing"), None);
    }

    #[test]
    fn counters() {
        let kv = KvStore::new();
        assert_eq!(kv.incr_by("c", 1), 1);
        assert_eq!(kv.incr_by("c", 5), 6);
        assert_eq!(kv.incr_by("c", -2), 4);
        assert_eq!(kv.get("c").as_deref(), Some("4"));
    }

    #[test]
    fn list_fifo_order() {
        let kv = KvStore::new();
        kv.rpush("q", "a");
        kv.rpush("q", "b");
        kv.rpush("q", "c");
        assert_eq!(kv.llen("q"), 3);
        assert_eq!(kv.lpop("q").as_deref(), Some("a"));
        assert_eq!(kv.lpop_batch("q", 10), vec!["b", "c"]);
        assert_eq!(kv.lpop("q"), None);
    }

    #[test]
    fn exact_batch_discipline() {
        let kv = KvStore::new();
        for i in 0..5 {
            kv.rpush("batch", i.to_string());
        }
        // Not enough for a batch of 8: nothing is pulled.
        assert!(kv.lpop_exact_batch("batch", 8).is_empty());
        assert_eq!(kv.llen("batch"), 5);
        // Exactly enough for a batch of 5.
        assert_eq!(kv.lpop_exact_batch("batch", 5).len(), 5);
        assert_eq!(kv.llen("batch"), 0);
    }

    #[test]
    fn lrange_from_reads_without_consuming() {
        let kv = KvStore::new();
        for i in 0..5 {
            kv.rpush("log", i.to_string());
        }
        assert_eq!(kv.lrange_from("log", 0).len(), 5);
        assert_eq!(kv.lrange_from("log", 3), vec!["3", "4"]);
        assert!(kv.lrange_from("log", 5).is_empty());
        assert!(kv.lrange_from("log", 99).is_empty());
        assert!(kv.lrange_from("missing", 0).is_empty());
        // The list is intact: a cursor consumer re-reads after a crash.
        assert_eq!(kv.llen("log"), 5);
        // Wrong type: a string key reads as an empty list, like llen.
        kv.set("str", "x");
        assert!(kv.lrange_from("str", 0).is_empty());
    }

    #[test]
    fn hashes() {
        let kv = KvStore::new();
        kv.hset("h", "x", "1");
        kv.hset("h", "y", "2");
        assert_eq!(kv.hget("h", "x").as_deref(), Some("1"));
        assert_eq!(kv.hget("h", "z"), None);
        assert_eq!(kv.hgetall("h").len(), 2);
        assert!(kv.hgetall("nope").is_empty());
    }

    #[test]
    fn prefix_scan() {
        let kv = KvStore::new();
        kv.set("streamer:alice", "x");
        kv.set("streamer:bob", "y");
        kv.set("other:carol", "z");
        let keys = kv.keys_with_prefix("streamer:");
        assert_eq!(keys, vec!["streamer:alice", "streamer:bob"]);
    }

    #[test]
    fn ttl_sweep() {
        let kv = KvStore::new();
        kv.set_with_ttl("t1", "a", SimTime::from_secs(10));
        kv.set_with_ttl("t2", "b", SimTime::from_secs(20));
        kv.set("forever", "c");
        assert_eq!(kv.sweep_expired(SimTime::from_secs(10)), 1);
        assert!(!kv.exists("t1"));
        assert!(kv.exists("t2"));
        assert_eq!(kv.sweep_expired(SimTime::from_secs(100)), 1);
        assert!(kv.exists("forever"));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let kv = KvStore::new();
        let kv2 = kv.clone();
        let t = std::thread::spawn(move || kv2.blpop("jobs", Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(50));
        kv.rpush("jobs", "work");
        assert_eq!(t.join().unwrap().as_deref(), Some("work"));
    }

    #[test]
    fn blocking_pop_times_out() {
        let kv = KvStore::new();
        let start = std::time::Instant::now();
        assert_eq!(kv.blpop("empty", Duration::from_millis(50)), None);
        assert!(start.elapsed() >= Duration::from_millis(45));
    }

    #[test]
    fn concurrent_producers_consumers() {
        let kv = KvStore::new();
        let mut handles = vec![];
        for p in 0..4 {
            let kv = kv.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    kv.rpush("mpmc", format!("{p}:{i}"));
                }
            }));
        }
        let mut consumers = vec![];
        for _ in 0..4 {
            let kv = kv.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = 0;
                while let Some(_v) = kv.blpop("mpmc", Duration::from_millis(200)) {
                    got += 1;
                }
                got
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn rpush_batch_matches_looped_rpush() {
        let kv = KvStore::new();
        let loops = KvStore::new();
        kv.rpush_batch("q", ["a", "b", "c"].map(String::from));
        for v in ["a", "b", "c"] {
            loops.rpush("q", v);
        }
        assert_eq!(kv.snapshot(), loops.snapshot());
        assert_eq!(kv.rpush_batch("q", ["d".to_string()]), 4);
        assert_eq!(kv.lpop_batch("q", 10), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let kv = KvStore::new();
        kv.set("s", "v");
        kv.set_with_ttl("lease", "x", SimTime::from_secs(30));
        kv.rpush("q", "1");
        kv.rpush("q", "2");
        kv.hset("h", "b", "2");
        kv.hset("h", "a", "1");
        let snap = kv.snapshot();
        assert_eq!(snap.len(), 4);

        let other = KvStore::new();
        other.set("stale", "gone");
        other.restore(&snap);
        assert_eq!(other.get("s").as_deref(), Some("v"));
        assert!(!other.exists("stale"), "restore replaces prior contents");
        assert_eq!(other.lpop("q").as_deref(), Some("1"));
        assert_eq!(other.hget("h", "a").as_deref(), Some("1"));
        // TTLs survive: the lease still expires on the logical clock.
        assert_eq!(other.sweep_expired(SimTime::from_secs(30)), 1);
        assert!(!other.exists("lease"));
    }

    #[test]
    fn snapshot_is_deterministic_and_serializable() {
        let a = KvStore::new();
        let b = KvStore::new();
        // Same data, different arrival order.
        a.hset("h", "x", "1");
        a.hset("h", "y", "2");
        a.set("k", "v");
        b.set("k", "v");
        b.hset("h", "y", "2");
        b.hset("h", "x", "1");
        assert_eq!(a.snapshot(), b.snapshot());

        let json = serde_json::to_string(&a.snapshot()).unwrap();
        let back: KvSnapshot = serde_json::from_str(&json).unwrap();
        let fresh = KvStore::new();
        fresh.restore(&back);
        assert_eq!(fresh.snapshot(), a.snapshot());
    }

    #[test]
    fn snapshot_merge_and_strip() {
        let a = KvStore::new();
        a.set("e0:x", "1");
        a.rpush("e0:engine:ledger", "r1");
        let b = KvStore::new();
        b.set("e1:y", "2");
        b.rpush("e1:engine:ledger", "r2");

        let sa = a.snapshot().strip_prefix("e0:");
        let sb = b.snapshot().strip_prefix("e1:");
        let merged = KvSnapshot::merged(&[sa, sb]);
        let kv = KvStore::new();
        kv.restore(&merged);
        assert_eq!(kv.get("x").as_deref(), Some("1"));
        assert_eq!(kv.get("y").as_deref(), Some("2"));
        // Ledger lists concatenate in argument order.
        assert_eq!(kv.lpop_batch("engine:ledger", 10), vec!["r1", "r2"]);
    }

    #[test]
    fn protected_prefix_bypasses_chaos() {
        use tero_chaos::{ChaosInjector, FaultPlan};
        let kv = KvStore::new();
        let mut plan = FaultPlan::quiet(1);
        plan.kv_write_drop_rate = 1.0; // drop every data-plane write
        kv.inject_faults(ChaosInjector::new(plan));
        kv.set("data", "lost");
        kv.rpush("queue", "lost");
        assert!(!kv.exists("data"));
        assert_eq!(kv.llen("queue"), 0);
        kv.set("engine:cursor", "kept");
        kv.rpush_batch("engine:ledger", ["a", "b"].map(String::from));
        assert_eq!(kv.get("engine:cursor").as_deref(), Some("kept"));
        assert_eq!(kv.llen("engine:ledger"), 2);
    }

    #[test]
    fn type_confusion_is_contained() {
        let kv = KvStore::new();
        kv.rpush("list", "x");
        assert_eq!(kv.get("list"), None, "get on a list returns None");
        kv.set("str", "v");
        assert_eq!(kv.lpop("str"), None, "lpop on a string returns None");
        assert_eq!(kv.hget("str", "f"), None);
    }

    #[test]
    fn remote_backend_round_trips_through_requests() {
        use crate::remote::{KvRequest, KvResponse, ObjRequest, ObjResponse, RemoteStore};

        /// A loopback remote: executes every request on one local store.
        struct Loopback(KvStore);
        impl RemoteStore for Loopback {
            fn kv(&self, req: KvRequest) -> KvResponse {
                crate::apply_kv(&self.0, req)
            }
            fn obj(&self, _req: ObjRequest) -> ObjResponse {
                unimplemented!("kv-only loopback")
            }
        }

        let kv = KvStore::remote(Arc::new(Loopback(KvStore::new())));
        kv.set("a", "1");
        assert_eq!(kv.get("a").as_deref(), Some("1"));
        assert_eq!(kv.incr_by("c", 7), 7);
        assert_eq!(kv.rpush("q", "x"), 1);
        assert_eq!(kv.rpush_batch("q", ["y", "z"].map(String::from)), 3);
        assert_eq!(kv.llen("q"), 3);
        assert_eq!(kv.lpop("q").as_deref(), Some("x"));
        assert_eq!(kv.lpop_exact_batch("q", 2), vec!["y", "z"]);
        kv.hset("h", "f", "v");
        assert_eq!(kv.hget("h", "f").as_deref(), Some("v"));
        assert_eq!(kv.hgetall("h").len(), 1);
        kv.set_with_ttl("lease", "l", SimTime::from_secs(5));
        assert_eq!(kv.sweep_expired(SimTime::from_secs(5)), 1);
        assert_eq!(kv.keys_with_prefix("a"), vec!["a"]);
        assert!(kv.exists("a") && kv.del("a") && !kv.exists("a"));
        let snap = kv.snapshot();
        let local = KvStore::new();
        local.restore(&snap);
        assert_eq!(local.snapshot(), snap);
    }
}
