//! The shared-anomaly statistical test (App. F, after Padmanabhan et al. \[41\]).
//!
//! For each `{location, game}` tuple Tero estimates the per-measurement spike
//! probability `p_e = #spikes / #measurements` (Eq. 1), requires the data to
//! be statistically significant (`#measurements · p_e · (1 − p_e) > 10`,
//! Eq. 2), and then, for `N` streamers active around a spike of which `D`
//! spiked, computes the probability that `D` spikes happened independently
//! (Eq. 3). If that probability is below `0.01 %`, the spikes form one
//! *shared anomaly*.

use crate::special::ln_choose;
use serde::{Deserialize, Serialize};

/// Binomial probability mass `Pr[X = k]` for `X ~ Bin(n, p)`, computed in
/// log space for stability.
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    if k > n {
        return 0.0;
    }
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    ln.exp()
}

/// Binomial survival `Pr[X ≥ k]` for `X ~ Bin(n, p)`.
pub fn binomial_sf(n: u64, k: u64, p: f64) -> f64 {
    (k..=n).map(|i| binomial_pmf(n, i, p)).sum::<f64>().min(1.0)
}

/// The App. F shared-anomaly test for one `{location, game}` aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharedAnomalyTest {
    /// Estimated per-measurement spike probability `p_e` (Eq. 1).
    pub p_e: f64,
    /// Total measurements backing the estimate.
    pub measurements: u64,
    /// Significance threshold on the independence probability; the paper
    /// uses `0.01 %` (i.e. `1e-4`).
    pub alpha: f64,
}

impl SharedAnomalyTest {
    /// The paper's significance threshold for `Pr[D spikes]`: 0.01 %.
    pub const PAPER_ALPHA: f64 = 1e-4;

    /// Build the test from spike/measurement counts (Eq. 1).
    pub fn from_counts(spikes: u64, measurements: u64) -> Option<SharedAnomalyTest> {
        if measurements == 0 {
            return None;
        }
        Some(SharedAnomalyTest {
            p_e: spikes as f64 / measurements as f64,
            measurements,
            alpha: Self::PAPER_ALPHA,
        })
    }

    /// Eq. 2: is this aggregate statistically significant enough to test?
    /// (`#measurements · p_e · (1 − p_e) > 10`.)
    pub fn is_significant(&self) -> bool {
        self.measurements as f64 * self.p_e * (1.0 - self.p_e) > 10.0
    }

    /// Eq. 3: probability that `d` of the `n` concurrently-streaming
    /// streamers spiked independently.
    pub fn independence_probability(&self, n: u64, d: u64) -> f64 {
        binomial_pmf(n, d, self.p_e)
    }

    /// The verdict: do `d` spikes among `n` active streamers form a shared
    /// anomaly? Requires Eq. 2 to hold and Eq. 3 to fall below `alpha`.
    pub fn is_shared_anomaly(&self, n: u64, d: u64) -> bool {
        self.is_significant() && self.independence_probability(n, d) <= self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3), (25, 0.05), (40, 0.9)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
            assert!((total - 1.0).abs() < 1e-10, "n={n} p={p} total={total}");
        }
    }

    #[test]
    fn pmf_known_values() {
        // Bin(4, 0.5): Pr[X=2] = 6/16.
        assert!((binomial_pmf(4, 2, 0.5) - 0.375).abs() < 1e-12);
        // Degenerate p.
        assert_eq!(binomial_pmf(5, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(5, 3, 0.0), 0.0);
        assert_eq!(binomial_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binomial_pmf(5, 7, 0.5), 0.0, "k > n");
    }

    #[test]
    fn sf_matches_complement() {
        let n = 20;
        let p = 0.2;
        for k in 0..=n {
            let sf = binomial_sf(n, k, p);
            let cdf: f64 = (0..k).map(|i| binomial_pmf(n, i, p)).sum();
            assert!((sf + cdf - 1.0).abs() < 1e-9);
        }
        assert!((binomial_sf(10, 0, 0.3) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn significance_gate() {
        // 10,000 measurements at p=0.05: 10000*0.05*0.95 = 475 > 10 — ok.
        let t = SharedAnomalyTest::from_counts(500, 10_000).unwrap();
        assert!(t.is_significant());
        // 50 measurements at p=0.02: 50*0.02*0.98 ≈ 0.98 — not enough data.
        let t = SharedAnomalyTest::from_counts(1, 50).unwrap();
        assert!(!t.is_significant());
        assert!(SharedAnomalyTest::from_counts(0, 0).is_none());
    }

    #[test]
    fn shared_anomaly_verdicts() {
        // p_e = 1%: 8 of 10 streamers spiking together is wildly improbable.
        let t = SharedAnomalyTest::from_counts(100, 10_000).unwrap();
        assert!(t.is_shared_anomaly(10, 8));
        // 0 of 10 spiking is the expected case.
        assert!(!t.is_shared_anomaly(10, 0));
        // 1 of 10 at p_e=1% has probability ~0.091 — not shared.
        assert!(!t.is_shared_anomaly(10, 1));
    }

    #[test]
    fn insignificant_aggregate_never_fires() {
        // Even a "perfect" coincidence is rejected without enough data
        // (the paper's Eq. 2 gate).
        let t = SharedAnomalyTest::from_counts(1, 20).unwrap();
        assert!(!t.is_shared_anomaly(5, 5));
    }
}
