//! Trace exporters: Chrome trace-event JSON and an aligned-text timeline.
//!
//! Both exporters are pure functions of [`Tracer::records`], which is
//! already deterministic (see [`crate::span`]), so their output is
//! byte-identical across worker counts. The JSON is hand-assembled — no
//! serializer in the loop means full control over byte layout; the
//! workspace's vendored `serde_json` parses it back in tests and CI.
//!
//! ## Opening a trace
//!
//! Write [`Tracer::chrome_trace`] to a `.json` file and load it at
//! <https://ui.perfetto.dev> (or `chrome://tracing`). Spans appear as `X`
//! slices and events as instants; `tid 0` is the sequential coordinator
//! and `tid 1..=8` are the [`VIRTUAL_LANES`] that fan-out task spans are
//! spread across by input index. Timestamps are logical ticks (one
//! "microsecond" per record boundary), not wall time — the horizontal axis
//! shows pipeline structure, not duration.

use crate::span::{EventRecord, SpanRecord, Tracer, VIRTUAL_LANES};

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_span_json(out: &mut String, pid: usize, s: &SpanRecord) {
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{},\"args\":{{\"id\":\"{:#018x}\",\"parent\":\"{:#018x}\"",
        json_escape(&s.name),
        s.start_tick,
        s.end_tick.saturating_sub(s.start_tick).max(1),
        s.lane,
        s.id,
        s.parent,
    ));
    if let Some(i) = s.index {
        out.push_str(&format!(",\"index\":{i}"));
    }
    if let Some(at) = s.sim_at {
        out.push_str(&format!(",\"sim_us\":{}", at.as_micros()));
    }
    if let Some(w) = s.wall_us {
        out.push_str(&format!(",\"wall_us\":{w}"));
    }
    if let Some(ctx) = s.remote {
        out.push_str(&format!(
            ",\"remote_trace\":\"{:#018x}\",\"remote_tick\":{}",
            ctx.trace_id, ctx.tick
        ));
    }
    out.push_str("}}");
}

fn push_event_json(out: &mut String, pid: usize, e: &EventRecord) {
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":{pid},\"tid\":{},\"s\":\"t\",\"args\":{{\"span\":\"{:#018x}\"",
        json_escape(&e.message),
        e.level.as_str(),
        e.tick,
        e.lane,
        e.span,
    ));
    if let Some(at) = e.sim_at {
        out.push_str(&format!(",\"sim_us\":{}", at.as_micros()));
    }
    out.push_str("}}");
}

/// Name the virtual lanes of process `pid` (Chrome-trace `M` records):
/// tid 0 is the coordinator, 1..=[`VIRTUAL_LANES`] the fan-out workers.
/// Always all of them, so layout never depends on which lanes were used.
fn push_thread_names(out: &mut String, pid: usize) {
    out.push_str(&format!(
        ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"coordinator\"}}}}"
    ));
    for lane in 1..=VIRTUAL_LANES {
        out.push_str(&format!(
            ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{lane},\"args\":{{\"name\":\"virtual worker {lane}\"}}}}"
        ));
    }
}

/// Stitch several hosts' tracers into one Chrome trace.
///
/// Hosts are sorted by name before anything is emitted and assigned
/// pids `1..=N` in that order, each announced with `process_name` /
/// `process_sort_index` metadata plus the standard lane thread names;
/// within a host, spans and events keep the deterministic
/// `(start_tick, id)` / `(tick, span)` order from [`Tracer::records`].
/// The output is therefore byte-identical regardless of host
/// registration order or span flush interleaving. Spans opened by
/// [`Tracer::span_remote`](crate::Tracer::span_remote) carry
/// `remote_trace` / `remote_tick` args and a `parent` id that lives in
/// the originating host's process, stitching the mesh into one tree.
pub fn merged_chrome_trace(hosts: &[(&str, &Tracer)]) -> String {
    let mut hosts: Vec<(&str, &Tracer)> = hosts.to_vec();
    hosts.sort_by_key(|&(name, _)| name);
    let mut out = String::from("{\"traceEvents\":[");
    for (i, (name, _)) in hosts.iter().enumerate() {
        let pid = i + 1;
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
        out.push_str(&format!(
            ",{{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"sort_index\":{pid}}}}}"
        ));
        push_thread_names(&mut out, pid);
    }
    for (i, (_, tracer)) in hosts.iter().enumerate() {
        let pid = i + 1;
        let (spans, events) = tracer.records();
        for s in &spans {
            out.push(',');
            push_span_json(&mut out, pid, s);
        }
        for e in &events {
            out.push(',');
            push_event_json(&mut out, pid, e);
        }
    }
    out.push_str("]}");
    if let Some((_, tracer)) = hosts.first() {
        tracer.note_export_bytes(out.len() as u64);
    }
    out
}

impl Tracer {
    /// Export the retained records as Chrome trace-event JSON.
    ///
    /// The output is byte-identical for a given logical execution
    /// regardless of worker count; `trace.export_bytes` is bumped by the
    /// output length.
    pub fn chrome_trace(&self) -> String {
        let (spans, events) = self.records();
        let mut out = String::with_capacity(256 + 160 * (spans.len() + events.len()));
        out.push_str("{\"traceEvents\":[");
        // Metadata: name the process and every virtual lane, always all of
        // them so layout never depends on which lanes happened to be used.
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"tero\"}}",
        );
        push_thread_names(&mut out, 1);
        for s in &spans {
            out.push(',');
            push_span_json(&mut out, 1, s);
        }
        for e in &events {
            out.push(',');
            push_event_json(&mut out, 1, e);
        }
        out.push_str("]}");
        self.note_export_bytes(out.len() as u64);
        out
    }

    /// Render the retained records as an aligned-text timeline: one line
    /// per span (indented by depth, `[start..end)` tick window first),
    /// with journal events interleaved beneath their owning span and
    /// run-level events at the end.
    pub fn render_timeline(&self) -> String {
        let (spans, events) = self.records();
        let evicted = self.evicted();
        let mut out = format!(
            "=== tero-trace timeline: {} spans, {} events, {} evicted ===\n",
            spans.len(),
            events.len(),
            evicted
        );
        // Depth via the parent chain; evicted parents count as roots.
        let depth_of = |span: &SpanRecord| -> usize {
            let mut depth = 0;
            let mut parent = span.parent;
            while parent != 0 {
                match spans.iter().find(|s| s.id == parent) {
                    Some(p) => {
                        depth += 1;
                        parent = p.parent;
                    }
                    None => break,
                }
            }
            depth
        };
        let tick_width = spans
            .iter()
            .map(|s| s.end_tick)
            .chain(events.iter().map(|e| e.tick))
            .max()
            .unwrap_or(0)
            .to_string()
            .len()
            .max(2);
        for s in &spans {
            let indent = "  ".repeat(depth_of(s));
            let label = match s.index {
                Some(i) => format!("{}[{i}]", s.name),
                None => s.name.to_string(),
            };
            let mut annot = format!("lane={}", s.lane);
            if let Some(at) = s.sim_at {
                annot.push_str(&format!(" sim={at}"));
            }
            if let Some(w) = s.wall_us {
                annot.push_str(&format!(" wall={w}us"));
            }
            out.push_str(&format!(
                "[{:>tw$}..{:>tw$}) {indent}{label:<40} {annot}\n",
                s.start_tick,
                s.end_tick,
                tw = tick_width,
            ));
            for e in events.iter().filter(|e| e.span == s.id && s.id != 0) {
                let mut eannot = String::new();
                if let Some(at) = e.sim_at {
                    eannot.push_str(&format!(" sim={at}"));
                }
                out.push_str(&format!(
                    "[{:>tw$}       ] {indent}  {:<5} {}{eannot}\n",
                    e.tick,
                    e.level.as_str(),
                    e.message,
                    tw = tick_width,
                ));
            }
        }
        let orphans: Vec<&EventRecord> = events
            .iter()
            .filter(|e| e.span == 0 || !spans.iter().any(|s| s.id == e.span))
            .collect();
        if !orphans.is_empty() {
            out.push_str("--- run-level / orphaned events ---\n");
            for e in orphans {
                out.push_str(&format!(
                    "[{:>tw$}       ] {:<5} {}\n",
                    e.tick,
                    e.level.as_str(),
                    e.message,
                    tw = tick_width,
                ));
            }
        }
        self.note_export_bytes(out.len() as u64);
        out
    }

    /// Alias for [`Tracer::render_timeline`], framed as the flight
    /// recorder's post-mortem dump (the ring buffer has already truncated
    /// history to the last N records).
    pub fn dump(&self) -> String {
        self.render_timeline()
    }
}

#[cfg(test)]
mod tests {
    use crate::span::{Level, Tracer};
    use tero_types::SimTime;

    fn sample_tracer() -> Tracer {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        let root = tracer.span_at("pipeline.run", SimTime::EPOCH);
        let stage = tracer.stage(&root, "stage.extract");
        let traces: Vec<_> = (0..3)
            .map(|i| {
                let mut t = stage.task(i);
                t.set_sim_time(SimTime::from_mins(i));
                if i == 1 {
                    t.event(Level::Debug, "vote \"confused\"\n");
                }
                t.finish()
            })
            .collect();
        stage.flush(traces);
        root.event(Level::Warn, "api fault injected");
        drop(root);
        tracer.event(Level::Error, "kv write dropped");
        tracer
    }

    #[test]
    fn chrome_trace_is_valid_json_and_deterministic() {
        let a = sample_tracer().chrome_trace();
        let b = sample_tracer().chrome_trace();
        assert_eq!(a, b, "byte-identical across identical runs");
        let parsed: serde_json::Value = serde_json::from_str(&a).expect("valid JSON");
        let events = parsed
            .field("traceEvents")
            .as_array()
            .expect("traceEvents array");
        // 10 metadata + 4 spans + 3 events.
        assert_eq!(events.len(), 17);
    }

    #[test]
    fn merged_trace_is_sorted_by_host_and_stitches_remote_spans() {
        let client = Tracer::new();
        client.set_enabled(true);
        let server = Tracer::new();
        server.set_enabled(true);
        let op = client.span("net.kv");
        let ctx = op.context(0x1234).expect("recording");
        server.span_remote("server.kv", ctx).finish();
        op.finish();
        // Same content handed over in either host order → same bytes.
        let a = crate::export::merged_chrome_trace(&[("engine0", &client), ("shard0p", &server)]);
        let b = crate::export::merged_chrome_trace(&[("shard0p", &server), ("engine0", &client)]);
        assert_eq!(a, b, "host registration order must not matter");
        let parsed: serde_json::Value = serde_json::from_str(&a).expect("valid JSON");
        assert!(a.contains("\"name\":\"engine0\""));
        assert!(a.contains("\"name\":\"shard0p\""));
        assert!(a.contains("\"remote_trace\":\"0x0000000000001234\""));
        // The server span's parent is the client op span id.
        let (client_spans, _) = client.records();
        let (server_spans, _) = server.records();
        assert_eq!(server_spans[0].parent, client_spans[0].id);
        assert_eq!(server_spans[0].remote, Some(ctx));
        drop(parsed);
    }

    #[test]
    fn chrome_trace_escapes_messages() {
        let json = sample_tracer().chrome_trace();
        assert!(json.contains("vote \\\"confused\\\"\\n"));
    }

    #[test]
    fn timeline_shows_hierarchy_and_events() {
        let text = sample_tracer().render_timeline();
        assert!(text.contains("pipeline.run"), "{text}");
        assert!(
            text.contains("  stage.extract[0]"),
            "indented child:\n{text}"
        );
        assert!(text.contains("debug"), "{text}");
        assert!(text.contains("run-level"), "{text}");
        assert!(text.contains("api fault injected"), "{text}");
    }

    #[test]
    fn export_bytes_metric_counts_output() {
        let registry = tero_obs::Registry::new();
        let tracer = sample_tracer();
        tracer.instrument(&registry);
        let json = tracer.chrome_trace();
        let text = tracer.render_timeline();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("trace.export_bytes"),
            Some((json.len() + text.len()) as u64)
        );
    }
}
