//! # tero-net
//!
//! The networked store: everything needed to run `tero-store` as a
//! wire-protocol service and reach it through a robust-by-construction
//! client, mirroring the paper's deployment (App. B) where Redis and the
//! object store are *services* the pipeline workers talk to over the
//! machine-room network — with all the partial failure that implies.
//!
//! Layers, bottom-up:
//!
//! * [`frame`] — length-prefixed binary framing for the typed
//!   [`KvRequest`](tero_store::KvRequest) / [`ObjRequest`](tero_store::ObjRequest)
//!   operations (plus `PING`), with `(client, seq)` headers for
//!   exactly-once retry semantics;
//! * [`transport`] — [`SimNet`], a deterministic in-process network of
//!   named hosts whose per-frame delays come from a
//!   [`LinkConfig`](tero_simnet::LinkConfig) and whose faults (drops,
//!   delays, partitions, host kills) come from a
//!   [`ChaosInjector`](tero_chaos::ChaosInjector)'s
//!   [`NetFault`](tero_chaos::NetFault) schedule;
//! * [`server`] — [`StoreServer`], one store shard: a local KV + object
//!   store behind a frame handler with per-client request deduplication;
//! * [`client`] — [`ShardedStoreClient`], the [`RemoteStore`](tero_store::RemoteStore) the engine's
//!   store facade plugs into: consistent-hash routing, per-request
//!   deadlines, exponential backoff with deterministic jitter, per-shard
//!   circuit [`Breaker`]s, and lease-based failover from a killed or
//!   partitioned primary to its replica.
//!
//! The contract the client upholds is the one the determinism suite
//! enforces end-to-end: under any survivable [`NetFault`](tero_chaos::NetFault) plan, every
//! store operation eventually completes with exactly the result a local
//! store would have produced, so the merged horizon report of a sharded
//! run is byte-identical to the fault-free single-process run.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod frame;
pub mod server;
pub mod transport;

pub use client::{Breaker, BreakerState, NetMetrics, ShardView, ShardedStoreClient};
pub use frame::{decode, encode, Frame, FrameError, HostHealth, OpsRequest, OpsResponse, Payload};
pub use server::StoreServer;
pub use transport::{
    default_link, default_net_fault, engine_host, primary_host, replica_host, NetError, SimNet,
};
