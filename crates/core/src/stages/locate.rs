//! The locate stage: the §3.1 location module over every streamer the
//! extract stage registered in the [`super::NAMES_KEY`] hash.
//!
//! Runs once, at finalize: profile lookups advance the platform's rate
//! limiter, whose state threads from one call to the next, so running
//! them incrementally per window would make the lookup schedule (and
//! which lookups hit injected 5xx faults) depend on the window schedule.

use super::{Stage, StageCx, NAMES_KEY};
use crate::location::{LocationModule, LocationSource};
use std::collections::HashMap;
use tero_geoparse::tags::TagObservation;
use tero_types::{AnonId, Location, SimDuration, SimTime, StreamerId};

/// What the locate stage hands the downstream stages.
pub struct Located {
    /// Streamers the location module located, with source.
    pub locations: HashMap<AnonId, (Location, LocationSource)>,
    /// Streamers seen (denominator of the 2.77 % figure).
    pub streamers_seen: usize,
}

/// The locate stage. Stateless: its input is the names hash in the store.
#[derive(Debug, Default)]
pub struct LocateStage;

impl Stage for LocateStage {
    type In = SimTime;
    type Out = Located;
    const NAME: &'static str = "locate";

    /// Locate every registered streamer, starting lookups at `horizon`.
    fn run(&mut self, cx: &mut StageCx<'_>, horizon: Self::In) -> Self::Out {
        let m = cx.stage_metrics(Self::NAME);
        let _t = m.begin();
        // Profile lookups stay sequential: they advance the platform's
        // rate limiter, whose state threads from one call to the next.
        // Sorting by anonymised id pins that order — hash iteration
        // varies between processes, and with fault injection the call
        // order decides which lookups hit an injected 5xx.
        let _sp_locate = cx.sp_run.child("stage.locate");
        let _t_locate = cx.tero.obs.stage_timer(&cx.metrics.stage_locate_us);
        let mut names: Vec<(AnonId, StreamerId)> = cx
            .kv
            .hgetall(NAMES_KEY)
            .into_iter()
            .filter_map(|(hex, name)| {
                let anon = u64::from_str_radix(&hex, 16).ok()?;
                Some((AnonId(anon), StreamerId::new(&name)))
            })
            .collect();
        names.sort_unstable_by_key(|(a, _)| *a);
        m.records_in.add(names.len() as u64);
        let location_module = LocationModule::new(&cx.world.gaz);
        let mut locations: HashMap<AnonId, (Location, LocationSource)> = HashMap::new();
        let mut now = horizon;
        for (anon, name) in &names {
            let mut server_errors = 0u32;
            let description = loop {
                match cx.world.twitch.get_profile(name.as_str(), now) {
                    Ok(d) => break d,
                    Err(tero_world::twitch::ApiError::RateLimited(limited)) => {
                        now = limited.retry_at;
                    }
                    Err(tero_world::twitch::ApiError::ServerError) => {
                        // Transient 5xx: retry a few times with logical-time
                        // spacing, then carry on without a profile — the
                        // streamer is simply unlocated this run.
                        server_errors += 1;
                        cx.metrics.profile_retries.inc();
                        if server_errors > 4 {
                            break None;
                        }
                        now += SimDuration::from_secs(1);
                    }
                }
            };
            let tags: Vec<TagObservation> = cx
                .io
                .tag_history(name.as_str())
                .into_iter()
                .enumerate()
                .map(|(i, t)| TagObservation {
                    poll: i as u64,
                    country_tag: Some(t),
                })
                .collect();
            if let Some((loc, source)) = location_module.locate(
                name.as_str(),
                description.as_deref(),
                &cx.world.social_directory,
                &tags,
            ) {
                locations.insert(*anon, (loc, source));
            }
        }
        cx.metrics.streamers_located.add(locations.len() as u64);
        m.records_out.add(locations.len() as u64);
        Located {
            locations,
            streamers_seen: names.len(),
        }
    }
}
