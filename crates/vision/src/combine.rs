//! Cleanup and 2-of-3 voting across the OCR engines (§3.2, App. E steps 3–4).
//!
//! Per engine, *cleanup* filters the raw character stream down to the
//! latency number, using the game-UI heuristics the paper describes: digits
//! immediately followed by "ms", or preceded by "ping", are preferred over
//! any other digit run. The per-engine values are then voted: at least two
//! engines must agree (on a non-zero value of at most 3 digits); when
//! exactly two agree, the third's output is kept as the *alternative* that
//! data-analysis may later swap in. If no two engines agree, the thumbnail
//! is *reprocessed* — OCR runs again without the pre-processing — and, if
//! still ambiguous, discarded.

use crate::image::Image;
use crate::ocr::{OcrChar, OcrEngine, OcrEngineKind};
use crate::preprocess::PreprocessConfig;
use serde::{Deserialize, Serialize};

/// Final outcome of the image-processing module for one thumbnail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CombineOutcome {
    /// A latency measurement was extracted.
    Extracted {
        /// Value agreed by at least two engines.
        primary: u32,
        /// Dissenting third engine's value, if exactly two agreed.
        alternative: Option<u32>,
    },
    /// No measurement could be extracted (ambiguous after reprocessing, or
    /// nothing legible at all).
    NoMeasurement,
}

/// Cleanup: extract the latency value from one engine's character stream.
///
/// Heuristics (§3.2 step 3): a digit run immediately followed by `m` (the
/// start of "ms") wins; otherwise a digit run immediately preceded by the
/// letters of "ping" wins; otherwise the longest digit run. The value must
/// be non-zero and at most 3 digits (App. E step 3: zero is a lobby
/// placeholder).
pub fn cleanup(chars: &[OcrChar]) -> Option<u32> {
    let s: Vec<char> = chars.iter().map(|c| c.ch).collect();
    // Collect digit runs as (start, end) half-open.
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut start: Option<usize> = None;
    for i in 0..=s.len() {
        let is_digit = i < s.len() && s[i].is_ascii_digit();
        match (start, is_digit) {
            (None, true) => start = Some(i),
            (Some(st), false) => {
                runs.push((st, i));
                start = None;
            }
            _ => {}
        }
    }
    if runs.is_empty() {
        return None;
    }

    let followed_by_ms = |&(_, end): &(usize, usize)| end < s.len() && s[end] == 'm';
    let preceded_by_ping = |&(st, _): &(usize, usize)| {
        st >= 1 && (s[st - 1] == 'g' || s[st - 1] == 'n') // "ping" / "pin"
    };

    let chosen = runs
        .iter()
        .find(|r| followed_by_ms(r))
        .or_else(|| runs.iter().find(|r| preceded_by_ping(r)))
        .or_else(|| runs.iter().max_by_key(|&&(st, end)| end - st))?;

    let (st, end) = *chosen;
    let len = end - st;
    if len == 0 || len > 3 {
        return None;
    }
    let text: String = s[st..end].iter().collect();
    let value: u32 = text.parse().ok()?;
    if value == 0 {
        return None;
    }
    Some(value)
}

/// Vote across the three per-engine values.
///
/// Returns `Some((primary, alternative))` when at least two engines agree;
/// the alternative is the third engine's differing value, if any.
pub fn vote(values: [Option<u32>; 3]) -> Option<(u32, Option<u32>)> {
    for i in 0..3 {
        for j in (i + 1)..3 {
            if let (Some(a), Some(b)) = (values[i], values[j]) {
                if a == b {
                    let k = 3 - i - j; // the remaining index
                    let alt = values[k].filter(|&v| v != a);
                    return Some((a, alt));
                }
            }
        }
    }
    None
}

/// Engine names in the order [`OcrCombiner`] runs them — stable labels for
/// per-engine observability (`ocr.<engine>.*` metric names).
pub const ENGINE_NAMES: [&str; 3] = ["tesseract", "easyocr", "paddleocr"];

/// Per-engine detail of one extraction, exposed for observability: what
/// each engine produced on the *deciding* pass, and whether the thumbnail
/// had to be reprocessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractDetail {
    /// Cleaned value per engine (in [`ENGINE_NAMES`] order) from the pass
    /// that decided the outcome — the second pass when reprocessing ran.
    pub engine_values: [Option<u32>; 3],
    /// Whether the second (no-pre-processing) pass ran.
    pub reprocessed: bool,
}

/// The full image-processing front-end: three engines plus the two-pass
/// (preprocess, reprocess) protocol.
#[derive(Debug, Clone)]
pub struct OcrCombiner {
    engines: [OcrEngine; 3],
    /// First-pass pipeline (App. E step 1–2).
    pub preprocess_cfg: PreprocessConfig,
    /// Reprocessing pipeline: "repeats the OCR and cleanup steps but
    /// without the pre-processing" — no blur, no morphology.
    pub reprocess_cfg: PreprocessConfig,
}

impl Default for OcrCombiner {
    fn default() -> Self {
        OcrCombiner {
            engines: [
                OcrEngine::new(OcrEngineKind::TesseractLike),
                OcrEngine::new(OcrEngineKind::EasyOcrLike),
                OcrEngine::new(OcrEngineKind::PaddleOcrLike),
            ],
            preprocess_cfg: PreprocessConfig::default(),
            reprocess_cfg: PreprocessConfig {
                upscale: 3,
                blur_radius: 0,
                morph_iterations: 0,
                despeckle: false,
            },
        }
    }
}

impl OcrCombiner {
    /// A combiner with default engine set and pipelines.
    pub fn new() -> Self {
        OcrCombiner::default()
    }

    /// Run one pass: the shared upscale stage, then per-engine smoothing,
    /// binarization, recognition and cleanup (each engine runs its own
    /// preprocessing policy — the source of their complementary errors).
    fn pass(&self, crop: &Image, cfg: &PreprocessConfig) -> [Option<u32>; 3] {
        let upscaled = crop.upscale(cfg.upscale.max(1));
        let mut out = [None; 3];
        for (slot, engine) in out.iter_mut().zip(&self.engines) {
            *slot = cleanup(&engine.recognize_gray(&upscaled, cfg));
        }
        out
    }

    /// Extract a latency measurement from a cropped region of interest.
    pub fn extract(&self, crop: &Image) -> CombineOutcome {
        self.extract_with_detail(crop).0
    }

    /// [`OcrCombiner::extract`] plus the per-engine [`ExtractDetail`] that
    /// observability consumers (the image-processing module's per-engine
    /// counters) record.
    pub fn extract_with_detail(&self, crop: &Image) -> (CombineOutcome, ExtractDetail) {
        let first = self.pass(crop, &self.preprocess_cfg);
        if let Some((primary, alternative)) = vote(first) {
            return (
                CombineOutcome::Extracted {
                    primary,
                    alternative,
                },
                ExtractDetail {
                    engine_values: first,
                    reprocessed: false,
                },
            );
        }
        // Reprocess without pre-processing (App. E step 4).
        let second = self.pass(crop, &self.reprocess_cfg);
        let detail = ExtractDetail {
            engine_values: second,
            reprocessed: true,
        };
        let outcome = match vote(second) {
            Some((primary, alternative)) => CombineOutcome::Extracted {
                primary,
                alternative,
            },
            None => CombineOutcome::NoMeasurement,
        };
        (outcome, detail)
    }

    /// Extract from a full thumbnail given the game-UI region of interest
    /// `(x, y, w, h)` (§3.2 step 1).
    pub fn extract_from_thumbnail(
        &self,
        thumbnail: &Image,
        roi: (usize, usize, usize, usize),
    ) -> CombineOutcome {
        self.extract_from_thumbnail_with_detail(thumbnail, roi).0
    }

    /// [`OcrCombiner::extract_from_thumbnail`] with per-engine detail.
    pub fn extract_from_thumbnail_with_detail(
        &self,
        thumbnail: &Image,
        roi: (usize, usize, usize, usize),
    ) -> (CombineOutcome, ExtractDetail) {
        let crop = thumbnail.crop(roi.0, roi.1, roi.2, roi.3);
        self.extract_with_detail(&crop)
    }

    /// Per-engine extraction (no voting) — used by the Table 4 evaluation
    /// of individual engines.
    pub fn extract_single(&self, crop: &Image, kind: OcrEngineKind) -> Option<u32> {
        let upscaled = crop.upscale(self.preprocess_cfg.upscale.max(1));
        let engine = self
            .engines
            .iter()
            .find(|e| e.kind() == kind)
            .expect("engine kind present");
        cleanup(&engine.recognize_gray(&upscaled, &self.preprocess_cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::HudScene;
    use tero_types::SimRng;

    fn chars(s: &str) -> Vec<OcrChar> {
        s.chars().map(|ch| OcrChar { ch, distance: 0.0 }).collect()
    }

    #[test]
    fn cleanup_prefers_ms_suffix() {
        assert_eq!(cleanup(&chars("45ms")), Some(45));
        // A clock-like second run: the run before 'm' wins.
        assert_eq!(cleanup(&chars("12:45ms")), Some(45));
        assert_eq!(cleanup(&chars("ping62")), Some(62));
        assert_eq!(cleanup(&chars("187")), Some(187));
    }

    #[test]
    fn cleanup_rejections() {
        assert_eq!(cleanup(&chars("")), None);
        assert_eq!(cleanup(&chars("ms")), None);
        assert_eq!(cleanup(&chars("0ms")), None, "zero is a placeholder");
        assert_eq!(cleanup(&chars("1234ms")), None, "too many digits");
    }

    #[test]
    fn cleanup_longest_run_fallback() {
        // No decoration: longest digit run wins.
        assert_eq!(cleanup(&chars("1 234")), Some(234));
        // Clock without decoration: one of the equal-length runs survives —
        // a plausible-but-wrong value, the paper's Fig 6d failure mode.
        let v = cleanup(&chars("12:45"));
        assert!(v == Some(12) || v == Some(45), "got {v:?}");
    }

    #[test]
    fn vote_agreement_patterns() {
        assert_eq!(vote([Some(45), Some(45), Some(45)]), Some((45, None)));
        assert_eq!(vote([Some(45), Some(45), Some(5)]), Some((45, Some(5))));
        assert_eq!(vote([Some(5), Some(45), Some(45)]), Some((45, Some(5))));
        assert_eq!(vote([Some(45), Some(5), Some(45)]), Some((45, Some(5))));
        assert_eq!(vote([Some(45), Some(45), None]), Some((45, None)));
        assert_eq!(vote([Some(1), Some(2), Some(3)]), None);
        assert_eq!(vote([Some(1), None, None]), None);
        assert_eq!(vote([None, None, None]), None);
    }

    #[test]
    fn detail_reflects_the_deciding_pass() {
        let combiner = OcrCombiner::new();
        let mut rng = SimRng::new(42);
        let scene = HudScene::typical(87);
        let thumb = scene.render(&mut rng);
        let (outcome, detail) = combiner.extract_from_thumbnail_with_detail(&thumb, scene.roi());
        match outcome {
            CombineOutcome::Extracted { primary, .. } => {
                let agree = detail
                    .engine_values
                    .iter()
                    .filter(|v| **v == Some(primary))
                    .count();
                assert!(agree >= 2, "primary needs ≥ 2 engines: {detail:?}");
            }
            CombineOutcome::NoMeasurement => {
                assert!(detail.reprocessed, "a miss means both passes ran");
            }
        }
    }

    #[test]
    fn end_to_end_typical_scene() {
        let combiner = OcrCombiner::new();
        let mut rng = SimRng::new(42);
        let scene = HudScene::typical(87);
        let thumb = scene.render(&mut rng);
        match combiner.extract_from_thumbnail(&thumb, scene.roi()) {
            CombineOutcome::Extracted { primary, .. } => assert_eq!(primary, 87),
            other => panic!("expected extraction, got {other:?}"),
        }
    }

    #[test]
    fn end_to_end_light_font_misses() {
        let combiner = OcrCombiner::new();
        let mut misses = 0;
        for seed in 0..20 {
            let mut rng = SimRng::new(seed);
            let scene = HudScene::light_font(64);
            let thumb = scene.render(&mut rng);
            if combiner.extract_from_thumbnail(&thumb, scene.roi()) == CombineOutcome::NoMeasurement
            {
                misses += 1;
            }
        }
        assert!(
            misses >= 15,
            "light font should mostly be missed: {misses}/20"
        );
    }

    #[test]
    fn end_to_end_occlusion_drops_digits() {
        let combiner = OcrCombiner::new();
        let mut drops = 0;
        let mut trials = 0;
        for seed in 0..30 {
            let mut rng = SimRng::new(1000 + seed);
            let scene = HudScene::partially_hidden(145, 0.35);
            let thumb = scene.render(&mut rng);
            if let CombineOutcome::Extracted { primary, .. } =
                combiner.extract_from_thumbnail(&thumb, scene.roi())
            {
                trials += 1;
                if primary < 145 && 145 % 10u32.pow(primary.to_string().len() as u32) == primary {
                    drops += 1;
                }
            }
        }
        assert!(
            drops > 0,
            "occlusion produced no digit drops ({trials} extractions)"
        );
    }

    #[test]
    fn clock_overlay_yields_plausible_but_wrong_value() {
        // The paper's trickiest error: a clock "19:42" where latency goes.
        let combiner = OcrCombiner::new();
        let mut wrong = 0;
        for seed in 0..20 {
            let mut rng = SimRng::new(7_000 + seed);
            let scene = HudScene::clock_overlay(50, 19, 42);
            let thumb = scene.render(&mut rng);
            if let CombineOutcome::Extracted { primary, .. } =
                combiner.extract_from_thumbnail(&thumb, scene.roi())
            {
                if primary != 50 {
                    wrong += 1;
                }
            }
        }
        assert!(wrong > 0, "clock overlay never produced a wrong value");
    }
}
