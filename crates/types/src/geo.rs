//! Geodesic geometry: coordinates, great-circle distance, and the paper's
//! *corrected distance* (§3.3.3, following Rodríguez-Bachiller \[44\]).

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A latitude/longitude pair in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatLon {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl LatLon {
    /// Construct a coordinate, normalising longitude into `[-180, 180)` and
    /// clamping latitude into `[-90, 90]`.
    pub fn new(lat: f64, lon: f64) -> Self {
        let lat = lat.clamp(-90.0, 90.0);
        let mut lon = (lon + 180.0) % 360.0;
        if lon < 0.0 {
            lon += 360.0;
        }
        LatLon {
            lat,
            lon: lon - 180.0,
        }
    }

    /// Great-circle distance to another point, in kilometres.
    pub fn distance_km(&self, other: &LatLon) -> f64 {
        haversine_km(*self, *other)
    }
}

/// Great-circle (haversine) distance between two points, in kilometres.
pub fn haversine_km(a: LatLon, b: LatLon) -> f64 {
    let (lat1, lon1) = (a.lat.to_radians(), a.lon.to_radians());
    let (lat2, lon2) = (b.lat.to_radians(), b.lon.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().min(1.0).asin()
}

/// The paper's *corrected distance* between a streamer location and a server
/// location (§3.3.3): the geodesic distance between the geometric centres of
/// the two locations, **plus** the average distance of any point in the
/// streamer's location from that location's geometric centre.
///
/// The second component models the intra-location spread and matters most
/// when streamer and server are in the same place (plain geodesic distance
/// would be zero there). For a roughly disc-shaped location of radius `r`,
/// the average distance from the centre is `2r/3`, which is what
/// [`mean_radius_km_for_area`] assumes.
pub fn corrected_distance_km(
    streamer_center: LatLon,
    server_center: LatLon,
    streamer_mean_radius_km: f64,
) -> f64 {
    haversine_km(streamer_center, server_center) + streamer_mean_radius_km.max(0.0)
}

/// Average distance of a uniformly random point of a disc-shaped location
/// with the given area (km²) from the disc's centre: `2/3 · sqrt(area/pi)`.
pub fn mean_radius_km_for_area(area_km2: f64) -> f64 {
    if area_km2 <= 0.0 {
        return 0.0;
    }
    (2.0 / 3.0) * (area_km2 / std::f64::consts::PI).sqrt()
}

/// Minimum one-way speed-of-light-in-fibre propagation delay in milliseconds
/// for a path of the given great-circle length. Uses c/1.5 (typical fibre
/// refractive index) and a path-stretch factor of 1 (callers add their own
/// stretch).
pub fn fiber_delay_ms(distance_km: f64) -> f64 {
    // Light in fibre: ~200,000 km/s  =>  0.005 ms per km, one way.
    distance_km * 0.005
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn zero_distance_to_self() {
        let p = LatLon::new(46.52, 6.63); // Lausanne
        assert!(haversine_km(p, p) < 1e-9);
    }

    #[test]
    fn known_city_pairs() {
        // Paris <-> London is ~344 km.
        let paris = LatLon::new(48.8566, 2.3522);
        let london = LatLon::new(51.5074, -0.1278);
        assert!(close(haversine_km(paris, london), 344.0, 6.0));

        // New York <-> Los Angeles is ~3936 km.
        let nyc = LatLon::new(40.7128, -74.0060);
        let la = LatLon::new(34.0522, -118.2437);
        assert!(close(haversine_km(nyc, la), 3_936.0, 30.0));

        // Antipodal-ish: distance bounded by half circumference.
        let a = LatLon::new(0.0, 0.0);
        let b = LatLon::new(0.0, 180.0);
        assert!(close(
            haversine_km(a, b),
            std::f64::consts::PI * EARTH_RADIUS_KM,
            1.0
        ));
    }

    #[test]
    fn symmetric() {
        let a = LatLon::new(35.0, 139.0);
        let b = LatLon::new(-33.0, 151.0);
        assert!(close(haversine_km(a, b), haversine_km(b, a), 1e-9));
    }

    #[test]
    fn longitude_normalisation() {
        let a = LatLon::new(10.0, 190.0); // wraps to -170
        assert!(close(a.lon, -170.0, 1e-9));
        let b = LatLon::new(10.0, -190.0); // wraps to 170
        assert!(close(b.lon, 170.0, 1e-9));
        let c = LatLon::new(95.0, 0.0); // clamps
        assert!(close(c.lat, 90.0, 1e-9));
    }

    #[test]
    fn corrected_distance_adds_spread() {
        let ams = LatLon::new(52.37, 4.90);
        // Streamer in Amsterdam playing on the Amsterdam server: geodesic
        // part is 0, so the corrected distance is exactly the mean radius.
        let d = corrected_distance_km(ams, ams, 7.5);
        assert!(close(d, 7.5, 1e-9));
        // Negative radius input is treated as zero.
        assert!(close(corrected_distance_km(ams, ams, -3.0), 0.0, 1e-9));
    }

    #[test]
    fn mean_radius_scales_with_area() {
        assert_eq!(mean_radius_km_for_area(0.0), 0.0);
        let r100 = mean_radius_km_for_area(100.0);
        let r400 = mean_radius_km_for_area(400.0);
        assert!(close(r400 / r100, 2.0, 1e-9)); // sqrt scaling
                                                // Disc of radius 1 km has area pi; mean distance 2/3.
        assert!(close(
            mean_radius_km_for_area(std::f64::consts::PI),
            2.0 / 3.0,
            1e-9
        ));
    }

    #[test]
    fn fiber_delay_reasonable() {
        // 1000 km of fibre one-way is about 5 ms.
        assert!(close(fiber_delay_ms(1_000.0), 5.0, 1e-9));
    }
}
