//! Fig 16 (App. I) — sensitivity to `MaxSpikes`, the high-quality filter.
//!
//! * (a) the distribution of per-user spike proportions — most users have
//!   few spike points, with a heavy tail of mislabelers/clock-overlays;
//! * (b) the proportion of spikes and of all points discarded as
//!   `MaxSpikes` tightens;
//! * (c) spikes and shared anomalies surviving at each `MaxSpikes` (users
//!   above the cap are dropped wholesale).
//!
//! Usage: `fig16_maxspikes [--n 250] [--days 10]`

use serde::Serialize;
use tero_bench::{arg_usize, header, write_json};
use tero_core::analysis::shared::{detect_shared_anomalies, StreamerActivity};
use tero_core::pipeline::{ExtractionMode, Tero};
use tero_types::SimTime;
use tero_world::{World, WorldConfig};

#[derive(Serialize)]
struct Sweep {
    max_spikes_pct: u32,
    users_discarded_pct: f64,
    spikes_discarded_pct: f64,
    points_discarded_pct: f64,
    spikes_kept: usize,
    shared_anomalies: usize,
}

#[derive(Serialize)]
struct Output {
    spike_fraction_deciles: Vec<f64>,
    sweep: Vec<Sweep>,
}

fn main() {
    let n = arg_usize("--n", 250);
    let days = arg_usize("--days", 10) as u64;
    header("Fig 16: sensitivity to MaxSpikes");

    // Half the population concentrated at hubs so the shared-anomaly
    // column has the {region, game} density the App. F test needs.
    let gaz = tero_geoparse::Gazetteer::new();
    let game = tero_types::GameId::LeagueOfLegends;
    let pinned = vec![
        (World::city(&gaz, "Los Angeles"), game, n / 4),
        (World::city(&gaz, "London"), game, n / 4),
    ];
    let mut world = World::build(WorldConfig {
        seed: 1616,
        n_streamers: n / 2,
        days,
        pinned,
        shared_events: 25,
        api_budget_per_min: 2_000,
        ..WorldConfig::default()
    });
    let tero = Tero {
        mode: ExtractionMode::Calibrated,
        ..Tero::default()
    };
    let report = tero.run(&mut world);

    // (a) per-user spike proportions.
    let mut fractions: Vec<f64> = report
        .anomalies
        .values()
        .filter(|r| !r.all_unstable)
        .map(|r| r.spike_fraction())
        .collect();
    fractions.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!();
    println!("(a) per-user spike-proportion distribution:");
    let deciles: Vec<f64> = (0..=10)
        .map(|d| tero_stats::descriptive::percentile_sorted(&fractions, d as f64 * 10.0) * 100.0)
        .collect();
    for (d, v) in deciles.iter().enumerate() {
        println!("  p{:<3} {v:>6.2}%", d * 10);
    }

    // (b)/(c): sweep MaxSpikes.
    let total_users = fractions.len();
    let total_spikes: usize = report.anomalies.values().map(|r| r.spikes.len()).sum();
    let total_points: usize = report.anomalies.values().map(|r| r.total_samples()).sum();

    println!();
    println!("(b)/(c) sweeping MaxSpikes:");
    println!(
        "{:>10} {:>12} {:>13} {:>13} {:>12} {:>9}",
        "MaxSpikes", "users lost", "spikes lost", "points lost", "spikes kept", "shared"
    );
    let mut sweep = Vec::new();
    for &cap_pct in &[5u32, 15, 25, 35, 50, 75] {
        let cap = cap_pct as f64 / 100.0;
        let mut users_lost = 0usize;
        let mut spikes_lost = 0usize;
        let mut points_lost = 0usize;
        let mut spikes_kept = 0usize;
        // Shared anomalies recomputed per {region, game} over kept users.
        let mut groups: std::collections::BTreeMap<
            (String, tero_types::GameId),
            Vec<StreamerActivity>,
        > = std::collections::BTreeMap::new();
        for ((anon, game), r) in &report.anomalies {
            if r.all_unstable {
                continue;
            }
            if r.spike_fraction() > cap {
                users_lost += 1;
                spikes_lost += r.spikes.len();
                points_lost += r.total_samples();
                continue;
            }
            spikes_kept += r.spikes.len();
            if let Some((loc, _)) = report.locations.get(anon) {
                let times: Vec<SimTime> = r
                    .segments
                    .iter()
                    .flat_map(|s| s.samples.iter().map(|x| x.at))
                    .collect();
                groups
                    .entry((loc.to_region_level().key(), *game))
                    .or_default()
                    .push(StreamerActivity {
                        anon: *anon,
                        measurement_times: times,
                        spikes: r.spikes.clone(),
                    });
            }
        }
        let mut shared = 0usize;
        for ((key, game), activities) in &groups {
            let region = tero_types::Location::country(key.clone());
            shared += detect_shared_anomalies(*game, &region, activities).len();
        }
        println!(
            "{:>9}% {:>11.1}% {:>12.1}% {:>12.1}% {:>12} {:>9}",
            cap_pct,
            100.0 * users_lost as f64 / total_users.max(1) as f64,
            100.0 * spikes_lost as f64 / total_spikes.max(1) as f64,
            100.0 * points_lost as f64 / total_points.max(1) as f64,
            spikes_kept,
            shared
        );
        sweep.push(Sweep {
            max_spikes_pct: cap_pct,
            users_discarded_pct: 100.0 * users_lost as f64 / total_users.max(1) as f64,
            spikes_discarded_pct: 100.0 * spikes_lost as f64 / total_spikes.max(1) as f64,
            points_discarded_pct: 100.0 * points_lost as f64 / total_points.max(1) as f64,
            spikes_kept,
            shared_anomalies: shared,
        });
    }
    println!();
    println!("(paper: tightening MaxSpikes discards spike-heavy users quickly while");
    println!(" losing few points overall; shared anomalies survive until the cap");
    println!(" cuts into ordinary users — 50 % is the operating point)");

    write_json(
        "fig16_maxspikes",
        &Output {
            spike_fraction_deciles: deciles,
            sweep,
        },
    );
}
