//! Deterministic random numbers for simulation.
//!
//! Every Tero simulator takes an explicit [`SimRng`] so that all experiments
//! are bit-reproducible across platforms and dependency upgrades. The core
//! generator is xoshiro256++ seeded through SplitMix64, the standard
//! recommendation of the xoshiro authors.

use serde::{Deserialize, Serialize};

/// A deterministic xoshiro256++ random-number generator with the handful of
/// distributions the simulators need.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent child generator. Useful for giving each
    /// simulated entity its own stream so that adding entities does not
    /// perturb the randomness seen by others.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "SimRng::below called with n = 0");
        // Lemire's unbiased bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)` (half-open). Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "SimRng::range_u64 empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform integer in `[lo, hi)` as `usize`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal draw (Box–Muller; one value per call).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.normal()
    }

    /// Exponential draw with the given mean (`mean > 0`).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Log-normal draw parameterised by the underlying normal's `mu`/`sigma`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Pareto draw with minimum `xm` and shape `alpha`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        xm / u.powf(1.0 / alpha)
    }

    /// Poisson draw with rate `lambda` (Knuth's algorithm for small lambda,
    /// normal approximation above 30).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            let x = self.normal_with(lambda, lambda.sqrt());
            return x.round().max(0.0) as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Geometric-ish draw: number of failures before the first success of a
    /// Bernoulli(p) process. Returns 0 when `p >= 1`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        if p >= 1.0 {
            return 0;
        }
        let p = p.max(1e-12);
        let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Choose a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "SimRng::choose on empty slice");
        &items[self.range_usize(0, items.len())]
    }

    /// Choose an index according to (unnormalised, non-negative) weights.
    /// Panics if all weights are zero or the slice is empty.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "SimRng::choose_weighted needs a positive finite total weight"
        );
        let mut target = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Draw `k` distinct indices from `0..n` (reservoir-free partial shuffle).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.range_usize(i, n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut rng = SimRng::new(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(11);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::new(13);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn poisson_mean_small_and_large_lambda() {
        let mut rng = SimRng::new(17);
        let n = 20_000;
        for lambda in [0.5, 4.0, 60.0] {
            let mean = (0..n).map(|_| rng.poisson(lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.07,
                "lambda {lambda} mean {mean}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut rng = SimRng::new(19);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[rng.choose_weighted(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = SimRng::new(29);
        let idx = rng.sample_indices(50, 10);
        assert_eq!(idx.len(), 10);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        // k > n clamps.
        assert_eq!(rng.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::new(31);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn geometric_mean_matches() {
        let mut rng = SimRng::new(37);
        let p: f64 = 0.25;
        let n = 50_000;
        let mean = (0..n).map(|_| rng.geometric(p) as f64).sum::<f64>() / n as f64;
        let expect = (1.0 - p) / p;
        assert!((mean - expect).abs() < 0.1, "mean {mean} expect {expect}");
        assert_eq!(rng.geometric(1.0), 0);
    }
}
