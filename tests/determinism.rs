//! Parallelism and windowing must be unobservable: one seed ⇒ one report.
//!
//! The pipeline's hot stages fan out over `tero-pool`, whose ordered merge
//! promises byte-identical output at every worker count; the staged engine
//! promises the same across any window schedule, including a chaos kill
//! mid-window and a snapshot/restore into a fresh `Tero`. This suite pins
//! both promises end to end: the full `TeroReport` (streams, labels,
//! clusters, distributions, behaviour streams) and the funnel counters of
//! `metrics_snapshot` must be identical for `worker_threads ∈ {1, 2, 8}`,
//! for window sizes ∈ {1 day, 3 days, full horizon}, with and without a
//! non-trivial fault-injection plan.

use std::collections::BTreeMap;
use tero::chaos::{ChaosInjector, EngineKill, FaultPlan};
use tero::core::pipeline::{ExtractionMode, Tero, TeroReport, WindowOutcome};
use tero::world::{World, WorldConfig};
use tero_types::{SimDuration, SimTime};

/// A deterministic, order-stable rendering of everything a run produced.
/// `HashMap`-backed fields are projected through `BTreeMap` first; every
/// other collection in the report is already ordered.
fn fingerprint(report: &TeroReport) -> String {
    let locations: BTreeMap<_, _> = report.locations.iter().collect();
    format!(
        "download={:?}\nthumbnails={} extracted={} streamers_seen={}\n\
         locations={locations:?}\nstreams={:?}\nanomalies={:?}\nclassified={:?}\n\
         location_clusters={:?}\nendpoint_changes={:?}\ndistributions={:?}\n\
         shared_anomalies={:?}\nbehavior_streams={:?}\n",
        report.download,
        report.thumbnails,
        report.extracted,
        report.streamers_seen,
        report.streams,
        report.anomalies,
        report.classified,
        report.location_clusters,
        report.endpoint_changes,
        report.distributions,
        report.shared_anomalies,
        report.behavior_streams,
    )
}

/// The funnel counters the operations guide treats as the run's identity:
/// every counter except the scheduling-dependent `pool.steals` (how often
/// workers rebalanced is a property of the schedule, not of the data).
fn funnel(tero: &Tero) -> BTreeMap<String, u64> {
    tero.metrics_snapshot()
        .counters
        .iter()
        .filter(|c| c.name != "pool.steals")
        .map(|c| (c.name.clone(), c.value))
        .collect()
}

fn run_once(workers: usize, chaos_seed: Option<u64>) -> (String, BTreeMap<String, u64>) {
    let mut world = World::build(WorldConfig {
        seed: 4242,
        n_streamers: 25,
        days: 2,
        ..WorldConfig::default()
    });
    if let Some(seed) = chaos_seed {
        world.install_chaos(ChaosInjector::new(FaultPlan::default_plan(seed)));
    }
    let tero = Tero {
        mode: ExtractionMode::FullOcr,
        min_streamers: 2,
        worker_threads: workers,
        ..Tero::default()
    };
    let report = tero.run(&mut world);
    (fingerprint(&report), funnel(&tero))
}

#[test]
fn report_identical_across_worker_counts() {
    let (reference, ref_counters) = run_once(1, None);
    assert!(reference.len() > 1_000, "fingerprint covers a real run");
    for workers in [2, 8] {
        let (fp, counters) = run_once(workers, None);
        assert_eq!(fp, reference, "report diverged at {workers} workers");
        assert_eq!(
            counters, ref_counters,
            "funnel counters diverged at {workers} workers"
        );
    }
}

#[test]
fn report_identical_across_worker_counts_under_chaos() {
    // A non-trivial fault plan exercises the recovery paths (missing
    // objects → dead-lettering, API 5xx → profile retries); the ordered
    // merge must keep even those byte-identical.
    let (reference, ref_counters) = run_once(1, Some(7));
    for workers in [2, 8] {
        let (fp, counters) = run_once(workers, Some(7));
        assert_eq!(
            fp, reference,
            "report diverged at {workers} workers under chaos"
        );
        assert_eq!(
            counters, ref_counters,
            "funnel counters diverged at {workers} workers under chaos"
        );
    }
}

/// One traced run: the Chrome trace-event JSON and text timeline for a
/// fixed seed at a given worker count.
fn trace_once(workers: usize) -> (String, String) {
    let mut world = World::build(WorldConfig {
        seed: 4242,
        n_streamers: 12,
        days: 2,
        ..WorldConfig::default()
    });
    let tero = Tero {
        mode: ExtractionMode::Calibrated,
        min_streamers: 2,
        worker_threads: workers,
        ..Tero::default()
    };
    tero.trace.set_enabled(true);
    tero.run(&mut world);
    (tero.trace.chrome_trace(), tero.trace.render_timeline())
}

#[test]
fn chrome_trace_identical_across_worker_counts() {
    // The tracer's contract: span ids, ticks and record order are logical,
    // so the exported trace is *byte*-identical at every worker count.
    let (ref_json, ref_text) = trace_once(1);
    assert!(
        ref_json.matches("extract.task").count() > 50,
        "trace covers a real fan-out"
    );
    for workers in [2, 8] {
        let (json, text) = trace_once(workers);
        assert_eq!(json, ref_json, "chrome trace diverged at {workers} workers");
        assert_eq!(text, ref_text, "timeline diverged at {workers} workers");
    }
}

#[test]
fn chrome_trace_parses() {
    // The exporter hand-assembles its JSON; the workspace's own serde_json
    // must accept it (this is also what Perfetto will parse).
    let (json, _) = trace_once(2);
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    let events = parsed
        .field("traceEvents")
        .as_array()
        .expect("traceEvents array");
    assert!(events.len() > 100, "trace has real content");
}

// ---------------------------------------------------------------------------
// Windowed incremental execution (`Tero::run_window`).

/// Counters that describe the *schedule* rather than the data: commit
/// frequency (`store.kv.*`, `stats.sketch.{commits,bytes}` — each window
/// boundary re-persists the dirty serving sketches), window/stage
/// bookkeeping, the online cleaner's per-window activity (`clean.*`,
/// `stats.changepoint.*` — how much work each window fed, sealed and
/// refreshed is exactly what a schedule changes; the cleaner's *output*
/// is pinned separately below), the budgeted locate stage's admission
/// accounting (`locate.budget.*` — how often a lookup is deferred is a
/// property of the window count) and the incremental aggregation's
/// dirty-group work (`agg.*` — more windows re-analyse more groups; the
/// committed `engine:agg:*` *state* is pinned separately below), and the
/// planned engine kill. Everything else — the funnel, `download.*`,
/// `ocr.*`, `analysis.*`, `store.object.*`, `stats.sketch.inserts` —
/// must be byte-identical between a single-shot run and any windowed
/// drive.
fn schedule_invariant(counters: BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    counters
        .into_iter()
        .filter(|(name, _)| {
            !name.starts_with("store.kv.")
                && !name.starts_with("pipeline.window.")
                && !name.starts_with("stage.")
                && !name.starts_with("clean.")
                && !name.starts_with("stats.changepoint.")
                && !name.starts_with("locate.budget.")
                && !name.starts_with("agg.")
                && name != "chaos.injected.engine_kill"
                && name != "stats.sketch.commits"
                && name != "stats.sketch.bytes"
                // Per-window view refreshes fan out over the pool, so the
                // task count tracks the schedule (it is still pinned
                // across worker counts by the tests above).
                && name != "pool.tasks"
        })
        .collect()
}

/// A 4-day world, so a 1-day window takes four `run_window` calls and a
/// 3-day window takes two (the second clamped to the horizon).
fn windowed_world(chaos: Option<FaultPlan>) -> World {
    let mut world = World::build(WorldConfig {
        seed: 4242,
        n_streamers: 25,
        days: 4,
        ..WorldConfig::default()
    });
    if let Some(plan) = chaos {
        world.install_chaos(ChaosInjector::new(plan));
    }
    world
}

fn windowed_tero(workers: usize) -> Tero {
    Tero {
        mode: ExtractionMode::Calibrated,
        min_streamers: 2,
        worker_threads: workers,
        ..Tero::default()
    }
}

/// Drive a run as a sequence of `window`-sized slices (`None` = one
/// full-horizon window). A `Killed` outcome re-drives the same slice —
/// the engine must resume from its commit, not repeat work.
fn drive(tero: &Tero, world: &mut World, window: Option<SimDuration>) -> TeroReport {
    let horizon = world.horizon;
    let mut to = window.map_or(horizon, |w| SimTime::EPOCH + w);
    loop {
        match tero.run_window(world, SimTime::EPOCH, to) {
            WindowOutcome::Complete(report) => return report,
            WindowOutcome::Advanced => to = window.map_or(horizon, |w| to + w),
            WindowOutcome::Killed => {}
        }
    }
}

#[test]
fn windowed_schedules_match_single_shot() {
    let mut world = windowed_world(None);
    let tero_ref = windowed_tero(1);
    let reference = fingerprint(&tero_ref.run(&mut world));
    assert!(reference.len() > 1_000, "fingerprint covers a real run");
    let ref_counters = schedule_invariant(funnel(&tero_ref));

    let day = SimDuration::from_hours(24);
    for window in [Some(day), Some(SimDuration::from_hours(72)), None] {
        for workers in [1, 2, 8] {
            let mut world = windowed_world(None);
            let tero = windowed_tero(workers);
            let report = drive(&tero, &mut world, window);
            assert_eq!(
                fingerprint(&report),
                reference,
                "report diverged: window {window:?}, {workers} workers"
            );
            assert_eq!(
                schedule_invariant(funnel(&tero)),
                ref_counters,
                "counters diverged: window {window:?}, {workers} workers"
            );
            tero.trace
                .ledger()
                .reconcile(&tero.obs)
                .expect("ledger reconciles after a windowed run");
        }
    }
}

#[test]
fn windowed_kill_and_resume_matches_single_shot_under_chaos() {
    // Reference: a single-shot run under the stock fault plan.
    let mut world = windowed_world(Some(FaultPlan::default_plan(7)));
    let tero_ref = windowed_tero(1);
    let reference = fingerprint(&tero_ref.run(&mut world));
    let ref_counters = schedule_invariant(funnel(&tero_ref));

    // Same plan plus a planned engine kill in window 1: the kill fires
    // after the ingest commit, the drive loop re-calls `run_window`, and
    // the engine must resume from the commit without double-counting.
    let plan = FaultPlan {
        engine_kills: vec![EngineKill { window: 1 }],
        ..FaultPlan::default_plan(7)
    };
    let day = SimDuration::from_hours(24);
    for workers in [1, 2, 8] {
        let mut world = windowed_world(Some(plan.clone()));
        let tero = windowed_tero(workers);
        let report = drive(&tero, &mut world, Some(day));
        assert_eq!(
            fingerprint(&report),
            reference,
            "kill/resume diverged at {workers} workers"
        );
        assert_eq!(
            schedule_invariant(funnel(&tero)),
            ref_counters,
            "kill/resume counters diverged at {workers} workers"
        );
        let snap = tero.metrics_snapshot();
        assert_eq!(snap.counter("chaos.injected.engine_kill"), Some(1));
        assert_eq!(snap.counter("pipeline.window.killed"), Some(1));
        tero.trace
            .ledger()
            .reconcile(&tero.obs)
            .expect("ledger reconciles across a kill/resume");
    }
}

#[test]
fn snapshot_restores_into_fresh_tero() {
    let mut world = windowed_world(None);
    let tero_ref = windowed_tero(1);
    let reference = fingerprint(&tero_ref.run(&mut world));
    let ref_counters = schedule_invariant(funnel(&tero_ref));

    // Run the first 1-day window on one Tero, snapshot its committed
    // state, and finish the run on a brand-new Tero — fresh registry,
    // fresh tracer, fresh engine — fed only the snapshot and the world.
    let day = SimDuration::from_hours(24);
    let mut world = windowed_world(None);
    let first = windowed_tero(2);
    assert!(matches!(
        first.run_window(&mut world, SimTime::EPOCH, SimTime::EPOCH + day),
        WindowOutcome::Advanced
    ));
    let snap = first.engine_snapshot().expect("windowed run in flight");
    drop(first);

    let second = windowed_tero(2);
    second.restore_engine(snap);
    let horizon = world.horizon;
    let mut to = SimTime::EPOCH + day + day;
    let report = loop {
        match second.run_window(&mut world, SimTime::EPOCH, to) {
            WindowOutcome::Complete(report) => break report,
            WindowOutcome::Advanced => to = (to + day).min(horizon),
            WindowOutcome::Killed => unreachable!("no chaos installed"),
        }
    };
    assert_eq!(fingerprint(&report), reference, "restored run diverged");
    assert_eq!(
        schedule_invariant(funnel(&second)),
        ref_counters,
        "restored counters diverged"
    );
    let snap = second.metrics_snapshot();
    assert_eq!(snap.counter("pipeline.window.resumed"), Some(1));
    second
        .trace
        .ledger()
        .reconcile(&second.obs)
        .expect("replayed ledger reconciles");
}

/// Everything the online cleaner committed under `engine:clean:*`,
/// rendered order-stably: per-series state summaries plus the cursor
/// hash. These survive into the served store at the horizon, and —
/// because every summary field is a pure function of the sample prefix
/// consumed so far — must be byte-identical across window schedules,
/// worker counts, chaos kill/resume and a fresh-`Tero` restore.
fn clean_state(kv: &tero::store::KvStore) -> BTreeMap<String, String> {
    use tero::core::stages::clean::{CLEAN_CURSORS_KEY, CLEAN_PREFIX};
    let mut out = BTreeMap::new();
    for key in kv.keys_with_prefix(CLEAN_PREFIX) {
        if key == CLEAN_CURSORS_KEY {
            for (field, value) in kv.hgetall(&key) {
                out.insert(format!("{key}#{field}"), value);
            }
        } else {
            let value = kv.get(&key).expect("clean state keys are plain strings");
            out.insert(key, value);
        }
    }
    out
}

#[test]
fn windowed_online_clean_state_identical_across_schedules() {
    // Reference: the committed cleaner state after a single-shot run.
    let mut world = windowed_world(None);
    let tero_ref = windowed_tero(1);
    let reference = fingerprint(&tero_ref.run(&mut world));
    let ref_state = clean_state(&tero_ref.serving_store().expect("run completed"));
    assert!(
        ref_state.len() > 10,
        "clean state covers a real population of series"
    );

    let day = SimDuration::from_hours(24);
    for window in [Some(day), Some(SimDuration::from_hours(72)), None] {
        for workers in [1, 2, 8] {
            let mut world = windowed_world(None);
            let tero = windowed_tero(workers);
            let report = drive(&tero, &mut world, window);
            assert_eq!(fingerprint(&report), reference);
            assert_eq!(
                clean_state(&tero.serving_store().expect("run completed")),
                ref_state,
                "clean state diverged: window {window:?}, {workers} workers"
            );
        }
    }

    // Chaos kill mid-run: the re-driven window must resume the cleaner
    // from its committed cursors, not re-feed consumed records.
    let chaos_plan = FaultPlan {
        engine_kills: vec![EngineKill { window: 1 }],
        ..FaultPlan::quiet(7)
    };
    let mut world = windowed_world(Some(chaos_plan));
    let tero = windowed_tero(2);
    drive(&tero, &mut world, Some(day));
    assert_eq!(
        clean_state(&tero.serving_store().expect("run completed")),
        ref_state,
        "clean state diverged across a kill/resume"
    );

    // Fresh-`Tero` restore: the second engine rebuilds its cleaner from
    // the snapshot's sample lists and cursors alone.
    let mut world = windowed_world(None);
    let first = windowed_tero(2);
    assert!(matches!(
        first.run_window(&mut world, SimTime::EPOCH, SimTime::EPOCH + day),
        WindowOutcome::Advanced
    ));
    let snap = first.engine_snapshot().expect("windowed run in flight");
    drop(first);
    let second = windowed_tero(8);
    second.restore_engine(snap);
    let horizon = world.horizon;
    let mut to = SimTime::EPOCH + day + day;
    loop {
        match second.run_window(&mut world, SimTime::EPOCH, to) {
            WindowOutcome::Complete(_) => break,
            WindowOutcome::Advanced => to = (to + day).min(horizon),
            WindowOutcome::Killed => unreachable!("no chaos installed"),
        }
    }
    assert_eq!(
        clean_state(&second.serving_store().expect("run completed")),
        ref_state,
        "clean state diverged across a fresh-Tero restore"
    );
}

/// Everything the budgeted locate stage and the incremental aggregation
/// committed under `engine:locate:*` / `engine:agg:*`, rendered
/// order-stably (the locate keys are hashes, rendered as
/// `{key}#{field}`; the agg keys are plain strings). At the horizon
/// both families are pure functions of the world — who streamed, what
/// their committed profiles said, where the complete tag histories
/// point — so they must be byte-identical across window schedules,
/// worker counts, chaos kill/resume and a fresh-`Tero` restore.
fn locate_agg_state(kv: &tero::store::KvStore) -> BTreeMap<String, String> {
    use tero::core::stages::agg::AGG_PREFIX;
    use tero::core::stages::locate::LOCATE_PREFIX;
    let mut out = BTreeMap::new();
    for key in kv.keys_with_prefix(LOCATE_PREFIX) {
        for (field, value) in kv.hgetall(&key) {
            out.insert(format!("{key}#{field}"), value);
        }
    }
    for key in kv.keys_with_prefix(AGG_PREFIX) {
        let value = kv.get(&key).expect("agg state keys are plain strings");
        out.insert(key, value);
    }
    out
}

#[test]
fn windowed_locate_agg_state_identical_across_schedules() {
    // Reference: the committed locate + aggregation state after a
    // single-shot run.
    let mut world = windowed_world(None);
    let tero_ref = windowed_tero(1);
    let reference = fingerprint(&tero_ref.run(&mut world));
    let ref_state = locate_agg_state(&tero_ref.serving_store().expect("run completed"));
    assert!(
        ref_state
            .keys()
            .any(|k| k.starts_with("engine:locate:profiles#")),
        "locate state covers committed profiles"
    );
    assert!(
        ref_state.keys().any(|k| k.starts_with("engine:agg:group:")),
        "agg state covers committed groups"
    );

    let day = SimDuration::from_hours(24);
    for window in [Some(day), Some(SimDuration::from_hours(72)), None] {
        for workers in [1, 2, 8] {
            let mut world = windowed_world(None);
            let tero = windowed_tero(workers);
            let report = drive(&tero, &mut world, window);
            assert_eq!(fingerprint(&report), reference);
            assert_eq!(
                locate_agg_state(&tero.serving_store().expect("run completed")),
                ref_state,
                "locate/agg state diverged: window {window:?}, {workers} workers"
            );
        }
    }

    // Chaos kill mid-run: the re-driven window must resume from the
    // committed profiles/results, not re-draw a profile outcome.
    let chaos_plan = FaultPlan {
        engine_kills: vec![EngineKill { window: 1 }],
        ..FaultPlan::quiet(7)
    };
    let mut world = windowed_world(Some(chaos_plan));
    let tero = windowed_tero(2);
    drive(&tero, &mut world, Some(day));
    assert_eq!(
        locate_agg_state(&tero.serving_store().expect("run completed")),
        ref_state,
        "locate/agg state diverged across a kill/resume"
    );

    // Fresh-`Tero` restore: the second engine rebuilds its locate queue
    // and marks every aggregation group dirty from the snapshot alone.
    let mut world = windowed_world(None);
    let first = windowed_tero(2);
    assert!(matches!(
        first.run_window(&mut world, SimTime::EPOCH, SimTime::EPOCH + day),
        WindowOutcome::Advanced
    ));
    let snap = first.engine_snapshot().expect("windowed run in flight");
    drop(first);
    let second = windowed_tero(8);
    second.restore_engine(snap);
    let horizon = world.horizon;
    let mut to = SimTime::EPOCH + day + day;
    loop {
        match second.run_window(&mut world, SimTime::EPOCH, to) {
            WindowOutcome::Complete(_) => break,
            WindowOutcome::Advanced => to = (to + day).min(horizon),
            WindowOutcome::Killed => unreachable!("no chaos installed"),
        }
    }
    assert_eq!(
        locate_agg_state(&second.serving_store().expect("run completed")),
        ref_state,
        "locate/agg state diverged across a fresh-Tero restore"
    );
}

/// A world whose streamers are pinned to a few locations (the §5.2
/// workload shape, as in `examples/serve_explore.rs`): location groups
/// clear `min_streamers` early, so the per-window refresh serves real
/// distributions mid-run — which is what the provenance pins below
/// inspect. A random small world rarely concentrates enough located
/// streamers in one place to publish anything before the horizon.
fn pinned_world() -> World {
    use tero_types::{GameId, Location};
    let locations = [
        Location::country("Netherlands"),
        Location::country("Poland"),
        Location::region("United States", "Illinois"),
    ];
    let pinned = locations
        .iter()
        .map(|l| (l.clone(), GameId::LeagueOfLegends, 8))
        .collect();
    World::build(WorldConfig {
        seed: 4242,
        n_streamers: 0,
        days: 4,
        pinned,
        api_budget_per_min: 2_000,
        ..WorldConfig::default()
    })
}

/// Every committed distribution sketch's provenance marker, from a
/// mid-run engine snapshot or the final serving store.
fn provenances(kv: &tero::store::KvStore) -> Vec<tero::core::serving::DistProvenance> {
    use tero::core::serving::{dist_provenance, DIST_SKETCH_PREFIX};
    kv.keys_with_prefix(DIST_SKETCH_PREFIX)
        .iter()
        .map(|key| dist_provenance(kv, key).expect("every sketch carries a provenance marker"))
        .collect()
}

#[test]
fn locate_budget_zero_defers_every_lookup_and_converges() {
    use tero::core::serving::DistProvenance;

    // Reference: the default unlimited budget.
    let mut world = pinned_world();
    let tero_ref = windowed_tero(2);
    let reference = fingerprint(&tero_ref.run(&mut world));
    let ref_state = locate_agg_state(&tero_ref.serving_store().expect("run completed"));
    let ref_spent = funnel(&tero_ref)
        .get("locate.budget.spent")
        .copied()
        .expect("reference run spent API calls");
    assert!(ref_spent > 0);

    // Zero budget: the first window admits no lookup — everything is
    // deferred, the queue gauge shows the backlog, and every served
    // distribution falls back to provisional tags-only locations.
    let day = SimDuration::from_hours(24);
    let mut world = pinned_world();
    let tero = Tero {
        locate_budget: Some(0),
        ..windowed_tero(2)
    };
    assert!(matches!(
        tero.run_window(&mut world, SimTime::EPOCH, SimTime::EPOCH + day),
        WindowOutcome::Advanced
    ));
    let snap = tero.metrics_snapshot();
    assert_eq!(
        snap.counter("locate.budget.spent").unwrap_or(0),
        0,
        "a zero budget must not admit any lookup mid-run"
    );
    let deferred = snap.counter("locate.budget.deferred").unwrap_or(0);
    assert!(deferred > 0, "seen streamers queue up under a zero budget");
    let depth = snap
        .gauge("locate.queue.depth")
        .map(|g| g.value)
        .unwrap_or(0);
    assert!(depth > 0, "queue gauge shows the carried-over backlog");
    assert_eq!(
        snap.gauge("location.api_calls").map(|g| g.value),
        Some(0),
        "no simulated API call was made"
    );
    let mid = tero::store::KvStore::new();
    mid.restore(&tero.engine_snapshot().expect("run in flight").kv);
    let marks = provenances(&mid);
    assert!(!marks.is_empty(), "window 1 serves real distributions");
    assert!(
        marks.iter().all(|p| *p == DistProvenance::Provisional),
        "with no canonical location committed, every served distribution is provisional"
    );

    // Finishing the drive drains the queue at the horizon; the final
    // report and committed state match the unlimited-budget run byte
    // for byte, and every marker flips to canonical.
    let horizon = world.horizon;
    let mut to = SimTime::EPOCH + day + day;
    let report = loop {
        match tero.run_window(&mut world, SimTime::EPOCH, to) {
            WindowOutcome::Complete(report) => break report,
            WindowOutcome::Advanced => to = (to + day).min(horizon),
            WindowOutcome::Killed => unreachable!("no chaos installed"),
        }
    };
    assert_eq!(
        fingerprint(&report),
        reference,
        "zero-budget horizon diverged"
    );
    let store = tero.serving_store().expect("run completed");
    assert_eq!(
        locate_agg_state(&store),
        ref_state,
        "zero-budget committed state diverged"
    );
    assert!(
        provenances(&store)
            .iter()
            .all(|p| *p == DistProvenance::Canonical),
        "the horizon serves canonical locations only"
    );
    assert_eq!(
        funnel(&tero).get("locate.budget.spent").copied(),
        Some(ref_spent),
        "the horizon drain spends exactly the single-shot call count"
    );
}

#[test]
fn locate_budget_huge_matches_single_shot_exactly() {
    // A budget that always covers the whole queue must reproduce the
    // unbudgeted run exactly — report, funnel and committed state.
    let mut world = windowed_world(None);
    let tero_ref = windowed_tero(2);
    let reference = fingerprint(&tero_ref.run(&mut world));
    let ref_counters = funnel(&tero_ref);
    let ref_state = locate_agg_state(&tero_ref.serving_store().expect("run completed"));

    let mut world = windowed_world(None);
    let tero = Tero {
        locate_budget: Some(1_000_000),
        ..windowed_tero(2)
    };
    let report = tero.run(&mut world);
    assert_eq!(fingerprint(&report), reference);
    assert_eq!(funnel(&tero), ref_counters);
    assert_eq!(
        locate_agg_state(&tero.serving_store().expect("run completed")),
        ref_state
    );
}

#[test]
fn windows_after_location_serve_canonical_distributions() {
    use tero::core::serving::DistProvenance;

    // Unlimited budget: every seen streamer's profile is committed in
    // the window that first saw it, so *every* mid-run window — not
    // just the horizon — serves canonical locations for every group.
    let day = SimDuration::from_hours(24);
    let mut world = pinned_world();
    let tero = windowed_tero(2);
    let horizon = world.horizon;
    let mut to = SimTime::EPOCH + day;
    let mut windows_checked = 0usize;
    loop {
        match tero.run_window(&mut world, SimTime::EPOCH, to) {
            WindowOutcome::Complete(_) => break,
            WindowOutcome::Advanced => {
                let mid = tero::store::KvStore::new();
                mid.restore(&tero.engine_snapshot().expect("run in flight").kv);
                let marks = provenances(&mid);
                assert!(!marks.is_empty(), "each window serves real distributions");
                assert!(
                    marks.iter().all(|p| *p == DistProvenance::Canonical),
                    "an unlimited budget makes every window canonical"
                );
                windows_checked += 1;
                to = (to + day).min(horizon);
            }
            WindowOutcome::Killed => unreachable!("no chaos installed"),
        }
    }
    assert!(windows_checked >= 3, "the pin covers real mid-run windows");
    assert!(
        provenances(&tero.serving_store().expect("run completed"))
            .iter()
            .all(|p| *p == DistProvenance::Canonical),
        "the horizon serves canonical locations only"
    );
}

#[test]
fn same_seed_same_process_is_reproducible() {
    // Two full runs in one process (fresh worlds, fresh registries) —
    // guards against hidden global state leaking between runs.
    let a = run_once(4, Some(7));
    let b = run_once(4, Some(7));
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}
