//! # tero
//!
//! A full Rust reproduction of *Using Gaming Footage as a Source of
//! Internet Latency Information* (Alvarez & Argyraki, IMC '23) — the
//! **Tero** system — together with every substrate it depends on.
//!
//! Tero continuously downloads gaming-footage thumbnails, extracts the
//! on-screen latency values with OCR, geolocates streamers from public
//! profiles, cleans the time series, and publishes per-`{location, game}`
//! latency distributions.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `tero-types` | time, ids, geography, Table 1 parameters, RNG |
//! | [`obs`] | `tero-obs` | metrics: counters, gauges, histograms, snapshots |
//! | [`stats`] | `tero-stats` | probit, Wasserstein, PELT, LOF, iForest, MCD |
//! | [`store`] | `tero-store` | KV / object / document stores (App. B) |
//! | [`vision`] | `tero-vision` | HUD renderer, preprocessing, 3 OCR engines |
//! | [`geoparse`] | `tero-geoparse` | gazetteer + 5 geoparsing tools (App. D) |
//! | [`simnet`] | `tero-simnet` | network simulator + Fig 3 testbed |
//! | [`world`] | `tero-world` | synthetic Twitch world with ground truth |
//! | [`core`] | `tero-core` | the Tero pipeline itself |
//! | [`chaos`] | `tero-chaos` | deterministic fault injection (API 5xx, CDN faults, crashes, network faults) |
//! | [`net`] | `tero-net` | networked store: wire frames, shard servers, partition-tolerant client |
//! | [`pool`] | `tero-pool` | work-stealing thread pool with deterministic ordered results |
//! | [`trace`] | `tero-trace` | structured tracing: spans, flight recorder, sample provenance |
//! | [`ops`] | `tero-ops` | live operations: mesh health model, starvation diagnosis, latency budgets |
//! | [`serve`] | `tero-serve` | distribution query front-end: sketch queries, hot-key cache, load generator |
//!
//! ## Quickstart
//!
//! ```
//! use tero::core::pipeline::{ExtractionMode, Tero};
//! use tero::world::{World, WorldConfig};
//!
//! let mut world = World::build(WorldConfig {
//!     seed: 42,
//!     n_streamers: 10,
//!     days: 2,
//!     ..WorldConfig::default()
//! });
//! let tero = Tero { mode: ExtractionMode::Calibrated, ..Tero::default() };
//! let report = tero.run(&mut world);
//! assert!(report.thumbnails > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use tero_chaos as chaos;
pub use tero_core as core;
pub use tero_geoparse as geoparse;
pub use tero_net as net;
pub use tero_obs as obs;
pub use tero_ops as ops;
pub use tero_pool as pool;
pub use tero_serve as serve;
pub use tero_simnet as simnet;
pub use tero_stats as stats;
pub use tero_store as store;
pub use tero_trace as trace;
pub use tero_types as types;
pub use tero_vision as vision;
pub use tero_world as world;
