//! Per-`{location, game}` latency distributions (§3.3.3, §5.2).
//!
//! Distributions come from streamers located at the location with no
//! possible location change: all measurements of static streamers, plus —
//! from each mobile streamer — the measurements of their highest-weight
//! cluster. Each distribution also carries a version normalised by the
//! corrected distance to the location's primary server.

use crate::analysis::clusters::ClassifiedStreamer;
use serde::{Deserialize, Serialize};
use tero_stats::BoxplotStats;
use tero_types::{GameId, Location};

/// The latency distribution of one `{location, game}`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocationDistribution {
    /// The location.
    pub location: Location,
    /// The game.
    pub game: GameId,
    /// Number of streamers contributing.
    pub streamers: usize,
    /// All contributing latency values, ms.
    pub values_ms: Vec<f64>,
    /// The 5/25/50/75/95 summary.
    pub stats: BoxplotStats,
    /// Primary-server location (city or region granularity).
    pub server: Option<Location>,
    /// Average corrected distance between the server and the contributing
    /// streamers, km.
    pub corrected_distance_km: Option<f64>,
    /// The summary normalised by corrected distance (ms per 1000 km).
    pub normalized: Option<BoxplotStats>,
}

/// Assemble the distribution for one `{location, game}` from its
/// classified streamers (only high-quality ones contribute, and mobile
/// streamers with possible location changes must already be excluded by
/// the caller).
pub fn location_distribution(
    location: Location,
    game: GameId,
    streamers: &[&ClassifiedStreamer],
    server: Option<Location>,
    corrected_distance_km: Option<f64>,
) -> Option<LocationDistribution> {
    let mut values: Vec<f64> = Vec::new();
    let mut contributing = 0usize;
    for s in streamers {
        if !s.high_quality || s.clusters.is_empty() {
            continue;
        }
        contributing += 1;
        if s.is_static {
            // All cleaned measurements (every cluster).
            for c in &s.clusters {
                values.extend(c.samples.iter().map(|x| x.latency_ms as f64));
            }
        } else {
            // Mobile: only the highest-weight cluster.
            values.extend(s.clusters[0].samples.iter().map(|x| x.latency_ms as f64));
        }
    }
    let stats = BoxplotStats::from_samples(&values)?;
    let normalized = corrected_distance_km
        .filter(|&d| d > 0.0)
        .map(|d| stats.scaled(1_000.0 / d));
    Some(LocationDistribution {
        location,
        game,
        streamers: contributing,
        values_ms: values,
        stats,
        server,
        corrected_distance_km,
        normalized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::anomaly::detect_anomalies;
    use crate::analysis::clusters::classify_streamer;
    use crate::analysis::segments::segment_stream;
    use tero_types::{AnonId, LatencySample, SimTime, TeroParams};

    fn classified(values: &[u32], id: u64) -> ClassifiedStreamer {
        let params = TeroParams::default();
        let samples: Vec<LatencySample> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| LatencySample::new(SimTime::from_mins(5 * i as u64), v))
            .collect();
        let segs = segment_stream(0, &samples, &params);
        classify_streamer(AnonId(id), &detect_anomalies(segs, &params), &params)
    }

    #[test]
    fn distribution_from_static_streamers() {
        let a = classified(&[40; 20], 1);
        let b = classified(&[50; 20], 2);
        let dist = location_distribution(
            Location::region("United States", "Illinois"),
            GameId::LeagueOfLegends,
            &[&a, &b],
            Some(Location::city("United States", "Illinois", "Chicago")),
            Some(500.0),
        )
        .unwrap();
        assert_eq!(dist.streamers, 2);
        assert_eq!(dist.values_ms.len(), 40);
        assert!((dist.stats.p50 - 45.0).abs() < 5.1);
        // Normalised: ms per 1000 km at 500 km → ×2.
        let norm = dist.normalized.unwrap();
        assert!((norm.p50 - dist.stats.p50 * 2.0).abs() < 1e-9);
    }

    #[test]
    fn mobile_contributes_top_cluster_only() {
        let mut vals = vec![40u32; 10];
        vals.extend([90u32; 14].iter()); // heavier cluster at 90
        let m = classified(&vals, 3);
        assert!(!m.is_static);
        let dist = location_distribution(
            Location::country("France"),
            GameId::LeagueOfLegends,
            &[&m],
            None,
            None,
        )
        .unwrap();
        assert_eq!(dist.values_ms.len(), 14, "only the top cluster");
        assert!(dist.values_ms.iter().all(|&v| v >= 85.0));
        assert!(dist.normalized.is_none());
    }

    #[test]
    fn empty_input_yields_none() {
        assert!(location_distribution(
            Location::country("Nowhere"),
            GameId::Dota2,
            &[],
            None,
            None
        )
        .is_none());
    }

    #[test]
    fn low_quality_streamers_excluded() {
        let mut bad = classified(&[40; 20], 4);
        bad.high_quality = false;
        let good = classified(&[60; 20], 5);
        let dist = location_distribution(
            Location::country("Chile"),
            GameId::Dota2,
            &[&bad, &good],
            None,
            None,
        )
        .unwrap();
        assert_eq!(dist.streamers, 1);
        assert!(dist.values_ms.iter().all(|&v| v >= 55.0));
    }
}
