//! Serving-layer throughput: queries per second through the
//! `tero-serve` front-end, cache on vs cache off, sequential vs fanned
//! out over `tero-pool`. The store holds pre-committed sketches (the
//! shape `Tero::serving_store` produces), so the benches isolate the
//! query path — version check, cache probe, decode-on-miss, sketch
//! arithmetic — from the pipeline itself. The numbers feed the QPS /
//! latency table in docs/PERFORMANCE.md.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tero_core::serving::{ServeGranularity, SERVE_VERSION_KEY};
use tero_obs::Registry;
use tero_pool::Pool;
use tero_serve::{run_load, LoadGen, QueryEngine, SketchRef};
use tero_stats::QuantileSketch;
use tero_store::KvStore;
use tero_types::{GameId, SimRng};

/// A serving store of `n` committed distribution sketches, ~1k samples
/// each — the size a multi-day, many-location run publishes.
fn serving_fixture(n: usize) -> (KvStore, Vec<SketchRef>) {
    let kv = KvStore::new();
    let mut rng = SimRng::new(0x5e7e_be9c);
    let mut targets = Vec::with_capacity(n);
    for i in 0..n {
        let game = GameId::ALL[i % GameId::ALL.len()];
        let target = SketchRef::dist(ServeGranularity::Country, game, &format!("Country-{i:03}"));
        let values: Vec<f64> = (0..1_000)
            .map(|_| rng.range_f64(5.0, 60.0) + rng.range_f64(0.0, 300.0) * rng.range_f64(0.0, 1.0))
            .collect();
        kv.set(target.key(), QuantileSketch::from_values(&values).encode());
        targets.push(target);
    }
    kv.incr_by(SERVE_VERSION_KEY, 1);
    (kv, targets)
}

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");

    let (kv, targets) = serving_fixture(64);
    let queries = LoadGen::new(99, targets.clone()).generate(10_000);

    // Sequential replay, warm cache: the hot path is a HashMap probe +
    // sketch arithmetic; the steady-state per-query cost.
    group.bench_function("10k_queries_cache_warm", |b| {
        let registry = Registry::new();
        let engine = QueryEngine::new(kv.clone(), &registry);
        for q in &queries {
            engine.query(q); // warm every key before measuring
        }
        b.iter(|| {
            let mut answered = 0u64;
            for q in &queries {
                answered += engine.query(q).is_answered() as u64;
            }
            black_box(answered)
        })
    });

    // Sequential replay, cache disabled: every query decodes its
    // sketch(es) from the store — the miss-path upper bound.
    group.bench_function("10k_queries_cache_off", |b| {
        let registry = Registry::new();
        let engine = QueryEngine::with_cache_capacity(kv.clone(), &registry, 0);
        b.iter(|| {
            let mut answered = 0u64;
            for q in &queries {
                answered += engine.query(q).is_answered() as u64;
            }
            black_box(answered)
        })
    });

    // Parallel replay through tero-pool: the contended, many-clients
    // shape — workers share one engine (one cache mutex, one store).
    for workers in [2usize, 4] {
        group.bench_function(BenchmarkId::new("10k_queries_pool", workers), |b| {
            let registry = Registry::new();
            let engine = QueryEngine::new(kv.clone(), &registry);
            let pool = Pool::new(workers);
            b.iter(|| black_box(run_load(&engine, &pool, &queries).checksum))
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_serve
}
criterion_main!(benches);
