//! §5.1 — basic data properties: volume and coverage of one deployment.
//!
//! The paper's two-year deployment processed 205 M thumbnails into 64.6 M
//! measurements, retained 58.03 M after anomaly filtering (89.8 %), across
//! 150 k users from 195 countries and 3.9 M streams. This regenerator
//! reports the same funnel for a simulated deployment (scaled down) plus
//! coverage counts: locations with enough data for a distribution.
//!
//! Usage: `summary_volume [--n 400] [--days 10]`

use serde::Serialize;
use tero_bench::{arg_usize, header, write_json};
use tero_core::pipeline::{ExtractionMode, Tero};
use tero_world::{World, WorldConfig};

#[derive(Serialize)]
struct Output {
    thumbnails: u64,
    measurements: u64,
    retained: usize,
    retained_pct: f64,
    users_seen: usize,
    users_located: usize,
    located_pct: f64,
    streams: usize,
    countries: usize,
    distributions_published: usize,
}

fn main() {
    let n = arg_usize("--n", 400);
    let days = arg_usize("--days", 10) as u64;
    header("§5.1: volume and coverage");

    let mut world = World::build(WorldConfig {
        seed: 51,
        n_streamers: n,
        days,
        ..WorldConfig::default()
    });
    let tero = Tero {
        mode: ExtractionMode::Calibrated,
        ..Tero::default()
    };
    // Regenerators pay the (small) timing cost so the printed snapshot
    // includes stage latencies; production-style runs leave it off.
    tero.obs.set_timing(true);
    // Record the run in flight-recorder mode: the ring keeps only the most
    // recent spans/events, so the post-run dump stays readable at any
    // world size while still showing the tail of the pipeline.
    tero.trace.set_enabled(true);
    tero.trace.set_flight_recorder(Some(48));
    let report = tero.run(&mut world);

    let retained = report.retained_measurements();
    let streams: usize = report.streams.values().map(|s| s.len()).sum();
    let mut countries: Vec<String> = report
        .locations
        .values()
        .map(|(l, _)| l.country.clone())
        .collect();
    countries.sort();
    countries.dedup();

    let out = Output {
        thumbnails: report.thumbnails,
        measurements: report.extracted,
        retained,
        retained_pct: 100.0 * retained as f64 / report.extracted.max(1) as f64,
        users_seen: report.streamers_seen,
        users_located: report.locations.len(),
        located_pct: 100.0 * report.locations.len() as f64 / report.streamers_seen.max(1) as f64,
        streams,
        countries: countries.len(),
        distributions_published: report.distributions.len(),
    };

    println!();
    println!("volume funnel (paper, at its scale: 205 M → 64.6 M → 58.03 M):");
    println!("  thumbnails processed:   {}", out.thumbnails);
    println!("  measurements extracted: {}", out.measurements);
    println!(
        "  retained after anomaly filtering: {} ({:.1} %; paper ~89.8 %)",
        out.retained, out.retained_pct
    );
    println!();
    println!("coverage:");
    println!(
        "  users located: {} of {} seen ({:.1} %; paper 2.77 % — our synthetic",
        out.users_located, out.users_seen, out.located_pct
    );
    println!("  world is profile-denser by design, see EXPERIMENTS.md)");
    println!("  streams: {}", out.streams);
    println!("  countries covered: {}", out.countries);
    println!("  distributions published: {}", out.distributions_published);

    write_json("summary_volume", &out);

    // ---- Pipeline metrics snapshot -------------------------------------
    let snap = tero.metrics_snapshot();
    println!();
    println!("pipeline metrics snapshot:");
    println!("{}", snap.render_text());
    println!("metrics json:");
    println!("{}", snap.to_json());

    // ---- Provenance + flight recorder ----------------------------------
    // The ledger proves the funnel conserves samples: every ingested
    // thumbnail is either published or carries a typed drop reason, and
    // the totals must equal the `pipeline.funnel.*` counters above.
    println!();
    match tero.trace.ledger().reconcile(&tero.obs) {
        Ok(summary) => {
            println!("sample provenance (ledger, reconciled against counters):");
            print!("{}", summary.render_text());
        }
        Err(err) => println!("provenance ledger DISAGREES with counters: {err}"),
    }
    println!();
    println!("flight recorder (last 48 trace records):");
    print!("{}", tero.trace.dump());
}
