//! The Twitch platform simulator: a rate-limited Helix-like API and a CDN
//! whose thumbnail URLs are overwritten roughly every 5 minutes and
//! redirect to an offline sentinel when the streamer stops broadcasting
//! (the environment App. A's download module is built against).

use crate::games::hud_spec;
use crate::sessions::{TruthSample, TruthStream};
use crate::streamer::Streamer;
use tero_chaos::{CdnFault, ChaosInjector};
use tero_types::{GameId, SimRng, SimTime, StreamerId};
use tero_vision::scene::HudScene;
use tero_vision::Image;

/// One entry of a `Get Streams` response.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamListing {
    /// The broadcaster.
    pub streamer: StreamerId,
    /// The game *label* on the stream — usually correct, but streamers who
    /// "change games without changing labels" (§3.3.3) advertise the wrong
    /// one.
    pub game_label: GameId,
    /// Thumbnail URL (stable per streamer while live).
    pub thumbnail_url: String,
    /// Country-level stream tag, when the streamer sets one (App. D.2).
    pub country_tag: Option<String>,
}

/// What a CDN fetch returns.
#[derive(Debug, Clone)]
pub enum CdnResponse {
    /// The thumbnail currently at the URL.
    Thumbnail {
        /// The rendered image.
        image: Image,
        /// When this thumbnail was generated (content timestamp).
        generated_at: SimTime,
        /// When the next overwrite is expected (HEAD's answer).
        next_update: Option<SimTime>,
    },
    /// The streamer is offline; the URL redirects to a placeholder.
    Offline,
    /// The fetch timed out (injected CDN fault); nothing was received.
    TimedOut,
}

/// API rate limiting error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimited {
    /// When the client's budget refreshes.
    pub retry_at: SimTime,
}

/// Why an API request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiError {
    /// The per-minute request budget is spent; retry at the given time.
    RateLimited(RateLimited),
    /// Transient server-side 5xx (only produced under fault injection).
    ServerError,
}

impl ApiError {
    /// The earliest sensible retry time, if the error carries one.
    pub fn retry_at(&self) -> Option<SimTime> {
        match self {
            ApiError::RateLimited(r) => Some(r.retry_at),
            ApiError::ServerError => None,
        }
    }
}

/// A token-bucket rate limiter (per-minute budget, like Helix).
#[derive(Debug, Clone)]
pub struct RateLimiter {
    budget: u32,
    used: u32,
    window_start: SimTime,
}

impl RateLimiter {
    /// A limiter allowing `budget` requests per minute.
    pub fn new(budget: u32) -> Self {
        RateLimiter {
            budget,
            used: 0,
            window_start: SimTime::EPOCH,
        }
    }

    /// Try to spend one request at `now`.
    pub fn check(&mut self, now: SimTime) -> Result<(), RateLimited> {
        let window = 60_000_000; // 1 minute in µs
        if now.as_micros() >= self.window_start.as_micros() + window {
            self.window_start = SimTime::from_micros((now.as_micros() / window) * window);
            self.used = 0;
        }
        if self.used < self.budget {
            self.used += 1;
            Ok(())
        } else {
            Err(RateLimited {
                retry_at: SimTime::from_micros(self.window_start.as_micros() + window),
            })
        }
    }
}

/// The platform: owns the ground-truth timelines and serves API/CDN views
/// of them. (Constructed by [`crate::world::World`].)
pub struct TwitchSim {
    pub(crate) streamers: Vec<Streamer>,
    /// Per-streamer timelines (parallel to `streamers`).
    pub(crate) timelines: Vec<Vec<TruthStream>>,
    pub(crate) limiter: RateLimiter,
    /// Optional deterministic fault injector (none by default).
    pub(crate) chaos: Option<ChaosInjector>,
}

impl TwitchSim {
    /// Install a fault injector; subsequent API/CDN calls consult it.
    pub fn install_chaos(&mut self, injector: ChaosInjector) {
        self.chaos = Some(injector);
    }

    /// The installed fault injector, if any.
    pub fn chaos(&self) -> Option<&ChaosInjector> {
        self.chaos.as_ref()
    }

    /// Find the live stream of streamer `idx` at `now`, if any.
    fn live_stream(&self, idx: usize, now: SimTime) -> Option<&TruthStream> {
        self.timelines[idx]
            .iter()
            .find(|s| s.start <= now && now < s.end)
    }

    /// `Get Streams`: all live broadcasts at `now`. Costs one API request
    /// (spent even when the server then 5xx's, like the real Helix).
    pub fn get_streams(&mut self, now: SimTime) -> Result<Vec<StreamListing>, ApiError> {
        self.limiter.check(now).map_err(ApiError::RateLimited)?;
        if self.chaos.as_ref().is_some_and(|c| c.api_fault()) {
            return Err(ApiError::ServerError);
        }
        let mut out = Vec::new();
        for (idx, streamer) in self.streamers.iter().enumerate() {
            let Some(stream) = self.timelines[idx]
                .iter()
                .find(|s| s.start <= now && now < s.end)
            else {
                continue;
            };
            // Mislabeling: the label sticks to the streamer's first game.
            let game_label = if streamer.hud.mislabels_game {
                streamer.games[0]
            } else {
                stream.game
            };
            out.push(StreamListing {
                streamer: streamer.id.clone(),
                game_label,
                thumbnail_url: format!("cdn://thumbs/{}", streamer.id.as_str()),
                country_tag: if streamer.uses_country_tag {
                    Some(stream.location.country.clone())
                } else {
                    None
                },
            });
        }
        Ok(out)
    }

    /// `Get Users`-style profile lookup: the streamer's description.
    /// Costs one API request.
    pub fn get_profile(
        &mut self,
        username: &str,
        now: SimTime,
    ) -> Result<Option<String>, ApiError> {
        self.limiter.check(now).map_err(ApiError::RateLimited)?;
        if self.chaos.as_ref().is_some_and(|c| c.api_fault()) {
            return Err(ApiError::ServerError);
        }
        Ok(self
            .streamers
            .iter()
            .find(|s| s.id.as_str() == username)
            .map(|s| s.description.clone()))
    }

    /// The profile description `get_profile` would return for `username`,
    /// without spending API budget or consulting fault injection. This is
    /// the location module's view of the platform: it runs as a separate
    /// program with its own credentials (App. B), so its call accounting
    /// is modelled by the pipeline's own locate budget, not this
    /// limiter's state.
    pub fn profile_description(&self, username: &str) -> Option<String> {
        self.streamers
            .iter()
            .find(|s| s.id.as_str() == username)
            .map(|s| s.description.clone())
    }

    /// CDN fetch (not rate-limited — it's a CDN). Returns the thumbnail
    /// whose content currently sits at the URL, i.e. the one generated at
    /// the latest sample instant ≤ `now`.
    pub fn cdn_get(&self, url: &str, now: SimTime) -> CdnResponse {
        let Some(username) = url.strip_prefix("cdn://thumbs/") else {
            return CdnResponse::Offline;
        };
        let Some(idx) = self
            .streamers
            .iter()
            .position(|s| s.id.as_str() == username)
        else {
            return CdnResponse::Offline;
        };
        let Some(stream) = self.live_stream(idx, now) else {
            return CdnResponse::Offline;
        };
        let Some(pos) = stream.samples.iter().rposition(|s| s.t <= now) else {
            // Live but the first thumbnail hasn't been generated yet.
            return CdnResponse::Offline;
        };
        let sample = stream.samples[pos];
        let next_update = stream.samples.get(pos + 1).map(|s| s.t);
        // Faults only apply where a real response would exist — an Offline
        // redirect is already its own failure mode.
        if let Some(chaos) = self.chaos.as_ref() {
            if let Some(fault) = chaos.cdn_fault() {
                if fault == CdnFault::Timeout {
                    return CdnResponse::TimedOut;
                }
                let mut image = render_thumbnail(&self.streamers[idx], stream.game, &sample);
                chaos.mangle_payload(fault, &mut image.pixels);
                return CdnResponse::Thumbnail {
                    image,
                    generated_at: sample.t,
                    next_update,
                };
            }
        }
        let image = render_thumbnail(&self.streamers[idx], stream.game, &sample);
        CdnResponse::Thumbnail {
            image,
            generated_at: sample.t,
            next_update,
        }
    }

    /// HEAD request: just the content timestamp and next expected update.
    pub fn cdn_head(&self, url: &str, now: SimTime) -> Option<(SimTime, Option<SimTime>)> {
        match self.cdn_get(url, now) {
            CdnResponse::Thumbnail {
                generated_at,
                next_update,
                ..
            } => Some((generated_at, next_update)),
            CdnResponse::Offline | CdnResponse::TimedOut => None,
        }
    }

    /// Ground truth access for evaluation: the sample behind a thumbnail.
    pub fn truth_sample(&self, username: &str, t: SimTime) -> Option<TruthSample> {
        let idx = self
            .streamers
            .iter()
            .position(|s| s.id.as_str() == username)?;
        let stream = self.live_stream(idx, t)?;
        stream.samples.iter().find(|s| s.t == t).copied()
    }
}

/// Deterministically render the thumbnail for one ground-truth sample:
/// the game's HUD spec plus the streamer's quirks select the Fig 6
/// scenario.
pub fn render_thumbnail(streamer: &Streamer, game: GameId, sample: &TruthSample) -> Image {
    let (scene, mut rng) = build_scene(streamer, game, sample);
    scene.render(&mut rng)
}

/// Build the scene (and its deterministic RNG) for one sample — exposed so
/// evaluations can inspect the chosen scenario.
pub fn build_scene(streamer: &Streamer, game: GameId, sample: &TruthSample) -> (HudScene, SimRng) {
    // Deterministic per (streamer, instant).
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in streamer.id.as_str().bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    seed ^= sample.t.as_micros();
    let mut rng = SimRng::new(seed);

    let spec = hud_spec(game);
    let mut scene = if streamer.hud.clock_overlay {
        // A clock sits where latency goes (Fig 6d). Derive HH:MM from the
        // simulated time of day.
        let mins = sample.t.as_mins();
        HudScene::clock_overlay(
            sample.displayed_ms,
            ((mins / 60) % 24) as u32,
            (mins % 60) as u32,
        )
    } else if streamer.hud.light_font {
        // A continuum of faintness: the faintest cases defeat every
        // engine; milder ones are readable by the lenient engines but
        // often with disagreeing values, which the vote then discards —
        // both behaviours feed Tero's higher miss rate (Table 4).
        let mut s = HudScene::light_font(sample.displayed_ms);
        s.fg = 206 + rng.below(20) as u8;
        s
    } else if rng.chance(streamer.hud.occlusion_rate) {
        HudScene::partially_hidden(sample.displayed_ms, 0.15 + 0.4 * rng.f64())
    } else {
        HudScene::typical(sample.displayed_ms)
    };
    scene.anchor = spec.anchor;
    scene.text_scale = spec.text_scale;
    scene = scene.with_decoration(spec.decoration);
    scene.noise = streamer.hud.noise;
    scene.grain = streamer.hud.grain;
    (scene, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_types::SimDuration;

    #[test]
    fn rate_limiter_windows() {
        let mut rl = RateLimiter::new(2);
        let t0 = SimTime::from_secs(10);
        assert!(rl.check(t0).is_ok());
        assert!(rl.check(t0).is_ok());
        let err = rl.check(t0).unwrap_err();
        assert_eq!(err.retry_at, SimTime::from_secs(60));
        // New window refreshes the budget.
        assert!(rl.check(SimTime::from_secs(61)).is_ok());
    }

    #[test]
    fn cdn_head_matches_get() {
        use crate::{World, WorldConfig};
        let world = World::build(WorldConfig {
            seed: 8,
            n_streamers: 12,
            days: 2,
            ..WorldConfig::default()
        });
        let mut checked = 0;
        for (streamer, timeline) in world.streamers().iter().zip(world.timelines()) {
            for stream in timeline.iter().take(1) {
                if stream.samples.len() < 2 {
                    continue;
                }
                let url = format!("cdn://thumbs/{}", streamer.id.as_str());
                let t = stream.samples[0].t;
                let head = world.twitch.cdn_head(&url, t).expect("live");
                assert_eq!(head.0, t);
                assert_eq!(head.1, Some(stream.samples[1].t));
                checked += 1;
            }
        }
        assert!(checked > 3);
    }

    #[test]
    fn mislabeled_streams_advertise_first_game() {
        use crate::{World, WorldConfig};
        let mut world = World::build(WorldConfig {
            seed: 9,
            n_streamers: 150,
            days: 2,
            ..WorldConfig::default()
        });
        // Find a time with listings; every mislabeler's label must be its
        // first game regardless of what it actually plays.
        let mut found_mislabeled = false;
        let mut t = SimTime::from_hours(2);
        while t < world.horizon {
            let listings = world.twitch.get_streams(t).expect("budget");
            for l in &listings {
                let s = world.streamer(&l.streamer).unwrap();
                if s.hud.mislabels_game {
                    assert_eq!(l.game_label, s.games[0]);
                    found_mislabeled = true;
                }
            }
            t += SimDuration::from_hours(3);
        }
        // 2 % of 150 streamers: usually at least one broadcast observed.
        // (Not guaranteed; only assert when the trait exists at all.)
        let any_mislabeler = world.streamers().iter().any(|s| s.hud.mislabels_game);
        if any_mislabeler {
            let _ = found_mislabeled; // labels were checked wherever seen
        }
    }

    #[test]
    fn profile_lookup_spends_budget() {
        use crate::{World, WorldConfig};
        let mut world = World::build(WorldConfig {
            seed: 10,
            n_streamers: 5,
            days: 1,
            api_budget_per_min: 2,
            ..WorldConfig::default()
        });
        let name = world.streamers()[0].id.as_str().to_string();
        let t = SimTime::from_secs(5);
        assert!(world.twitch.get_profile(&name, t).unwrap().is_some());
        assert!(world.twitch.get_profile("nobody", t).unwrap().is_none());
        assert!(
            world.twitch.get_profile(&name, t).is_err(),
            "budget of 2 spent"
        );
    }

    #[test]
    fn scene_is_deterministic_per_sample() {
        use tero_geoparse::{Gazetteer, PlaceKind};
        let gaz = Gazetteer::new();
        let home = gaz.lookup_kind("Chicago", PlaceKind::City)[0].clone();
        let mut rng = SimRng::new(1);
        let s = crate::streamer::Streamer::generate(&gaz, home, SimTime::from_hours(100), &mut rng);
        let sample = TruthSample {
            t: SimTime::from_mins(42),
            true_rtt_ms: 30.0,
            displayed_ms: 30,
            server_idx: 0,
            in_spike: false,
        };
        let a = render_thumbnail(&s, GameId::LeagueOfLegends, &sample);
        let b = render_thumbnail(&s, GameId::LeagueOfLegends, &sample);
        assert_eq!(a, b);
        // Different instants give different renders (noise reseeds).
        let sample2 = TruthSample {
            t: SimTime::from_mins(47),
            ..sample
        };
        let c = render_thumbnail(&s, GameId::LeagueOfLegends, &sample2);
        assert_ne!(a, c);
    }
}
