//! The Tero orchestrator: download → image-processing → location →
//! data-analysis, wired through the stores of `tero-store` and run against
//! a `tero-world` platform.
//!
//! The three hot stages — thumbnail extraction, per-`{streamer, game}`
//! cleaning/changepoint analysis, and per-group aggregation — fan out over
//! a [`tero_pool::Pool`] sized by [`Tero::worker_threads`]. Each parallel
//! stage is a pure map whose results are merged back *in input order*, so
//! the report (and every funnel counter) is byte-identical at any worker
//! count; `worker_threads == 1` runs the exact legacy sequential path.

use crate::analysis::anomaly::{detect_anomalies, AnomalyReport, SegmentLabel};
use crate::analysis::clusters::{
    classify_streamer, endpoint_changes, merge_location_clusters, ChangeKind, ClassifiedStreamer,
    EndPointChange, LatencyCluster,
};
use crate::analysis::distributions::{location_distribution, LocationDistribution};
use crate::analysis::segments::{segment_stream, Segment, StreamSeries};
use crate::analysis::shared::{detect_shared_anomalies, SharedAnomaly, StreamerActivity};
use crate::behavior::BehaviorStream;
use crate::download::{DownloadModule, DownloadStats, ThumbnailTask};
use crate::imageproc::ImageProcessor;
use crate::location::{LocationModule, LocationSource};
use std::collections::BTreeSet;
use std::collections::{BTreeMap, HashMap};
use tero_geoparse::tags::TagObservation;
use tero_geoparse::Gazetteer;
use tero_obs::{CounterHandle, Registry, Snapshot};
use tero_pool::Pool;
use tero_store::{KvStore, ObjectStore};
use tero_trace::{DropReason, Level, SampleKey, SampleState, TaskTrace, Tracer};
use tero_types::{
    AnonId, GameId, LatencySample, Location, SimDuration, SimTime, StreamerId, TeroParams,
};
use tero_vision::combine::CombineOutcome;
use tero_vision::scene::ScenarioKind;
use tero_world::games::{corrected_distance_to, match_length_mins, primary_server};
use tero_world::twitch::build_scene;
use tero_world::World;

/// How thumbnails are turned into measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractionMode {
    /// Render every thumbnail and run the full three-engine OCR pipeline —
    /// the honest path; used for all accuracy evaluations.
    FullOcr,
    /// Skip rendering: derive the extraction outcome mechanically from the
    /// scene's ground truth using the *same failure mechanisms* the OCR
    /// path exhibits (light fonts miss; occlusions drop leading digits;
    /// clocks read as plausible wrong values; mislabeled streams read
    /// nothing), at rates matched to the measured OCR behaviour. Used only
    /// to scale the analysis-heavy regenerators (Figs 9–16, Table 5);
    /// see DESIGN.md.
    Calibrated,
}

/// A gap larger than this starts a new stream (thumbnails are ≥ 5 min
/// apart; in-stream breaks reach ~35 min; offline periods are longer).
const STREAM_GAP: SimDuration = SimDuration(45 * 60 * 1_000_000);

/// The Tero system.
pub struct Tero {
    /// Table 1 parameters.
    pub params: TeroParams,
    /// Anonymisation salt (§7's consistent hashing).
    pub salt: u64,
    /// Extraction mode.
    pub mode: ExtractionMode,
    /// Minimum streamers per `{location, game}` before a distribution is
    /// published (the paper uses 50; tests use less).
    pub min_streamers: usize,
    /// §3.1.2's suggested-but-not-taken step: reject measurements that
    /// fall outside every latency cluster of their `{location, game}`,
    /// which screens out mislocated streamers (the paper leaves this to
    /// the data-set's users; we implement it as an opt-in).
    pub reject_outside_clusters: bool,
    /// The metric registry every stage reports into. Counters are always
    /// on; per-operation timing histograms only populate after
    /// `obs.set_timing(true)`.
    pub obs: Registry,
    /// Worker threads for the parallel stages (extraction, per-stream
    /// analysis, per-group aggregation). Defaults to the machine's
    /// available parallelism; `1` runs the exact sequential legacy path.
    /// The report is identical for every value — see `tests/determinism.rs`.
    pub worker_threads: usize,
    /// The structured tracer (`tero-trace`). Span/event recording is off
    /// by default — enable with `trace.set_enabled(true)` — but the
    /// sample-provenance ledger underneath it is always on, so
    /// [`tero_trace::Ledger::reconcile`] can audit any run. Trace output
    /// is deterministic: identical for every `worker_threads` value.
    pub trace: Tracer,
}

impl Default for Tero {
    fn default() -> Self {
        Tero {
            params: TeroParams::default(),
            salt: 0x7e60,
            mode: ExtractionMode::FullOcr,
            min_streamers: 5,
            reject_outside_clusters: false,
            obs: Registry::new(),
            worker_threads: tero_pool::default_workers(),
            trace: Tracer::new(),
        }
    }
}

/// Everything one pipeline run produces.
pub struct TeroReport {
    /// Download-module statistics.
    pub download: DownloadStats,
    /// Thumbnails processed by image-processing.
    pub thumbnails: u64,
    /// Measurements extracted (primary values).
    pub extracted: u64,
    /// Streamers the location module located, with source.
    pub locations: HashMap<AnonId, (Location, LocationSource)>,
    /// Streamers seen (denominator of the 2.77 % figure).
    pub streamers_seen: usize,
    /// Stitched streams per `{streamer, game}`.
    pub streams: BTreeMap<(AnonId, GameId), Vec<StreamSeries>>,
    /// Anomaly reports per `{streamer, game}`.
    pub anomalies: BTreeMap<(AnonId, GameId), AnomalyReport>,
    /// Classified streamers per `{streamer, game}`.
    pub classified: BTreeMap<(AnonId, GameId), ClassifiedStreamer>,
    /// Per-`{region-key, game}` merged latency clusters.
    pub location_clusters: BTreeMap<(String, GameId), Vec<LatencyCluster>>,
    /// End-point changes per `{streamer, game}`.
    pub endpoint_changes: BTreeMap<(AnonId, GameId), Vec<EndPointChange>>,
    /// Published latency distributions.
    pub distributions: Vec<LocationDistribution>,
    /// Shared anomalies.
    pub shared_anomalies: Vec<SharedAnomaly>,
    /// Streams prepared for the §6 behaviour study.
    pub behavior_streams: Vec<BehaviorStream>,
}

impl TeroReport {
    /// Total clean measurements retained after anomaly filtering.
    pub fn retained_measurements(&self) -> usize {
        self.anomalies.values().map(|r| r.clean_count()).sum()
    }

    /// The distribution for a location (any granularity key) and game.
    pub fn distribution(&self, location: &Location, game: GameId) -> Option<&LocationDistribution> {
        self.distributions
            .iter()
            .find(|d| d.location == *location && d.game == game)
    }
}

impl Tero {
    /// A point-in-time snapshot of every metric recorded so far. Usually
    /// read after [`Tero::run`]; safe to call at any time.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.obs.snapshot()
    }

    /// Run the full pipeline over a world's entire data-set.
    pub fn run(&self, world: &mut World) -> TeroReport {
        let run_us = self.obs.histogram("pipeline.run_us");
        let _run_timer = self.obs.stage_timer(&run_us);
        let c_thumbs = self.obs.counter("pipeline.thumbnails");
        let c_extracted = self.obs.counter("pipeline.extracted");
        let c_no_measurement = self.obs.counter("pipeline.no_measurement");
        let c_images_missing = self.obs.counter("pipeline.images_missing");
        let c_streams = self.obs.counter("pipeline.streams_stitched");
        let c_located = self.obs.counter("pipeline.streamers_located");
        let a_segments = self.obs.counter("analysis.segments_built");
        let a_glitch_fixed = self.obs.counter("analysis.glitches_corrected");
        let a_glitch_dropped = self.obs.counter("analysis.glitches_discarded");
        let a_spikes = self.obs.counter("analysis.spikes_detected");
        let a_discarded = self.obs.counter("analysis.points_discarded");
        let a_dists = self.obs.counter("analysis.distributions_published");
        let a_shared = self.obs.counter("analysis.shared_anomalies");
        let c_profile_retries = self.obs.counter("pipeline.profile_retries");
        let stage_extract_us = self.obs.histogram("pipeline.stage.extract_us");
        let stage_stitch_us = self.obs.histogram("pipeline.stage.stitch_us");
        let stage_locate_us = self.obs.histogram("pipeline.stage.locate_us");
        let stage_analyze_us = self.obs.histogram("pipeline.stage.analyze_us");
        let stage_aggregate_us = self.obs.histogram("pipeline.stage.aggregate_us");
        let stage_behavior_us = self.obs.histogram("pipeline.stage.behavior_us");
        // The provenance funnel: `ingested` counts every thumbnail task,
        // `published` the samples that reached a distribution, and one
        // counter per typed drop reason accounts for the rest. All thirteen
        // are registered eagerly so the catalogue is complete on clean
        // runs, and every one is provably equal to the ledger's books —
        // see [`tero_trace::Ledger::reconcile`].
        let f_ingested = self.obs.counter("pipeline.funnel.ingested");
        let f_published = self.obs.counter("pipeline.funnel.published");
        let f_dropped: Vec<CounterHandle> = DropReason::ALL
            .iter()
            .map(|r| self.obs.counter(r.metric_name()))
            .collect();
        self.trace.begin_run();
        self.trace.instrument(&self.obs);
        let ledger = self.trace.ledger();
        let sp_run = self.trace.span("pipeline.run");
        let pool = Pool::with_metrics(self.worker_threads, &self.obs);

        let kv = KvStore::new();
        let objects = ObjectStore::new();
        kv.instrument(&self.obs);
        objects.instrument(&self.obs);
        // If the world carries a fault injector, surface its counters in
        // this registry and let it sabotage store writes too.
        if let Some(chaos) = world.chaos().cloned() {
            chaos.instrument(&self.obs);
            // Injected faults journal themselves as trace events, so a
            // flight-recorder dump shows *why* a window looks anomalous.
            chaos.set_trace(&self.trace);
            kv.inject_faults(chaos.clone());
            objects.inject_faults(chaos);
        }
        let mut download = DownloadModule::new(kv.clone(), objects.clone());
        download.instrument(&self.obs);
        download.set_trace(&self.trace);
        let horizon = world.horizon;
        let download_stats = download.run(world, SimTime::EPOCH, horizon);
        let tasks = download.drain_tasks();

        // ---- Image processing -------------------------------------------------
        // The OCR fan-out: every task reads only thread-safe stores and
        // immutable world state, so the heavy extraction runs on the pool.
        // `None` marks a lost/corrupt object. Everything order-sensitive —
        // funnel counters, dead-lettering, measurement insertion — happens
        // in the ordered merge below, which walks results in task order
        // and is therefore byte-identical to the sequential path.
        let processor = ImageProcessor::with_registry(&self.obs);
        let mut measurements: BTreeMap<(AnonId, GameId), Vec<LatencySample>> = BTreeMap::new();
        let mut usernames: HashMap<AnonId, StreamerId> = HashMap::new();
        let mut extracted = 0u64;
        let sp_extract = sp_run.child("stage.extract");
        let extract_stage = self.trace.stage(&sp_extract, "extract.task");
        let outcomes: Vec<(Option<CombineOutcome>, TaskTrace)> = {
            let _t = self.obs.stage_timer(&stage_extract_us);
            let world_ro: &World = world;
            pool.par_map_indexed(&tasks, |i, task| {
                let mut t = extract_stage.task(i as u64);
                t.set_sim_time(task.generated_at);
                let outcome = match self.mode {
                    ExtractionMode::FullOcr => download
                        .load_image(&task.object_key)
                        .map(|image| processor.extract(&image, task.game_label)),
                    ExtractionMode::Calibrated => Some(calibrated_extract(world_ro, task)),
                };
                match &outcome {
                    None => t.event(Level::Error, "thumbnail missing or corrupt; dead-lettered"),
                    Some(CombineOutcome::NoMeasurement) => {
                        t.event(Level::Debug, "ocr: 2-of-3 vote failed, no measurement")
                    }
                    Some(CombineOutcome::Extracted { .. }) => {}
                }
                (outcome, t.finish())
            })
        };
        let mut extract_traces = Vec::with_capacity(outcomes.len());
        for (task, (outcome, trace)) in tasks.iter().zip(outcomes) {
            extract_traces.push(trace);
            c_thumbs.inc();
            let anon = AnonId::from_streamer(&task.streamer, self.salt);
            // Birth of a lineage record: every thumbnail task becomes a
            // ledger entry that must later be published or dropped with a
            // typed reason.
            let key = SampleKey {
                anon,
                game: task.game_label,
                at: task.generated_at,
            };
            ledger.ingest(key);
            f_ingested.inc();
            usernames
                .entry(anon)
                .or_insert_with(|| task.streamer.clone());
            let Some(outcome) = outcome else {
                // Lost or corrupt object: quarantine the task so the
                // failure stays auditable, and keep going.
                c_images_missing.inc();
                f_dropped[DropReason::DeadLetter.index()].inc();
                ledger.resolve(&key, SampleState::Dropped(DropReason::DeadLetter));
                download.dead_letter(task.encode());
                continue;
            };
            if let CombineOutcome::Extracted {
                primary,
                alternative,
            } = outcome
            {
                extracted += 1;
                c_extracted.inc();
                let sample = match alternative {
                    Some(alt) => LatencySample::with_alternative(task.generated_at, primary, alt),
                    None => LatencySample::new(task.generated_at, primary),
                };
                measurements
                    .entry((anon, task.game_label))
                    .or_default()
                    .push(sample);
            } else {
                c_no_measurement.inc();
                f_dropped[DropReason::OcrUnreadable.index()].inc();
                ledger.resolve(&key, SampleState::Dropped(DropReason::OcrUnreadable));
            }
        }
        extract_stage.flush(extract_traces);
        drop(sp_extract);

        // ---- Streams -----------------------------------------------------------
        let sp_stitch = sp_run.child("stage.stitch");
        let _t_stitch = self.obs.stage_timer(&stage_stitch_us);
        let mut streams: BTreeMap<(AnonId, GameId), Vec<StreamSeries>> = BTreeMap::new();
        for ((anon, game), mut samples) in measurements {
            samples.sort_by_key(|s| s.at);
            let mut current: Vec<LatencySample> = Vec::new();
            let mut series = Vec::new();
            for s in samples {
                if let Some(last) = current.last() {
                    if s.at.since(last.at) > STREAM_GAP {
                        series.push(StreamSeries {
                            anon,
                            game,
                            samples: std::mem::take(&mut current),
                        });
                    }
                }
                current.push(s);
            }
            if !current.is_empty() {
                series.push(StreamSeries {
                    anon,
                    game,
                    samples: current,
                });
            }
            c_streams.add(series.len() as u64);
            streams.insert((anon, game), series);
        }
        drop(_t_stitch);
        drop(sp_stitch);

        // ---- Location ----------------------------------------------------------
        // Profile lookups stay sequential: they advance the platform's
        // rate limiter, whose state threads from one call to the next.
        // Sorting by anonymised id pins that order — HashMap iteration
        // varies between processes, and with fault injection the call
        // order decides which lookups hit an injected 5xx.
        let sp_locate = sp_run.child("stage.locate");
        let _t_locate = self.obs.stage_timer(&stage_locate_us);
        let location_module = LocationModule::new(&world.gaz);
        let mut locations: HashMap<AnonId, (Location, LocationSource)> = HashMap::new();
        let mut now = horizon;
        let mut names: Vec<(AnonId, StreamerId)> =
            usernames.iter().map(|(a, n)| (*a, n.clone())).collect();
        names.sort_unstable_by_key(|(a, _)| *a);
        for (anon, name) in &names {
            let mut server_errors = 0u32;
            let description = loop {
                match world.twitch.get_profile(name.as_str(), now) {
                    Ok(d) => break d,
                    Err(tero_world::twitch::ApiError::RateLimited(limited)) => {
                        now = limited.retry_at;
                    }
                    Err(tero_world::twitch::ApiError::ServerError) => {
                        // Transient 5xx: retry a few times with logical-time
                        // spacing, then carry on without a profile — the
                        // streamer is simply unlocated this run.
                        server_errors += 1;
                        c_profile_retries.inc();
                        if server_errors > 4 {
                            break None;
                        }
                        now += SimDuration::from_secs(1);
                    }
                }
            };
            let tags: Vec<TagObservation> = download
                .tag_history(name.as_str())
                .into_iter()
                .enumerate()
                .map(|(i, t)| TagObservation {
                    poll: i as u64,
                    country_tag: Some(t),
                })
                .collect();
            if let Some((loc, source)) = location_module.locate(
                name.as_str(),
                description.as_deref(),
                &world.social_directory,
                &tags,
            ) {
                locations.insert(*anon, (loc, source));
            }
        }
        c_located.add(locations.len() as u64);
        drop(_t_locate);
        drop(sp_locate);

        // ---- Per-streamer analysis ----------------------------------------------
        // The cleaning + PELT changepoint fan-out: each `{streamer, game}`
        // series is segmented, anomaly-scanned and classified
        // independently; counters are bumped in the ordered merge.
        let mut anomalies: BTreeMap<(AnonId, GameId), AnomalyReport> = BTreeMap::new();
        let mut classified: BTreeMap<(AnonId, GameId), ClassifiedStreamer> = BTreeMap::new();
        let stream_entries: Vec<(&(AnonId, GameId), &Vec<StreamSeries>)> = streams.iter().collect();
        let sp_analyze = sp_run.child("stage.analyze");
        let analyze_stage = self.trace.stage(&sp_analyze, "analyze.task");
        let analyzed: Vec<((AnomalyReport, ClassifiedStreamer), TaskTrace)> = {
            let _t = self.obs.stage_timer(&stage_analyze_us);
            pool.par_map_indexed(&stream_entries, |i, (key, series)| {
                let mut t = analyze_stage.task(i as u64);
                if let Some(first) = series.first().and_then(|s| s.samples.first()) {
                    t.set_sim_time(first.at);
                }
                let (anon, _game) = **key;
                let mut segments: Vec<Segment> = Vec::new();
                for (idx, s) in series.iter().enumerate() {
                    segments.extend(segment_stream(idx, &s.samples, &self.params));
                }
                let report = detect_anomalies(segments, &self.params);
                if report.all_unstable {
                    t.event(Level::Warn, "all segments unstable; streamer discarded");
                }
                let cls = classify_streamer(anon, &report, &self.params);
                ((report, cls), t.finish())
            })
        };
        let mut analyze_traces = Vec::with_capacity(analyzed.len());
        for ((key, _series), ((report, cls), trace)) in stream_entries.iter().zip(analyzed) {
            analyze_traces.push(trace);
            let (anon, game) = **key;
            a_segments.add(report.segments.len() as u64);
            a_spikes.add(report.spikes.len() as u64);
            for label in &report.labels {
                match label {
                    SegmentLabel::CorrectedGlitch => a_glitch_fixed.inc(),
                    SegmentLabel::DiscardedGlitch => a_glitch_dropped.inc(),
                    _ => {}
                }
            }
            let total_points: usize = report.segments.iter().map(|s| s.samples.len()).sum();
            let kept = report.clean_count();
            a_discarded.add(total_points.saturating_sub(kept) as u64);
            classified.insert((anon, game), cls);
            anomalies.insert((anon, game), report);
        }
        analyze_stage.flush(analyze_traces);
        drop(sp_analyze);

        // ---- Per-{region, game} aggregation --------------------------------------
        // Group located streamers at region granularity.
        let mut groups: BTreeMap<(String, GameId), Vec<AnonId>> = BTreeMap::new();
        for (anon, game) in streams.keys() {
            if let Some((loc, _)) = locations.get(anon) {
                let key = loc.to_region_level().key();
                groups.entry((key, *game)).or_default().push(*anon);
            }
        }

        let mut location_clusters: BTreeMap<(String, GameId), Vec<LatencyCluster>> =
            BTreeMap::new();
        let mut all_endpoint_changes: BTreeMap<(AnonId, GameId), Vec<EndPointChange>> =
            BTreeMap::new();
        let mut distributions = Vec::new();
        let mut shared_anomalies = Vec::new();

        // The per-group §5/§6 fan-out: each `{region, game}` group reads
        // only the classified/anomaly maps built above, so groups run on
        // the pool and the merge walks them in `BTreeMap` key order —
        // exactly the order the sequential loop published distributions.
        let sp_aggregate = sp_run.child("stage.aggregate");
        let _t_aggregate = self.obs.stage_timer(&stage_aggregate_us);
        // Per-member publication outcomes at each granularity, for the
        // provenance pass below: a sample is published if its streamer
        // contributed at either level.
        let mut region_outcomes: BTreeMap<(AnonId, GameId), MemberOutcome> = BTreeMap::new();
        let mut country_outcomes: BTreeMap<(AnonId, GameId), MemberOutcome> = BTreeMap::new();
        let group_entries: Vec<(&(String, GameId), &Vec<AnonId>)> = groups.iter().collect();
        let group_results: Vec<GroupAnalysis> = pool.par_map(&group_entries, |(key, members)| {
            self.analyze_group(
                &world.gaz,
                key.1,
                members,
                &locations,
                &classified,
                &anomalies,
                Granularity::Region,
            )
        });
        for ((key, _members), analysis) in group_entries.iter().zip(group_results) {
            for (anon, changes) in analysis.changes {
                all_endpoint_changes.insert((anon, key.1), changes);
            }
            for (anon, outcome) in analysis.outcomes {
                region_outcomes.insert((anon, key.1), outcome);
            }
            location_clusters.insert((key.0.clone(), key.1), analysis.clusters);
            if let Some(dist) = analysis.distribution {
                distributions.push(dist);
            }
            shared_anomalies.extend(analysis.shared);
        }

        // ---- Country-level distributions ------------------------------------------
        // The paper publishes distributions at country granularity too
        // (Figs 9, 11, 12); the aggregation logic is the same with a
        // coarser key.
        let mut country_groups: BTreeMap<(String, GameId), Vec<AnonId>> = BTreeMap::new();
        for (anon, game) in streams.keys() {
            if let Some((loc, _)) = locations.get(anon) {
                let key = loc.to_country_level().key();
                country_groups.entry((key, *game)).or_default().push(*anon);
            }
        }
        let country_entries: Vec<(&(String, GameId), &Vec<AnonId>)> =
            country_groups.iter().collect();
        let country_results: Vec<GroupAnalysis> =
            pool.par_map(&country_entries, |(key, members)| {
                self.analyze_group(
                    &world.gaz,
                    key.1,
                    members,
                    &locations,
                    &classified,
                    &anomalies,
                    Granularity::Country,
                )
            });
        for ((key, _members), analysis) in country_entries.iter().zip(country_results) {
            for (anon, outcome) in analysis.outcomes {
                country_outcomes.insert((anon, key.1), outcome);
            }
            if let Some(dist) = analysis.distribution {
                distributions.push(dist);
            }
        }
        drop(_t_aggregate);
        drop(sp_aggregate);

        // ---- Sample provenance --------------------------------------------------
        // Resolve every still-pending ledger record to its final fate,
        // mirroring the publication rules of `analysis::distributions`:
        // a clean sample is published iff its streamer is located,
        // high-quality, the sample sits in a cluster the streamer
        // publishes (all clusters when static, the top-weight cluster
        // when mobile), and the streamer contributed — without a possible
        // location change — to a group that cleared `min_streamers` at
        // region or country granularity. Each failure along that chain is
        // a typed [`DropReason`]; the funnel counters are bumped from the
        // same decisions, which is what lets `Ledger::reconcile` prove
        // the metrics and the ledger agree record-for-record.
        let sp_prov = sp_run.child("stage.provenance");
        for ((anon, game), report) in &anomalies {
            let cls = classified.get(&(*anon, *game));
            let (high_quality, is_static) = cls
                .map(|c| (c.high_quality, c.is_static))
                .unwrap_or((false, true));
            let mut all_set: BTreeSet<u64> = BTreeSet::new();
            let mut top_set: BTreeSet<u64> = BTreeSet::new();
            if let Some(c) = cls {
                for (ci, cluster) in c.clusters.iter().enumerate() {
                    for s in &cluster.samples {
                        all_set.insert(s.at.as_micros());
                        if ci == 0 {
                            top_set.insert(s.at.as_micros());
                        }
                    }
                }
            }
            let located = locations.contains_key(anon);
            let contributed = |m: &BTreeMap<(AnonId, GameId), MemberOutcome>, o| {
                m.get(&(*anon, *game)) == Some(&o)
            };
            let published_somewhere = contributed(&region_outcomes, MemberOutcome::Contributor)
                || contributed(&country_outcomes, MemberOutcome::Contributor);
            let moved_somewhere = contributed(&region_outcomes, MemberOutcome::Mover)
                || contributed(&country_outcomes, MemberOutcome::Mover);
            for (segment, label) in report.segments.iter().zip(&report.labels) {
                let segment_drop = match label {
                    SegmentLabel::Spike => Some(DropReason::Spike),
                    SegmentLabel::DiscardedGlitch => Some(DropReason::Glitch),
                    SegmentLabel::Discarded => Some(DropReason::Unstable),
                    _ => None,
                };
                for s in &segment.samples {
                    let key = SampleKey {
                        anon: *anon,
                        game: *game,
                        at: s.at,
                    };
                    let state = match segment_drop {
                        Some(reason) => SampleState::Dropped(reason),
                        None if !located => SampleState::Dropped(DropReason::GeoparseMiss),
                        None if !high_quality => SampleState::Dropped(DropReason::LowQuality),
                        None if !all_set.contains(&s.at.as_micros()) => {
                            SampleState::Dropped(DropReason::NotClustered)
                        }
                        None if !is_static && !top_set.contains(&s.at.as_micros()) => {
                            SampleState::Dropped(DropReason::MinWeight)
                        }
                        None if published_somewhere => SampleState::Published,
                        None if moved_somewhere => SampleState::Dropped(DropReason::LocationChange),
                        None => SampleState::Dropped(DropReason::GroupTooSmall),
                    };
                    match state {
                        SampleState::Published => f_published.inc(),
                        SampleState::Dropped(reason) => f_dropped[reason.index()].inc(),
                        SampleState::Pending => unreachable!("provenance always resolves"),
                    }
                    ledger.resolve(&key, state);
                }
            }
        }
        drop(sp_prov);

        // ---- Behaviour preparation (§6) -------------------------------------------
        let sp_behavior = sp_run.child("stage.behavior");
        let _t_behavior = self.obs.stage_timer(&stage_behavior_us);
        let mut behavior_streams = Vec::new();
        // Order every streamer's streams across games to detect game
        // changes between consecutive streams. A BTreeMap keeps the
        // emitted order deterministic across processes.
        let mut per_streamer: BTreeMap<AnonId, Vec<(SimTime, SimTime, GameId, usize)>> =
            BTreeMap::new();
        for ((anon, game), series) in &streams {
            for (idx, s) in series.iter().enumerate() {
                if let (Some(first), Some(last)) = (s.samples.first(), s.samples.last()) {
                    per_streamer
                        .entry(*anon)
                        .or_default()
                        .push((first.at, last.at, *game, idx));
                }
            }
        }
        for (anon, mut entries) in per_streamer {
            entries.sort_by_key(|e| e.0);
            for (i, &(start, end, game, idx)) in entries.iter().enumerate() {
                let game_changed_after = entries.get(i + 1).is_some_and(|n| n.2 != game);
                let report = anomalies.get(&(anon, game));
                let spikes = report
                    .map(|r| {
                        r.spikes
                            .iter()
                            .filter(|s| s.start >= start && s.start <= end)
                            .cloned()
                            .collect::<Vec<_>>()
                    })
                    .unwrap_or_default();
                let first_server_change =
                    all_endpoint_changes.get(&(anon, game)).and_then(|changes| {
                        changes
                            .iter()
                            .filter(|c| c.kind == ChangeKind::Server)
                            .map(|c| c.at)
                            .find(|&at| at >= start && at <= end)
                    });
                behavior_streams.push(BehaviorStream {
                    anon,
                    game,
                    start,
                    end,
                    spikes,
                    first_server_change,
                    game_changed_after,
                });
                let _ = idx;
            }
        }

        drop(_t_behavior);
        drop(sp_behavior);
        a_dists.add(distributions.len() as u64);
        a_shared.add(shared_anomalies.len() as u64);

        TeroReport {
            download: download_stats,
            thumbnails: tasks.len() as u64,
            extracted,
            locations,
            streamers_seen: usernames.len(),
            streams,
            anomalies,
            classified,
            location_clusters,
            endpoint_changes: all_endpoint_changes,
            distributions,
            shared_anomalies,
            behavior_streams,
        }
    }
}

/// The aggregation granularity of one analysis group (§5's two published
/// levels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Granularity {
    /// Region-level groups: the full §3.3.3/§5/§6 product set.
    Region,
    /// Country-level groups: distributions only (Figs 9, 11, 12).
    Country,
}

/// How one member of a `{location, game}` group fared in the
/// distribution-publication decision — the group-level input to the
/// sample-provenance pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemberOutcome {
    /// Non-mover in a group that published a distribution: the member's
    /// cluster samples are in the data-set (subject to the per-streamer
    /// quality gates, which provenance checks separately).
    Contributor,
    /// Excluded for a possible location change (§3.3.3 step 4).
    Mover,
    /// The group published nothing — too few contributors, or no summary
    /// statistics could be computed.
    Withheld,
}

/// Everything the per-`{location, game}` aggregation derives from one
/// group — produced on a pool worker, merged in group-key order.
struct GroupAnalysis {
    /// §3.3.3 step-3 merged clusters (region granularity only).
    clusters: Vec<LatencyCluster>,
    /// Per-member end-point changes (region granularity only).
    changes: Vec<(AnonId, Vec<EndPointChange>)>,
    /// The published distribution, if the group clears `min_streamers`.
    distribution: Option<LocationDistribution>,
    /// Shared anomalies over the group (region granularity only).
    shared: Vec<SharedAnomaly>,
    /// Per-member publication outcome, for the provenance ledger.
    outcomes: Vec<(AnonId, MemberOutcome)>,
}

impl Tero {
    /// Analyse one `{location, game}` group: merged clusters, end-point
    /// changes, the published distribution and shared anomalies. Pure with
    /// respect to the pipeline's mutable state, so groups can run in
    /// parallel; at [`Granularity::Country`] only the distribution is
    /// produced (matching the sequential country loop).
    #[allow(clippy::too_many_arguments)]
    fn analyze_group(
        &self,
        gaz: &Gazetteer,
        game: GameId,
        members: &[AnonId],
        locations: &HashMap<AnonId, (Location, LocationSource)>,
        classified: &BTreeMap<(AnonId, GameId), ClassifiedStreamer>,
        anomalies: &BTreeMap<(AnonId, GameId), AnomalyReport>,
        granularity: Granularity,
    ) -> GroupAnalysis {
        let level = |loc: &Location| match granularity {
            Granularity::Region => loc.to_region_level(),
            Granularity::Country => loc.to_country_level(),
        };
        let classified_members: Vec<&ClassifiedStreamer> = members
            .iter()
            .filter_map(|a| classified.get(&(*a, game)))
            .collect();
        // Step 3: merged clusters from static streamers.
        let clusters = merge_location_clusters(&classified_members, self.params.lat_gap_ms);
        // Step 4: end-point changes for everyone in the group.
        let mut movers: Vec<AnonId> = Vec::new();
        let mut all_changes: Vec<(AnonId, Vec<EndPointChange>)> = Vec::new();
        for anon in members {
            if let Some(report) = anomalies.get(&(*anon, game)) {
                let changes = endpoint_changes(report, &clusters, self.params.lat_gap_ms);
                if changes
                    .iter()
                    .any(|c| c.kind == ChangeKind::PossibleLocation)
                {
                    movers.push(*anon);
                }
                if granularity == Granularity::Region && !changes.is_empty() {
                    all_changes.push((*anon, changes));
                }
            }
        }

        // Distributions: high-quality members with no possible location
        // change, at the group's granularity.
        let contributors: Vec<&ClassifiedStreamer> = members
            .iter()
            .filter(|a| !movers.contains(a))
            .filter_map(|a| classified.get(&(*a, game)))
            .collect();
        let mut distribution = None;
        if contributors.len() >= self.min_streamers {
            let group_loc = locations
                .get(&members[0])
                .map(|(l, _)| level(l))
                .expect("grouped member is located");
            let server = primary_server(gaz, game, &group_loc);
            let distance = server
                .as_ref()
                .and_then(|s| corrected_distance_to(gaz, &group_loc, s));
            if let Some(mut dist) = location_distribution(
                group_loc,
                game,
                &contributors,
                server.map(|s| s.location),
                distance,
            ) {
                if self.reject_outside_clusters {
                    reject_outside(&mut dist, &clusters, self.params.lat_gap_ms);
                }
                distribution = Some(dist);
            }
        }

        // Shared anomalies over the group (region granularity only).
        let shared = if granularity == Granularity::Region {
            let region_loc = locations
                .get(&members[0])
                .map(|(l, _)| level(l))
                .expect("grouped member is located");
            let activities: Vec<StreamerActivity> = members
                .iter()
                .filter_map(|a| {
                    let report = anomalies.get(&(*a, game))?;
                    let times: Vec<SimTime> = report
                        .segments
                        .iter()
                        .flat_map(|s| s.samples.iter().map(|x| x.at))
                        .collect();
                    Some(StreamerActivity {
                        anon: *a,
                        measurement_times: times,
                        spikes: report.spikes.clone(),
                    })
                })
                .collect();
            detect_shared_anomalies(game, &region_loc, &activities)
        } else {
            Vec::new()
        };

        let outcomes = members
            .iter()
            .map(|a| {
                let outcome = if movers.contains(a) {
                    MemberOutcome::Mover
                } else if distribution.is_some() {
                    MemberOutcome::Contributor
                } else {
                    MemberOutcome::Withheld
                };
                (*a, outcome)
            })
            .collect();

        GroupAnalysis {
            clusters,
            changes: all_changes,
            distribution,
            shared,
            outcomes,
        }
    }
}

/// The minimum-play constraint used by the behaviour study for one game.
pub fn min_play_for(game: GameId) -> SimDuration {
    SimDuration::from_mins(match_length_mins(game))
}

/// §3.1.2's opt-in filter: drop a distribution's values that fall outside
/// every latency cluster of the `{location, game}` (± `LatGap`), then
/// recompute its summary. Mislocated streamers' measurements rarely land
/// inside the location's real clusters, so this screens location errors
/// at the cost of some legitimate tail mass.
fn reject_outside(dist: &mut LocationDistribution, clusters: &[LatencyCluster], gap: u32) -> bool {
    if clusters.is_empty() {
        return false;
    }
    let inside = |v: f64| {
        clusters.iter().any(|c| {
            v >= c.min_ms.saturating_sub(gap) as f64 && v <= c.max_ms.saturating_add(gap) as f64
        })
    };
    let before = dist.values_ms.len();
    dist.values_ms.retain(|&v| inside(v));
    if dist.values_ms.len() == before {
        return false;
    }
    if let Some(stats) = tero_stats::BoxplotStats::from_samples(&dist.values_ms) {
        dist.stats = stats;
        dist.normalized = dist
            .corrected_distance_km
            .filter(|&d| d > 0.0)
            .map(|d| dist.stats.scaled(1_000.0 / d));
    }
    true
}

/// Mechanical extraction for [`ExtractionMode::Calibrated`]: reproduce the
/// OCR path's failure *mechanisms* from the scene ground truth, at rates
/// matched to the measured Full-OCR behaviour (see `tab04` in
/// EXPERIMENTS.md for the measurements this is calibrated against).
fn calibrated_extract(world: &World, task: &ThumbnailTask) -> CombineOutcome {
    let Some(streamer) = world.streamer(&task.streamer) else {
        return CombineOutcome::NoMeasurement;
    };
    let Some(sample) = world
        .twitch
        .truth_sample(task.streamer.as_str(), task.generated_at)
    else {
        return CombineOutcome::NoMeasurement;
    };
    // The true game being rendered (a mislabeled stream renders its actual
    // game, while the processor crops for the label).
    let truth_stream_game = world
        .timelines()
        .iter()
        .zip(world.streamers())
        .find(|(_, s)| s.id == task.streamer)
        .and_then(|(tl, _)| {
            tl.iter()
                .find(|st| st.start <= task.generated_at && task.generated_at < st.end)
        })
        .map(|st| st.game)
        .unwrap_or(task.game_label);
    if truth_stream_game != task.game_label {
        // Wrong crop: nothing legible.
        return CombineOutcome::NoMeasurement;
    }

    let (scene, mut rng) = build_scene(streamer, truth_stream_game, &sample);
    let value = sample.displayed_ms;
    if value == 0 {
        return CombineOutcome::NoMeasurement; // lobby placeholder
    }
    match scene.scenario {
        ScenarioKind::LightFont => CombineOutcome::NoMeasurement,
        ScenarioKind::ClockOverlay => {
            // The clock reads as a plausible wrong value (minutes field).
            let (_, mm) = scene.clock.unwrap_or((0, 42));
            if mm == 0 {
                CombineOutcome::NoMeasurement
            } else {
                CombineOutcome::Extracted {
                    primary: mm,
                    alternative: None,
                }
            }
        }
        ScenarioKind::PartiallyHidden => {
            let digits = value.to_string().len() as u32;
            let covered = scene.occlusion_fraction;
            if covered > 0.45 || digits == 1 {
                CombineOutcome::NoMeasurement
            } else {
                // Digit drop: leading digit(s) hidden; engines agree on the
                // visible tail (§4.2.2: 68 % of errors are digit drops).
                let keep = digits - 1;
                let primary = value % 10u32.pow(keep);
                if primary == 0 {
                    CombineOutcome::NoMeasurement
                } else {
                    // Occasionally one engine catches the full value and
                    // survives as the alternative.
                    let alternative = rng.chance(0.25).then_some(value);
                    CombineOutcome::Extracted {
                        primary,
                        alternative,
                    }
                }
            }
        }
        ScenarioKind::Typical => {
            // Measured Full-OCR behaviour on typical scenes: ~1-3 % miss
            // under heavy noise, ~2-4 % error (digit confusion), rare
            // disagreement alternatives.
            let noise_factor = (scene.noise * 40.0 + scene.grain / 10.0).min(1.0);
            if rng.chance(0.01 + 0.04 * noise_factor) {
                return CombineOutcome::NoMeasurement;
            }
            if rng.chance(0.015 + 0.05 * noise_factor) {
                // Digit confusion: perturb one digit.
                let digits = value.to_string().len() as u32;
                let pos = rng.below(digits as u64) as u32;
                let delta = [1u32, 2, 5, 7][rng.below(4) as usize];
                let scale = 10u32.pow(pos);
                let perturbed = if rng.chance(0.5) {
                    value.saturating_add(delta * scale)
                } else {
                    value.saturating_sub(delta * scale)
                };
                let perturbed = perturbed.clamp(1, 999);
                if perturbed != value {
                    let alternative = rng.chance(0.4).then_some(value);
                    return CombineOutcome::Extracted {
                        primary: perturbed,
                        alternative,
                    };
                }
            }
            CombineOutcome::Extracted {
                primary: value,
                alternative: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_world::WorldConfig;

    #[test]
    fn reject_outside_recomputes_summary() {
        let clusters = vec![LatencyCluster {
            min_ms: 40,
            max_ms: 50,
            samples: vec![],
            weight: 1.0,
        }];
        let values = vec![42.0, 45.0, 48.0, 200.0, 210.0];
        let mut dist = LocationDistribution {
            location: Location::country("France"),
            game: GameId::LeagueOfLegends,
            streamers: 2,
            values_ms: values.clone(),
            stats: tero_stats::BoxplotStats::from_samples(&values).unwrap(),
            server: None,
            corrected_distance_km: Some(500.0),
            normalized: None,
        };
        let changed = reject_outside(&mut dist, &clusters, 15);
        assert!(changed);
        assert_eq!(dist.values_ms.len(), 3, "outside-cluster values dropped");
        assert!(dist.stats.p95 <= 50.0 + 1e-9);
        assert!(dist.normalized.is_some(), "normalised summary recomputed");
        // No clusters -> no-op.
        let mut dist2 = dist.clone();
        assert!(!reject_outside(&mut dist2, &[], 15));
        // All inside -> untouched.
        let before = dist.values_ms.len();
        assert!(!reject_outside(&mut dist, &clusters, 15));
        assert_eq!(dist.values_ms.len(), before);
    }

    #[test]
    fn stream_gap_splits_series() {
        // Exercise the stream-splitting rule end to end: gaps within a
        // stream stay below the threshold; gaps between streams exceed it.
        let mut world = World::build(WorldConfig {
            seed: 3131,
            n_streamers: 15,
            days: 3,
            ..WorldConfig::default()
        });
        let tero = Tero {
            mode: ExtractionMode::Calibrated,
            ..Tero::default()
        };
        let report = tero.run(&mut world);
        for series in report.streams.values() {
            for stream in series {
                for w in stream.samples.windows(2) {
                    assert!(w[1].at.since(w[0].at) <= STREAM_GAP);
                }
            }
            for pair in series.windows(2) {
                let end = pair[0].samples.last().unwrap().at;
                let start = pair[1].samples.first().unwrap().at;
                assert!(start.since(end) > STREAM_GAP, "adjacent streams not split");
            }
        }
    }

    fn run(mode: ExtractionMode, seed: u64, n: usize, days: u64) -> (TeroReport, World) {
        let mut world = World::build(WorldConfig {
            seed,
            n_streamers: n,
            days,
            ..WorldConfig::default()
        });
        let tero = Tero {
            mode,
            min_streamers: 2,
            ..Tero::default()
        };
        let report = tero.run(&mut world);
        (report, world)
    }

    #[test]
    fn full_ocr_pipeline_end_to_end() {
        let (report, world) = run(ExtractionMode::FullOcr, 42, 30, 3);
        assert!(report.thumbnails > 100, "thumbnails {}", report.thumbnails);
        // Extraction rate in the right regime (the paper misses ~28 %).
        let rate = report.extracted as f64 / report.thumbnails as f64;
        assert!((0.4..0.98).contains(&rate), "extraction rate {rate}");
        // Some streamers located (not all — most have no usable footprint).
        assert!(!report.locations.is_empty());
        assert!(report.locations.len() < report.streamers_seen);
        // Streams and analysis products exist.
        assert!(!report.streams.is_empty());
        assert!(!report.anomalies.is_empty());
        assert!(report.retained_measurements() > 0);
        let _ = world;
    }

    #[test]
    fn calibrated_mode_matches_full_ocr_shape() {
        let (full, _) = run(ExtractionMode::FullOcr, 7, 25, 3);
        let (cal, _) = run(ExtractionMode::Calibrated, 7, 25, 3);
        assert_eq!(full.thumbnails, cal.thumbnails, "same downloads");
        let rate_full = full.extracted as f64 / full.thumbnails as f64;
        let rate_cal = cal.extracted as f64 / cal.thumbnails as f64;
        assert!(
            (rate_full - rate_cal).abs() < 0.15,
            "extraction rates {rate_full} vs {rate_cal}"
        );
    }

    #[test]
    fn metrics_snapshot_mirrors_report() {
        let mut world = World::build(WorldConfig {
            seed: 51,
            n_streamers: 25,
            days: 3,
            ..WorldConfig::default()
        });
        let tero = Tero {
            mode: ExtractionMode::Calibrated,
            min_streamers: 2,
            ..Tero::default()
        };
        let report = tero.run(&mut world);
        let snap = tero.metrics_snapshot();
        assert_eq!(snap.counter("pipeline.thumbnails"), Some(report.thumbnails));
        assert_eq!(snap.counter("pipeline.extracted"), Some(report.extracted));
        assert_eq!(
            snap.counter("pipeline.no_measurement"),
            Some(report.thumbnails - report.extracted),
            "calibrated mode never skips an image, so misses + hits = thumbnails"
        );
        let stitched: u64 = report.streams.values().map(|s| s.len() as u64).sum();
        assert_eq!(snap.counter("pipeline.streams_stitched"), Some(stitched));
        assert_eq!(
            snap.counter("pipeline.streamers_located"),
            Some(report.locations.len() as u64)
        );
        let segments: u64 = report
            .anomalies
            .values()
            .map(|r| r.segments.len() as u64)
            .sum();
        assert_eq!(snap.counter("analysis.segments_built"), Some(segments));
        assert_eq!(
            snap.counter("analysis.distributions_published"),
            Some(report.distributions.len() as u64)
        );
        // Download metrics arrive through the same registry.
        assert_eq!(
            snap.counter("download.get_hits"),
            Some(report.download.downloaded)
        );
        // Store counters are live: the run reads and writes the kv store.
        assert!(snap.counter("store.kv.writes").unwrap() > 0);
        assert!(snap.counter("store.object.writes").unwrap() > 0);
        // Timing is off by default: histograms registered but empty.
        let run_us = snap.histogram("pipeline.run_us").unwrap();
        assert_eq!(run_us.count, 0, "timing disabled by default");
    }

    #[test]
    fn ledger_reconciles_with_funnel_counters() {
        // The provenance pass must account for every ingested thumbnail
        // in both extraction modes, and the ledger's books must match the
        // pipeline.funnel.* counters exactly.
        for mode in [ExtractionMode::Calibrated, ExtractionMode::FullOcr] {
            let mut world = World::build(WorldConfig {
                seed: 77,
                n_streamers: 25,
                days: 2,
                ..WorldConfig::default()
            });
            let tero = Tero {
                mode,
                min_streamers: 2,
                ..Tero::default()
            };
            let report = tero.run(&mut world);
            let summary = tero
                .trace
                .ledger()
                .reconcile(&tero.obs)
                .expect("ledger reconciles");
            assert_eq!(summary.ingested, report.thumbnails, "{mode:?}");
            assert!(summary.ingested > 0, "{mode:?}");
            assert!(
                summary.published + summary.total_dropped() == summary.ingested,
                "{mode:?}: every sample resolved"
            );
        }
    }

    #[test]
    fn extraction_accuracy_against_ground_truth() {
        let (report, world) = run(ExtractionMode::FullOcr, 11, 25, 3);
        // Compare extracted values to the world's truth samples.
        let mut correct = 0u64;
        let mut wrong = 0u64;
        for ((anon, _game), series) in &report.streams {
            // Recover the username (test-only; the pipeline itself never
            // stores it).
            let Some(streamer) = world
                .streamers()
                .iter()
                .find(|s| AnonId::from_streamer(&s.id, 0x7e60) == *anon)
            else {
                continue;
            };
            for s in series.iter().flat_map(|s| &s.samples) {
                if let Some(truth) = world.twitch.truth_sample(streamer.id.as_str(), s.at) {
                    if truth.displayed_ms == s.latency_ms {
                        correct += 1;
                    } else {
                        wrong += 1;
                    }
                }
            }
        }
        let total = correct + wrong;
        assert!(total > 100);
        let err = wrong as f64 / total as f64;
        assert!(err < 0.15, "extraction error rate {err}");
    }
}
