//! Offline stand-in for `crossbeam`.
//!
//! The workspace declares crossbeam for pipeline worker channels; this shim
//! provides [`channel`] (unbounded/bounded MPSC over `std::sync::mpsc`,
//! with crossbeam's method names) and re-exports [`std::thread::scope`]
//! under crossbeam's `scope` spelling. Receivers are not cloneable (std
//! mpsc is single-consumer) — fan-out consumers should wrap the receiver
//! in a mutex or use the KV store's queues instead.

/// MPSC channels with crossbeam's API names.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Sending half of a channel.
    pub struct Sender<T> {
        inner: SenderInner<T>,
    }

    enum SenderInner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: match &self.inner {
                    SenderInner::Unbounded(s) => SenderInner::Unbounded(s.clone()),
                    SenderInner::Bounded(s) => SenderInner::Bounded(s.clone()),
                },
            }
        }
    }

    /// Receiving half of a channel (single consumer).
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned when the channel is disconnected on send.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the channel is empty/disconnected on receive.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvError {
        /// All senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message waiting.
        Empty,
        /// All senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed.
        Timeout,
        /// All senders dropped.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Send a message, blocking if the channel is bounded and full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderInner::Unbounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
                SenderInner::Bounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError::Disconnected)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Iterate over messages until all senders drop.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: SenderInner::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: SenderInner::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }
}

/// Scoped threads (std-backed).
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

/// Crossbeam's top-level `scope` spelling.
pub use std::thread::scope;

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn unbounded_send_recv() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
    }

    #[test]
    fn bounded_works_across_threads() {
        let (tx, rx) = channel::bounded(2);
        let h = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        h.join().unwrap();
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        drop(tx);
    }
}
