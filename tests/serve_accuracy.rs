//! The serving layer's accuracy and determinism contract.
//!
//! * **Accuracy**: every percentile served from the committed sketches
//!   sits within the sketch's documented relative-error bound
//!   (`QuantileSketch::relative_error_bound`, ≈ 2 % at the default
//!   accuracy) of the *exact* nearest-rank value computed from the same
//!   retained samples the §5.2 report is built from.
//! * **Determinism**: the committed serving bytes — every `engine:serve:`
//!   key except the schedule-dependent version counter — are
//!   byte-identical across worker counts and window schedules, so any
//!   query replay folds to the same checksum.
//! * **Emptiness**: a percentile of nothing is `None`, not a number —
//!   absent and empty distributions answer identically.

use std::collections::BTreeMap;
use tero::core::pipeline::{ExtractionMode, Tero, TeroReport, WindowOutcome};
use tero::core::serving::{ServeGranularity, SERVE_PREFIX, SERVE_VERSION_KEY};
use tero::serve::{fold_answers, LoadGen, QueryEngine, SketchRef, QUERY_PERCENTILES};
use tero::stats::{percentile_nearest_rank, QuantileSketch, DEFAULT_ALPHA};
use tero::store::KvStore;
use tero::types::{GameId, Location, SimDuration, SimTime};
use tero::world::{World, WorldConfig};

/// The §5.2 workload shape (same as `examples/serve_explore.rs`):
/// streamers pinned to a handful of places so the publish stage has
/// groups that clear `min_streamers`.
fn pinned_world(seed: u64) -> World {
    let pinned = [
        Location::country("Netherlands"),
        Location::country("Poland"),
        Location::region("United States", "Illinois"),
    ]
    .map(|l| (l, GameId::LeagueOfLegends, 14))
    .into_iter()
    .collect();
    World::build(WorldConfig {
        seed,
        n_streamers: 0,
        days: 2,
        pinned,
        api_budget_per_min: 2_000,
        ..WorldConfig::default()
    })
}

fn tero(worker_threads: usize) -> Tero {
    Tero {
        mode: ExtractionMode::Calibrated,
        min_streamers: 2,
        worker_threads,
        ..Tero::default()
    }
}

/// Run to completion in `windows` equal slices (1 = single-shot) and
/// return the report plus the serving store.
fn run(seed: u64, worker_threads: usize, windows: u64) -> (TeroReport, KvStore) {
    let mut world = pinned_world(seed);
    let t = tero(worker_threads);
    let report = if windows <= 1 {
        t.run(&mut world)
    } else {
        let step = SimDuration::from_micros(world.horizon.as_micros().div_ceil(windows).max(1));
        let mut to = SimTime::EPOCH + step;
        loop {
            match t.run_window(&mut world, SimTime::EPOCH, to) {
                WindowOutcome::Complete(report) => break report,
                WindowOutcome::Advanced => to += step,
                WindowOutcome::Killed => {}
            }
        }
    };
    let kv = t.try_serving_store().expect("completed run serves");
    (report, kv)
}

/// The typed serving conditions: a fresh `Tero` is `NoCompletedRun`; a
/// completed run whose publish stage cleared nothing is
/// `NoDistributions` — even though the untyped accessor happily hands
/// back the (silently empty) store in that case.
#[test]
fn try_serving_store_types_the_empty_conditions() {
    let t = tero(1);
    assert_eq!(
        t.try_serving_store().unwrap_err(),
        tero::core::serving::ServingError::NoCompletedRun
    );

    // A publish threshold no group can clear: the run completes, the
    // store exists, but zero distribution sketches were published.
    let mut world = pinned_world(9);
    let t = Tero {
        min_streamers: 10_000,
        ..tero(1)
    };
    t.run(&mut world);
    assert!(
        t.serving_store().is_some(),
        "untyped accessor serves the empty store without complaint"
    );
    assert_eq!(
        t.try_serving_store().unwrap_err(),
        tero::core::serving::ServingError::NoDistributions
    );
}

/// Every committed serving key → value, minus the version counter (its
/// count is window-schedule-dependent by design; the sketches are not).
fn serving_bytes(kv: &KvStore) -> BTreeMap<String, String> {
    kv.keys_with_prefix(SERVE_PREFIX)
        .into_iter()
        .filter(|k| k != SERVE_VERSION_KEY)
        .map(|k| {
            let v = kv.get(&k).expect("listed key exists");
            (k, v)
        })
        .collect()
}

#[test]
fn served_percentiles_within_documented_bound_of_exact() {
    let (report, kv) = run(11, 2, 1);
    let engine = QueryEngine::new(kv, &tero_obs::Registry::new());
    let served = engine.distributions();
    assert!(
        !served.is_empty(),
        "pinned world publishes distributions to serve"
    );
    assert_eq!(served.len(), report.distributions.len());

    let bound = QuantileSketch::new(DEFAULT_ALPHA).relative_error_bound();
    for (granularity, game, location_key) in &served {
        let target = SketchRef::dist(*granularity, *game, location_key);
        let n = engine.boxplot(&target).expect("served sketch non-empty").n;
        // The matching report distribution: same key, game and sample
        // count (count disambiguates granularities for country-only
        // groups, which publish the same key at both levels).
        let exact_values = &report
            .distributions
            .iter()
            .find(|d| d.game == *game && d.location.key() == *location_key && d.stats.n == n)
            .expect("every served distribution is in the report")
            .values_ms;
        assert_eq!(n, exact_values.len());

        for p in QUERY_PERCENTILES {
            let served_p = engine.percentile(&target, p).expect("non-empty");
            let exact_p = percentile_nearest_rank(exact_values, p).expect("non-empty");
            let err = (served_p - exact_p).abs();
            assert!(
                err <= bound * exact_p + 1e-9,
                "[{granularity:?}] {location_key}/{game} p{p}: served {served_p} vs exact \
                 {exact_p} — relative error {:.4} exceeds bound {bound:.4}",
                err / exact_p
            );
        }
    }
}

#[test]
fn serving_bytes_identical_across_workers_and_schedules() {
    let (_, baseline) = run(11, 2, 1);
    let baseline = serving_bytes(&baseline);
    assert!(!baseline.is_empty(), "run committed serving keys");

    for (workers, windows) in [(1, 1), (4, 1), (2, 5), (4, 8)] {
        let (_, kv) = run(11, workers, windows);
        assert_eq!(
            serving_bytes(&kv),
            baseline,
            "{workers} workers / {windows} windows changed the serving bytes"
        );
    }
}

#[test]
fn replay_checksum_survives_schedule_changes() {
    // The end-to-end corollary: a fixed query stream folded over two
    // differently-scheduled runs of the same world answers identically.
    let (_, a) = run(23, 1, 1);
    let (_, b) = run(23, 4, 6);
    let ra = QueryEngine::new(a, &tero_obs::Registry::new());
    let rb = QueryEngine::new(b, &tero_obs::Registry::new());
    assert_eq!(ra.distributions(), rb.distributions());
    let targets: Vec<SketchRef> = ra
        .distributions()
        .iter()
        .map(|(g, game, loc)| SketchRef::dist(*g, *game, loc))
        .collect();
    let queries = LoadGen::new(23, targets).generate(2_000);
    let fold = |engine: &QueryEngine| {
        fold_answers(&queries.iter().map(|q| engine.query(q)).collect::<Vec<_>>())
    };
    assert_eq!(fold(&ra), fold(&rb));
}

#[test]
fn empty_and_absent_distributions_answer_none() {
    let kv = KvStore::new();
    let empty = SketchRef::dist(ServeGranularity::Country, GameId::LeagueOfLegends, "France");
    kv.set(empty.key(), QuantileSketch::default().encode());
    let engine = QueryEngine::new(kv, &tero_obs::Registry::new());
    let absent = SketchRef::dist(
        ServeGranularity::Region,
        GameId::LeagueOfLegends,
        "Atlantis",
    );
    for p in QUERY_PERCENTILES {
        assert_eq!(engine.percentile(&empty, p), None, "empty: p{p} is None");
        assert_eq!(engine.percentile(&absent, p), None, "absent: p{p} is None");
    }
    assert_eq!(engine.wasserstein(&empty, &absent), None);
    assert!(engine.histogram(&empty).is_empty());
    assert_eq!(engine.distributions().len(), 1, "empty is still listed");
}
