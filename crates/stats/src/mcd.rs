//! Minimum Covariance Determinant (Rousseeuw & Van Driessen \[45\]) — the
//! distribution-based baseline of App. J.
//!
//! For univariate data the MCD estimator is exact and cheap: the h-subset
//! with the smallest covariance determinant is the length-`h` window of the
//! sorted data with the smallest variance. Robust location/scale come from
//! that window; anomalies are points whose squared robust distance exceeds a
//! χ²₁ quantile, or — following the paper's usage — the top `contamination`
//! fraction by robust distance.

use crate::special::inv_norm_cdf;
use serde::{Deserialize, Serialize};

/// The univariate MCD estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnivariateMcd {
    /// Robust location (mean of the optimal h-subset).
    pub location: f64,
    /// Robust scale (std-dev of the optimal h-subset, consistency-corrected).
    pub scale: f64,
    /// Size of the h-subset used.
    pub h: usize,
}

impl UnivariateMcd {
    /// Fit with subset size `h` (defaults to `⌈(n+2)/2⌉` when `None`, the
    /// maximally robust choice). Returns `None` for fewer than 2 points.
    pub fn fit(xs: &[f64], h: Option<usize>) -> Option<UnivariateMcd> {
        let n = xs.len();
        if n < 2 {
            return None;
        }
        let h = h.unwrap_or((n + 2) / 2).clamp(2, n);
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in MCD input"));

        // Sliding window over the sorted data: variance of each length-h
        // window via prefix sums; pick the smallest.
        let mut s1 = vec![0.0; n + 1];
        let mut s2 = vec![0.0; n + 1];
        for (i, &x) in sorted.iter().enumerate() {
            s1[i + 1] = s1[i] + x;
            s2[i + 1] = s2[i] + x * x;
        }
        let mut best_var = f64::INFINITY;
        let mut best_start = 0;
        for start in 0..=(n - h) {
            let sum = s1[start + h] - s1[start];
            let sumsq = s2[start + h] - s2[start];
            let var = (sumsq - sum * sum / h as f64) / h as f64;
            if var < best_var {
                best_var = var;
                best_start = start;
            }
        }
        let sum = s1[best_start + h] - s1[best_start];
        let location = sum / h as f64;

        // Consistency correction for normal data: the h/n most central
        // points of a normal sample underestimate sigma by a known factor.
        let alpha = h as f64 / n as f64;
        let correction = consistency_factor(alpha);
        let scale = (best_var.max(0.0)).sqrt() * correction;

        Some(UnivariateMcd {
            location,
            scale: scale.max(1e-12),
            h,
        })
    }

    /// Squared robust (Mahalanobis) distance of a point.
    pub fn robust_distance_sq(&self, x: f64) -> f64 {
        let d = (x - self.location) / self.scale;
        d * d
    }

    /// Flag outliers at χ²₁ quantile `1 − alpha` (e.g. `alpha = 0.025` gives
    /// the classical 97.5 % cutoff).
    pub fn outliers_chi2(&self, xs: &[f64], alpha: f64) -> Vec<usize> {
        // χ²₁ quantile = (z_{1−alpha/2})²? No: if D² ~ χ²₁ then
        // P(D² > q) = alpha  ⇔  q = (Φ⁻¹(1 − alpha/2))².
        let z = inv_norm_cdf(1.0 - alpha / 2.0);
        let q = z * z;
        xs.iter()
            .enumerate()
            .filter(|(_, &x)| self.robust_distance_sq(x) > q)
            .map(|(i, _)| i)
            .collect()
    }

    /// Flag the top `contamination` fraction of points by robust distance —
    /// the "known contamination factor" usage the paper describes (App. J,
    /// swept over `[0.01, 0.5]`).
    pub fn outliers_by_contamination(&self, xs: &[f64], contamination: f64) -> Vec<usize> {
        let n = xs.len();
        if n == 0 {
            return vec![];
        }
        let k = ((n as f64) * contamination.clamp(0.0, 1.0)).round() as usize;
        if k == 0 {
            return vec![];
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            self.robust_distance_sq(xs[b])
                .partial_cmp(&self.robust_distance_sq(xs[a]))
                .unwrap()
        });
        let mut flagged: Vec<usize> = order.into_iter().take(k).collect();
        flagged.sort_unstable();
        flagged
    }
}

/// Consistency factor for the truncated-normal variance: for a central
/// fraction `alpha` of a standard normal, the variance of the kept mass is
/// `1 − 2 q φ(q) / alpha` with `q = Φ⁻¹((1+alpha)/2)`; the factor is the
/// reciprocal square root of that.
fn consistency_factor(alpha: f64) -> f64 {
    if alpha >= 0.999_999 {
        return 1.0;
    }
    let q = inv_norm_cdf((1.0 + alpha) / 2.0);
    let phi = crate::special::norm_pdf(q);
    let truncated_var = 1.0 - 2.0 * q * phi / alpha;
    if truncated_var <= 1e-12 {
        1.0
    } else {
        1.0 / truncated_var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_types::SimRng;

    #[test]
    fn recovers_location_and_scale_under_contamination() {
        let mut rng = SimRng::new(42);
        // 80% N(50, 2), 20% junk at 200.
        let mut xs: Vec<f64> = (0..400).map(|_| rng.normal_with(50.0, 2.0)).collect();
        xs.extend(std::iter::repeat_n(200.0, 100));
        let mcd = UnivariateMcd::fit(&xs, None).unwrap();
        assert!(
            (mcd.location - 50.0).abs() < 0.5,
            "location {}",
            mcd.location
        );
        // Under 20 % contamination the h-subset covers a wider central slice
        // of the clean component than h/n assumes, so the corrected scale
        // overshoots a little — the classical MCD behaviour.
        assert!((mcd.scale - 2.0).abs() < 0.9, "scale {}", mcd.scale);
    }

    #[test]
    fn plain_mean_would_be_fooled() {
        // Contrast with the non-robust mean, to document why MCD matters.
        let mut rng = SimRng::new(43);
        let mut xs: Vec<f64> = (0..400).map(|_| rng.normal_with(50.0, 2.0)).collect();
        xs.extend(std::iter::repeat_n(200.0, 100));
        let naive = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(naive > 75.0, "naive mean {naive} pulled by contamination");
    }

    #[test]
    fn chi2_outlier_detection() {
        let mut rng = SimRng::new(7);
        let mut xs: Vec<f64> = (0..500).map(|_| rng.normal_with(30.0, 1.5)).collect();
        xs.push(80.0);
        xs.push(85.0);
        let mcd = UnivariateMcd::fit(&xs, None).unwrap();
        let out = mcd.outliers_chi2(&xs, 0.01);
        assert!(out.contains(&500) && out.contains(&501), "out {out:?}");
        // False-positive rate near the nominal alpha.
        assert!(out.len() < 20, "too many: {}", out.len());
    }

    #[test]
    fn contamination_flagging_counts() {
        let mut rng = SimRng::new(9);
        let xs: Vec<f64> = (0..200).map(|_| rng.normal_with(10.0, 1.0)).collect();
        let mcd = UnivariateMcd::fit(&xs, None).unwrap();
        assert_eq!(mcd.outliers_by_contamination(&xs, 0.1).len(), 20);
        assert!(mcd.outliers_by_contamination(&xs, 0.0).is_empty());
        assert_eq!(mcd.outliers_by_contamination(&xs, 1.0).len(), 200);
    }

    #[test]
    fn clean_normal_data_unbiased_scale() {
        let mut rng = SimRng::new(11);
        let xs: Vec<f64> = (0..5_000).map(|_| rng.normal_with(0.0, 3.0)).collect();
        let mcd = UnivariateMcd::fit(&xs, None).unwrap();
        assert!(mcd.location.abs() < 0.2, "location {}", mcd.location);
        assert!(
            (mcd.scale - 3.0).abs() < 0.25,
            "consistency-corrected scale {}",
            mcd.scale
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert!(UnivariateMcd::fit(&[], None).is_none());
        assert!(UnivariateMcd::fit(&[5.0], None).is_none());
        let constant = vec![4.0; 20];
        let mcd = UnivariateMcd::fit(&constant, None).unwrap();
        assert_eq!(mcd.location, 4.0);
        assert!(mcd.outliers_chi2(&constant, 0.01).is_empty());
        // A single deviant among constants is flagged.
        let mut xs = constant.clone();
        xs.push(10.0);
        let mcd = UnivariateMcd::fit(&xs, None).unwrap();
        assert_eq!(mcd.outliers_chi2(&xs, 0.01), vec![20]);
    }
}
