//! Testbed — run one §4.1 experiment on the Fig 3 topology and watch the
//! displayed gaming latency track (and lag) the bottleneck's network
//! latency.
//!
//! ```sh
//! cargo run --release --example testbed
//! ```

use tero::simnet::experiment::{run_experiment, ExperimentConfig, GameProfile};

fn main() {
    let config = ExperimentConfig {
        game: GameProfile::LOL,
        bottleneck_bps: 100e6,
        bottleneck_queue: 1_000,
        bg_packet_bytes: 1_250,
    };
    println!(
        "experiment: {} over a {:.0} Mbps bottleneck, {}-packet queue",
        config.game.name,
        config.bottleneck_bps / 1e6,
        config.bottleneck_queue
    );
    println!("(5-minute protocol at half scale: startup / UDP / UDP+TCP / die-down)");
    println!();

    let result = run_experiment(config, 0.5);
    assert!(
        result.startup_ok,
        "Control and Test disagreed during startup"
    );

    // A strip chart: one row per 5 seconds.
    println!(
        "{:>6} {:>10} {:>10} {:>12}  adjusted vs bottleneck",
        "t[s]", "test[ms]", "ctrl[ms]", "bneck[ms]"
    );
    for s in result.samples.iter().step_by(25) {
        let adjusted = s.test_ms - s.control_ms;
        let bar_len = (adjusted / 8.0).clamp(0.0, 60.0) as usize;
        let net_len = (s.bottleneck_ms / 8.0).clamp(0.0, 60.0) as usize;
        let mut bar = vec![' '; 61];
        bar[net_len] = '|';
        for cell in bar.iter_mut().take(bar_len) {
            *cell = '#';
        }
        println!(
            "{:>6} {:>10.1} {:>10.1} {:>12.1}  {}",
            s.t_ms / 1_000,
            s.test_ms,
            s.control_ms,
            s.bottleneck_ms,
            bar.into_iter().collect::<String>()
        );
    }

    let diffs = result.differences();
    let mut sorted = diffs.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p95 = tero::stats::descriptive::percentile_sorted(&sorted, 95.0);
    println!();
    println!(
        "max bottleneck latency: {:.1} ms; p95 |adjusted − network|: {:.2} ms",
        result.max_bottleneck_ms(),
        p95
    );
    println!("(the '#' bar is the displayed-latency delta; '|' is the network truth —");
    println!(" watch the bar lag the pipe at the start and end of background traffic)");
}
