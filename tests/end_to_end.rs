//! End-to-end integration tests: the full pipeline against the synthetic
//! platform, with ground-truth verification across crate boundaries.

use tero::core::pipeline::{ExtractionMode, Tero};
use tero::types::{AnonId, GameId};
use tero::world::{World, WorldConfig};

fn small_world(seed: u64) -> World {
    World::build(WorldConfig {
        seed,
        n_streamers: 35,
        days: 3,
        ..WorldConfig::default()
    })
}

#[test]
fn full_ocr_pipeline_produces_consistent_report() {
    let mut world = small_world(71);
    let tero = Tero {
        mode: ExtractionMode::FullOcr,
        min_streamers: 3,
        ..Tero::default()
    };
    let report = tero.run(&mut world);

    // The download module cannot invent thumbnails.
    assert!(report.thumbnails as usize <= world.total_samples());
    assert!(report.extracted <= report.thumbnails);
    // Extraction lands in a sane regime.
    let rate = report.extracted as f64 / report.thumbnails.max(1) as f64;
    assert!((0.3..1.0).contains(&rate), "extraction rate {rate}");
    // Streams partition extracted measurements.
    let in_streams: usize = report
        .streams
        .values()
        .flat_map(|s| s.iter())
        .map(|s| s.samples.len())
        .sum();
    assert_eq!(in_streams as u64, report.extracted);
    // Cleaning never grows the data.
    assert!(report.retained_measurements() <= in_streams);
    // TTL housekeeping ran: offline cooldowns (and any lapsed leases) are
    // swept by the coordinator on every poll.
    let snap = tero.metrics_snapshot();
    assert!(
        snap.counter("download.ttl_swept").unwrap_or(0) > 0,
        "expired TTL keys must be swept during the run"
    );
    // The provenance ledger accounts for every ingested sample and its
    // totals match the pipeline.funnel.* counters record-for-record.
    let summary = tero
        .trace
        .ledger()
        .reconcile(&tero.obs)
        .expect("ledger reconciles with the funnel counters");
    assert_eq!(summary.ingested, report.thumbnails);
    assert_eq!(
        summary.published + summary.total_dropped(),
        summary.ingested,
        "every sample is published or carries a typed drop reason"
    );
}

#[test]
fn located_streamers_match_ground_truth() {
    let mut world = small_world(72);
    let tero = Tero {
        mode: ExtractionMode::Calibrated,
        ..Tero::default()
    };
    let report = tero.run(&mut world);

    let mut checked = 0;
    let mut correct = 0;
    for streamer in world.streamers() {
        let anon = AnonId::from_streamer(&streamer.id, tero.salt);
        if let Some((loc, _source)) = report.locations.get(&anon) {
            checked += 1;
            let truth = &streamer.home.location;
            if loc == truth || loc.subsumes(truth) || truth.subsumes(loc) {
                correct += 1;
            }
        }
    }
    assert!(checked >= 5, "only {checked} located");
    let accuracy = correct as f64 / checked as f64;
    assert!(
        accuracy > 0.9,
        "location accuracy {accuracy} ({correct}/{checked})"
    );
}

#[test]
fn extracted_values_track_displayed_truth() {
    let mut world = small_world(73);
    let tero = Tero {
        mode: ExtractionMode::FullOcr,
        ..Tero::default()
    };
    let report = tero.run(&mut world);

    let mut correct = 0u64;
    let mut total = 0u64;
    for ((anon, _), series) in &report.streams {
        let Some(streamer) = world
            .streamers()
            .iter()
            .find(|s| AnonId::from_streamer(&s.id, tero.salt) == *anon)
        else {
            continue;
        };
        for s in series.iter().flat_map(|st| &st.samples) {
            if let Some(truth) = world.twitch.truth_sample(streamer.id.as_str(), s.at) {
                total += 1;
                if truth.displayed_ms == s.latency_ms {
                    correct += 1;
                }
            }
        }
    }
    assert!(total > 50, "joined {total} samples");
    let accuracy = correct as f64 / total as f64;
    assert!(accuracy > 0.85, "value accuracy {accuracy}");
}

#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let mut world = small_world(74);
        let tero = Tero {
            mode: ExtractionMode::Calibrated,
            ..Tero::default()
        };
        let report = tero.run(&mut world);
        (
            report.thumbnails,
            report.extracted,
            report.locations.len(),
            report.retained_measurements(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn anonymisation_hides_usernames() {
    let mut world = small_world(75);
    let tero = Tero {
        mode: ExtractionMode::Calibrated,
        ..Tero::default()
    };
    let report = tero.run(&mut world);
    // No AnonId display ever contains a raw username.
    for anon in report.locations.keys() {
        let shown = anon.to_string();
        for streamer in world.streamers() {
            assert!(
                !shown.contains(streamer.id.as_str()),
                "anon id leaks username"
            );
        }
    }
}

#[test]
fn cluster_rejection_tightens_distributions() {
    // §3.1.2's opt-in: rejecting values outside the location's clusters can
    // only remove mass, never add it, and the summary stays ordered.
    let run = |reject: bool| {
        let mut world = small_world(77);
        let tero = Tero {
            mode: ExtractionMode::Calibrated,
            min_streamers: 2,
            reject_outside_clusters: reject,
            ..Tero::default()
        };
        tero.run(&mut world)
    };
    let plain = run(false);
    let filtered = run(true);
    assert_eq!(plain.distributions.len(), filtered.distributions.len());
    for (a, b) in plain.distributions.iter().zip(&filtered.distributions) {
        assert_eq!(a.location, b.location);
        assert!(
            b.values_ms.len() <= a.values_ms.len(),
            "{}: rejection must not add values",
            a.location
        );
        assert!(b.stats.p5 <= b.stats.p50 && b.stats.p50 <= b.stats.p95);
    }
}

#[test]
fn game_labels_are_among_known_games() {
    let mut world = small_world(76);
    let tero = Tero {
        mode: ExtractionMode::Calibrated,
        ..Tero::default()
    };
    let report = tero.run(&mut world);
    for (_, game) in report.streams.keys() {
        assert!(GameId::ALL.contains(game));
    }
}
