//! The deterministic store network.
//!
//! [`SimNet`] is a registry of named hosts plus a delay/fault model. A
//! request/response exchange between two hosts costs logical time from
//! the shared [`LinkConfig`]'s
//! [`transfer_delay`](LinkConfig::transfer_delay) (serialization +
//! propagation per frame, one leg each way), and is subject to the
//! [`NetFault`] schedule of the attached
//! [`ChaosInjector`]:
//!
//! * **partitions** sever a host pair over a window range — checked
//!   first, no RNG consumed;
//! * **host kills** make a destination answer nothing over a window
//!   range — checked second, no RNG consumed;
//! * **frame faults** (random drop or extra delay) draw once per frame
//!   leg from the injector's dedicated net stream.
//!
//! A dropped *request* leg means the server never saw the operation; a
//! dropped *response* leg means it did — which is exactly why the
//! server deduplicates retries (see [`crate::server`]).
//!
//! Time is window-indexed: the orchestrator calls [`SimNet::set_window`]
//! before each engine round, and every planned fault is expressed in
//! window ranges, so the whole fault timeline replays from the plan.

use crate::server::StoreServer;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tero_chaos::{ChaosInjector, HostKill, NetFault, NetFrameFault, NetPartition};
use tero_simnet::LinkConfig;
use tero_types::SimDuration;

/// Host name of engine `i` on the store network.
pub fn engine_host(i: usize) -> String {
    format!("engine{i}")
}

/// Host name of shard `s`'s primary store server.
pub fn primary_host(s: usize) -> String {
    format!("shard{s}p")
}

/// Host name of shard `s`'s replica store server.
pub fn replica_host(s: usize) -> String {
    format!("shard{s}r")
}

/// The link every store frame traverses: a 1 Gb/s machine-room link
/// with 200 µs propagation — fast enough that the store round-trips
/// stay far below the engine's window cadence, slow enough that the
/// `net.*` timing metrics are non-trivial.
pub fn default_link() -> LinkConfig {
    LinkConfig {
        rate_bps: 1e9,
        prop: SimDuration::from_micros(200),
        queue_packets: 64,
    }
}

/// The standard sharded chaos mix used by CI and the failover suite:
/// modest random frame loss and delay, shard 1's primary killed for the
/// middle third of the run, and engine 0 partitioned from the last
/// shard's primary for one window just past halfway. Survivable by
/// construction for any `shards ≥ 1`, `windows ≥ 2`.
pub fn default_net_fault(shards: usize, windows: u64) -> NetFault {
    let third = (windows / 3).max(1);
    NetFault {
        frame_drop_rate: 0.02,
        frame_delay_rate: 0.05,
        frame_delay: SimDuration::from_millis(5),
        partitions: vec![NetPartition {
            a: engine_host(0),
            b: primary_host(shards.saturating_sub(1)),
            from_window: windows / 2,
            until_window: (windows / 2 + 1).min(windows),
        }],
        kills: vec![HostKill {
            host: primary_host(1 % shards.max(1)),
            from_window: third,
            until_window: (2 * third).min(windows),
        }],
    }
}

/// Why an exchange failed. The client treats every variant as "the
/// deadline expired": it charges the attempt timeout and retries or
/// fails over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// The host pair is partitioned this window.
    Partitioned,
    /// The destination host is killed this window.
    HostDown,
    /// A frame leg was dropped in flight. The request may or may not
    /// have been applied — only the server's dedup cache knows.
    FrameLost,
    /// No host with that name is registered.
    UnknownHost,
}

struct NetInner {
    link: LinkConfig,
    chaos: ChaosInjector,
    window: AtomicU64,
    hosts: Mutex<HashMap<String, StoreServer>>,
}

/// The deterministic in-process store network. Cloning shares the
/// registry, window and fault state.
#[derive(Clone)]
pub struct SimNet {
    inner: Arc<NetInner>,
}

impl SimNet {
    /// Create a network with the given delay model and fault source.
    pub fn new(link: LinkConfig, chaos: ChaosInjector) -> SimNet {
        SimNet {
            inner: Arc::new(NetInner {
                link,
                chaos,
                window: AtomicU64::new(0),
                hosts: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Build a network and register `shards` primary/replica server
    /// pairs on it, named per [`primary_host`] / [`replica_host`].
    pub fn with_shards(link: LinkConfig, chaos: ChaosInjector, shards: usize) -> SimNet {
        let net = SimNet::new(link, chaos);
        for s in 0..shards {
            net.register(StoreServer::new(primary_host(s)));
            net.register(StoreServer::new(replica_host(s)));
        }
        net
    }

    /// Register a store host under its own name.
    pub fn register(&self, server: StoreServer) {
        self.inner
            .hosts
            .lock()
            .insert(server.name().to_string(), server);
    }

    /// Look up a registered host (tests, resync verification).
    pub fn server(&self, name: &str) -> Option<StoreServer> {
        self.inner.hosts.lock().get(name).cloned()
    }

    /// Advance the fault timeline to window `w`. Called by the
    /// orchestrator before each engine round.
    pub fn set_window(&self, w: u64) {
        self.inner.window.store(w, Ordering::SeqCst);
    }

    /// The current window index.
    pub fn window(&self) -> u64 {
        self.inner.window.load(Ordering::SeqCst)
    }

    /// The fault source driving this network.
    pub fn chaos(&self) -> &ChaosInjector {
        &self.inner.chaos
    }

    /// All registered host names, sorted.
    pub fn hosts(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.hosts.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Ops-plane exchange: the same windowed partition / host-kill
    /// semantics as [`SimNet::exchange`], but *quiet* — no RNG draw, no
    /// random frame faults, no chaos counters or journal entries, and
    /// no time charged — so health polling observes a faulty mesh
    /// without perturbing the data plane's deterministic fault
    /// accounting or replay behaviour.
    pub fn poll(&self, from: &str, to: &str, frame: &[u8]) -> Result<Vec<u8>, NetError> {
        let window = self.window();
        let chaos = &self.inner.chaos;
        if chaos.net_partitioned_quiet(from, to, window) {
            return Err(NetError::Partitioned);
        }
        if chaos.net_host_killed_quiet(to, window) {
            return Err(NetError::HostDown);
        }
        let server = self
            .inner
            .hosts
            .lock()
            .get(to)
            .cloned()
            .ok_or(NetError::UnknownHost)?;
        Ok(server.handle(frame))
    }

    /// One request/response exchange from `from` to `to`. Returns the
    /// logical time the exchange consumed (even on failure) and either
    /// the response frame or the failure.
    pub fn exchange(
        &self,
        from: &str,
        to: &str,
        frame: &[u8],
    ) -> (SimDuration, Result<Vec<u8>, NetError>) {
        let window = self.window();
        let chaos = &self.inner.chaos;
        if chaos.net_partitioned(from, to, window) {
            return (SimDuration(0), Err(NetError::Partitioned));
        }
        if chaos.net_host_killed(to, window) {
            return (SimDuration(0), Err(NetError::HostDown));
        }
        let mut elapsed = SimDuration(0);
        // Request leg.
        match chaos.net_frame_fault() {
            Some(NetFrameFault::Drop) => {
                return (elapsed, Err(NetError::FrameLost));
            }
            Some(NetFrameFault::Delay(d)) => elapsed += d,
            None => {}
        }
        elapsed += self.inner.link.transfer_delay(frame.len() as u64);
        let server = match self.inner.hosts.lock().get(to).cloned() {
            Some(s) => s,
            None => return (elapsed, Err(NetError::UnknownHost)),
        };
        let response = server.handle(frame);
        // Response leg — a drop here loses the reply *after* the server
        // applied the request; the retry hits the dedup cache.
        match chaos.net_frame_fault() {
            Some(NetFrameFault::Drop) => {
                return (elapsed, Err(NetError::FrameLost));
            }
            Some(NetFrameFault::Delay(d)) => elapsed += d,
            None => {}
        }
        elapsed += self.inner.link.transfer_delay(response.len() as u64);
        (elapsed, Ok(response))
    }
}

impl std::fmt::Debug for SimNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNet")
            .field("window", &self.window())
            .field("hosts", &self.inner.hosts.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode, Frame, Payload};
    use tero_chaos::FaultPlan;

    fn ping(seq: u64) -> Vec<u8> {
        encode(&Frame {
            client: 0,
            seq,
            ctx: None,
            payload: Payload::Ping,
        })
    }

    fn quiet_net(shards: usize) -> SimNet {
        SimNet::with_shards(
            default_link(),
            ChaosInjector::new(FaultPlan::quiet(1)),
            shards,
        )
    }

    #[test]
    fn healthy_exchange_round_trips_and_costs_time() {
        let net = quiet_net(1);
        let (elapsed, result) = net.exchange("engine0", "shard0p", &ping(1));
        assert!(result.is_ok());
        assert!(elapsed > SimDuration(0), "transfer time is charged");
        assert_eq!(
            net.exchange("engine0", "nowhere", &ping(2)).1,
            Err(NetError::UnknownHost)
        );
    }

    #[test]
    fn partitions_and_kills_follow_the_window() {
        let plan = FaultPlan {
            net: NetFault {
                partitions: vec![NetPartition {
                    a: "engine0".into(),
                    b: "shard0p".into(),
                    from_window: 1,
                    until_window: 2,
                }],
                kills: vec![HostKill {
                    host: "shard0r".into(),
                    from_window: 1,
                    until_window: 3,
                }],
                ..NetFault::quiet()
            },
            ..FaultPlan::quiet(5)
        };
        let net = SimNet::with_shards(default_link(), ChaosInjector::new(plan), 1);
        assert!(net.exchange("engine0", "shard0p", &ping(1)).1.is_ok());
        net.set_window(1);
        assert_eq!(
            net.exchange("engine0", "shard0p", &ping(2)).1,
            Err(NetError::Partitioned)
        );
        assert_eq!(
            net.exchange("engine0", "shard0r", &ping(3)).1,
            Err(NetError::HostDown)
        );
        // Another engine still reaches the primary.
        assert!(net.exchange("engine1", "shard0p", &ping(1)).1.is_ok());
        net.set_window(2);
        assert!(net.exchange("engine0", "shard0p", &ping(4)).1.is_ok());
    }

    #[test]
    fn certain_frame_drop_loses_every_frame() {
        let plan = FaultPlan {
            net: NetFault {
                frame_drop_rate: 1.0,
                ..NetFault::quiet()
            },
            ..FaultPlan::quiet(5)
        };
        let net = SimNet::with_shards(default_link(), ChaosInjector::new(plan), 1);
        assert_eq!(
            net.exchange("engine0", "shard0p", &ping(1)).1,
            Err(NetError::FrameLost)
        );
    }

    #[test]
    fn ops_polls_see_faults_but_never_count_them() {
        let plan = FaultPlan {
            net: NetFault {
                frame_drop_rate: 1.0, // would kill every data-plane frame
                partitions: vec![NetPartition {
                    a: "ops0".into(),
                    b: "shard0p".into(),
                    from_window: 1,
                    until_window: 2,
                }],
                kills: vec![HostKill {
                    host: "shard0r".into(),
                    from_window: 1,
                    until_window: 2,
                }],
                ..NetFault::quiet()
            },
            ..FaultPlan::quiet(5)
        };
        let registry = tero_obs::Registry::new();
        let chaos = ChaosInjector::new(plan);
        chaos.instrument(&registry);
        let net = SimNet::with_shards(default_link(), chaos, 1);
        // Certain frame drop does not touch polls, and a healthy poll
        // round-trips.
        assert!(net.poll("ops0", "shard0p", &ping(1)).is_ok());
        net.set_window(1);
        assert_eq!(
            net.poll("ops0", "shard0p", &ping(2)),
            Err(NetError::Partitioned)
        );
        assert_eq!(
            net.poll("ops0", "shard0r", &ping(3)),
            Err(NetError::HostDown)
        );
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("chaos.injected.net_partition_drop"),
            Some(0),
            "polling a partition must not count as an injected fault"
        );
        assert_eq!(snap.counter("chaos.injected.net_shard_kill"), Some(0));
        assert_eq!(snap.counter("chaos.injected.net_frame_drop"), Some(0));
    }

    #[test]
    fn hosts_are_listed_sorted() {
        let net = quiet_net(2);
        assert_eq!(net.hosts(), ["shard0p", "shard0r", "shard1p", "shard1r"]);
    }

    #[test]
    fn default_net_fault_is_well_formed() {
        for shards in [1usize, 2, 3, 5] {
            for windows in [2u64, 4, 6, 12] {
                let f = default_net_fault(shards, windows);
                for p in &f.partitions {
                    assert!(p.from_window < p.until_window);
                    assert!(p.until_window <= windows);
                }
                for k in &f.kills {
                    assert!(k.from_window < k.until_window);
                    assert!(k.until_window <= windows, "kill heals before the horizon");
                }
            }
        }
    }
}
