//! Constant-bit-rate UDP background flows (Table 2's "2 UDP flows, 50 % BD
//! each").

use crate::packet::NodeId;
use tero_types::{SimDuration, SimRng, SimTime};

/// A CBR UDP flow: `rate_bps` of `packet_bytes`-sized packets from `src`
/// to `dst`, active on `[start, stop)`.
///
/// `jitter` is the fractional send-interval jitter (0.0 = perfectly
/// periodic). Real traffic generators (the paper uses iperf3) carry OS
/// scheduling jitter; perfectly periodic arrivals phase-lock with the
/// bottleneck's service times and starve other traffic of queue slots — a
/// simulation artifact, not a network behaviour — so experiments should
/// use a small non-zero jitter.
#[derive(Debug, Clone)]
pub struct UdpFlow {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Sending rate in bits per second.
    pub rate_bps: f64,
    /// Packet size in bytes.
    pub packet_bytes: u32,
    /// First transmission time.
    pub start: SimTime,
    /// No transmissions at or after this time.
    pub stop: SimTime,
    /// Fractional send-interval jitter in `[0, 1)`.
    pub jitter: f64,
    /// Packets sent so far.
    pub sent: u64,
    /// Packets received at the destination.
    pub received: u64,
}

impl UdpFlow {
    /// A perfectly periodic CBR flow.
    pub fn cbr(
        src: NodeId,
        dst: NodeId,
        rate_bps: f64,
        packet_bytes: u32,
        start: SimTime,
        stop: SimTime,
    ) -> Self {
        UdpFlow {
            src,
            dst,
            rate_bps,
            packet_bytes,
            start,
            stop,
            jitter: 0.0,
            sent: 0,
            received: 0,
        }
    }

    /// Builder-style jitter override.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 0.99);
        self
    }

    /// Nominal interval between consecutive packets.
    pub fn interval(&self) -> SimDuration {
        let secs = (self.packet_bytes as f64 * 8.0) / self.rate_bps;
        SimDuration::from_secs_f64(secs.max(1e-6))
    }

    /// The interval to the next packet, with jitter applied (mean remains
    /// the nominal interval).
    pub fn next_interval(&self, rng: &mut SimRng) -> SimDuration {
        let nominal = self.interval();
        if self.jitter <= 0.0 {
            return nominal;
        }
        let factor = 1.0 + self.jitter * (2.0 * rng.f64() - 1.0);
        nominal.mul_f64(factor).max(SimDuration::from_micros(1))
    }

    /// Whether the flow transmits at time `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        t >= self.start && t < self.stop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_matches_rate() {
        let f = UdpFlow::cbr(0, 1, 50e6, 1250, SimTime::EPOCH, SimTime::from_secs(10));
        // 10,000 bits at 50 Mbps = 200 µs.
        assert_eq!(f.interval().as_micros(), 200);
    }

    #[test]
    fn jitter_preserves_mean_interval() {
        let f =
            UdpFlow::cbr(0, 1, 1e6, 1250, SimTime::EPOCH, SimTime::from_secs(10)).with_jitter(0.2);
        let mut rng = SimRng::new(5);
        let n = 20_000;
        let mean_us: f64 = (0..n)
            .map(|_| f.next_interval(&mut rng).as_micros() as f64)
            .sum::<f64>()
            / n as f64;
        let nominal = f.interval().as_micros() as f64;
        assert!(
            (mean_us - nominal).abs() < nominal * 0.01,
            "mean {mean_us} vs nominal {nominal}"
        );
        // Zero jitter is exactly periodic.
        let p = UdpFlow::cbr(0, 1, 1e6, 1250, SimTime::EPOCH, SimTime::from_secs(1));
        assert_eq!(p.next_interval(&mut rng), p.interval());
    }

    #[test]
    fn activity_window() {
        let f = UdpFlow::cbr(
            0,
            1,
            1e6,
            1250,
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        );
        assert!(!f.active_at(SimTime::from_millis(999)));
        assert!(f.active_at(SimTime::from_secs(1)));
        assert!(!f.active_at(SimTime::from_secs(2)));
    }
}
