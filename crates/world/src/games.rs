//! Game metadata: server deployments (Tables 6–7), primary-server
//! assignment, HUD conventions, and match lengths.

use tero_geoparse::Gazetteer;
use tero_types::{corrected_distance_km, GameId, LatLon, Location};

/// One game server: a city-level location serving an area of the world.
#[derive(Debug, Clone, PartialEq)]
pub struct GameServer {
    /// Where the server lives (city granularity, per App. C).
    pub location: Location,
    /// Centre coordinates (resolved from the gazetteer at build time).
    pub center: LatLon,
    /// Human-readable area served (documentation; assignment itself is by
    /// corrected distance, which is how we resolve the paper's "ambiguous"
    /// cases too).
    pub area: &'static str,
}

fn city(gaz: &Gazetteer, name: &str) -> (Location, LatLon) {
    let p = gaz
        .lookup_kind(name, tero_geoparse::PlaceKind::City)
        .into_iter()
        .next()
        .unwrap_or_else(|| panic!("server city {name} missing from gazetteer"));
    (p.location.clone(), p.center)
}

fn region(gaz: &Gazetteer, name: &str) -> (Location, LatLon) {
    let p = gaz
        .lookup_kind(name, tero_geoparse::PlaceKind::Region)
        .into_iter()
        .next()
        .unwrap_or_else(|| panic!("server region {name} missing from gazetteer"));
    (p.location.clone(), p.center)
}

/// Server deployments per game, straight from Tables 6–7. Valorant (the
/// ninth game) has no public server data — the paper notes it found
/// information "for 8 of them" — so it reuses the Riot deployment of
/// League of Legends.
pub fn server_locations(gaz: &Gazetteer, game: GameId) -> Vec<GameServer> {
    let mk = |name: &str, area: &'static str| {
        let (location, center) = city(gaz, name);
        GameServer {
            location,
            center,
            area,
        }
    };
    // Tables 6–7 disclose some locations only at region granularity
    // ("Virginia, USA", "California, USA", "Texas, USA").
    let mk_region = |name: &str, area: &'static str| {
        let (location, center) = region(gaz, name);
        GameServer {
            location,
            center,
            area,
        }
    };
    match game {
        // Riot games share the LoL deployment (Table 6 lists it once; TFT
        // is Riot infrastructure as well).
        GameId::LeagueOfLegends | GameId::TeamfightTactics | GameId::Valorant => vec![
            mk("Amsterdam", "Europe"),
            mk("Chicago", "US, Canada"),
            mk("Sao Paulo", "Brazil"),
            mk("Miami", "Northern South America"),
            mk("Santiago", "Southern South America"),
            mk("Sydney", "Oceania"),
            mk("Istanbul", "Middle East"),
            mk("Seoul", "Korea"),
            mk("Tokyo", "Japan"),
        ],
        GameId::Dota2 => vec![
            mk_region("Virginia", "North America"),
            mk("Seattle", "North America"),
            mk("Vienna", "Europe"),
            mk("Luxembourg City", "Europe"),
            mk("Santiago", "South America"),
            mk("Lima", "South America"),
            mk("Dubai", "Middle East"),
            mk("Sydney", "Oceania"),
            mk("Tokyo", "Asia"),
        ],
        GameId::GenshinImpact => vec![
            mk_region("Virginia", "Americas"),
            mk("Frankfurt", "Europe and Middle East"),
            mk("Tokyo", "Asia"),
        ],
        GameId::LostArk => vec![
            mk_region("Virginia", "Americas"),
            mk("Frankfurt", "Europe and Middle East"),
            mk("Tokyo", "Asia"),
        ],
        GameId::AmongUs => vec![
            mk_region("California", "Americas and Oceania"),
            mk_region("Texas", "Americas and Oceania"),
            mk("Frankfurt", "Europe and Middle East"),
            mk("Tokyo", "Asia"),
        ],
        GameId::CodWarzone => vec![
            mk("Salt Lake City", "North America"),
            mk("Los Angeles", "North America"),
            mk("San Francisco", "North America"),
            mk("Dallas", "North America"),
            mk("St. Louis", "North America"),
            mk("Columbus", "North America"),
            mk("New York City", "North America"),
            mk("Chicago", "North America"),
            mk("Washington", "North America"),
            mk("Atlanta", "North America"),
            mk("London", "Europe"),
            mk("Frankfurt", "Europe"),
            mk("Amsterdam", "Europe"),
            mk("Brussels", "Europe"),
            mk("Paris", "Europe"),
            mk("Madrid", "Europe"),
            mk("Stockholm", "Europe"),
            mk("Rome", "Europe"),
            mk("Santiago", "South America"),
            mk("Lima", "South America"),
            mk("Sao Paulo", "South America"),
            mk("Riyadh", "Middle East"),
            mk("Sydney", "Oceania"),
            mk("Tokyo", "Asia"),
        ],
        GameId::ApexLegends => vec![
            mk_region("Virginia", "North America"),
            mk("Dallas", "North America"),
            mk("Salt Lake City", "North America"),
            mk("Frankfurt", "Europe"),
            mk("Amsterdam", "Europe"),
            mk("London", "Europe"),
            mk("Sao Paulo", "South America"),
            mk("Tokyo", "Asia"),
            mk("Sydney", "Oceania"),
        ],
    }
}

/// Countries the industry groups as "Middle East" game-regions.
const MIDDLE_EAST: &[&str] = &[
    "Turkey",
    "Saudi Arabia",
    "United Arab Emirates",
    "Israel",
    "Iran",
];

const MIAMI_AREA: &[&str] = &[
    "Mexico",
    "Guatemala",
    "El Salvador",
    "Honduras",
    "Nicaragua",
    "Costa Rica",
    "Panama",
    "Jamaica",
    "Cuba",
    "Dominican Republic",
    "Puerto Rico",
    "Colombia",
    "Venezuela",
    "Ecuador",
];

const SANTIAGO_AREA: &[&str] = &[
    "Peru",
    "Bolivia",
    "Chile",
    "Argentina",
    "Uruguay",
    "Paraguay",
];

/// Whether a server's served area covers a player location. This encodes
/// the *game-region* assignment of §2.1: providers divide the world
/// administratively, which is why Greece plays on Amsterdam (2,068 km)
/// rather than Istanbul (closer, but serving the Middle East region).
fn area_matches(area: &str, gaz: &Gazetteer, loc: &Location) -> bool {
    use tero_types::Continent::*;
    let continent = gaz.continent_of(&loc.country);
    let c = |want| continent == Some(want);
    let is_me = MIDDLE_EAST.contains(&loc.country.as_str());
    match area {
        "Europe" => c(Europe) && !is_me,
        "US, Canada" => loc.country == "United States" || loc.country == "Canada",
        "Brazil" => loc.country == "Brazil",
        "Northern South America" => MIAMI_AREA.contains(&loc.country.as_str()),
        "Southern South America" => SANTIAGO_AREA.contains(&loc.country.as_str()),
        "Oceania" => c(Oceania),
        "Middle East" => is_me,
        "Korea" => loc.country == "South Korea",
        "Japan" => loc.country == "Japan",
        "North America" => c(NorthAmerica),
        "South America" => c(SouthAmerica),
        "Asia" => c(Asia) && !is_me,
        "Americas" => c(NorthAmerica) || c(SouthAmerica),
        "Europe and Middle East" => c(Europe) || is_me,
        "Americas and Oceania" => c(NorthAmerica) || c(SouthAmerica) || c(Oceania),
        _ => false,
    }
}

/// The *primary server* for a streamer location: among the servers whose
/// game-region covers the location, the one with the smallest corrected
/// distance (§3.3.3 — "we pick the server with the smallest corrected
/// distance from location" when the choice is ambiguous, e.g. Call of
/// Duty's ten North-American sites). Players from uncovered areas fall
/// back to the globally nearest server.
pub fn primary_server(
    gaz: &Gazetteer,
    game: GameId,
    streamer_loc: &Location,
) -> Option<GameServer> {
    let place = gaz.resolve(streamer_loc)?;
    let servers = server_locations(gaz, game);
    let nearest = |candidates: Vec<GameServer>| {
        candidates.into_iter().min_by(|a, b| {
            let da = corrected_distance_km(place.center, a.center, place.mean_radius_km);
            let db = corrected_distance_km(place.center, b.center, place.mean_radius_km);
            da.partial_cmp(&db).unwrap()
        })
    };
    let covered: Vec<GameServer> = servers
        .iter()
        .filter(|s| area_matches(s.area, gaz, streamer_loc))
        .cloned()
        .collect();
    if covered.is_empty() {
        nearest(servers)
    } else {
        nearest(covered)
    }
}

/// Corrected distance from a streamer location to a server (km).
pub fn corrected_distance_to(
    gaz: &Gazetteer,
    streamer_loc: &Location,
    server: &GameServer,
) -> Option<f64> {
    let place = gaz.resolve(streamer_loc)?;
    Some(corrected_distance_km(
        place.center,
        server.center,
        place.mean_radius_km,
    ))
}

/// Where and how a game draws its latency readout. Knowing this per game
/// is exactly the "knowledge of each game's user interface" that §3.2 adds
/// on top of raw OCR; it is also why *game mislabeling* breaks extraction
/// (the module crops the wrong screen area, §3.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HudSpec {
    /// Top-left corner of the readout in the thumbnail.
    pub anchor: (usize, usize),
    /// Decoration around the number.
    pub decoration: tero_vision::scene::Decoration,
    /// Font scale.
    pub text_scale: usize,
}

/// The HUD convention of each game.
pub fn hud_spec(game: GameId) -> HudSpec {
    use tero_vision::scene::Decoration::*;
    match game {
        GameId::LeagueOfLegends => HudSpec {
            anchor: (96, 6),
            decoration: MsSuffix,
            text_scale: 2,
        },
        GameId::TeamfightTactics => HudSpec {
            anchor: (96, 14),
            decoration: MsSuffix,
            text_scale: 2,
        },
        GameId::Valorant => HudSpec {
            anchor: (56, 6),
            decoration: PingPrefix,
            text_scale: 2,
        },
        GameId::CodWarzone => HudSpec {
            anchor: (8, 6),
            decoration: PingPrefix,
            text_scale: 2,
        },
        GameId::GenshinImpact => HudSpec {
            anchor: (96, 70),
            decoration: MsSuffix,
            text_scale: 2,
        },
        GameId::Dota2 => HudSpec {
            anchor: (92, 6),
            decoration: MsSuffix,
            text_scale: 2,
        },
        GameId::AmongUs => HudSpec {
            anchor: (8, 70),
            decoration: MsSuffix,
            text_scale: 2,
        },
        GameId::LostArk => HudSpec {
            anchor: (8, 40),
            decoration: Bare,
            text_scale: 2,
        },
        GameId::ApexLegends => HudSpec {
            anchor: (60, 70),
            decoration: MsSuffix,
            text_scale: 2,
        },
    }
}

/// Average match length in minutes — the basis for `StableLen` (App. I
/// cites 25–35 minutes for LoL and Warzone 2).
pub fn match_length_mins(game: GameId) -> u64 {
    match game {
        GameId::LeagueOfLegends => 30,
        GameId::CodWarzone => 28,
        GameId::GenshinImpact => 35,
        GameId::TeamfightTactics => 32,
        GameId::Dota2 => 38,
        GameId::AmongUs => 12,
        GameId::LostArk => 40,
        GameId::ApexLegends => 20,
        GameId::Valorant => 35,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaz() -> Gazetteer {
        Gazetteer::new()
    }

    #[test]
    fn all_games_have_servers() {
        let g = gaz();
        for game in GameId::ALL {
            let servers = server_locations(&g, game);
            assert!(!servers.is_empty(), "{game}");
        }
        // CoD's deployment matches Table 7's 24 rows.
        assert_eq!(server_locations(&g, GameId::CodWarzone).len(), 24);
        // LoL's deployment matches Table 6's 9 rows.
        assert_eq!(server_locations(&g, GameId::LeagueOfLegends).len(), 9);
    }

    #[test]
    fn primary_server_examples_from_the_paper() {
        let g = gaz();
        // "There is one League of Legends server in Europe (in Amsterdam),
        // and all players from Europe are supposed to play there."
        for country in ["France", "Greece", "Poland", "Switzerland"] {
            let loc = Location::country(country);
            let s = primary_server(&g, GameId::LeagueOfLegends, &loc).unwrap();
            assert_eq!(s.location.city.as_deref(), Some("Amsterdam"), "{country}");
        }
        // US states near Chicago play on Chicago (Figs 10).
        for region in ["Illinois", "Missouri", "Minnesota"] {
            let loc = Location::region("United States", region);
            let s = primary_server(&g, GameId::LeagueOfLegends, &loc).unwrap();
            assert_eq!(s.location.city.as_deref(), Some("Chicago"), "{region}");
        }
        // El Salvador and Jamaica play on Miami (Fig 12).
        for country in ["El Salvador", "Jamaica"] {
            let loc = Location::country(country);
            let s = primary_server(&g, GameId::LeagueOfLegends, &loc).unwrap();
            assert_eq!(s.location.city.as_deref(), Some("Miami"), "{country}");
        }
        // Bolivia plays on Santiago (Fig 9a).
        let s = primary_server(&g, GameId::LeagueOfLegends, &Location::country("Bolivia")).unwrap();
        assert_eq!(s.location.city.as_deref(), Some("Santiago"));
        // Turkey plays on Istanbul (Fig 9b).
        let s = primary_server(&g, GameId::LeagueOfLegends, &Location::country("Turkey")).unwrap();
        assert_eq!(s.location.city.as_deref(), Some("Istanbul"));
        // Hawaii's closest server is still in North America.
        let s = primary_server(
            &g,
            GameId::LeagueOfLegends,
            &Location::region("United States", "Hawaii"),
        )
        .unwrap();
        assert_eq!(s.location.city.as_deref(), Some("Chicago"));
    }

    #[test]
    fn cod_assignment_uses_nearest_of_many() {
        let g = gaz();
        let tx = Location::region("United States", "Texas");
        let s = primary_server(&g, GameId::CodWarzone, &tx).unwrap();
        assert_eq!(s.location.city.as_deref(), Some("Dallas"));
        let uk = Location::country("United Kingdom");
        let s = primary_server(&g, GameId::CodWarzone, &uk).unwrap();
        assert_eq!(s.location.city.as_deref(), Some("London"));
    }

    #[test]
    fn corrected_distance_nonzero_for_same_city() {
        let g = gaz();
        let ams = Location::city("Netherlands", "North Holland", "Amsterdam");
        let server = primary_server(&g, GameId::LeagueOfLegends, &ams).unwrap();
        let d = corrected_distance_to(&g, &ams, &server).unwrap();
        // Same city: geodesic part 0, mean radius ~9 km.
        assert!(d > 5.0 && d < 20.0, "distance {d}");
    }

    #[test]
    fn unknown_location_yields_none() {
        let g = gaz();
        assert!(primary_server(&g, GameId::Dota2, &Location::country("Atlantis")).is_none());
    }

    #[test]
    fn match_lengths_positive() {
        for game in GameId::ALL {
            assert!(match_length_mins(game) >= 10 || game == GameId::AmongUs);
        }
    }
}
