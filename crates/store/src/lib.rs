//! # tero-store
//!
//! Storage substrate for the Tero pipeline, mirroring the paper's deployment
//! (App. B): the production system uses **Redis** for inter-process
//! communication and streamer-location state, an **S3-like object store**
//! (Ceph) for thumbnails and intermediate image-processing products, and
//! **MongoDB** for latency measurements and analysis.
//!
//! This crate provides in-process, thread-safe equivalents:
//!
//! * [`KvStore`] — a sharded key-value store with strings, lists (including
//!   blocking pop, the pattern Tero's workers use to pull batches), hashes,
//!   counters and logical-time TTLs;
//! * [`ObjectStore`] — buckets of immutable byte blobs keyed by name;
//! * [`DocumentStore`] — JSON document collections with predicate queries.
//!
//! Everything here follows the paper's push/pull discipline: producers push
//! into the relevant store and consumers pull when ready, which decouples
//! stages whose processing time varies "significantly — and sometimes
//! unpredictably" (App. B).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod doc;
pub mod kv;
pub mod object;
pub mod remote;

pub use doc::DocumentStore;
pub use kv::{KvSnapshot, KvStore, PROTECTED_PREFIX};
pub use object::{ObjectSnapshot, ObjectStore};
pub use remote::{
    apply_kv, apply_obj, KvRequest, KvResponse, ObjRequest, ObjResponse, RemoteStore,
};
