//! An embedded gazetteer: countries, first-level regions and cities.
//!
//! Coordinates are geographic centres (approximate), `mean_radius_km` is the
//! average distance of a point in the location from its centre (the second
//! component of the paper's *corrected distance*, §3.3.3), and populations
//! are rough 2020s figures in millions, used for homonym disambiguation and
//! for the population model of Fig 7.
//!
//! The table covers every location that appears in the paper's figures
//! (Figs 2, 9–12) and server tables (Tables 6–7), plus enough filler for a
//! realistic synthetic world.

use std::collections::HashMap;
use tero_types::{Continent, LatLon, Location};

/// What kind of place a gazetteer row describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlaceKind {
    /// A country.
    Country,
    /// A first-level administrative region (state, canton, province…).
    Region,
    /// A city.
    City,
}

/// One resolved gazetteer place.
#[derive(Debug, Clone, PartialEq)]
pub struct Place {
    /// The kind of place.
    pub kind: PlaceKind,
    /// The location tuple, filled to this place's granularity.
    pub location: Location,
    /// Geographic centre.
    pub center: LatLon,
    /// Mean distance of a point in the place from its centre, km.
    pub mean_radius_km: f64,
    /// Approximate population in millions (0 when unknown).
    pub population_m: f64,
    /// Continent.
    pub continent: Continent,
}

// (name, iso2, continent, lat, lon, mean_radius_km, population_m, aliases)
type CountryRow = (
    &'static str,
    &'static str,
    Continent,
    f64,
    f64,
    f64,
    f64,
    &'static [&'static str],
);

// (country, name, lat, lon, mean_radius_km, population_m, aliases)
type RegionRow = (
    &'static str,
    &'static str,
    f64,
    f64,
    f64,
    f64,
    &'static [&'static str],
);

// (country, region, name, lat, lon, mean_radius_km, population_m, aliases)
type CityRow = (
    &'static str,
    &'static str,
    &'static str,
    f64,
    f64,
    f64,
    f64,
    &'static [&'static str],
);

use Continent::*;

const COUNTRIES: &[CountryRow] = &[
    (
        "United States",
        "US",
        NorthAmerica,
        39.8,
        -98.6,
        1100.0,
        331.0,
        &["USA", "US", "America", "United States of America"],
    ),
    (
        "Canada",
        "CA",
        NorthAmerica,
        56.1,
        -106.3,
        1400.0,
        38.0,
        &[],
    ),
    (
        "Mexico",
        "MX",
        NorthAmerica,
        23.6,
        -102.6,
        650.0,
        128.0,
        &[],
    ),
    (
        "Guatemala",
        "GT",
        NorthAmerica,
        15.8,
        -90.2,
        150.0,
        17.0,
        &[],
    ),
    (
        "El Salvador",
        "SV",
        NorthAmerica,
        13.8,
        -88.9,
        70.0,
        6.5,
        &[],
    ),
    (
        "Honduras",
        "HN",
        NorthAmerica,
        14.8,
        -86.6,
        150.0,
        10.0,
        &[],
    ),
    (
        "Nicaragua",
        "NI",
        NorthAmerica,
        12.9,
        -85.2,
        160.0,
        6.6,
        &[],
    ),
    (
        "Costa Rica",
        "CR",
        NorthAmerica,
        9.7,
        -84.2,
        100.0,
        5.1,
        &[],
    ),
    ("Panama", "PA", NorthAmerica, 8.5, -80.1, 120.0, 4.3, &[]),
    ("Jamaica", "JM", NorthAmerica, 18.1, -77.3, 50.0, 3.0, &[]),
    ("Cuba", "CU", NorthAmerica, 21.5, -79.5, 180.0, 11.3, &[]),
    (
        "Dominican Republic",
        "DO",
        NorthAmerica,
        18.7,
        -70.2,
        90.0,
        10.8,
        &[],
    ),
    (
        "Puerto Rico",
        "PR",
        NorthAmerica,
        18.2,
        -66.4,
        60.0,
        3.2,
        &[],
    ),
    ("Colombia", "CO", SouthAmerica, 4.6, -74.1, 470.0, 50.9, &[]),
    (
        "Venezuela",
        "VE",
        SouthAmerica,
        6.4,
        -66.6,
        420.0,
        28.4,
        &[],
    ),
    ("Ecuador", "EC", SouthAmerica, -1.8, -78.2, 230.0, 17.6, &[]),
    ("Peru", "PE", SouthAmerica, -9.2, -75.0, 500.0, 33.0, &[]),
    (
        "Bolivia",
        "BO",
        SouthAmerica,
        -16.3,
        -63.6,
        460.0,
        11.7,
        &[],
    ),
    ("Chile", "CL", SouthAmerica, -35.7, -71.5, 600.0, 19.1, &[]),
    (
        "Argentina",
        "AR",
        SouthAmerica,
        -38.4,
        -63.6,
        730.0,
        45.4,
        &[],
    ),
    ("Uruguay", "UY", SouthAmerica, -32.5, -55.8, 190.0, 3.5, &[]),
    (
        "Paraguay",
        "PY",
        SouthAmerica,
        -23.4,
        -58.4,
        280.0,
        7.1,
        &[],
    ),
    (
        "Brazil",
        "BR",
        SouthAmerica,
        -14.2,
        -51.9,
        1300.0,
        212.6,
        &["Brasil"],
    ),
    (
        "United Kingdom",
        "GB",
        Europe,
        54.0,
        -2.5,
        310.0,
        67.2,
        &["UK", "Great Britain", "England", "Britain"],
    ),
    ("Ireland", "IE", Europe, 53.4, -8.2, 130.0, 5.0, &[]),
    ("France", "FR", Europe, 46.2, 2.2, 330.0, 67.4, &[]),
    ("Spain", "ES", Europe, 40.5, -3.7, 320.0, 47.4, &["España"]),
    ("Portugal", "PT", Europe, 39.4, -8.2, 150.0, 10.3, &[]),
    (
        "Germany",
        "DE",
        Europe,
        51.2,
        10.5,
        270.0,
        83.2,
        &["Deutschland"],
    ),
    (
        "Netherlands",
        "NL",
        Europe,
        52.1,
        5.3,
        90.0,
        17.4,
        &["Holland", "The Netherlands"],
    ),
    ("Belgium", "BE", Europe, 50.5, 4.5, 80.0, 11.6, &[]),
    (
        "Luxembourg",
        "LU",
        Europe,
        49.8,
        6.1,
        25.0,
        0.6,
        &["Luxemburg"],
    ),
    (
        "Switzerland",
        "CH",
        Europe,
        46.8,
        8.2,
        90.0,
        8.6,
        &["Schweiz", "Suisse"],
    ),
    ("Austria", "AT", Europe, 47.5, 14.6, 130.0, 8.9, &[]),
    ("Italy", "IT", Europe, 42.8, 12.8, 330.0, 59.6, &["Italia"]),
    ("Greece", "GR", Europe, 39.1, 22.0, 180.0, 10.7, &["Hellas"]),
    ("Denmark", "DK", Europe, 56.0, 10.0, 100.0, 5.8, &[]),
    ("Norway", "NO", Europe, 64.5, 13.0, 400.0, 5.4, &[]),
    ("Sweden", "SE", Europe, 62.0, 15.0, 380.0, 10.4, &[]),
    ("Finland", "FI", Europe, 64.0, 26.0, 320.0, 5.5, &[]),
    ("Poland", "PL", Europe, 52.1, 19.4, 240.0, 38.0, &["Polska"]),
    (
        "Czechia",
        "CZ",
        Europe,
        49.8,
        15.5,
        130.0,
        10.7,
        &["Czech Republic"],
    ),
    ("Slovakia", "SK", Europe, 48.7, 19.7, 110.0, 5.5, &[]),
    ("Hungary", "HU", Europe, 47.2, 19.5, 130.0, 9.7, &[]),
    ("Romania", "RO", Europe, 45.9, 25.0, 210.0, 19.2, &[]),
    ("Bulgaria", "BG", Europe, 42.7, 25.5, 140.0, 6.9, &[]),
    ("Ukraine", "UA", Europe, 48.4, 31.2, 330.0, 43.7, &[]),
    ("Lithuania", "LT", Europe, 55.2, 23.9, 110.0, 2.8, &[]),
    ("Latvia", "LV", Europe, 56.9, 24.6, 110.0, 1.9, &[]),
    ("Estonia", "EE", Europe, 58.6, 25.0, 90.0, 1.3, &[]),
    ("Turkey", "TR", Asia, 39.0, 35.2, 390.0, 84.3, &["Türkiye"]),
    (
        "Saudi Arabia",
        "SA",
        Asia,
        23.9,
        45.1,
        620.0,
        34.8,
        &["Arabia", "KSA"],
    ),
    (
        "United Arab Emirates",
        "AE",
        Asia,
        24.0,
        54.0,
        130.0,
        9.9,
        &["UAE", "Emirates"],
    ),
    ("Israel", "IL", Asia, 31.0, 34.9, 80.0, 9.2, &[]),
    ("Iran", "IR", Asia, 32.4, 53.7, 570.0, 84.0, &[]),
    ("India", "IN", Asia, 20.6, 79.0, 780.0, 1380.0, &[]),
    ("China", "CN", Asia, 35.9, 104.2, 1300.0, 1402.0, &[]),
    ("Japan", "JP", Asia, 36.2, 138.3, 290.0, 125.8, &["Nippon"]),
    (
        "South Korea",
        "KR",
        Asia,
        35.9,
        127.8,
        140.0,
        51.8,
        &["Korea", "Republic of Korea"],
    ),
    ("Taiwan", "TW", Asia, 23.7, 121.0, 90.0, 23.6, &[]),
    ("Philippines", "PH", Asia, 12.9, 121.8, 280.0, 109.6, &[]),
    ("Vietnam", "VN", Asia, 14.1, 108.3, 280.0, 97.3, &[]),
    ("Thailand", "TH", Asia, 15.9, 100.9, 310.0, 69.8, &[]),
    ("Malaysia", "MY", Asia, 4.2, 102.0, 260.0, 32.4, &[]),
    ("Singapore", "SG", Asia, 1.35, 103.8, 15.0, 5.7, &[]),
    ("Indonesia", "ID", Asia, -0.8, 113.9, 640.0, 273.5, &[]),
    (
        "Australia",
        "AU",
        Oceania,
        -25.3,
        133.8,
        1300.0,
        25.7,
        &["Aussie", "Oz"],
    ),
    (
        "New Zealand",
        "NZ",
        Oceania,
        -40.9,
        174.9,
        240.0,
        5.1,
        &["NZ"],
    ),
    ("Egypt", "EG", Africa, 26.8, 30.8, 450.0, 102.3, &[]),
    ("Morocco", "MA", Africa, 31.8, -7.1, 300.0, 36.9, &[]),
    ("Nigeria", "NG", Africa, 9.1, 8.7, 430.0, 206.1, &[]),
    ("Kenya", "KE", Africa, -0.02, 37.9, 340.0, 53.8, &[]),
    ("South Africa", "ZA", Africa, -30.6, 22.9, 500.0, 59.3, &[]),
    ("Russia", "RU", Europe, 61.5, 105.3, 2500.0, 144.1, &[]),
];

const REGIONS: &[RegionRow] = &[
    // US states appearing in Figs 9-10 (plus a few more for realism).
    (
        "United States",
        "California",
        36.8,
        -119.4,
        280.0,
        39.5,
        &["Cali", "CA"],
    ),
    ("United States", "Texas", 31.5, -99.3, 310.0, 29.1, &["TX"]),
    (
        "United States",
        "Illinois",
        40.0,
        -89.2,
        180.0,
        12.7,
        &["IL"],
    ),
    ("United States", "Hawaii", 20.8, -156.3, 120.0, 1.4, &["HI"]),
    (
        "United States",
        "District of Columbia",
        38.9,
        -77.0,
        10.0,
        0.7,
        &["DC", "Washington DC"],
    ),
    (
        "United States",
        "Georgia",
        32.6,
        -83.4,
        180.0,
        10.6,
        &["GA"],
    ),
    (
        "United States",
        "Kentucky",
        37.5,
        -85.3,
        170.0,
        4.5,
        &["KY"],
    ),
    (
        "United States",
        "Minnesota",
        46.3,
        -94.3,
        220.0,
        5.6,
        &["MN"],
    ),
    (
        "United States",
        "Missouri",
        38.4,
        -92.5,
        190.0,
        6.2,
        &["MO"],
    ),
    (
        "United States",
        "North Carolina",
        35.5,
        -79.4,
        190.0,
        10.4,
        &["NC"],
    ),
    (
        "United States",
        "Pennsylvania",
        40.9,
        -77.8,
        170.0,
        13.0,
        &["PA"],
    ),
    (
        "United States",
        "Tennessee",
        35.9,
        -86.4,
        180.0,
        6.8,
        &["TN"],
    ),
    (
        "United States",
        "Virginia",
        37.5,
        -78.9,
        170.0,
        8.5,
        &["VA"],
    ),
    (
        "United States",
        "Massachusetts",
        42.3,
        -71.8,
        80.0,
        6.9,
        &["MA"],
    ),
    (
        "United States",
        "New Jersey",
        40.1,
        -74.7,
        80.0,
        8.9,
        &["NJ"],
    ),
    (
        "United States",
        "Oklahoma",
        35.6,
        -97.5,
        210.0,
        4.0,
        &["OK"],
    ),
    (
        "United States",
        "New York",
        42.9,
        -75.6,
        180.0,
        19.5,
        &["NY", "New York State"],
    ),
    (
        "United States",
        "Florida",
        28.6,
        -82.4,
        230.0,
        21.5,
        &["FL"],
    ),
    (
        "United States",
        "Washington",
        47.4,
        -120.5,
        200.0,
        7.6,
        &["WA", "Washington State"],
    ),
    ("United States", "Ohio", 40.4, -82.8, 160.0, 11.7, &["OH"]),
    (
        "United States",
        "Michigan",
        44.3,
        -85.4,
        220.0,
        10.0,
        &["MI"],
    ),
    (
        "United States",
        "Arizona",
        34.3,
        -111.7,
        230.0,
        7.3,
        &["AZ"],
    ),
    (
        "United States",
        "Colorado",
        39.0,
        -105.5,
        210.0,
        5.8,
        &["CO"],
    ),
    ("United States", "Utah", 39.3, -111.7, 190.0, 3.3, &["UT"]),
    (
        "United States",
        "Montana",
        47.0,
        -109.6,
        260.0,
        1.1,
        &["MT"],
    ),
    (
        "United States",
        "Wisconsin",
        44.6,
        -89.9,
        180.0,
        5.9,
        &["WI"],
    ),
    ("United States", "Indiana", 39.9, -86.3, 150.0, 6.8, &["IN"]),
    (
        "United States",
        "Louisiana",
        31.0,
        -92.0,
        170.0,
        4.6,
        &["LA"],
    ),
    // Canada.
    ("Canada", "Ontario", 44.2, -79.5, 280.0, 14.7, &["ON"]), // population-weighted centre (Golden Horseshoe)
    (
        "Canada",
        "Quebec",
        52.9,
        -71.9,
        600.0,
        8.6,
        &["QC", "Québec"],
    ),
    (
        "Canada",
        "British Columbia",
        54.7,
        -125.6,
        450.0,
        5.1,
        &["BC"],
    ),
    ("Canada", "Alberta", 53.9, -116.6, 360.0, 4.4, &["AB"]),
    // Europe (Fig 2 / Fig 11).
    (
        "France",
        "Ile-de-France",
        48.7,
        2.5,
        35.0,
        12.2,
        &["Île-de-France", "Paris region", "IDF"],
    ),
    ("France", "Provence", 43.9, 6.0, 90.0, 5.1, &["PACA"]),
    ("France", "Brittany", 48.2, -2.9, 90.0, 3.4, &["Bretagne"]),
    (
        "Spain",
        "Catalunya",
        41.8,
        1.5,
        90.0,
        7.7,
        &["Catalonia", "Cataluña"],
    ),
    (
        "Spain",
        "Madrid",
        40.4,
        -3.7,
        45.0,
        6.7,
        &["Comunidad de Madrid"],
    ),
    ("Spain", "Andalusia", 37.5, -4.7, 150.0, 8.4, &["Andalucía"]),
    ("Germany", "Bavaria", 48.9, 11.4, 130.0, 13.1, &["Bayern"]),
    (
        "Germany",
        "North Rhine-Westphalia",
        51.5,
        7.6,
        100.0,
        17.9,
        &["NRW"],
    ),
    ("Germany", "Hesse", 50.6, 9.0, 80.0, 6.3, &["Hessen"]),
    (
        "Switzerland",
        "Geneva",
        46.2,
        6.1,
        15.0,
        0.5,
        &["Genève", "canton of Geneva"],
    ),
    ("Switzerland", "Zurich", 47.4, 8.5, 25.0, 1.5, &["Zürich"]),
    ("Switzerland", "Vaud", 46.6, 6.6, 35.0, 0.8, &[]),
    ("Italy", "Lombardy", 45.6, 9.8, 80.0, 10.0, &["Lombardia"]),
    ("Italy", "Lazio", 41.9, 12.8, 70.0, 5.9, &[]),
    (
        "United Kingdom",
        "Greater London",
        51.5,
        -0.1,
        22.0,
        8.9,
        &["London area"],
    ),
    ("United Kingdom", "Scotland", 56.8, -4.2, 180.0, 5.5, &[]),
    ("United Kingdom", "Wales", 52.3, -3.7, 90.0, 3.1, &[]),
    (
        "Poland",
        "Mazovia",
        52.2,
        21.1,
        100.0,
        5.4,
        &["Mazowieckie"],
    ),
    ("Poland", "Silesia", 50.3, 19.0, 70.0, 4.5, &["Śląskie"]),
    (
        "Netherlands",
        "North Holland",
        52.6,
        4.9,
        40.0,
        2.9,
        &["Noord-Holland"],
    ),
    (
        "Netherlands",
        "South Holland",
        52.0,
        4.5,
        35.0,
        3.7,
        &["Zuid-Holland"],
    ),
    // Latin America (Figs 2, 12).
    (
        "Argentina",
        "Buenos Aires",
        -36.7,
        -60.0,
        280.0,
        17.6,
        &["BA", "Provincia de Buenos Aires"],
    ),
    (
        "Argentina",
        "Cordoba",
        -32.1,
        -63.8,
        230.0,
        3.8,
        &["Córdoba"],
    ),
    (
        "Brazil",
        "Sao Paulo",
        -22.3,
        -48.8,
        250.0,
        46.3,
        &["São Paulo", "SP"],
    ),
    (
        "Brazil",
        "Rio de Janeiro",
        -22.2,
        -42.7,
        110.0,
        17.4,
        &["RJ", "Rio"],
    ),
    ("Brazil", "Minas Gerais", -18.5, -44.6, 330.0, 21.3, &["MG"]),
    ("Mexico", "Chiapas", 16.5, -92.5, 140.0, 5.5, &[]),
    ("Mexico", "Tabasco", 18.0, -92.6, 90.0, 2.4, &[]),
    ("Mexico", "Veracruz", 19.4, -96.4, 160.0, 8.1, &[]),
    ("Mexico", "Tamaulipas", 24.3, -98.6, 160.0, 3.5, &[]),
    ("Mexico", "Campeche", 18.9, -90.3, 130.0, 0.9, &[]),
    ("Mexico", "Quintana Roo", 19.6, -88.0, 120.0, 1.9, &[]),
    ("Mexico", "Yucatan", 20.7, -89.0, 110.0, 2.3, &["Yucatán"]),
    ("Mexico", "Jalisco", 20.6, -103.7, 140.0, 8.3, &[]),
    (
        "Mexico",
        "Nuevo Leon",
        25.6,
        -99.9,
        130.0,
        5.8,
        &["Nuevo León"],
    ),
    ("Colombia", "Magdalena", 10.4, -74.4, 90.0, 1.4, &[]),
    (
        "Colombia",
        "Atlantico",
        10.7,
        -75.0,
        40.0,
        2.7,
        &["Atlántico"],
    ),
    ("Colombia", "Bolivar", 8.7, -74.5, 130.0, 2.2, &["Bolívar"]),
    ("Colombia", "Antioquia", 7.0, -75.5, 130.0, 6.7, &[]),
    (
        "Honduras",
        "Francisco Morazan",
        14.2,
        -87.2,
        60.0,
        1.6,
        &["Francisco Morazán"],
    ),
    (
        "Chile",
        "Santiago Metropolitan",
        -33.5,
        -70.7,
        70.0,
        7.1,
        &["Region Metropolitana", "RM"],
    ),
    ("Peru", "Lima", -12.0, -76.9, 90.0, 10.1, &["Lima Region"]),
    // Asia / Oceania.
    (
        "South Korea",
        "Seoul Capital Area",
        37.5,
        127.0,
        45.0,
        26.0,
        &["Gyeonggi", "Sudogwon"],
    ),
    ("Japan", "Kanto", 35.9, 139.7, 110.0, 43.0, &["Kantō"]),
    ("Japan", "Kansai", 34.9, 135.6, 90.0, 22.0, &[]),
    ("Turkey", "Istanbul Province", 41.1, 28.9, 50.0, 15.5, &[]),
    ("Turkey", "Ankara Province", 39.9, 32.8, 80.0, 5.7, &[]),
    (
        "Australia",
        "New South Wales",
        -32.0,
        147.0,
        420.0,
        8.2,
        &["NSW"],
    ),
    ("Australia", "Victoria", -36.9, 144.3, 230.0, 6.7, &["VIC"]),
    (
        "Saudi Arabia",
        "Riyadh Province",
        24.0,
        46.0,
        280.0,
        8.6,
        &[],
    ),
];

const CITIES: &[CityRow] = &[
    // Game-server cities (Tables 6-7) and major hubs.
    (
        "Netherlands",
        "North Holland",
        "Amsterdam",
        52.37,
        4.90,
        9.0,
        0.87,
        &[],
    ),
    (
        "United States",
        "Illinois",
        "Chicago",
        41.88,
        -87.63,
        18.0,
        2.7,
        &["Chi-town"],
    ),
    (
        "Brazil",
        "Sao Paulo",
        "Sao Paulo",
        -23.55,
        -46.63,
        30.0,
        12.3,
        &["São Paulo"],
    ),
    (
        "United States",
        "Florida",
        "Miami",
        25.76,
        -80.19,
        15.0,
        0.45,
        &[],
    ),
    (
        "Chile",
        "Santiago Metropolitan",
        "Santiago",
        -33.45,
        -70.66,
        22.0,
        6.2,
        &["Santiago de Chile"],
    ),
    (
        "Australia",
        "New South Wales",
        "Sydney",
        -33.87,
        151.21,
        30.0,
        5.3,
        &[],
    ),
    (
        "Turkey",
        "Istanbul Province",
        "Istanbul",
        41.01,
        28.98,
        30.0,
        15.5,
        &[],
    ),
    (
        "South Korea",
        "Seoul Capital Area",
        "Seoul",
        37.57,
        126.98,
        18.0,
        9.7,
        &[],
    ),
    ("Japan", "Kanto", "Tokyo", 35.68, 139.69, 30.0, 13.9, &[]),
    (
        "United States",
        "Washington",
        "Seattle",
        47.61,
        -122.33,
        14.0,
        0.75,
        &[],
    ),
    (
        "Austria",
        "Vienna",
        "Vienna",
        48.21,
        16.37,
        13.0,
        1.9,
        &["Wien"],
    ),
    (
        "Luxembourg",
        "Luxembourg",
        "Luxembourg City",
        49.61,
        6.13,
        6.0,
        0.13,
        &["Luxemburg City"],
    ),
    ("Peru", "Lima", "Lima", -12.05, -77.04, 22.0, 9.7, &[]),
    (
        "United Arab Emirates",
        "Dubai",
        "Dubai",
        25.20,
        55.27,
        20.0,
        3.3,
        &[],
    ),
    (
        "Germany",
        "Hesse",
        "Frankfurt",
        50.11,
        8.68,
        10.0,
        0.75,
        &["Frankfurt am Main"],
    ),
    (
        "United States",
        "Utah",
        "Salt Lake City",
        40.76,
        -111.89,
        11.0,
        0.2,
        &["SLC"],
    ),
    (
        "United States",
        "California",
        "Los Angeles",
        34.05,
        -118.24,
        28.0,
        4.0,
        &["LA", "L.A."],
    ),
    (
        "United States",
        "California",
        "San Francisco",
        37.77,
        -122.42,
        10.0,
        0.87,
        &["SF", "Frisco"],
    ),
    (
        "United States",
        "Texas",
        "Dallas",
        32.78,
        -96.80,
        20.0,
        1.3,
        &[],
    ),
    (
        "United States",
        "Missouri",
        "St. Louis",
        38.63,
        -90.20,
        12.0,
        0.3,
        &["Saint Louis"],
    ),
    (
        "United States",
        "Ohio",
        "Columbus",
        39.96,
        -83.00,
        14.0,
        0.9,
        &["Colombus"],
    ),
    (
        "United States",
        "New York",
        "New York City",
        40.71,
        -74.01,
        21.0,
        8.4,
        &["NYC", "New York"],
    ),
    (
        "United States",
        "District of Columbia",
        "Washington",
        38.91,
        -77.04,
        10.0,
        0.7,
        &["Washington D.C.", "DC"],
    ),
    (
        "United States",
        "Georgia",
        "Atlanta",
        33.75,
        -84.39,
        14.0,
        0.5,
        &["ATL"],
    ),
    (
        "United Kingdom",
        "Greater London",
        "London",
        51.51,
        -0.13,
        18.0,
        8.9,
        &[],
    ),
    (
        "Belgium",
        "Brussels",
        "Brussels",
        50.85,
        4.35,
        9.0,
        1.2,
        &["Bruxelles"],
    ),
    (
        "France",
        "Ile-de-France",
        "Paris",
        48.86,
        2.35,
        11.0,
        2.2,
        &[],
    ),
    ("Spain", "Madrid", "Madrid", 40.42, -3.70, 14.0, 3.2, &[]),
    (
        "Sweden",
        "Stockholm",
        "Stockholm",
        59.33,
        18.07,
        12.0,
        0.98,
        &[],
    ),
    ("Italy", "Lazio", "Rome", 41.90, 12.50, 16.0, 2.8, &["Roma"]),
    (
        "Saudi Arabia",
        "Riyadh Province",
        "Riyadh",
        24.71,
        46.68,
        22.0,
        7.7,
        &[],
    ),
    // Other cities used by profiles and figures.
    (
        "United States",
        "Michigan",
        "Detroit",
        42.33,
        -83.05,
        14.0,
        0.67,
        &[],
    ),
    (
        "United States",
        "California",
        "San Diego",
        32.72,
        -117.16,
        15.0,
        1.4,
        &[],
    ),
    (
        "United States",
        "California",
        "Sacramento",
        38.58,
        -121.49,
        11.0,
        0.5,
        &[],
    ),
    (
        "United States",
        "Texas",
        "Austin",
        30.27,
        -97.74,
        14.0,
        0.98,
        &[],
    ),
    (
        "United States",
        "Texas",
        "Houston",
        29.76,
        -95.37,
        24.0,
        2.3,
        &[],
    ),
    (
        "United States",
        "Arizona",
        "Phoenix",
        33.45,
        -112.07,
        20.0,
        1.7,
        &[],
    ),
    (
        "United States",
        "Massachusetts",
        "Boston",
        42.36,
        -71.06,
        11.0,
        0.69,
        &[],
    ),
    (
        "United States",
        "Pennsylvania",
        "Philadelphia",
        39.95,
        -75.17,
        14.0,
        1.6,
        &["Philly"],
    ),
    (
        "United States",
        "Minnesota",
        "Minneapolis",
        44.98,
        -93.27,
        12.0,
        0.43,
        &[],
    ),
    (
        "United States",
        "Tennessee",
        "Nashville",
        36.16,
        -86.78,
        14.0,
        0.69,
        &[],
    ),
    (
        "United States",
        "North Carolina",
        "Charlotte",
        35.23,
        -80.84,
        14.0,
        0.88,
        &[],
    ),
    (
        "United States",
        "Colorado",
        "Denver",
        39.74,
        -104.99,
        14.0,
        0.73,
        &[],
    ),
    (
        "United States",
        "Hawaii",
        "Honolulu",
        21.31,
        -157.86,
        10.0,
        0.35,
        &[],
    ),
    (
        "United States",
        "Kentucky",
        "Louisville",
        38.25,
        -85.76,
        13.0,
        0.62,
        &[],
    ),
    (
        "United States",
        "Virginia",
        "Virginia Beach",
        36.85,
        -75.98,
        14.0,
        0.46,
        &[],
    ),
    (
        "United States",
        "New Jersey",
        "Newark",
        40.74,
        -74.17,
        9.0,
        0.31,
        &[],
    ),
    (
        "United States",
        "Oklahoma",
        "Oklahoma City",
        35.47,
        -97.52,
        17.0,
        0.68,
        &["OKC"],
    ),
    (
        "United States",
        "Montana",
        "Billings",
        45.78,
        -108.50,
        9.0,
        0.12,
        &[],
    ),
    (
        "United States",
        "Georgia",
        "Savannah",
        32.08,
        -81.09,
        10.0,
        0.15,
        &[],
    ),
    (
        "United States",
        "Wisconsin",
        "Milwaukee",
        43.04,
        -87.91,
        12.0,
        0.57,
        &[],
    ),
    (
        "Canada",
        "Ontario",
        "Toronto",
        43.65,
        -79.38,
        18.0,
        2.9,
        &[],
    ),
    ("Canada", "Ontario", "Ottawa", 45.42, -75.70, 13.0, 1.0, &[]),
    (
        "Canada",
        "Quebec",
        "Montreal",
        45.50,
        -73.57,
        16.0,
        1.8,
        &["Montréal"],
    ),
    (
        "Canada",
        "British Columbia",
        "Vancouver",
        49.28,
        -123.12,
        12.0,
        0.68,
        &[],
    ),
    (
        "Mexico",
        "Jalisco",
        "Guadalajara",
        20.67,
        -103.35,
        15.0,
        1.5,
        &[],
    ),
    (
        "Mexico",
        "Nuevo Leon",
        "Monterrey",
        25.67,
        -100.31,
        16.0,
        1.1,
        &[],
    ),
    (
        "Mexico",
        "Quintana Roo",
        "Cancun",
        21.16,
        -86.85,
        10.0,
        0.63,
        &["Cancún"],
    ),
    (
        "Mexico",
        "Yucatan",
        "Merida",
        20.97,
        -89.62,
        12.0,
        0.89,
        &["Mérida"],
    ),
    (
        "Colombia",
        "Atlantico",
        "Barranquilla",
        10.97,
        -74.80,
        12.0,
        1.2,
        &[],
    ),
    (
        "Colombia",
        "Bolivar",
        "Cartagena",
        10.39,
        -75.51,
        11.0,
        0.91,
        &[],
    ),
    (
        "Colombia",
        "Antioquia",
        "Medellin",
        6.25,
        -75.56,
        13.0,
        2.5,
        &["Medellín"],
    ),
    (
        "Honduras",
        "Francisco Morazan",
        "Tegucigalpa",
        14.07,
        -87.19,
        12.0,
        1.1,
        &[],
    ),
    (
        "El Salvador",
        "San Salvador",
        "San Salvador",
        13.69,
        -89.22,
        10.0,
        0.57,
        &[],
    ),
    (
        "Jamaica",
        "Kingston Parish",
        "Kingston",
        17.97,
        -76.79,
        9.0,
        0.59,
        &[],
    ),
    (
        "Costa Rica",
        "San Jose",
        "San Jose CR",
        9.93,
        -84.08,
        10.0,
        0.34,
        &["San José"],
    ),
    (
        "Nicaragua",
        "Managua",
        "Managua",
        12.14,
        -86.25,
        11.0,
        1.0,
        &[],
    ),
    (
        "Argentina",
        "Buenos Aires",
        "Buenos Aires City",
        -34.60,
        -58.38,
        16.0,
        3.1,
        &["CABA", "Buenos Aires"],
    ),
    (
        "Brazil",
        "Rio de Janeiro",
        "Rio de Janeiro City",
        -22.91,
        -43.17,
        22.0,
        6.7,
        &["Rio", "Rio de Janeiro"],
    ),
    (
        "Ecuador",
        "Pichincha",
        "Quito",
        -0.18,
        -78.47,
        13.0,
        1.9,
        &[],
    ),
    (
        "Ecuador",
        "Guayas",
        "Guayaquil",
        -2.19,
        -79.89,
        13.0,
        2.7,
        &[],
    ),
    (
        "Bolivia",
        "La Paz",
        "La Paz",
        -16.49,
        -68.12,
        12.0,
        0.79,
        &[],
    ),
    (
        "Chile",
        "Valparaiso",
        "Valparaiso",
        -33.05,
        -71.61,
        10.0,
        0.3,
        &["Valparaíso"],
    ),
    (
        "France",
        "Provence",
        "Marseille",
        43.30,
        5.37,
        14.0,
        0.87,
        &[],
    ),
    ("France", "Brittany", "Rennes", 48.11, -1.68, 9.0, 0.22, &[]),
    (
        "Spain",
        "Catalunya",
        "Barcelona",
        41.39,
        2.17,
        14.0,
        1.6,
        &["Barna"],
    ),
    (
        "Germany",
        "Bavaria",
        "Munich",
        48.14,
        11.58,
        13.0,
        1.5,
        &["München"],
    ),
    (
        "Germany",
        "North Rhine-Westphalia",
        "Cologne",
        50.94,
        6.96,
        12.0,
        1.1,
        &["Köln"],
    ),
    (
        "Switzerland",
        "Geneva",
        "Geneva City",
        46.20,
        6.14,
        7.0,
        0.2,
        &["Geneva", "Genève"],
    ),
    (
        "Switzerland",
        "Zurich",
        "Zurich City",
        47.37,
        8.54,
        9.0,
        0.43,
        &["Zurich", "Zürich"],
    ),
    (
        "Switzerland",
        "Vaud",
        "Lausanne",
        46.52,
        6.63,
        7.0,
        0.14,
        &[],
    ),
    (
        "Italy",
        "Lombardy",
        "Milan",
        45.46,
        9.19,
        13.0,
        1.4,
        &["Milano"],
    ),
    (
        "United Kingdom",
        "Scotland",
        "Glasgow",
        55.86,
        -4.25,
        11.0,
        0.63,
        &[],
    ),
    (
        "United Kingdom",
        "Greater London",
        "Croydon",
        51.37,
        -0.10,
        7.0,
        0.39,
        &[],
    ),
    (
        "Poland",
        "Mazovia",
        "Warsaw",
        52.23,
        21.01,
        13.0,
        1.8,
        &["Warszawa"],
    ),
    (
        "Poland",
        "Silesia",
        "Katowice",
        50.26,
        19.02,
        9.0,
        0.29,
        &[],
    ),
    (
        "Netherlands",
        "South Holland",
        "Rotterdam",
        51.92,
        4.48,
        11.0,
        0.65,
        &[],
    ),
    (
        "Greece",
        "Attica",
        "Athens",
        37.98,
        23.73,
        14.0,
        3.2,
        &["Athina"],
    ),
    (
        "Turkey",
        "Ankara Province",
        "Ankara",
        39.93,
        32.86,
        16.0,
        5.7,
        &[],
    ),
    (
        "South Korea",
        "Busan",
        "Busan",
        35.18,
        129.08,
        14.0,
        3.4,
        &["Pusan"],
    ),
    ("Japan", "Kansai", "Osaka", 34.69, 135.50, 14.0, 2.7, &[]),
    (
        "Australia",
        "Victoria",
        "Melbourne",
        -37.81,
        144.96,
        22.0,
        5.1,
        &[],
    ),
    (
        "New Zealand",
        "Auckland",
        "Auckland",
        -36.85,
        174.76,
        14.0,
        1.7,
        &[],
    ),
    (
        "Philippines",
        "Metro Manila",
        "Manila",
        14.60,
        120.98,
        14.0,
        1.8,
        &[],
    ),
    (
        "Singapore",
        "Singapore",
        "Singapore City",
        1.35,
        103.82,
        12.0,
        5.7,
        &["Singapore"],
    ),
    (
        "India",
        "Maharashtra",
        "Mumbai",
        19.08,
        72.88,
        18.0,
        12.5,
        &["Bombay"],
    ),
    (
        "Russia",
        "Moscow Oblast",
        "Moscow",
        55.76,
        37.62,
        22.0,
        12.5,
        &["Moskva"],
    ),
    (
        "Egypt",
        "Cairo Governorate",
        "Cairo",
        30.04,
        31.24,
        18.0,
        9.5,
        &[],
    ),
    (
        "South Africa",
        "Gauteng",
        "Johannesburg",
        -26.20,
        28.05,
        18.0,
        5.6,
        &["Joburg"],
    ),
];

/// The gazetteer: indexed collections of [`Place`]s with alias lookup.
#[derive(Debug)]
pub struct Gazetteer {
    places: Vec<Place>,
    /// lowercase name/alias → indices into `places`.
    by_name: HashMap<String, Vec<usize>>,
    /// country name → continent.
    country_continent: HashMap<String, Continent>,
}

impl Gazetteer {
    /// Build the embedded gazetteer. Cheap enough to call per test; share
    /// one instance in production code.
    pub fn new() -> Self {
        let mut places = Vec::new();
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut country_continent = HashMap::new();

        let add = |place: Place,
                   names: Vec<String>,
                   by_name: &mut HashMap<String, Vec<usize>>,
                   places: &mut Vec<Place>| {
            let idx = places.len();
            places.push(place);
            for n in names {
                by_name.entry(n.to_lowercase()).or_default().push(idx);
            }
        };

        for &(name, _iso, continent, lat, lon, radius, pop, aliases) in COUNTRIES {
            country_continent.insert(name.to_string(), continent);
            let mut names = vec![name.to_string()];
            names.extend(aliases.iter().map(|a| a.to_string()));
            add(
                Place {
                    kind: PlaceKind::Country,
                    location: Location::country(name),
                    center: LatLon::new(lat, lon),
                    mean_radius_km: radius,
                    population_m: pop,
                    continent,
                },
                names,
                &mut by_name,
                &mut places,
            );
        }
        for &(country, name, lat, lon, radius, pop, aliases) in REGIONS {
            let continent = *country_continent.get(country).unwrap_or(&Continent::Europe);
            let mut names = vec![name.to_string()];
            names.extend(aliases.iter().map(|a| a.to_string()));
            add(
                Place {
                    kind: PlaceKind::Region,
                    location: Location::region(country, name),
                    center: LatLon::new(lat, lon),
                    mean_radius_km: radius,
                    population_m: pop,
                    continent,
                },
                names,
                &mut by_name,
                &mut places,
            );
        }
        for &(country, region, name, lat, lon, radius, pop, aliases) in CITIES {
            let continent = *country_continent.get(country).unwrap_or(&Continent::Europe);
            let mut names = vec![name.to_string()];
            names.extend(aliases.iter().map(|a| a.to_string()));
            add(
                Place {
                    kind: PlaceKind::City,
                    location: Location::city(country, region, name),
                    center: LatLon::new(lat, lon),
                    mean_radius_km: radius,
                    population_m: pop,
                    continent,
                },
                names,
                &mut by_name,
                &mut places,
            );
        }

        Gazetteer {
            places,
            by_name,
            country_continent,
        }
    }

    /// All places.
    pub fn places(&self) -> &[Place] {
        &self.places
    }

    /// Case-insensitive lookup of a name or alias; returns all homonyms.
    pub fn lookup(&self, name: &str) -> Vec<&Place> {
        self.by_name
            .get(&name.to_lowercase())
            .map(|idxs| idxs.iter().map(|&i| &self.places[i]).collect())
            .unwrap_or_default()
    }

    /// Lookup restricted to one kind.
    pub fn lookup_kind(&self, name: &str, kind: PlaceKind) -> Vec<&Place> {
        self.lookup(name)
            .into_iter()
            .filter(|p| p.kind == kind)
            .collect()
    }

    /// Resolve a [`Location`] tuple back to its most specific place row.
    pub fn resolve(&self, loc: &Location) -> Option<&Place> {
        // Try the most specific component first.
        if let Some(city) = &loc.city {
            if let Some(p) = self
                .lookup_kind(city, PlaceKind::City)
                .into_iter()
                .find(|p| p.location.country == loc.country)
            {
                return Some(p);
            }
        }
        if let Some(region) = &loc.region {
            if let Some(p) = self
                .lookup_kind(region, PlaceKind::Region)
                .into_iter()
                .find(|p| p.location.country == loc.country)
            {
                return Some(p);
            }
        }
        self.lookup_kind(&loc.country, PlaceKind::Country)
            .into_iter()
            .next()
    }

    /// Continent of a country (`None` for unknown countries).
    pub fn continent_of(&self, country: &str) -> Option<Continent> {
        self.country_continent.get(country).copied()
    }

    /// Number of distinct countries.
    pub fn country_count(&self) -> usize {
        self.country_continent.len()
    }
}

impl Default for Gazetteer {
    fn default() -> Self {
        Gazetteer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_expected_sizes() {
        let g = Gazetteer::new();
        assert!(g.country_count() >= 70, "{} countries", g.country_count());
        assert!(g.places().len() >= 230, "{} places", g.places().len());
    }

    #[test]
    fn lookup_by_name_and_alias() {
        let g = Gazetteer::new();
        let usa = g.lookup("usa");
        assert!(usa.iter().any(|p| p.location.country == "United States"));
        let la = g.lookup_kind("LA", PlaceKind::City);
        assert!(la
            .iter()
            .any(|p| p.location.city.as_deref() == Some("Los Angeles")));
        assert!(g.lookup("atlantis").is_empty());
    }

    #[test]
    fn homonyms_are_all_returned() {
        let g = Gazetteer::new();
        // "Buenos Aires" is both an Argentine province (region) and (via
        // alias) the city.
        let hits = g.lookup("Buenos Aires");
        assert!(hits.len() >= 2, "hits: {hits:?}");
        assert!(hits.iter().any(|p| p.kind == PlaceKind::Region));
        assert!(hits.iter().any(|p| p.kind == PlaceKind::City));
    }

    #[test]
    fn resolve_round_trips() {
        let g = Gazetteer::new();
        let chi = Location::city("United States", "Illinois", "Chicago");
        let p = g.resolve(&chi).unwrap();
        assert_eq!(p.kind, PlaceKind::City);
        assert!((p.center.lat - 41.88).abs() < 0.1);

        let region = Location::region("United States", "Texas");
        assert_eq!(g.resolve(&region).unwrap().kind, PlaceKind::Region);

        let country = Location::country("Japan");
        assert_eq!(g.resolve(&country).unwrap().kind, PlaceKind::Country);

        assert!(g.resolve(&Location::country("Atlantis")).is_none());
    }

    #[test]
    fn paper_figure_locations_present() {
        let g = Gazetteer::new();
        // Fig 9/10/11/12 anchors.
        for name in [
            "Seoul",
            "Chicago",
            "Amsterdam",
            "Santiago",
            "Bolivia",
            "Greece",
            "Saudi Arabia",
            "Hawaii",
            "Turkey",
            "Belgium",
            "Brazil",
            "Ecuador",
            "El Salvador",
            "Jamaica",
            "District of Columbia",
            "Missouri",
            "Ontario",
            "Texas",
            "Poland",
            "Switzerland",
            "Italy",
            "Montana",
            "Chiapas",
            "Quintana Roo",
            "Francisco Morazan",
        ] {
            assert!(!g.lookup(name).is_empty(), "missing {name}");
        }
    }

    #[test]
    fn server_cities_present() {
        let g = Gazetteer::new();
        for name in [
            "Amsterdam",
            "Chicago",
            "Sao Paulo",
            "Miami",
            "Santiago",
            "Sydney",
            "Istanbul",
            "Seoul",
            "Tokyo",
            "Seattle",
            "Vienna",
            "Luxembourg City",
            "Lima",
            "Dubai",
            "Frankfurt",
            "Salt Lake City",
            "Los Angeles",
            "San Francisco",
            "Dallas",
            "St. Louis",
            "Columbus",
            "New York City",
            "Washington",
            "Atlanta",
            "London",
            "Brussels",
            "Paris",
            "Madrid",
            "Stockholm",
            "Rome",
            "Riyadh",
        ] {
            assert!(
                !g.lookup_kind(name, PlaceKind::City).is_empty(),
                "missing server city {name}"
            );
        }
    }

    #[test]
    fn continents_assigned() {
        let g = Gazetteer::new();
        assert_eq!(g.continent_of("Brazil"), Some(Continent::SouthAmerica));
        assert_eq!(g.continent_of("Japan"), Some(Continent::Asia));
        assert_eq!(g.continent_of("Nowhere"), None);
        // Every place has a continent consistent with its country.
        for p in g.places() {
            if let Some(c) = g.continent_of(&p.location.country) {
                assert_eq!(p.continent, c, "{:?}", p.location);
            }
        }
    }

    #[test]
    fn mean_radius_positive() {
        let g = Gazetteer::new();
        assert!(g.places().iter().all(|p| p.mean_radius_km > 0.0));
    }
}
