//! Special functions: error function, normal distribution, log-gamma.
//!
//! Implemented from standard rational approximations so the workspace has no
//! numerical dependencies. `erf`/`erfc` follow W. J. Cody's SPECFUN `calerf`
//! (relative error below ~1e-16 in double precision); the normal quantile
//! uses Acklam's approximation with a Halley refinement.

// Cody's coefficients, region |x| <= 0.46875.
const ERF_A: [f64; 5] = [
    3.161_123_743_870_565_6e0,
    1.138_641_541_510_501_6e2,
    3.774_852_376_853_02e2,
    3.209_377_589_138_469_5e3,
    1.857_777_061_846_031_5e-1,
];
const ERF_B: [f64; 4] = [
    2.360_129_095_234_412_1e1,
    2.440_246_379_344_441_7e2,
    1.282_616_526_077_372_3e3,
    2.844_236_833_439_171e3,
];
// Region 0.46875 < x <= 4.
const ERF_C: [f64; 9] = [
    5.641_884_969_886_701e-1,
    8.883_149_794_388_376e0,
    6.611_919_063_714_163e1,
    2.986_351_381_974_001e2,
    8.819_522_212_417_69e2,
    1.712_047_612_634_070_6e3,
    2.051_078_377_826_071_5e3,
    1.230_339_354_797_997_2e3,
    2.153_115_354_744_038_5e-8,
];
const ERF_D: [f64; 8] = [
    1.574_492_611_070_983_5e1,
    1.176_939_508_913_125e2,
    5.371_811_018_620_099e2,
    1.621_389_574_566_690_2e3,
    3.290_799_235_733_459_7e3,
    4.362_619_090_143_247e3,
    3.439_367_674_143_721_6e3,
    1.230_339_354_803_749_4e3,
];
// Region x > 4.
const ERF_P: [f64; 6] = [
    3.053_266_349_612_323_4e-1,
    3.603_448_999_498_044_4e-1,
    1.257_817_261_112_292_5e-1,
    1.608_378_514_874_228e-2,
    6.587_491_615_298_378e-4,
    1.631_538_713_730_209_8e-2,
];
const ERF_Q: [f64; 5] = [
    2.568_520_192_289_822,
    1.872_952_849_923_460_4e0,
    5.279_051_029_514_284e-1,
    6.051_834_131_244_132e-2,
    2.335_204_976_268_691_8e-3,
];
const ONE_OVER_SQRT_PI: f64 = 5.641_895_835_477_563e-1;

/// `erfc(y)` for `y > 0.46875` via Cody's regions 2 and 3.
fn erfc_large(y: f64) -> f64 {
    let result = if y <= 4.0 {
        let mut xnum = ERF_C[8] * y;
        let mut xden = y;
        for i in 0..7 {
            xnum = (xnum + ERF_C[i]) * y;
            xden = (xden + ERF_D[i]) * y;
        }
        (xnum + ERF_C[7]) / (xden + ERF_D[7])
    } else {
        let z = 1.0 / (y * y);
        let mut xnum = ERF_P[5] * z;
        let mut xden = z;
        for i in 0..4 {
            xnum = (xnum + ERF_P[i]) * z;
            xden = (xden + ERF_Q[i]) * z;
        }
        let r = z * (xnum + ERF_P[4]) / (xden + ERF_Q[4]);
        (ONE_OVER_SQRT_PI - r) / y
    };
    // exp(-y²) computed in two pieces for accuracy (Cody's trick).
    let ysq = (y * 16.0).trunc() / 16.0;
    let del = (y - ysq) * (y + ysq);
    (-ysq * ysq).exp() * (-del).exp() * result
}

/// Error function, accurate to double precision.
pub fn erf(x: f64) -> f64 {
    let y = x.abs();
    if y <= 0.46875 {
        let z = if y > 1e-10 { y * y } else { 0.0 };
        let mut xnum = ERF_A[4] * z;
        let mut xden = z;
        for i in 0..3 {
            xnum = (xnum + ERF_A[i]) * z;
            xden = (xden + ERF_B[i]) * z;
        }
        x * (xnum + ERF_A[3]) / (xden + ERF_B[3])
    } else {
        let e = 1.0 - erfc_large(y);
        if x < 0.0 {
            -e
        } else {
            e
        }
    }
}

/// Complementary error function, accurate to double precision (including
/// the far tail, where `1 - erf(x)` would underflow to 0 in naive code).
pub fn erfc(x: f64) -> f64 {
    let y = x.abs();
    let r = if y <= 0.46875 {
        return 1.0 - erf(x);
    } else {
        erfc_large(y)
    };
    if x < 0.0 {
        2.0 - r
    } else {
        r
    }
}

/// Standard normal probability density.
pub fn norm_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution function.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Inverse standard normal CDF (quantile function), via Acklam's algorithm
/// with a Halley refinement step. Accurate to ~1e-13 on `(0, 1)`.
pub fn inv_norm_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "inv_norm_cdf requires p in (0,1), got {p}"
    );
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the high-precision CDF.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln C(n, k)` — log binomial coefficient via log-gamma.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        let cases = [
            (0.0, 0.0),
            (0.1, 0.112_462_916_018_285),
            (0.5, 0.520_499_877_813_047),
            (1.0, 0.842_700_792_949_715),
            (2.0, 0.995_322_265_018_953),
            (3.0, 0.999_977_909_503_001),
            (-1.0, -0.842_700_792_949_715),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 1e-13,
                "erf({x}) = {:.15} ≠ {want}",
                erf(x)
            );
        }
    }

    #[test]
    fn erfc_tail_does_not_underflow() {
        // erfc(10) ≈ 2.088e-45 — representable, though 1 - erf(10) is 0.
        let v = erfc(10.0);
        assert!(v > 0.0 && v < 1e-40, "erfc(10) = {v:e}");
        assert!((erfc(1.0) - (1.0 - erf(1.0))).abs() < 1e-15);
        assert!((erfc(-1.0) - (2.0 - erfc(1.0))).abs() < 1e-15);
    }

    #[test]
    fn norm_cdf_reference_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((norm_cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-12);
        assert!((norm_cdf(-1.959_963_984_540_054) - 0.025).abs() < 1e-12);
        assert!((norm_cdf(1.0) - 0.841_344_746_068_543).abs() < 1e-13);
        assert!((norm_cdf(-3.0) - 1.349_898_031_630_09e-3).abs() < 1e-12);
    }

    #[test]
    fn inv_norm_cdf_round_trips() {
        for &p in &[
            1e-6,
            0.001,
            0.01,
            0.025,
            0.2,
            0.5,
            0.8,
            0.975,
            0.99,
            0.999,
            1.0 - 1e-6,
        ] {
            let x = inv_norm_cdf(p);
            assert!(
                (norm_cdf(x) - p).abs() < 1e-9 * p.max(1e-3),
                "p={p}: x={x}, cdf(x)={}",
                norm_cdf(x)
            );
        }
        assert!(inv_norm_cdf(0.5).abs() < 1e-8);
        assert!((inv_norm_cdf(0.975) - 1.959_963_984_540_054).abs() < 1e-8);
    }

    #[test]
    #[should_panic]
    fn inv_norm_cdf_rejects_bounds() {
        let _ = inv_norm_cdf(0.0);
    }

    #[test]
    fn ln_gamma_reference_values() {
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_choose_matches_small_cases() {
        assert!((ln_choose(5, 2) - 10.0f64.ln()).abs() < 1e-9);
        assert!(ln_choose(10, 0).abs() < 1e-9);
        assert!((ln_choose(52, 5) - 2_598_960.0f64.ln()).abs() < 1e-7);
        assert!(ln_choose(3, 5).is_infinite());
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        // Trapezoid integration of pdf from -8 to x should match cdf.
        let x_target = 1.3;
        let n = 20_000;
        let lo = -8.0;
        let h = (x_target - lo) / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            let a = lo + i as f64 * h;
            acc += (norm_pdf(a) + norm_pdf(a + h)) / 2.0 * h;
        }
        assert!((acc - norm_cdf(x_target)).abs() < 1e-6);
    }

    #[test]
    fn erf_is_odd_and_monotone() {
        let mut prev = -1.0;
        for i in -40..=40 {
            let x = i as f64 * 0.1;
            assert!((erf(x) + erf(-x)).abs() < 1e-15, "odd at {x}");
            assert!(erf(x) >= prev, "monotone at {x}");
            prev = erf(x);
        }
    }
}
