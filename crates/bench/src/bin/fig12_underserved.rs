//! Fig 12 — latency distributions for El Salvador and Jamaica, countries
//! with no RIPE probes, compared against locations at a similar distance
//! (±200 km) from the Miami game server.
//!
//! This is the paper's "measurement where no infrastructure exists"
//! showcase: Tero produces distributions for places no open platform
//! covers.
//!
//! Usage: `fig12_underserved [--per 60] [--days 8]`

use serde::Serialize;
use tero_bench::{arg_usize, ascii_box, header, run_lol_world, write_json};
use tero_types::{GameId, Location};

#[derive(Serialize)]
struct Row {
    location: String,
    panel: &'static str,
    corrected_km: f64,
    p25: f64,
    p50: f64,
    p75: f64,
    n: usize,
}

fn main() {
    let per = arg_usize("--per", 60);
    let days = arg_usize("--days", 8) as u64;

    // Panel (a): El Salvador and Mexican/Central-American peers; panel
    // (b): Jamaica and Caribbean/Colombian peers — all served by Miami.
    let panel_a: Vec<Location> = vec![
        Location::country("El Salvador"),
        Location::region("Mexico", "Chiapas"),
        Location::region("Mexico", "Tabasco"),
        Location::region("Mexico", "Veracruz"),
        Location::region("Mexico", "Tamaulipas"),
        Location::region("Mexico", "Campeche"),
        Location::region("Honduras", "Francisco Morazan"),
        Location::country("Costa Rica"),
        Location::country("Nicaragua"),
    ];
    let panel_b: Vec<Location> = vec![
        Location::country("Jamaica"),
        Location::region("Mexico", "Quintana Roo"),
        Location::region("Mexico", "Yucatan"),
        Location::region("Colombia", "Magdalena"),
        Location::region("Colombia", "Atlantico"),
        Location::region("Colombia", "Bolivar"),
    ];
    let mut locations: Vec<Location> = panel_a.iter().chain(panel_b.iter()).cloned().collect();
    locations.sort();
    locations.dedup();

    header("Fig 12: El Salvador & Jamaica vs similar-distance peers (Miami server)");
    let (_world, report) = run_lol_world(&locations, per, days, 1212);

    let mut rows = Vec::new();
    for (panel, members) in [("(a) El Salvador", &panel_a), ("(b) Jamaica", &panel_b)] {
        println!();
        println!("{panel}:");
        for loc in members {
            let Some(dist) = report.distribution(loc, GameId::LeagueOfLegends) else {
                eprintln!("warning: no distribution for {loc}");
                continue;
            };
            let r = Row {
                location: loc.to_string(),
                panel,
                corrected_km: dist.corrected_distance_km.unwrap_or(0.0),
                p25: dist.stats.p25,
                p50: dist.stats.p50,
                p75: dist.stats.p75,
                n: dist.stats.n,
            };
            let stats = tero_stats::BoxplotStats {
                n: r.n,
                mean: r.p50,
                p5: r.p25,
                p25: r.p25,
                p50: r.p50,
                p75: r.p75,
                p95: r.p75,
            };
            println!(
                "  {:<30} [{}] p50 {:>5.1} ms ({:>4.0} km from Miami)",
                r.location,
                ascii_box(&stats, 0.0, 120.0, 40),
                r.p50,
                r.corrected_km
            );
            rows.push(r);
        }
    }
    println!();
    println!("El Salvador and Jamaica have no RIPE probes; these distributions are the");
    println!("kind of measurement only a passive source like Tero can provide (§5.2).");

    write_json("fig12_underserved", &rows);
}
