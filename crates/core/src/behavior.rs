//! The user-behaviour study (§6, Table 5).
//!
//! For each game and spike-size threshold, a Probit model regresses a
//! binary outcome (did the stream contain a server change? did the
//! streamer switch games afterwards?) on the number of spikes of at least
//! that size, and is summarised by its *average marginal effect*.
//!
//! Stream preparation follows §6's steps: (1) only `{streamer, game}`
//! tuples that experienced at least one change are analysed for server
//! changes; (2) streams shorter than the minimum time before a change is
//! allowed are discarded; (3) streams without a change are truncated to
//! the median time-to-first-change of the changed streams, so both groups
//! have comparable exposure; (4) each stream is annotated with its spike
//! counts per size threshold.

use crate::analysis::anomaly::SpikeEvent;
use serde::Serialize;
use tero_stats::{ProbitFit, ProbitModel};
use tero_types::{AnonId, GameId, SimDuration, SimTime};

/// The spike-size thresholds of Table 5's columns, in ms.
pub const SPIKE_SIZES_MS: [f64; 8] = [8.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0];

/// One prepared stream for behaviour analysis.
#[derive(Debug, Clone)]
pub struct BehaviorStream {
    /// Whose stream.
    pub anon: AnonId,
    /// Game played.
    pub game: GameId,
    /// Stream start.
    pub start: SimTime,
    /// Stream end.
    pub end: SimTime,
    /// Spikes detected in the stream (with magnitudes).
    pub spikes: Vec<SpikeEvent>,
    /// Time of the first server change in the stream, if any.
    pub first_server_change: Option<SimTime>,
    /// Whether the streamer switched games after this stream.
    pub game_changed_after: bool,
}

impl BehaviorStream {
    /// Number of spikes of at least `size_ms` occurring before `cutoff`.
    pub fn spikes_before(&self, size_ms: f64, cutoff: SimTime) -> u32 {
        self.spikes
            .iter()
            .filter(|s| s.magnitude_ms >= size_ms && s.start < cutoff)
            .count() as u32
    }
}

/// One Table 5 cell: the marginal effect of spikes ≥ size on the outcome.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct EffectCell {
    /// Spike-size threshold, ms.
    pub size_ms: f64,
    /// Average marginal effect of one extra spike on the outcome
    /// probability.
    pub marginal_effect: f64,
    /// Wald p-value of the spike coefficient.
    pub p_value: f64,
    /// Observations used.
    pub n_obs: usize,
}

/// One Table 5 row: a game's effects across spike sizes (cells may be
/// `None` when the model is degenerate, like the paper's empty cells).
#[derive(Debug, Clone, Serialize)]
pub struct EffectRow {
    /// The game.
    pub game: GameId,
    /// Observations entering the analysis.
    pub n_obs: usize,
    /// One cell per entry of [`SPIKE_SIZES_MS`].
    pub cells: Vec<Option<EffectCell>>,
}

/// Table 5 (top): server-change marginal effects for one game.
pub fn server_change_effects(
    streams: &[BehaviorStream],
    game: GameId,
    min_play: SimDuration,
) -> Option<EffectRow> {
    // Step 1: keep only streamers who changed servers at least once —
    // they demonstrably *can* and *will* switch.
    let mut changers: Vec<AnonId> = streams
        .iter()
        .filter(|s| s.game == game && s.first_server_change.is_some())
        .map(|s| s.anon)
        .collect();
    changers.sort_unstable();
    changers.dedup();
    if changers.is_empty() {
        return None;
    }

    // Step 2: discard streams shorter than the minimum playing time.
    let eligible: Vec<&BehaviorStream> = streams
        .iter()
        .filter(|s| s.game == game && changers.binary_search(&s.anon).is_ok())
        .filter(|s| s.end.since(s.start) >= min_play)
        .collect();

    // Step 3: median time to the first change.
    let mut ttc: Vec<u64> = eligible
        .iter()
        .filter_map(|s| s.first_server_change.map(|c| c.since(s.start).as_secs()))
        .collect();
    if ttc.is_empty() {
        return None;
    }
    ttc.sort_unstable();
    let median_ttc = SimDuration::from_secs(ttc[ttc.len() / 2]);

    // Step 4 + fit per spike size.
    let cells = SPIKE_SIZES_MS
        .iter()
        .map(|&size| {
            let mut model = ProbitModel::new();
            for s in &eligible {
                let (cutoff, changed) = match s.first_server_change {
                    Some(c) => (c, true),
                    None => ((s.start + median_ttc).min(s.end), false),
                };
                model.push(s.spikes_before(size, cutoff) as f64, changed);
            }
            fit_cell(&model, size)
        })
        .collect();
    Some(EffectRow {
        game,
        n_obs: eligible.len(),
        cells,
    })
}

/// Table 5 (bottom): game-change marginal effects for one game.
pub fn game_change_effects(streams: &[BehaviorStream], game: GameId) -> Option<EffectRow> {
    let eligible: Vec<&BehaviorStream> = streams.iter().filter(|s| s.game == game).collect();
    if eligible.len() < 50 {
        return None;
    }
    let cells = SPIKE_SIZES_MS
        .iter()
        .map(|&size| {
            let mut model = ProbitModel::new();
            for s in &eligible {
                model.push(s.spikes_before(size, s.end) as f64, s.game_changed_after);
            }
            fit_cell(&model, size)
        })
        .collect();
    Some(EffectRow {
        game,
        n_obs: eligible.len(),
        cells,
    })
}

/// §6's closing suggestion, implemented: the retention curve — the
/// probability that a streamer *keeps playing* the same game after a
/// stream, as a function of the number of spikes the stream contained.
/// Returns `(spike_count, retention_probability, observations)` rows.
pub fn retention_curve(
    streams: &[BehaviorStream],
    game: GameId,
    max_spikes: u32,
) -> Vec<(u32, f64, usize)> {
    let mut rows = Vec::new();
    for k in 0..=max_spikes {
        let bucket: Vec<&BehaviorStream> = streams
            .iter()
            .filter(|s| s.game == game)
            .filter(|s| {
                let n = s.spikes.len() as u32;
                if k == max_spikes {
                    n >= k
                } else {
                    n == k
                }
            })
            .collect();
        if bucket.is_empty() {
            continue;
        }
        let retained = bucket.iter().filter(|s| !s.game_changed_after).count();
        rows.push((k, retained as f64 / bucket.len() as f64, bucket.len()));
    }
    rows
}

fn fit_cell(model: &ProbitModel, size_ms: f64) -> Option<EffectCell> {
    // A probit needs real sample mass to say anything (the paper's empty
    // cells are exactly this), and an exploding coefficient means
    // (near-)separation — no usable MLE.
    if model.len() < 40 {
        return None;
    }
    let fit: ProbitFit = model.fit()?;
    if !fit.converged || fit.marginal_effect.is_empty() || fit.beta[1].abs() > 5.0 {
        return None;
    }
    Some(EffectCell {
        size_ms,
        marginal_effect: fit.marginal_effect[0],
        p_value: fit.p_value[1],
        n_obs: fit.n_obs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_types::SimRng;

    fn spike(at: SimTime, magnitude: f64) -> SpikeEvent {
        SpikeEvent {
            segment_idxs: vec![],
            magnitude_ms: magnitude,
            start: at,
            end: at + SimDuration::from_mins(5),
            samples: 1,
        }
    }

    /// Generate streams where each spike ≥ 15 ms adds `effect` to the
    /// change probability.
    fn synth(n: usize, effect: f64, seed: u64) -> Vec<BehaviorStream> {
        let mut rng = SimRng::new(seed);
        let mut out = Vec::new();
        for i in 0..n {
            let start = SimTime::from_hours(i as u64 * 10);
            let end = start + SimDuration::from_hours(3);
            let n_spikes = rng.below(5);
            let spikes: Vec<SpikeEvent> = (0..n_spikes)
                .map(|k| {
                    spike(
                        start + SimDuration::from_mins(20 + 25 * k),
                        16.0 + rng.f64() * 30.0,
                    )
                })
                .collect();
            let p = (0.05 + effect * spikes.len() as f64).min(0.95);
            let changed = rng.chance(p);
            let first_server_change = changed.then(|| start + SimDuration::from_mins(100));
            out.push(BehaviorStream {
                anon: AnonId(i as u64 % 40), // 40 streamers
                game: GameId::LeagueOfLegends,
                start,
                end,
                spikes,
                first_server_change,
                game_changed_after: changed,
            });
        }
        out
    }

    #[test]
    fn recovers_positive_server_change_effect() {
        let streams = synth(4_000, 0.08, 42);
        let row = server_change_effects(
            &streams,
            GameId::LeagueOfLegends,
            SimDuration::from_mins(30),
        )
        .expect("row");
        let cell = row.cells[2].expect("≥15 ms cell"); // 15 ms
        assert!(cell.marginal_effect > 0.02, "AME {}", cell.marginal_effect);
        assert!(cell.p_value < 0.01, "p {}", cell.p_value);
    }

    #[test]
    fn null_effect_is_insignificant() {
        let streams = synth(4_000, 0.0, 7);
        let row = game_change_effects(&streams, GameId::LeagueOfLegends).expect("row");
        let cell = row.cells[2].expect("cell");
        assert!(
            cell.marginal_effect.abs() < 0.02,
            "AME {}",
            cell.marginal_effect
        );
        assert!(cell.p_value > 0.01, "p {}", cell.p_value);
    }

    #[test]
    fn no_changers_yields_none() {
        let mut streams = synth(100, 0.5, 3);
        for s in &mut streams {
            s.first_server_change = None;
        }
        assert!(server_change_effects(
            &streams,
            GameId::LeagueOfLegends,
            SimDuration::from_mins(30)
        )
        .is_none());
        // Wrong game yields none too.
        assert!(game_change_effects(&streams, GameId::Dota2).is_none());
    }

    #[test]
    fn short_streams_are_dropped() {
        let mut streams = synth(500, 0.08, 9);
        let before = server_change_effects(
            &streams,
            GameId::LeagueOfLegends,
            SimDuration::from_mins(30),
        )
        .unwrap()
        .n_obs;
        // Shrink half the streams below the minimum play time.
        for s in streams.iter_mut().step_by(2) {
            s.end = s.start + SimDuration::from_mins(10);
        }
        let after = server_change_effects(
            &streams,
            GameId::LeagueOfLegends,
            SimDuration::from_mins(30),
        )
        .unwrap()
        .n_obs;
        assert!(after < before, "{after} vs {before}");
    }

    #[test]
    fn retention_curve_declines_with_spikes() {
        let streams = synth(6_000, 0.08, 21);
        let curve = retention_curve(&streams, GameId::LeagueOfLegends, 4);
        assert!(curve.len() >= 3);
        let first = curve.first().unwrap();
        let last = curve.last().unwrap();
        assert!(
            last.1 < first.1,
            "retention should fall with spikes: {first:?} -> {last:?}"
        );
        for (_, p, n) in &curve {
            assert!((0.0..=1.0).contains(p));
            assert!(*n > 0);
        }
    }

    #[test]
    fn spikes_before_counts_threshold_and_cutoff() {
        let start = SimTime::from_hours(1);
        let s = BehaviorStream {
            anon: AnonId(1),
            game: GameId::Dota2,
            start,
            end: start + SimDuration::from_hours(2),
            spikes: vec![
                spike(start + SimDuration::from_mins(10), 12.0),
                spike(start + SimDuration::from_mins(30), 25.0),
                spike(start + SimDuration::from_mins(90), 50.0),
            ],
            first_server_change: None,
            game_changed_after: false,
        };
        let mid = start + SimDuration::from_mins(60);
        assert_eq!(s.spikes_before(8.0, mid), 2);
        assert_eq!(s.spikes_before(20.0, mid), 1);
        assert_eq!(s.spikes_before(8.0, s.end), 3);
        assert_eq!(s.spikes_before(60.0, s.end), 0);
    }
}
