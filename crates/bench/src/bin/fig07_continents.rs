//! Fig 7 — distribution of Tero's users, Internet users, and global
//! population by continent.
//!
//! Builds a world, runs the pipeline's location module view (here: the
//! located streamers' continents) and compares against the Internet-user
//! and population shares. The paper's shape: Tero's users concentrate in
//! the Americas and Europe; Asia is far below its Internet-user share
//! (Twitch competes with regional platforms); Africa is nearly absent.
//!
//! Usage: `fig07_continents [--n 4000]`

use serde::Serialize;
use tero_bench::{arg_usize, header, write_json};
use tero_geoparse::Gazetteer;
use tero_types::Continent;
use tero_types::SimRng;
use tero_world::population::{internet_user_share, population_share, PopulationModel};

#[derive(Serialize)]
struct Row {
    continent: &'static str,
    tero_pct: f64,
    internet_pct: f64,
    population_pct: f64,
}

fn main() {
    let n = arg_usize("--n", 4_000);
    header("Fig 7: users by continent");

    let gaz = Gazetteer::new();
    let model = PopulationModel::new(&gaz);
    let mut rng = SimRng::new(7);
    let mut counts = std::collections::HashMap::new();
    for _ in 0..n {
        *counts
            .entry(model.sample(&mut rng).continent)
            .or_insert(0usize) += 1;
    }

    let mut rows = Vec::new();
    println!(
        "{:>4} {:>10} {:>15} {:>13}",
        "", "Tero %", "Internet users %", "population %"
    );
    for c in Continent::ALL {
        let tero = 100.0 * counts.get(&c).copied().unwrap_or(0) as f64 / n as f64;
        let internet = 100.0 * internet_user_share(c);
        let pop = 100.0 * population_share(c);
        println!(
            "{:>4} {tero:>9.1}% {internet:>14.1}% {pop:>12.1}%",
            c.code()
        );
        rows.push(Row {
            continent: c.code(),
            tero_pct: tero,
            internet_pct: internet,
            population_pct: pop,
        });
    }
    println!();
    println!("shape check: NA+SA+EU dominate Tero; Asia far below its Internet share;");
    println!("Africa nearly absent — as in the paper's Fig 7.");

    write_json("fig07_continents", &rows);
}
