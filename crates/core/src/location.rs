//! The location module (§3.1, App. D).
//!
//! Given a streamer's Twitch profile, the module outputs a
//! `{city, region, country}` tuple from public information only: the
//! Twitch description, a matched Twitter/Steam profile's location field,
//! or — when the geocoders' output was discarded by the conservative
//! filter — a stable country-level stream tag that confirms it (App. D.2).

use serde::{Deserialize, Serialize};
use tero_geoparse::combine::{combine_twitch_description, combine_twitter_location};
use tero_geoparse::profiles::SocialPlatform;
use tero_geoparse::tags::{recover_with_tag, TagObservation};
use tero_geoparse::tools::{GeoTool, ToolKind};
use tero_geoparse::{match_profile, Gazetteer, SocialProfile};
use tero_types::Location;

/// Which pathway produced the location (Table 3's row families).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocationSource {
    /// Extracted from the Twitch description (the "Twitch Comb." rows).
    TwitchDescription,
    /// Extracted from a matched Twitter profile's location field.
    TwitterProfile,
    /// Extracted from a matched Steam profile.
    SteamProfile,
    /// A discarded geocoder output recovered by a stable country tag.
    TagRecovered,
}

/// The location module.
#[derive(Debug)]
pub struct LocationModule<'g> {
    gaz: &'g Gazetteer,
}

impl<'g> LocationModule<'g> {
    /// Bind the module to a gazetteer.
    pub fn new(gaz: &'g Gazetteer) -> Self {
        LocationModule { gaz }
    }

    /// Locate one streamer from their public footprint. `social_directory`
    /// is the world's public profile directory; `tags` is the streamer's
    /// country-tag history (may be empty).
    pub fn locate(
        &self,
        twitch_username: &str,
        description: Option<&str>,
        social_directory: &[SocialProfile],
        tags: &[TagObservation],
    ) -> Option<(Location, LocationSource)> {
        // 1. Twitch description (0.97 % of streamers in the paper).
        if let Some(desc) = description {
            if let Some(loc) = combine_twitch_description(self.gaz, desc) {
                return Some((loc, LocationSource::TwitchDescription));
            }
            // Tag recovery (App. D.2): a raw geocoder output that the
            // combiner discarded is accepted when a stable country tag
            // confirms its country.
            if !tags.is_empty() {
                for kind in ToolKind::GEOCODERS {
                    for candidate in GeoTool::new(kind, self.gaz).extract(desc) {
                        if let Some(loc) = recover_with_tag(&candidate, tags, 3) {
                            return Some((loc, LocationSource::TagRecovered));
                        }
                    }
                }
            }
        }

        // 2. Social profile via username + backlink (§3.1).
        if let Some(profile) = match_profile(twitch_username, social_directory) {
            let field = profile.location_field.as_deref().unwrap_or("");
            if !field.is_empty() {
                if let Some(loc) = combine_twitter_location(self.gaz, field) {
                    let source = match profile.platform {
                        SocialPlatform::Twitter => LocationSource::TwitterProfile,
                        SocialPlatform::Steam => LocationSource::SteamProfile,
                    };
                    return Some((loc, source));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn twitter(username: &str, field: &str, links_to: &str) -> SocialProfile {
        SocialProfile {
            platform: SocialPlatform::Twitter,
            username: username.to_string(),
            location_field: Some(field.to_string()),
            bio: String::new(),
            links_to_twitch: Some(links_to.to_string()),
        }
    }

    #[test]
    fn description_wins_over_profile() {
        let gaz = Gazetteer::new();
        let module = LocationModule::new(&gaz);
        let directory = vec![twitter("gamer", "Paris, France", "gamer")];
        let (loc, source) = module
            .locate("gamer", Some("From Miami, Florida"), &directory, &[])
            .unwrap();
        assert_eq!(loc.city.as_deref(), Some("Miami"));
        assert_eq!(source, LocationSource::TwitchDescription);
    }

    #[test]
    fn falls_back_to_matched_twitter() {
        let gaz = Gazetteer::new();
        let module = LocationModule::new(&gaz);
        let directory = vec![twitter("gamer", "Barcelona, Spain", "gamer")];
        let (loc, source) = module
            .locate("gamer", Some("pro player, no cap"), &directory, &[])
            .unwrap();
        assert_eq!(loc.city.as_deref(), Some("Barcelona"));
        assert_eq!(source, LocationSource::TwitterProfile);
    }

    #[test]
    fn unmatched_profile_is_ignored() {
        let gaz = Gazetteer::new();
        let module = LocationModule::new(&gaz);
        // Same field but the username doesn't match the Twitch account.
        let directory = vec![twitter("someone_else", "Barcelona, Spain", "gamer")];
        assert!(module
            .locate("gamer", Some("pro player"), &directory, &[])
            .is_none());
    }

    #[test]
    fn tag_recovery_rescues_filtered_description() {
        let gaz = Gazetteer::new();
        let module = LocationModule::new(&gaz);
        // "Join us in Detroit!" alone is recovered by 2-of-3 agreement in
        // the combiner; to exercise the tag pathway use a description only
        // CLIFF resolves (capitalised bait rejected by others is hard to
        // construct, so verify the recovery call directly instead).
        let tags: Vec<TagObservation> = (0..4)
            .map(|i| TagObservation {
                poll: i,
                country_tag: Some("United States".into()),
            })
            .collect();
        let candidate = Location::city("United States", "Michigan", "Detroit");
        assert_eq!(
            recover_with_tag(&candidate, &tags, 3),
            Some(candidate.clone())
        );
        // End-to-end: any description still locates with tags present.
        let got = module.locate("x", Some("Join us in Detroit!"), &[], &tags);
        assert!(got.is_some());
    }

    #[test]
    fn nothing_to_go_on() {
        let gaz = Gazetteer::new();
        let module = LocationModule::new(&gaz);
        assert!(module.locate("gamer", None, &[], &[]).is_none());
        assert!(module
            .locate("gamer", Some("good vibes only"), &[], &[])
            .is_none());
    }
}
