//! HUD scene composer: renders synthetic gaming thumbnails.
//!
//! Each scene mimics one downloaded Twitch thumbnail: gameplay clutter, a
//! HUD panel with the latency readout at a game-specific anchor, and one of
//! the failure modes the paper catalogues in Fig 6 — a typical display, a
//! font too light against its background, a value partially hidden by an
//! open menu (the dominant cause of digit drops, §4.2.2), or a custom clock
//! overlay sitting exactly where latency normally goes (the "trickiest
//! error we encountered").

use crate::font::{rasterize, GLYPH_H, GLYPH_SPACING, GLYPH_W};
use crate::image::Image;
use serde::{Deserialize, Serialize};
use tero_types::SimRng;

/// Width of a rendered thumbnail in pixels.
pub const THUMB_W: usize = 160;
/// Height of a rendered thumbnail in pixels.
pub const THUMB_H: usize = 90;

/// The Fig 6 scenario taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// (a) Typical latency display.
    Typical,
    /// (b) Latency font too light against the background.
    LightFont,
    /// (c) Latency partially hidden by an open menu.
    PartiallyHidden,
    /// (d) Latency replaced by a clock (a streamer's custom UI element).
    ClockOverlay,
}

/// How the game decorates the number on screen (§3.2 step 3 mentions "ms"
/// right after the digits or "ping" right before them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decoration {
    /// the number followed by "ms"
    MsSuffix,
    /// "ping " followed by the number
    PingPrefix,
    /// Just the digits.
    Bare,
}

/// A synthetic thumbnail scene with known ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HudScene {
    /// The true latency the game is displaying.
    pub latency_ms: u32,
    /// Which Fig 6 failure mode (or the typical case) this scene exhibits.
    pub scenario: ScenarioKind,
    /// Top-left corner of the HUD text inside the thumbnail.
    pub anchor: (usize, usize),
    /// Text decoration around the number.
    pub decoration: Decoration,
    /// Integer font scale (font units → pixels).
    pub text_scale: usize,
    /// Foreground shade of the HUD text.
    pub fg: u8,
    /// Background shade of the HUD panel.
    pub bg: u8,
    /// Per-pixel salt-and-pepper noise probability.
    pub noise: f64,
    /// For [`ScenarioKind::PartiallyHidden`]: fraction of the text width
    /// covered from the left by the menu panel.
    pub occlusion_fraction: f64,
    /// Number of random gameplay-clutter rectangles behind the HUD.
    pub clutter: usize,
    /// For [`ScenarioKind::ClockOverlay`]: the `(hour, minute)` shown where
    /// the latency normally goes.
    pub clock: Option<(u32, u32)>,
    /// Standard deviation of per-pixel Gaussian grain (sensor/compression
    /// noise) applied to the whole frame.
    pub grain: f64,
}

impl HudScene {
    /// A typical scene with paper-ish defaults: dark text on a light HUD
    /// panel at the top-right corner, "ms" suffix, mild noise.
    pub fn typical(latency_ms: u32) -> Self {
        HudScene {
            latency_ms,
            scenario: ScenarioKind::Typical,
            anchor: (96, 6),
            decoration: Decoration::MsSuffix,
            text_scale: 2,
            fg: 20,
            bg: 230,
            noise: 0.01,
            occlusion_fraction: 0.0,
            clutter: 12,
            clock: None,
            grain: 2.0,
        }
    }

    /// Fig 6b: the font is nearly the same shade as its panel — the contrast
    /// is below the frame grain, so no (adaptive) threshold recovers it.
    pub fn light_font(latency_ms: u32) -> Self {
        HudScene {
            scenario: ScenarioKind::LightFont,
            fg: 224,
            grain: 4.0,
            ..HudScene::typical(latency_ms)
        }
    }

    /// Fig 6c: an open menu covers the leading part of the value.
    pub fn partially_hidden(latency_ms: u32, fraction: f64) -> Self {
        HudScene {
            scenario: ScenarioKind::PartiallyHidden,
            occlusion_fraction: fraction.clamp(0.0, 1.0),
            ..HudScene::typical(latency_ms)
        }
    }

    /// Fig 6d: a clock renders where the latency normally goes.
    pub fn clock_overlay(latency_ms: u32, hh: u32, mm: u32) -> Self {
        let mut s = HudScene::typical(latency_ms);
        s.scenario = ScenarioKind::ClockOverlay;
        s.clock = Some((hh % 24, mm % 60));
        s
    }

    /// The text the HUD actually shows.
    pub fn hud_text(&self) -> String {
        if let Some((hh, mm)) = self.clock {
            return format!("{hh}:{mm:02}");
        }
        match self.decoration {
            Decoration::MsSuffix => format!("{}ms", self.latency_ms),
            Decoration::PingPrefix => format!("ping {}", self.latency_ms),
            Decoration::Bare => self.latency_ms.to_string(),
        }
    }

    /// Longest text this scene's decoration can produce, in characters.
    pub fn max_chars(&self) -> usize {
        match self.decoration {
            Decoration::MsSuffix => 5,   // "999ms"
            Decoration::PingPrefix => 8, // "ping 999"
            Decoration::Bare => 5,       // "999" or a clock "23:59"
        }
    }

    /// Adjust the decoration, shifting the anchor left if needed so the
    /// longest possible text still fits inside the thumbnail.
    pub fn with_decoration(mut self, decoration: Decoration) -> Self {
        self.decoration = decoration;
        let needed = self.max_chars() * (GLYPH_W + GLYPH_SPACING) * self.text_scale;
        let max_x = THUMB_W.saturating_sub(needed + 4 * self.text_scale);
        self.anchor.0 = self.anchor.0.min(max_x);
        self
    }

    /// The region of interest that game-UI knowledge gives us: the HUD
    /// anchor area with a small margin (§3.2 step 1 "crops around it").
    /// Returns `(x, y, w, h)`.
    pub fn roi(&self) -> (usize, usize, usize, usize) {
        let margin = 3 * self.text_scale;
        let w = self.max_chars() * (GLYPH_W + GLYPH_SPACING) * self.text_scale + 2 * margin;
        let h = GLYPH_H * self.text_scale + 2 * margin;
        let x = self.anchor.0.saturating_sub(margin);
        let y = self.anchor.1.saturating_sub(margin);
        (x, y, w.min(THUMB_W - x), h.min(THUMB_H - y))
    }

    /// Render the thumbnail. Deterministic given the RNG state.
    pub fn render(&self, rng: &mut SimRng) -> Image {
        let mut img = Image::filled(THUMB_W, THUMB_H, 120);

        // Gameplay clutter: random rectangles of varied shade.
        for _ in 0..self.clutter {
            let w = rng.range_usize(8, 50);
            let h = rng.range_usize(6, 30);
            let x = rng.range_usize(0, THUMB_W.saturating_sub(w).max(1));
            let y = rng.range_usize(0, THUMB_H.saturating_sub(h).max(1));
            let shade = rng.range_u64(30, 220) as u8;
            img.fill_rect(x, y, w, h, shade);
        }

        // HUD panel + text. The panel has a fixed size covering the whole
        // readout area (as real game HUDs do), so it extends past the text
        // itself and past the ROI margin.
        let text_img = rasterize(&self.hud_text(), self.text_scale, self.fg, self.bg);
        let pad = 3 * self.text_scale + 1;
        let panel_w = self.max_chars() * (GLYPH_W + GLYPH_SPACING) * self.text_scale + 2 * pad;
        img.fill_rect(
            self.anchor.0.saturating_sub(pad),
            self.anchor.1.saturating_sub(pad),
            panel_w,
            text_img.height + 2 * pad,
            self.bg,
        );
        img.blit(&text_img, self.anchor.0, self.anchor.1);

        // Menu occlusion over the leading part of the text.
        if self.scenario == ScenarioKind::PartiallyHidden && self.occlusion_fraction > 0.0 {
            let cover_w = (text_img.width as f64 * self.occlusion_fraction).round() as usize;
            // The menu extends well beyond the HUD, as a real drop-down does.
            img.fill_rect(
                self.anchor.0.saturating_sub(8),
                self.anchor.1.saturating_sub(4),
                cover_w + 8,
                text_img.height + 20,
                55,
            );
        }

        // Gaussian grain plus salt-and-pepper noise.
        if self.grain > 0.0 || self.noise > 0.0 {
            for p in img.pixels.iter_mut() {
                if self.grain > 0.0 {
                    *p = (*p as f64 + rng.normal_with(0.0, self.grain))
                        .round()
                        .clamp(0.0, 255.0) as u8;
                }
                if self.noise > 0.0 && rng.chance(self.noise) {
                    *p = rng.range_u64(0, 256) as u8;
                }
            }
        }

        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hud_text_variants() {
        assert_eq!(HudScene::typical(45).hud_text(), "45ms");
        let mut s = HudScene::typical(45);
        s.decoration = Decoration::PingPrefix;
        assert_eq!(s.hud_text(), "ping 45");
        s.decoration = Decoration::Bare;
        assert_eq!(s.hud_text(), "45");
        assert_eq!(HudScene::clock_overlay(45, 12, 5).hud_text(), "12:05");
        assert_eq!(HudScene::clock_overlay(45, 25, 61).hud_text(), "1:01");
    }

    #[test]
    fn render_is_deterministic() {
        let scene = HudScene::typical(87);
        let a = scene.render(&mut SimRng::new(7));
        let b = scene.render(&mut SimRng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn roi_contains_text() {
        let scene = HudScene::typical(123);
        let (x, y, w, h) = scene.roi();
        assert!(x <= scene.anchor.0 && y <= scene.anchor.1);
        assert!(x + w <= THUMB_W && y + h <= THUMB_H);
        // Wide enough for "999ms" at scale 2 (5 chars * 12px = 60px).
        assert!(w >= 60, "roi width {w}");
    }

    #[test]
    fn occlusion_darkens_leading_digits() {
        let clean = HudScene::typical(456);
        let hidden = HudScene::partially_hidden(456, 0.4);
        let img_clean = clean.render(&mut SimRng::new(3));
        let img_hidden = hidden.render(&mut SimRng::new(3));
        // In the covered region, pixels differ from the clean render.
        let (ax, ay) = clean.anchor;
        let mut diffs = 0;
        for dy in 0..10 {
            for dx in 0..15 {
                if img_clean.get(ax + dx, ay + dy) != img_hidden.get(ax + dx, ay + dy) {
                    diffs += 1;
                }
            }
        }
        assert!(diffs > 40, "occlusion changed only {diffs} pixels");
    }

    #[test]
    fn light_font_has_low_contrast() {
        let s = HudScene::light_font(77);
        assert!((s.bg as i32 - s.fg as i32).abs() < 2 * s.grain as i32 * 2);
        // Render still works.
        let img = s.render(&mut SimRng::new(1));
        assert_eq!((img.width, img.height), (THUMB_W, THUMB_H));
    }
}
