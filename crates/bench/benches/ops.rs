//! Ops-plane overhead: what live health monitoring and latency-budget
//! aggregation cost, and — the load-bearing claim — that the
//! downloader's advisory starvation knob is free when unset. The
//! numbers feed the ops table in docs/PERFORMANCE.md.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use tero_chaos::{ChaosInjector, FaultPlan};
use tero_core::download::DownloadModule;
use tero_net::{default_link, ShardedStoreClient, SimNet};
use tero_obs::Registry;
use tero_ops::{default_stage_budgets, BudgetSource, BudgetTable, HealthMonitor};
use tero_store::{KvStore, ObjectStore};
use tero_trace::SpanRecord;

fn quiet_mesh(shards: usize) -> (SimNet, Registry, Vec<Arc<ShardedStoreClient>>) {
    let registry = Registry::new();
    let net = SimNet::with_shards(
        default_link(),
        ChaosInjector::new(FaultPlan::quiet(3)),
        shards,
    );
    let client = Arc::new(ShardedStoreClient::new(
        net.clone(),
        0,
        shards,
        &registry,
        7,
    ));
    (net, registry, vec![client])
}

/// One full observation of a 3-shard mesh — 6 in-band host polls, the
/// client's shard views, registry deltas, band evaluation — plus the
/// two report encodings on their own.
fn bench_health_report(c: &mut Criterion) {
    let mut group = c.benchmark_group("ops");
    let (net, registry, clients) = quiet_mesh(3);
    let engines = [Registry::new()];
    let mut monitor = HealthMonitor::new(&net, &registry);
    group.bench_function("health_observe_3_shards", |b| {
        b.iter(|| monitor.observe(0, &clients, &engines))
    });
    let report = monitor.observe(0, &clients, &engines);
    group.bench_function("health_render_text", |b| b.iter(|| report.render_text()));
    group.bench_function("health_to_json", |b| b.iter(|| report.to_json()));
    group.finish();
}

/// Synthetic spans over the real stage names, with a spread of tick
/// durations so the percentile sort does real work.
fn synth_spans(n: usize) -> Vec<SpanRecord> {
    let names = [
        "download.run",
        "stage.extract",
        "stage.analyze",
        "stage.locate",
        "pipeline.run",
    ];
    (0..n)
        .map(|i| SpanRecord {
            id: i as u64 + 1,
            parent: 0,
            name: Arc::from(names[i % names.len()]),
            index: None,
            lane: 0,
            start_tick: i as u64,
            end_tick: i as u64 + (i as u64 * 37 % 977) + 1,
            sim_at: None,
            wall_us: None,
            remote: None,
        })
        .collect()
}

fn bench_budget_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("ops");
    let budgets = default_stage_budgets();
    for n in [1_000usize, 10_000] {
        let spans = synth_spans(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("budget_table", n), &spans, |b, spans| {
            b.iter(|| BudgetTable::from_spans(spans, &budgets, BudgetSource::Ticks))
        });
    }
    group.finish();
}

/// The entire per-poll cost the advisory knob adds when unset (the
/// default): one `Option` discriminant check. Must stay in the same
/// class as the disabled stage timer (~16 ns / 1k checks budget —
/// see the obs bench).
fn bench_advisory_off_path(c: &mut Criterion) {
    let module = DownloadModule::new(KvStore::new(), ObjectStore::new());
    let mut group = c.benchmark_group("ops");
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("advisory_off_path_check_1k", |b| {
        b.iter(|| {
            let mut acks = 0u64;
            for _ in 0..1_000 {
                acks += u64::from(black_box(&module.starvation_advisory).is_some());
            }
            acks
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_health_report,
    bench_budget_table,
    bench_advisory_off_path
);
criterion_main!(benches);
