//! # tero-ops — the live operations layer
//!
//! The observability the distributed deployment was missing: PR 7 made
//! the system multi-process (engines over a `tero-net` shard mesh), and
//! this crate makes that mesh *diagnosable* while it runs instead of
//! only auditable afterwards.
//!
//! Two pillars:
//!
//! * [`health`] — [`HealthMonitor`] polls every shard host in-band
//!   (`OpsRequest::Health` frames over the quiet ops plane), folds in
//!   client-side failover state and registry deltas, and produces a
//!   typed per-window [`HealthReport`]: per-shard
//!   Healthy/Degraded/Partitioned, every derived gauge with its
//!   documented healthy band, and a [`Starvation`] verdict separating
//!   *network starvation* from *processing starvation*.
//! * [`budget`] — [`BudgetTable`] aggregates `tero-trace` spans into a
//!   per-stage p50/p95/p99 latency table with declared budgets and a
//!   pass/OVER verdict per row.
//!
//! Both render as aligned text and deterministic JSON: a replay of the
//! same fault plan produces byte-identical reports, so dashboards can
//! be pinned by `cmp` in CI like every other artifact in this
//! workspace. See docs/OPERATIONS.md ("Live health & starvation
//! diagnosis") for the operator's guide and `examples/ops_console.rs`
//! for the live console.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod budget;
pub mod health;

pub use budget::{default_stage_budgets, Budget, BudgetRow, BudgetSource, BudgetTable};
pub use health::{
    GaugeBand, HealthMonitor, HealthReport, HostProbe, ShardHealth, ShardStatus, Starvation,
};
