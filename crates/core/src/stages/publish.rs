//! The publish stage: the horizon finalizer of the §3.3.3/§5/§6
//! products. Since the aggregation stage went incremental
//! ([`crate::stages::agg`]) this stage no longer computes anything
//! group-wise — it *replays* the committed per-`{location, game}`
//! analyses in key order (byte-identical to the old batch fan-out's
//! merge order), rewrites the serving distribution family from them,
//! runs the sample-provenance pass and §6 behaviour preparation, and
//! assembles the final [`TeroReport`].

use super::{Stage, StageCx};
use crate::analysis::anomaly::{AnomalyReport, SegmentLabel};
use crate::analysis::clusters::{
    endpoint_changes, merge_location_clusters, ChangeKind, ClassifiedStreamer, EndPointChange,
    LatencyCluster,
};
use crate::analysis::distributions::{location_distribution, LocationDistribution};
use crate::analysis::shared::{detect_shared_anomalies, SharedAnomaly, StreamerActivity};
use crate::behavior::BehaviorStream;
use crate::download::DownloadStats;
use crate::location::LocationSource;
use crate::pipeline::{Tero, TeroReport};
use crate::serving::{
    dist_meta_key, dist_sketch_key, DistProvenance, ServeGranularity, DIST_META_PREFIX,
    DIST_SKETCH_PREFIX, SERVE_VERSION_KEY,
};
use crate::stages::agg::AggOutput;
use crate::stages::clean::Cleaned;
use crate::stages::locate::Located;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use tero_geoparse::Gazetteer;
use tero_trace::{DropReason, SampleKey, SampleState};
use tero_types::{AnonId, GameId, Location, SimTime};
use tero_world::games::{corrected_distance_to, primary_server};

/// Everything the publish stage consumes: the upstream stages' outputs
/// plus the cumulative run totals the engine tracked across windows.
pub struct PublishInput {
    /// The clean stage's output (streams, anomalies, classifications).
    pub cleaned: Cleaned,
    /// The locate stage's output.
    pub located: Located,
    /// The aggregation stage's settled per-group analyses.
    pub agg: AggOutput,
    /// Cumulative download statistics.
    pub download: DownloadStats,
    /// Thumbnails processed by the extract stage, across all windows.
    pub thumbnails: u64,
    /// Measurements extracted, across all windows.
    pub extracted: u64,
}

/// The publish stage. Stateless: pure aggregation over upstream outputs.
#[derive(Debug, Default)]
pub struct PublishStage;

impl Stage for PublishStage {
    type In = PublishInput;
    type Out = TeroReport;
    const NAME: &'static str = "publish";

    /// Aggregate, resolve provenance, and assemble the final report.
    fn run(&mut self, cx: &mut StageCx<'_>, input: Self::In) -> Self::Out {
        let m = cx.stage_metrics(Self::NAME);
        let _t = m.begin();
        let PublishInput {
            cleaned,
            located,
            agg,
            download,
            thumbnails,
            extracted,
        } = input;
        let Cleaned {
            streams,
            anomalies,
            classified,
        } = cleaned;
        let Located {
            locations,
            streamers_seen,
        } = located;
        m.records_in.add(anomalies.len() as u64);
        let tero = cx.tero;
        let ledger = tero.trace.ledger();

        // Drop every per-window distribution sketch (and its provenance
        // marker) the online refresh wrote along the way: the replay
        // below rewrites the whole distribution family from the settled
        // aggregation state, so the final serving bytes are identical to
        // a single-shot run.
        let mut cleared_online = false;
        for key in cx
            .kv
            .keys_with_prefix(DIST_SKETCH_PREFIX)
            .into_iter()
            .chain(cx.kv.keys_with_prefix(DIST_META_PREFIX))
        {
            cx.kv.del(&key);
            cleared_online = true;
        }

        // ---- Replay of the settled §5/§6 aggregation -------------------
        // The aggregation stage already analysed every `{location, game}`
        // group against the horizon views and canonical locations; walk
        // its maps in key order — exactly the order the old batch fan-out
        // merged group results — and fan the fields out into the report.
        let AggOutput {
            region: region_groups,
            country: country_groups,
        } = agg;
        let mut location_clusters: BTreeMap<(String, GameId), Vec<LatencyCluster>> =
            BTreeMap::new();
        let mut all_endpoint_changes: BTreeMap<(AnonId, GameId), Vec<EndPointChange>> =
            BTreeMap::new();
        let mut distributions = Vec::new();
        let mut shared_anomalies = Vec::new();
        // Per-member publication outcomes at each granularity, for the
        // provenance pass below: a sample is published if its streamer
        // contributed at either level.
        let mut region_outcomes: BTreeMap<(AnonId, GameId), MemberOutcome> = BTreeMap::new();
        let mut country_outcomes: BTreeMap<(AnonId, GameId), MemberOutcome> = BTreeMap::new();
        for (key, analysis) in region_groups {
            for (anon, changes) in analysis.changes {
                all_endpoint_changes.insert((anon, key.1), changes);
            }
            for (anon, outcome) in analysis.outcomes {
                region_outcomes.insert((anon, key.1), outcome);
            }
            location_clusters.insert((key.0.clone(), key.1), analysis.clusters);
            if let Some(dist) = analysis.distribution {
                commit_dist_sketch(cx, ServeGranularity::Region, &key.0, key.1, &dist);
                mark_canonical(cx, ServeGranularity::Region, &key.0, key.1);
                distributions.push(dist);
            }
            shared_anomalies.extend(analysis.shared);
        }
        for (key, analysis) in country_groups {
            for (anon, outcome) in analysis.outcomes {
                country_outcomes.insert((anon, key.1), outcome);
            }
            if let Some(dist) = analysis.distribution {
                commit_dist_sketch(cx, ServeGranularity::Country, &key.0, key.1, &dist);
                mark_canonical(cx, ServeGranularity::Country, &key.0, key.1);
                distributions.push(dist);
            }
        }
        // Every served distribution now carries canonical locations.
        cx.metrics
            .clean_dists_canonical
            .set(distributions.len() as i64);
        cx.metrics.clean_dists_provisional.set(0);
        // One version bump for the whole publish pass: the serving view
        // moved (canonical distributions written, or stale per-window
        // ones cleared), so `tero-serve` caches must drop stale answers.
        if cleared_online || !distributions.is_empty() {
            cx.kv.incr_by(SERVE_VERSION_KEY, 1);
        }

        // ---- Sample provenance -----------------------------------------
        // Resolve every still-pending ledger record to its final fate,
        // mirroring the publication rules of `analysis::distributions`:
        // a clean sample is published iff its streamer is located,
        // high-quality, the sample sits in a cluster the streamer
        // publishes (all clusters when static, the top-weight cluster
        // when mobile), and the streamer contributed — without a possible
        // location change — to a group that cleared `min_streamers` at
        // region or country granularity. Each failure along that chain is
        // a typed [`DropReason`]; the funnel counters are bumped from the
        // same decisions, which is what lets `Ledger::reconcile` prove
        // the metrics and the ledger agree record-for-record.
        let sp_prov = cx.sp_run.child("stage.provenance");
        for ((anon, game), report) in &anomalies {
            let cls = classified.get(&(*anon, *game));
            let (high_quality, is_static) = cls
                .map(|c| (c.high_quality, c.is_static))
                .unwrap_or((false, true));
            let mut all_set: BTreeSet<u64> = BTreeSet::new();
            let mut top_set: BTreeSet<u64> = BTreeSet::new();
            if let Some(c) = cls {
                for (ci, cluster) in c.clusters.iter().enumerate() {
                    for s in &cluster.samples {
                        all_set.insert(s.at.as_micros());
                        if ci == 0 {
                            top_set.insert(s.at.as_micros());
                        }
                    }
                }
            }
            let located_here = locations.contains_key(anon);
            let contributed = |m: &BTreeMap<(AnonId, GameId), MemberOutcome>, o| {
                m.get(&(*anon, *game)) == Some(&o)
            };
            let published_somewhere = contributed(&region_outcomes, MemberOutcome::Contributor)
                || contributed(&country_outcomes, MemberOutcome::Contributor);
            let moved_somewhere = contributed(&region_outcomes, MemberOutcome::Mover)
                || contributed(&country_outcomes, MemberOutcome::Mover);
            for (segment, label) in report.segments.iter().zip(&report.labels) {
                let segment_drop = match label {
                    SegmentLabel::Spike => Some(DropReason::Spike),
                    SegmentLabel::DiscardedGlitch => Some(DropReason::Glitch),
                    SegmentLabel::Discarded => Some(DropReason::Unstable),
                    _ => None,
                };
                for s in &segment.samples {
                    let key = SampleKey {
                        anon: *anon,
                        game: *game,
                        at: s.at,
                    };
                    let state = match segment_drop {
                        Some(reason) => SampleState::Dropped(reason),
                        None if !located_here => SampleState::Dropped(DropReason::GeoparseMiss),
                        None if !high_quality => SampleState::Dropped(DropReason::LowQuality),
                        None if !all_set.contains(&s.at.as_micros()) => {
                            SampleState::Dropped(DropReason::NotClustered)
                        }
                        None if !is_static && !top_set.contains(&s.at.as_micros()) => {
                            SampleState::Dropped(DropReason::MinWeight)
                        }
                        None if published_somewhere => SampleState::Published,
                        None if moved_somewhere => SampleState::Dropped(DropReason::LocationChange),
                        None => SampleState::Dropped(DropReason::GroupTooSmall),
                    };
                    match state {
                        SampleState::Published => cx.metrics.funnel_published.inc(),
                        SampleState::Dropped(reason) => {
                            cx.metrics.funnel_dropped[reason.index()].inc()
                        }
                        SampleState::Pending => unreachable!("provenance always resolves"),
                    }
                    ledger.resolve(&key, state);
                }
            }
        }
        drop(sp_prov);

        // ---- Behaviour preparation (§6) --------------------------------
        let sp_behavior = cx.sp_run.child("stage.behavior");
        let _t_behavior = tero.obs.stage_timer(&cx.metrics.stage_behavior_us);
        let mut behavior_streams = Vec::new();
        // Order every streamer's streams across games to detect game
        // changes between consecutive streams. A BTreeMap keeps the
        // emitted order deterministic across processes.
        let mut per_streamer: BTreeMap<AnonId, Vec<(SimTime, SimTime, GameId, usize)>> =
            BTreeMap::new();
        for ((anon, game), series) in &streams {
            for (idx, s) in series.iter().enumerate() {
                if let (Some(first), Some(last)) = (s.samples.first(), s.samples.last()) {
                    per_streamer
                        .entry(*anon)
                        .or_default()
                        .push((first.at, last.at, *game, idx));
                }
            }
        }
        for (anon, mut entries) in per_streamer {
            entries.sort_by_key(|e| e.0);
            for (i, &(start, end, game, idx)) in entries.iter().enumerate() {
                let game_changed_after = entries.get(i + 1).is_some_and(|n| n.2 != game);
                let report = anomalies.get(&(anon, game));
                let spikes = report
                    .map(|r| {
                        r.spikes
                            .iter()
                            .filter(|s| s.start >= start && s.start <= end)
                            .cloned()
                            .collect::<Vec<_>>()
                    })
                    .unwrap_or_default();
                let first_server_change =
                    all_endpoint_changes.get(&(anon, game)).and_then(|changes| {
                        changes
                            .iter()
                            .filter(|c| c.kind == ChangeKind::Server)
                            .map(|c| c.at)
                            .find(|&at| at >= start && at <= end)
                    });
                behavior_streams.push(BehaviorStream {
                    anon,
                    game,
                    start,
                    end,
                    spikes,
                    first_server_change,
                    game_changed_after,
                });
                let _ = idx;
            }
        }

        drop(_t_behavior);
        drop(sp_behavior);
        cx.metrics
            .distributions_published
            .add(distributions.len() as u64);
        cx.metrics
            .shared_anomalies
            .add(shared_anomalies.len() as u64);
        m.records_out.add(distributions.len() as u64);

        TeroReport {
            download,
            thumbnails,
            extracted,
            locations,
            streamers_seen,
            streams,
            anomalies,
            classified,
            location_clusters,
            endpoint_changes: all_endpoint_changes,
            distributions,
            shared_anomalies,
            behavior_streams,
        }
    }
}

/// Read-only lookup of per-series analysis views, so [`analyze_group`]
/// can run over either the finalize maps here or the online clean
/// stage's cached per-window views without cloning any reports.
pub(crate) trait ViewSource: Sync {
    /// The classification for one `{streamer, game}` series, if any.
    fn classified_for(&self, anon: AnonId, game: GameId) -> Option<&ClassifiedStreamer>;
    /// The anomaly report for one `{streamer, game}` series, if any.
    fn report_for(&self, anon: AnonId, game: GameId) -> Option<&AnomalyReport>;
}

/// The finalize-path [`ViewSource`]: borrowed clean-stage output maps.
pub(crate) struct MapViews<'a> {
    pub(crate) classified: &'a BTreeMap<(AnonId, GameId), ClassifiedStreamer>,
    pub(crate) anomalies: &'a BTreeMap<(AnonId, GameId), AnomalyReport>,
}

impl ViewSource for MapViews<'_> {
    fn classified_for(&self, anon: AnonId, game: GameId) -> Option<&ClassifiedStreamer> {
        self.classified.get(&(anon, game))
    }

    fn report_for(&self, anon: AnonId, game: GameId) -> Option<&AnomalyReport> {
        self.anomalies.get(&(anon, game))
    }
}

/// Encode one published distribution as a serving-layer sketch and commit
/// it under the granularity-tagged key. The sketch is built from exactly
/// the values behind the report's `LocationDistribution`, so a serving
/// answer and the report answer summarise the same sample multiset.
pub(crate) fn commit_dist_sketch(
    cx: &mut StageCx<'_>,
    granularity: ServeGranularity,
    location_key: &str,
    game: GameId,
    dist: &LocationDistribution,
) {
    let sketch = tero_stats::QuantileSketch::from_values(&dist.values_ms);
    let encoded = sketch.encode();
    cx.metrics.sketch_bytes.add(encoded.len() as u64);
    cx.metrics.sketch_commits.inc();
    cx.kv
        .set(&dist_sketch_key(granularity, game, location_key), encoded);
}

/// Write the canonical provenance marker next to a just-committed
/// distribution sketch (the publish finalizer only ever writes
/// canonical ones — every location it aggregates under is a settled
/// `engine:locate:*` result).
fn mark_canonical(
    cx: &mut StageCx<'_>,
    granularity: ServeGranularity,
    location_key: &str,
    game: GameId,
) {
    let key = dist_meta_key(&dist_sketch_key(granularity, game, location_key))
        .expect("dist keys always map to meta keys");
    cx.kv.set(&key, DistProvenance::Canonical.tag());
}

/// The aggregation granularity of one analysis group (§5's two published
/// levels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Granularity {
    /// Region-level groups: the full §3.3.3/§5/§6 product set.
    Region,
    /// Country-level groups: distributions only (Figs 9, 11, 12).
    Country,
}

/// How one member of a `{location, game}` group fared in the
/// distribution-publication decision — the group-level input to the
/// sample-provenance pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) enum MemberOutcome {
    /// Non-mover in a group that published a distribution: the member's
    /// cluster samples are in the data-set (subject to the per-streamer
    /// quality gates, which provenance checks separately).
    Contributor,
    /// Excluded for a possible location change (§3.3.3 step 4).
    Mover,
    /// The group published nothing — too few contributors, or no summary
    /// statistics could be computed.
    Withheld,
}

/// Everything the per-`{location, game}` aggregation derives from one
/// group — produced on a pool worker, merged in group-key order.
/// Serializable so the incremental aggregation stage can commit each
/// group's settled analysis under `engine:agg:group:*` and replay it
/// after a kill/resume.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct GroupAnalysis {
    /// §3.3.3 step-3 merged clusters (region granularity only).
    pub(crate) clusters: Vec<LatencyCluster>,
    /// Per-member end-point changes (region granularity only).
    pub(crate) changes: Vec<(AnonId, Vec<EndPointChange>)>,
    /// The published distribution, if the group clears `min_streamers`.
    pub(crate) distribution: Option<LocationDistribution>,
    /// Shared anomalies over the group (region granularity only).
    pub(crate) shared: Vec<SharedAnomaly>,
    /// Per-member publication outcome, for the provenance ledger.
    pub(crate) outcomes: Vec<(AnonId, MemberOutcome)>,
}

/// Analyse one `{location, game}` group: merged clusters, end-point
/// changes, the published distribution and shared anomalies. Pure with
/// respect to the pipeline's mutable state, so groups can run in
/// parallel; at [`Granularity::Country`] only the distribution is
/// produced (matching the sequential country loop).
#[allow(clippy::too_many_arguments)]
pub(crate) fn analyze_group<V: ViewSource>(
    tero: &Tero,
    gaz: &Gazetteer,
    game: GameId,
    members: &[AnonId],
    locations: &HashMap<AnonId, (Location, LocationSource)>,
    views: &V,
    granularity: Granularity,
) -> GroupAnalysis {
    let level = |loc: &Location| match granularity {
        Granularity::Region => loc.to_region_level(),
        Granularity::Country => loc.to_country_level(),
    };
    let classified_members: Vec<&ClassifiedStreamer> = members
        .iter()
        .filter_map(|a| views.classified_for(*a, game))
        .collect();
    // Step 3: merged clusters from static streamers.
    let clusters = merge_location_clusters(&classified_members, tero.params.lat_gap_ms);
    // Step 4: end-point changes for everyone in the group.
    let mut movers: Vec<AnonId> = Vec::new();
    let mut all_changes: Vec<(AnonId, Vec<EndPointChange>)> = Vec::new();
    for anon in members {
        if let Some(report) = views.report_for(*anon, game) {
            let changes = endpoint_changes(report, &clusters, tero.params.lat_gap_ms);
            if changes
                .iter()
                .any(|c| c.kind == ChangeKind::PossibleLocation)
            {
                movers.push(*anon);
            }
            if granularity == Granularity::Region && !changes.is_empty() {
                all_changes.push((*anon, changes));
            }
        }
    }

    // Distributions: high-quality members with no possible location
    // change, at the group's granularity.
    let contributors: Vec<&ClassifiedStreamer> = members
        .iter()
        .filter(|a| !movers.contains(a))
        .filter_map(|a| views.classified_for(*a, game))
        .collect();
    let mut distribution = None;
    if contributors.len() >= tero.min_streamers {
        let group_loc = locations
            .get(&members[0])
            .map(|(l, _)| level(l))
            .expect("grouped member is located");
        let server = primary_server(gaz, game, &group_loc);
        let distance = server
            .as_ref()
            .and_then(|s| corrected_distance_to(gaz, &group_loc, s));
        if let Some(mut dist) = location_distribution(
            group_loc,
            game,
            &contributors,
            server.map(|s| s.location),
            distance,
        ) {
            if tero.reject_outside_clusters {
                reject_outside(&mut dist, &clusters, tero.params.lat_gap_ms);
            }
            distribution = Some(dist);
        }
    }

    // Shared anomalies over the group (region granularity only).
    let shared = if granularity == Granularity::Region {
        let region_loc = locations
            .get(&members[0])
            .map(|(l, _)| level(l))
            .expect("grouped member is located");
        let activities: Vec<StreamerActivity> = members
            .iter()
            .filter_map(|a| {
                let report = views.report_for(*a, game)?;
                let times: Vec<SimTime> = report
                    .segments
                    .iter()
                    .flat_map(|s| s.samples.iter().map(|x| x.at))
                    .collect();
                Some(StreamerActivity {
                    anon: *a,
                    measurement_times: times,
                    spikes: report.spikes.clone(),
                })
            })
            .collect();
        detect_shared_anomalies(game, &region_loc, &activities)
    } else {
        Vec::new()
    };

    let outcomes = members
        .iter()
        .map(|a| {
            let outcome = if movers.contains(a) {
                MemberOutcome::Mover
            } else if distribution.is_some() {
                MemberOutcome::Contributor
            } else {
                MemberOutcome::Withheld
            };
            (*a, outcome)
        })
        .collect();

    GroupAnalysis {
        clusters,
        changes: all_changes,
        distribution,
        shared,
        outcomes,
    }
}

/// §3.1.2's suggested-but-not-taken mislocation screen, implemented as an
/// opt-in ([`Tero::reject_outside_clusters`]): drop a distribution's
/// values that fall outside every §3.3.3 step-3 merged latency cluster of
/// the `{location, game}` (± `LatGap`, Table 1), then recompute its
/// summary. §3.1.2 observes that a mislocated streamer's measurements
/// rarely land inside the location's real clusters and leaves the filter
/// to the data-set's users; applying it screens location errors at the
/// cost of some legitimate tail mass.
pub(crate) fn reject_outside(
    dist: &mut LocationDistribution,
    clusters: &[LatencyCluster],
    gap: u32,
) -> bool {
    if clusters.is_empty() {
        return false;
    }
    let inside = |v: f64| {
        clusters.iter().any(|c| {
            v >= c.min_ms.saturating_sub(gap) as f64 && v <= c.max_ms.saturating_add(gap) as f64
        })
    };
    let before = dist.values_ms.len();
    dist.values_ms.retain(|&v| inside(v));
    if dist.values_ms.len() == before {
        return false;
    }
    if let Some(stats) = tero_stats::BoxplotStats::from_samples(&dist.values_ms) {
        dist.stats = stats;
        dist.normalized = dist
            .corrected_distance_km
            .filter(|&d| d > 0.0)
            .map(|d| dist.stats.scaled(1_000.0 / d));
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist_with(values: Vec<f64>) -> LocationDistribution {
        LocationDistribution {
            location: Location::country("France"),
            game: GameId::LeagueOfLegends,
            streamers: 2,
            stats: tero_stats::BoxplotStats::from_samples(&values).unwrap(),
            values_ms: values,
            server: None,
            corrected_distance_km: Some(500.0),
            normalized: None,
        }
    }

    #[test]
    fn reject_outside_recomputes_summary() {
        let clusters = vec![LatencyCluster {
            min_ms: 40,
            max_ms: 50,
            samples: vec![],
            weight: 1.0,
        }];
        let mut dist = dist_with(vec![42.0, 45.0, 48.0, 200.0, 210.0]);
        let changed = reject_outside(&mut dist, &clusters, 15);
        assert!(changed);
        assert_eq!(dist.values_ms.len(), 3, "outside-cluster values dropped");
        assert!(dist.stats.p95 <= 50.0 + 1e-9);
        assert!(dist.normalized.is_some(), "normalised summary recomputed");
        // No clusters -> no-op.
        let mut dist2 = dist.clone();
        assert!(!reject_outside(&mut dist2, &[], 15));
        // All inside -> untouched.
        let before = dist.values_ms.len();
        assert!(!reject_outside(&mut dist, &clusters, 15));
        assert_eq!(dist.values_ms.len(), before);
    }

    #[test]
    fn reject_outside_empty_cluster_edge_cases() {
        // Empty cluster list: the filter must be a no-op even when every
        // value would fail an "inside any cluster" test vacuously.
        let mut dist = dist_with(vec![10.0, 20.0, 30.0]);
        let stats_before = dist.stats;
        assert!(!reject_outside(&mut dist, &[], 0));
        assert_eq!(dist.values_ms, vec![10.0, 20.0, 30.0]);
        assert_eq!(dist.stats.p50, stats_before.p50);

        // Every value outside the clusters: the distribution is emptied
        // and reported as changed. `BoxplotStats::from_samples(&[])` is
        // `None`, so the stale pre-filter summary is deliberately kept —
        // callers treat an empty `values_ms` as "nothing to publish".
        let clusters = vec![LatencyCluster {
            min_ms: 500,
            max_ms: 510,
            samples: vec![],
            weight: 1.0,
        }];
        let mut dist = dist_with(vec![10.0, 20.0, 30.0]);
        let stats_before = dist.stats;
        assert!(reject_outside(&mut dist, &clusters, 5));
        assert!(dist.values_ms.is_empty(), "all values rejected");
        assert_eq!(
            dist.stats.p50, stats_before.p50,
            "no summary recomputed from an empty sample set"
        );
    }
}
