//! Sharded-deployment explorer: run the pipeline as N engines over the
//! networked store mesh — under the stock `NetFault` schedule or a
//! quiet one — and check the merged horizon report byte-for-byte
//! against a fault-free single-process run of the same world.
//!
//! ```sh
//! cargo run --release --example sharded_explore            # defaults
//! cargo run --release --example sharded_explore -- 7       # explicit seed
//! cargo run --release --example sharded_explore -- 7 quiet # no faults
//! ```
//!
//! The first argument is the world seed, the optional second the fault
//! mode: `faulty` (default — the stock `default_net_fault` schedule:
//! background frame drop/delay plus one planned partition and one
//! planned primary kill) or `quiet`. Stdout is **byte-stable**: for a
//! fixed seed and mode it is identical across repeat runs, because the
//! merged report digest equals the single-process digest by the
//! sharded-merge contract, and the `net.*` / `chaos.injected.net_*`
//! counters replay exactly under a fixed plan and net seed
//! (`tests/net_failover.rs`). `scripts/ci.sh` runs the faulty mode
//! twice and diffs stdout, then the quiet mode once.

use tero::chaos::FaultPlan;
use tero::core::pipeline::{ExtractionMode, Tero};
use tero::core::sharded::{run_sharded, ShardedConfig};
use tero::net::default_net_fault;
use tero::world::{World, WorldConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be a u64"))
        .unwrap_or(4242);
    let mode = args.next().unwrap_or_else(|| "faulty".into());
    let quiet = match mode.as_str() {
        "quiet" => true,
        "faulty" => false,
        other => panic!("mode must be `faulty` or `quiet`, got `{other}`"),
    };

    // A couple of pinned location groups so the publish stage has
    // something to publish (random small worlds rarely concentrate
    // enough streamers anywhere), plus a few free-roaming streamers.
    let pinned = [
        tero::types::Location::country("Netherlands"),
        tero::types::Location::country("Poland"),
    ]
    .map(|l| (l, tero::types::GameId::LeagueOfLegends, 5))
    .into_iter()
    .collect();
    let world = WorldConfig {
        seed,
        n_streamers: 6,
        days: 1,
        shared_events: 1,
        pinned,
        ..WorldConfig::default()
    };
    let (engines, shards, windows) = (2, 3, 4);
    let plan = if quiet {
        FaultPlan::quiet(seed)
    } else {
        FaultPlan {
            net: default_net_fault(shards, windows),
            ..FaultPlan::quiet(seed)
        }
    };
    let cfg = ShardedConfig {
        engines,
        shards,
        windows,
        world: world.clone(),
        mode: ExtractionMode::Calibrated,
        min_streamers: 3,
        plan,
        net_seed: seed,
        ..ShardedConfig::default()
    };

    println!("== sharded topology (seed {seed}, mode {mode}) ==");
    println!("{engines} engines, {shards} store shards (primary + replica), {windows} windows");
    let out = run_sharded(&cfg);

    // The contract under test: the merged report is byte-identical to a
    // fault-free single-process run over the same world.
    let mut solo_world = World::build(world);
    let solo = Tero {
        mode: ExtractionMode::Calibrated,
        min_streamers: 3,
        ..Tero::default()
    }
    .run(&mut solo_world);
    let merged_digest = out.report.digest();
    let digests_match = merged_digest == solo.digest();
    println!(
        "merged report: {} streamers seen, {} samples extracted, {} distributions",
        out.report.streamers_seen,
        out.report.extracted,
        out.report.distributions.len()
    );
    println!("merged == single-process: {digests_match}");
    assert!(digests_match, "sharded merge lost byte-identity");

    // Deterministic under a fixed plan + net seed, so safe on stdout.
    println!("\n== injected faults ==");
    let snap = out.net_registry.snapshot();
    for name in [
        "chaos.injected.net_partition_drop",
        "chaos.injected.net_frame_drop",
        "chaos.injected.net_frame_delay",
        "chaos.injected.net_shard_kill",
    ] {
        println!("{name:40} {}", snap.counter(name).unwrap_or(0));
    }
    println!("\n== client recovery ==");
    for name in [
        "net.requests",
        "net.frames",
        "net.bytes",
        "net.timeouts",
        "net.retries",
        "net.failovers",
        "net.lease_renewals",
        "net.resyncs",
        "net.breaker_open",
    ] {
        println!("{name:40} {}", snap.counter(name).unwrap_or(0));
    }
}
