//! A Reno-style TCP model for background traffic.
//!
//! Implements the sender/receiver behaviour the Table 2 experiments need:
//! slow start, congestion avoidance, fast retransmit / fast recovery on
//! three duplicate ACKs, retransmission timeouts with exponential backoff,
//! Karn-style RTT sampling (no samples from retransmitted segments), an
//! out-of-order receive buffer with cumulative ACKs, and an optional
//! application-layer rate limit (the paper's "10 % BD each" flows are
//! app-limited, not greedy).
//!
//! Sequence numbers count *segments*, not bytes — each data packet carries
//! exactly one maximum-size segment, which is all that store-and-forward
//! queueing dynamics need.

use crate::packet::{NodeId, Packet, PacketKind};
use std::collections::{BTreeSet, HashMap};
use tero_types::{SimDuration, SimTime};

/// Sender congestion-control state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CcState {
    SlowStart,
    CongestionAvoidance,
    FastRecovery,
}

/// One TCP flow (sender and receiver state live together; the simulator
/// routes packets between the two endpoints).
#[derive(Debug)]
pub struct TcpFlow {
    /// Sender node.
    pub src: NodeId,
    /// Receiver node.
    pub dst: NodeId,
    /// Data-segment wire size in bytes.
    pub seg_bytes: u32,
    /// ACK wire size in bytes.
    pub ack_bytes: u32,
    /// First transmission time.
    pub start: SimTime,
    /// The sender stops offering new data at this time.
    pub stop: SimTime,
    /// Application-limited rate in bits/s (`None` = greedy).
    pub app_limit_bps: Option<f64>,

    // Sender state.
    snd_una: u64,
    snd_nxt: u64,
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    cc: CcState,
    recover: u64,
    srtt_ms: Option<f64>,
    rttvar_ms: f64,
    rto: SimDuration,
    /// Generation counter: a scheduled RTO event is valid only if its
    /// generation matches (restarting the timer bumps the generation).
    pub rto_gen: u64,
    send_times: HashMap<u64, SimTime>,
    tokens_bytes: f64,
    tokens_at: SimTime,

    // Receiver state.
    rcv_nxt: u64,
    ooo: BTreeSet<u64>,

    // Statistics.
    /// Segments delivered in order to the receiving application.
    pub delivered: u64,
    /// Segments retransmitted.
    pub retransmits: u64,
    /// Timeout events.
    pub timeouts: u64,
}

/// What the flow asks the simulator to do after handling an event.
#[derive(Debug, Default)]
pub struct TcpActions {
    /// Packets to inject at the appropriate source node.
    pub send: Vec<Packet>,
    /// Restart the RTO timer at this absolute time (with the flow's new
    /// `rto_gen`).
    pub set_rto_at: Option<SimTime>,
}

impl TcpFlow {
    /// Create a flow with standard parameters (1500-byte segments, 40-byte
    /// ACKs, initial cwnd 2, initial RTO 1 s).
    pub fn new(src: NodeId, dst: NodeId, start: SimTime, stop: SimTime) -> Self {
        TcpFlow {
            src,
            dst,
            seg_bytes: 1_500,
            ack_bytes: 40,
            start,
            stop,
            app_limit_bps: None,
            snd_una: 0,
            snd_nxt: 0,
            cwnd: 2.0,
            ssthresh: 64.0,
            dupacks: 0,
            cc: CcState::SlowStart,
            recover: 0,
            srtt_ms: None,
            rttvar_ms: 0.0,
            rto: SimDuration::from_secs(1),
            rto_gen: 0,
            send_times: HashMap::new(),
            tokens_bytes: 0.0,
            tokens_at: start,
            rcv_nxt: 0,
            ooo: BTreeSet::new(),
            delivered: 0,
            retransmits: 0,
            timeouts: 0,
        }
    }

    /// App-limited variant (Table 2's staggered 10 %-BD flows).
    pub fn with_app_limit(mut self, bps: f64) -> Self {
        self.app_limit_bps = Some(bps);
        self
    }

    /// Current congestion window, in segments.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current smoothed RTT estimate in ms, if any sample was taken.
    pub fn srtt_ms(&self) -> Option<f64> {
        self.srtt_ms
    }

    /// Segments in flight.
    pub fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn data_packet(&self, seq: u64, now: SimTime, flow_idx: usize) -> Packet {
        Packet {
            src: self.src,
            dst: self.dst,
            size_bytes: self.seg_bytes,
            kind: PacketKind::TcpData {
                flow: flow_idx,
                seq,
            },
            created: now,
        }
    }

    fn refill_tokens(&mut self, now: SimTime) {
        if let Some(bps) = self.app_limit_bps {
            let dt = now.since(self.tokens_at).as_secs_f64();
            self.tokens_bytes =
                (self.tokens_bytes + bps / 8.0 * dt).min(8.0 * self.seg_bytes as f64); // small burst bucket
            self.tokens_at = now;
        }
    }

    /// Offer the sender a chance to transmit new segments (called on
    /// start, on ACKs, and on pacing ticks for app-limited flows).
    pub fn try_send(&mut self, now: SimTime, flow_idx: usize) -> TcpActions {
        let mut actions = TcpActions::default();
        if now < self.start || now >= self.stop {
            return actions;
        }
        self.refill_tokens(now);
        while (self.flight() as f64) < self.cwnd {
            if let Some(_bps) = self.app_limit_bps {
                if self.tokens_bytes < self.seg_bytes as f64 {
                    break;
                }
                self.tokens_bytes -= self.seg_bytes as f64;
            }
            let seq = self.snd_nxt;
            self.snd_nxt += 1;
            self.send_times.insert(seq, now);
            actions.send.push(self.data_packet(seq, now, flow_idx));
        }
        if !actions.send.is_empty() {
            self.rto_gen += 1;
            actions.set_rto_at = Some(now + self.rto);
        }
        actions
    }

    /// Receiver side: handle an arriving data segment; returns the ACK to
    /// send back.
    pub fn on_data(&mut self, seq: u64, now: SimTime, flow_idx: usize) -> Packet {
        if seq == self.rcv_nxt {
            self.rcv_nxt += 1;
            self.delivered += 1;
            // Drain any buffered contiguous segments.
            while self.ooo.remove(&self.rcv_nxt) {
                self.rcv_nxt += 1;
                self.delivered += 1;
            }
        } else if seq > self.rcv_nxt {
            self.ooo.insert(seq);
        } // duplicate below rcv_nxt: ignore, still ACK
        Packet {
            src: self.dst,
            dst: self.src,
            size_bytes: self.ack_bytes,
            kind: PacketKind::TcpAck {
                flow: flow_idx,
                ack: self.rcv_nxt,
            },
            created: now,
        }
    }

    /// Sender side: handle a cumulative ACK.
    pub fn on_ack(&mut self, ack: u64, now: SimTime, flow_idx: usize) -> TcpActions {
        let mut actions = TcpActions::default();
        if ack > self.snd_una {
            // New data acknowledged.
            let newly = ack - self.snd_una;
            // Karn: RTT sample only from a never-retransmitted segment.
            if let Some(sent) = self.send_times.remove(&(ack - 1)) {
                let sample = now.since(sent).as_millis_f64();
                self.update_rtt(sample);
            }
            for s in self.snd_una..ack {
                self.send_times.remove(&s);
            }
            self.snd_una = ack;
            self.dupacks = 0;
            match self.cc {
                CcState::FastRecovery => {
                    if ack >= self.recover {
                        // Full recovery.
                        self.cwnd = self.ssthresh;
                        self.cc = CcState::CongestionAvoidance;
                    } else {
                        // Partial ACK: retransmit the next hole.
                        self.retransmits += 1;
                        actions
                            .send
                            .push(self.data_packet(self.snd_una, now, flow_idx));
                    }
                }
                CcState::SlowStart => {
                    self.cwnd += newly as f64;
                    if self.cwnd >= self.ssthresh {
                        self.cc = CcState::CongestionAvoidance;
                    }
                }
                CcState::CongestionAvoidance => {
                    self.cwnd += newly as f64 / self.cwnd;
                }
            }
            // Restart the timer if data remains outstanding.
            self.rto_gen += 1;
            if self.flight() > 0 {
                actions.set_rto_at = Some(now + self.rto);
            }
            let more = self.try_send(now, flow_idx);
            actions.send.extend(more.send);
            if let Some(t) = more.set_rto_at {
                actions.set_rto_at = Some(t);
            }
        } else if ack == self.snd_una && self.flight() > 0 {
            // Duplicate ACK.
            self.dupacks += 1;
            match self.cc {
                CcState::FastRecovery => {
                    // Window inflation lets new segments out per dupack.
                    self.cwnd += 1.0;
                    let more = self.try_send(now, flow_idx);
                    actions.send.extend(more.send);
                }
                _ if self.dupacks == 3 => {
                    // Fast retransmit.
                    self.ssthresh = (self.flight() as f64 / 2.0).max(2.0);
                    self.cwnd = self.ssthresh + 3.0;
                    self.recover = self.snd_nxt;
                    self.cc = CcState::FastRecovery;
                    self.retransmits += 1;
                    self.send_times.remove(&self.snd_una); // Karn
                    actions
                        .send
                        .push(self.data_packet(self.snd_una, now, flow_idx));
                    self.rto_gen += 1;
                    actions.set_rto_at = Some(now + self.rto);
                }
                _ => {}
            }
        }
        actions
    }

    /// Retransmission timeout fired (the simulator checks `gen` against
    /// `rto_gen` before calling).
    pub fn on_rto(&mut self, now: SimTime, flow_idx: usize) -> TcpActions {
        let mut actions = TcpActions::default();
        if self.flight() == 0 {
            return actions;
        }
        self.timeouts += 1;
        self.ssthresh = (self.flight() as f64 / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.cc = CcState::SlowStart;
        self.dupacks = 0;
        // Exponential backoff, capped at 60 s.
        self.rto = SimDuration::from_micros((self.rto.as_micros() * 2).min(60_000_000));
        self.retransmits += 1;
        self.send_times.remove(&self.snd_una); // Karn
        actions
            .send
            .push(self.data_packet(self.snd_una, now, flow_idx));
        self.rto_gen += 1;
        actions.set_rto_at = Some(now + self.rto);
        actions
    }

    fn update_rtt(&mut self, sample_ms: f64) {
        match self.srtt_ms {
            None => {
                self.srtt_ms = Some(sample_ms);
                self.rttvar_ms = sample_ms / 2.0;
            }
            Some(srtt) => {
                self.rttvar_ms = 0.75 * self.rttvar_ms + 0.25 * (srtt - sample_ms).abs();
                self.srtt_ms = Some(0.875 * srtt + 0.125 * sample_ms);
            }
        }
        let rto_ms = self.srtt_ms.unwrap() + (4.0 * self.rttvar_ms).max(1.0);
        self.rto = SimDuration::from_millis_f64(rto_ms.clamp(200.0, 60_000.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> TcpFlow {
        TcpFlow::new(0, 1, SimTime::EPOCH, SimTime::from_secs(100))
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut f = flow();
        let a = f.try_send(SimTime::EPOCH, 0);
        assert_eq!(a.send.len(), 2, "initial window");
        // ACK both: cwnd 2 -> 4, and with nothing left in flight the whole
        // window opens.
        let t = SimTime::from_millis(50);
        let a = f.on_ack(2, t, 0);
        assert!((f.cwnd() - 4.0).abs() < 1e-9);
        assert_eq!(a.send.len(), 4, "window growth releases segments");
    }

    #[test]
    fn congestion_avoidance_linear() {
        let mut f = flow();
        f.ssthresh = 4.0;
        // Grow past ssthresh.
        f.try_send(SimTime::EPOCH, 0);
        f.on_ack(2, SimTime::from_millis(10), 0);
        assert_eq!(f.cc, CcState::CongestionAvoidance);
        let before = f.cwnd();
        f.on_ack(4, SimTime::from_millis(20), 0);
        let growth = f.cwnd() - before;
        assert!(growth < 1.0, "sub-linear growth per ack batch: {growth}");
    }

    #[test]
    fn fast_retransmit_on_three_dupacks() {
        let mut f = flow();
        f.cwnd = 8.0;
        let a = f.try_send(SimTime::EPOCH, 0);
        assert_eq!(a.send.len(), 8);
        // Segment 0 lost: receiver acks 0 repeatedly as 1..3 arrive.
        let t = SimTime::from_millis(30);
        assert!(f.on_ack(0, t, 0).send.is_empty());
        assert!(f.on_ack(0, t, 0).send.is_empty());
        let third = f.on_ack(0, t, 0);
        assert_eq!(third.send.len(), 1, "fast retransmit");
        assert!(matches!(
            third.send[0].kind,
            PacketKind::TcpData { seq: 0, .. }
        ));
        assert_eq!(f.cc, CcState::FastRecovery);
        assert_eq!(f.retransmits, 1);
        // Recovery completes on a new ACK covering `recover`.
        let done = f.on_ack(8, SimTime::from_millis(60), 0);
        assert_eq!(f.cc, CcState::CongestionAvoidance);
        assert!((f.cwnd() - f.ssthresh).abs() < 1e-9);
        let _ = done;
    }

    #[test]
    fn rto_collapses_window() {
        let mut f = flow();
        f.cwnd = 16.0;
        f.try_send(SimTime::EPOCH, 0);
        let before_rto = f.rto;
        let a = f.on_rto(SimTime::from_secs(1), 0);
        assert_eq!(a.send.len(), 1, "retransmit head of line");
        assert!((f.cwnd() - 1.0).abs() < 1e-9);
        assert_eq!(f.cc, CcState::SlowStart);
        assert_eq!(f.rto.as_micros(), before_rto.as_micros() * 2, "backoff");
        assert_eq!(f.timeouts, 1);
        // RTO with nothing in flight is a no-op.
        let mut idle = flow();
        assert!(idle.on_rto(SimTime::from_secs(1), 0).send.is_empty());
    }

    #[test]
    fn receiver_buffers_out_of_order() {
        let mut f = flow();
        let t = SimTime::from_millis(5);
        // Segments 1, 2 arrive before 0.
        let ack = f.on_data(1, t, 0);
        assert!(matches!(ack.kind, PacketKind::TcpAck { ack: 0, .. }));
        let ack = f.on_data(2, t, 0);
        assert!(matches!(ack.kind, PacketKind::TcpAck { ack: 0, .. }));
        let ack = f.on_data(0, t, 0);
        assert!(matches!(ack.kind, PacketKind::TcpAck { ack: 3, .. }));
        assert_eq!(f.delivered, 3);
        // Duplicate segment still produces an ACK and no double-count.
        let ack = f.on_data(1, t, 0);
        assert!(matches!(ack.kind, PacketKind::TcpAck { ack: 3, .. }));
        assert_eq!(f.delivered, 3);
    }

    #[test]
    fn app_limit_throttles_sending() {
        // 12 kbps = 1 segment (1500 B) per second.
        let mut f = flow().with_app_limit(12_000.0);
        f.cwnd = 100.0;
        let a = f.try_send(SimTime::EPOCH, 0);
        assert_eq!(a.send.len(), 0, "no tokens yet");
        let a = f.try_send(SimTime::from_secs(1), 0);
        assert_eq!(a.send.len(), 1);
        let a = f.try_send(SimTime::from_secs(3), 0);
        assert_eq!(a.send.len(), 2);
    }

    #[test]
    fn rtt_estimation_reasonable() {
        let mut f = flow();
        f.try_send(SimTime::EPOCH, 0);
        f.on_ack(1, SimTime::from_millis(100), 0);
        assert!((f.srtt_ms().unwrap() - 100.0).abs() < 1e-9);
        // RTO at least 200 ms (clamped), at most srtt + 4*rttvar.
        assert!(f.rto.as_millis() >= 200);
        assert!(f.rto.as_millis() <= 400);
    }

    #[test]
    fn stops_offering_after_stop_time() {
        let mut f = TcpFlow::new(0, 1, SimTime::EPOCH, SimTime::from_secs(1));
        assert!(f.try_send(SimTime::from_secs(2), 0).send.is_empty());
    }
}
