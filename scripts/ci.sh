#!/usr/bin/env bash
# Tier-1 gate plus lint hygiene, in the order a failure is cheapest to
# surface. Run from anywhere; everything is offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (workspace, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "CI green."
