//! Quickstart: build a small synthetic Twitch world, run the full Tero
//! pipeline over it (download → OCR → location → data-analysis), and print
//! what came out the other end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tero::core::pipeline::{ExtractionMode, Tero};
use tero::types::GameId;
use tero::world::{World, WorldConfig};

fn main() {
    // A world is a pure function of its seed: 60 streamers, 4 days of
    // streaming, with everything Tero will have to cope with — OCR-hostile
    // overlays, sparse profiles, latency spikes, server changes.
    let mut world = World::build(WorldConfig {
        seed: 2024,
        n_streamers: 60,
        days: 4,
        ..WorldConfig::default()
    });
    println!(
        "world: {} streamers, {} ground-truth thumbnails over {} days",
        world.streamers().len(),
        world.total_samples(),
        world.config.days
    );

    // Run Tero end-to-end with the full OCR path.
    let tero = Tero {
        mode: ExtractionMode::FullOcr,
        min_streamers: 3,
        ..Tero::default()
    };
    let report = tero.run(&mut world);

    println!();
    println!("download module:");
    println!(
        "  polls: {}   thumbnails fetched: {}   offline redirects: {}",
        report.download.polls, report.download.downloaded, report.download.offline_signals
    );

    println!();
    println!("image processing:");
    println!(
        "  {} thumbnails → {} measurements ({:.1} % extraction)",
        report.thumbnails,
        report.extracted,
        100.0 * report.extracted as f64 / report.thumbnails.max(1) as f64
    );

    println!();
    println!("location module:");
    println!(
        "  located {} of {} streamers seen",
        report.locations.len(),
        report.streamers_seen
    );
    for (anon, (loc, source)) in report.locations.iter().take(5) {
        println!("    {anon} → {loc} (via {source:?})");
    }

    println!();
    println!("data analysis:");
    println!(
        "  {} {{streamer, game}} series; {} measurements retained after cleaning",
        report.streams.len(),
        report.retained_measurements()
    );
    let spikes: usize = report.anomalies.values().map(|r| r.spikes.len()).sum();
    println!(
        "  {} spikes detected; {} shared anomalies",
        spikes,
        report.shared_anomalies.len()
    );

    println!();
    println!("published latency distributions:");
    for dist in report.distributions.iter().take(8) {
        println!(
            "  {} / {}: {}",
            dist.location,
            GameId::ALL
                .iter()
                .find(|g| **g == dist.game)
                .map(|g| g.name())
                .unwrap_or("?"),
            dist.stats
        );
    }
    if report.distributions.is_empty() {
        println!("  (none at this world size — try more streamers or days)");
    }
}
