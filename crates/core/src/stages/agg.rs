//! The incremental §5/§6 aggregation stage: per-`{location, game}`
//! group analyses — merged clusters, end-point changes, published
//! distributions, shared anomalies and member outcomes — maintained
//! window by window instead of once at the horizon.
//!
//! Each pass re-derives the desired group memberships from the series
//! the clean stage tracks and the *canonical* locations the budgeted
//! locate stage has committed so far, then re-analyses only the *dirty*
//! groups: those whose membership moved, or with a member whose series
//! gained sealed data since the group was last analysed. Clean groups
//! keep their committed state untouched, so a window's aggregation cost
//! tracks the window's dirty groups, not total history
//! (`benches/locate.rs` pins the shape).
//!
//! Settled analyses are committed under `engine:agg:group:*` (one JSON
//! `GroupAnalysis` per group) and the region-level merged clusters
//! additionally under `engine:agg:clusters:*` — the live cluster
//! picture the serving refresh screens provisional distributions
//! against. After a kill/resume or snapshot restore the stage marks
//! everything dirty and the next pass rebuilds both families from the
//! restored views; at the horizon the committed bytes are identical
//! across every window schedule, worker count and restore point,
//! because each group's analysis is a pure function of its members'
//! horizon views and canonical locations.

use super::StageCx;
use crate::analysis::clusters::OnlineLocationClusters;
use crate::location::LocationSource;
use crate::serving::{dist_sketch_key, game_index, ServeGranularity};
use crate::stages::publish::{analyze_group, Granularity, GroupAnalysis, ViewSource};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use tero_types::{AnonId, GameId, Location};

/// Everything the aggregation stage commits lives under this prefix
/// (inside [`tero_store::PROTECTED_PREFIX`], so chaos never drops it).
pub const AGG_PREFIX: &str = "engine:agg:";

/// Prefix of the committed per-group analyses:
/// `engine:agg:group:{r|c}:{game_idx:02}:{location_key}`, one JSON
/// `GroupAnalysis` each.
pub const AGG_GROUP_PREFIX: &str = "engine:agg:group:";

/// Prefix of the committed region-level merged clusters:
/// `engine:agg:clusters:{game_idx:02}:{location_key}`, one JSON
/// cluster list each.
pub const AGG_CLUSTERS_PREFIX: &str = "engine:agg:clusters:";

/// The KV key of one committed group analysis.
pub fn agg_group_key(granularity: ServeGranularity, game: GameId, location_key: &str) -> String {
    format!(
        "{AGG_GROUP_PREFIX}{}:{:02}:{location_key}",
        granularity.tag(),
        game_index(game)
    )
}

/// The KV key of one committed region-level cluster list.
pub fn agg_clusters_key(game: GameId, location_key: &str) -> String {
    format!(
        "{AGG_CLUSTERS_PREFIX}{:02}:{location_key}",
        game_index(game)
    )
}

/// One maintained group: the membership its analysis was computed for,
/// and the analysis itself.
#[derive(Debug)]
struct GroupEntry {
    members: Vec<AnonId>,
    analysis: GroupAnalysis,
}

/// The settled analyses the aggregation stage hands the publish
/// finalizer: every `{location, game}` group at both granularities, in
/// key order.
#[derive(Debug, Default)]
pub struct AggOutput {
    /// Region-level groups (the full §3.3.3/§5/§6 product set).
    pub(crate) region: BTreeMap<(String, GameId), GroupAnalysis>,
    /// Country-level groups (distributions only).
    pub(crate) country: BTreeMap<(String, GameId), GroupAnalysis>,
}

/// The incremental aggregation stage.
#[derive(Debug, Default)]
pub struct AggStage {
    region: BTreeMap<(String, GameId), GroupEntry>,
    country: BTreeMap<(String, GameId), GroupEntry>,
    clusters: OnlineLocationClusters,
    /// Set after a restore: the in-memory maps are empty and the
    /// committed `engine:agg:*` keys may be stale (a merged sharded
    /// store holds last-writer-wins fragments), so the next pass wipes
    /// and recomputes everything.
    dirty_all: bool,
}

impl AggStage {
    /// Force the next pass to re-analyse (and re-commit) every group.
    pub(crate) fn mark_all_dirty(&mut self) {
        self.dirty_all = true;
    }

    /// The live region-level merged clusters, as of the last pass.
    pub(crate) fn live_clusters(&self) -> &OnlineLocationClusters {
        &self.clusters
    }

    /// The maintained analysis of one group, if any.
    pub(crate) fn analysis_for(
        &self,
        granularity: ServeGranularity,
        location_key: &str,
        game: GameId,
    ) -> Option<&GroupAnalysis> {
        let map = match granularity {
            ServeGranularity::Region => &self.region,
            ServeGranularity::Country => &self.country,
        };
        map.get(&(location_key.to_string(), game))
            .map(|e| &e.analysis)
    }

    /// One aggregation pass: group `series` under the canonical
    /// `locations` at both granularities, re-analyse the dirty groups
    /// (`pending` lists the series that gained sealed data since the
    /// last pass), commit the results, and drop vanished groups.
    /// Returns the [`dist_sketch_key`]s of every group that changed, so
    /// the serving refresh can skip the rest.
    pub(crate) fn advance<V: ViewSource>(
        &mut self,
        cx: &mut StageCx<'_>,
        views: &V,
        series: &[(AnonId, GameId)],
        locations: &HashMap<AnonId, (Location, LocationSource)>,
        pending: &BTreeSet<(AnonId, GameId)>,
    ) -> BTreeSet<String> {
        let _sp = cx.sp_run.child("stage.aggregate");
        let _t = cx.tero.obs.stage_timer(&cx.metrics.stage_aggregate_us);
        if self.dirty_all {
            // Stale committed fragments (pre-kill windows, or a merged
            // sharded store's last-writer-wins fields) are wiped
            // wholesale; the recompute below rewrites the live set.
            for key in cx.kv.keys_with_prefix(AGG_PREFIX) {
                cx.kv.del(&key);
            }
        }
        let mut refreshed = BTreeSet::new();
        for granularity in [Granularity::Region, Granularity::Country] {
            self.pass(
                cx,
                views,
                series,
                locations,
                pending,
                granularity,
                &mut refreshed,
            );
        }
        self.dirty_all = false;
        refreshed
    }

    /// Hand the settled analyses to the publish finalizer, clearing the
    /// in-memory maps (the run is over).
    pub(crate) fn take_output(&mut self) -> AggOutput {
        let strip = |map: BTreeMap<(String, GameId), GroupEntry>| {
            map.into_iter().map(|(k, e)| (k, e.analysis)).collect()
        };
        AggOutput {
            region: strip(std::mem::take(&mut self.region)),
            country: strip(std::mem::take(&mut self.country)),
        }
    }

    /// The per-granularity half of [`AggStage::advance`].
    #[allow(clippy::too_many_arguments)]
    fn pass<V: ViewSource>(
        &mut self,
        cx: &mut StageCx<'_>,
        views: &V,
        series: &[(AnonId, GameId)],
        locations: &HashMap<AnonId, (Location, LocationSource)>,
        pending: &BTreeSet<(AnonId, GameId)>,
        granularity: Granularity,
        refreshed: &mut BTreeSet<String>,
    ) {
        let serve_g = match granularity {
            Granularity::Region => ServeGranularity::Region,
            Granularity::Country => ServeGranularity::Country,
        };
        // Desired membership, in series (= AnonId) order per group —
        // exactly how the batch publish pass built its groups.
        let mut desired: BTreeMap<(String, GameId), Vec<AnonId>> = BTreeMap::new();
        for (anon, game) in series {
            if let Some((loc, _)) = locations.get(anon) {
                let key = match granularity {
                    Granularity::Region => loc.to_region_level().key(),
                    Granularity::Country => loc.to_country_level().key(),
                };
                desired.entry((key, *game)).or_default().push(*anon);
            }
        }
        let stored = match granularity {
            Granularity::Region => &self.region,
            Granularity::Country => &self.country,
        };
        let vanished: Vec<(String, GameId)> = stored
            .keys()
            .filter(|k| !desired.contains_key(*k))
            .cloned()
            .collect();
        let dirty: Vec<(&(String, GameId), &Vec<AnonId>)> = desired
            .iter()
            .filter(|(key, members)| {
                self.dirty_all
                    || stored.get(*key).map(|e| &e.members) != Some(*members)
                    || members.iter().any(|a| pending.contains(&(*a, key.1)))
            })
            .collect();
        cx.metrics.agg_dirty_groups.add(dirty.len() as u64);
        let tero = cx.tero;
        let gaz = &cx.world.gaz;
        let results: Vec<GroupAnalysis> = cx.pool.par_map(&dirty, |(key, members)| {
            analyze_group(tero, gaz, key.1, members, locations, views, granularity)
        });
        let map = match granularity {
            Granularity::Region => &mut self.region,
            Granularity::Country => &mut self.country,
        };
        for ((key, members), analysis) in dirty.into_iter().zip(results) {
            cx.kv.set(
                &agg_group_key(serve_g, key.1, &key.0),
                serde_json::to_string(&analysis).expect("group analyses serialize"),
            );
            if granularity == Granularity::Region {
                self.clusters
                    .set(key.0.clone(), key.1, analysis.clusters.clone());
                cx.kv.set(
                    &agg_clusters_key(key.1, &key.0),
                    serde_json::to_string(&analysis.clusters).expect("clusters serialize"),
                );
            }
            refreshed.insert(dist_sketch_key(serve_g, key.1, &key.0));
            map.insert(
                key.clone(),
                GroupEntry {
                    members: members.clone(),
                    analysis,
                },
            );
        }
        for key in vanished {
            map.remove(&key);
            cx.kv.del(&agg_group_key(serve_g, key.1, &key.0));
            if granularity == Granularity::Region {
                self.clusters.remove(&key.0, key.1);
                cx.kv.del(&agg_clusters_key(key.1, &key.0));
            }
            refreshed.insert(dist_sketch_key(serve_g, key.1, &key.0));
        }
    }
}
