//! Budgeted locate + incremental aggregation overhead: what the
//! per-window locate slice and the dirty-group aggregation pass cost as
//! history grows. The scaling claim (docs/AGGREGATION.md): a window's
//! aggregation cost tracks *that window's dirty groups*, not total
//! history — clean groups keep their committed analyses, so a window
//! that feeds no new data re-analyses nothing. The numbers feed
//! docs/PERFORMANCE.md.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use tero_core::pipeline::{ExtractionMode, Tero, WindowOutcome};
use tero_types::{GameId, Location, SimDuration, SimTime};
use tero_world::{World, WorldConfig};

/// The §5.2 pinned workload shape, so `{location, game}` groups clear
/// `min_streamers` and the aggregation pass has real groups to maintain
/// (a random small world rarely publishes anything mid-run).
fn build_world(days: u64) -> World {
    let locations = [
        Location::country("Netherlands"),
        Location::country("Poland"),
        Location::region("United States", "Illinois"),
    ];
    let pinned = locations
        .iter()
        .map(|l| (l.clone(), GameId::LeagueOfLegends, 8))
        .collect();
    World::build(WorldConfig {
        seed: 7,
        n_streamers: 0,
        days,
        pinned,
        api_budget_per_min: 2_000,
        ..WorldConfig::default()
    })
}

fn build_tero() -> Tero {
    Tero {
        mode: ExtractionMode::Calibrated,
        min_streamers: 2,
        worker_threads: 2,
        ..Tero::default()
    }
}

fn bench_locate(c: &mut Criterion) {
    let mut group = c.benchmark_group("locate");
    group.sample_size(10);

    // Dirty-group scaling, from the clean side: 16 near-empty sliver
    // windows *after the whole history has been fed*. A sliver feeds no
    // new samples, so no series is pending, no group membership moves,
    // and the aggregation pass re-analyses zero groups — its work is a
    // membership diff over the live groups plus the locate stage's
    // empty-queue scan. If any part of the per-window locate/agg path
    // re-analysed committed groups against total history, this series
    // would grow from `3` to `9` days. It must stay flat.
    for days in [3u64, 5, 9] {
        group.bench_function(BenchmarkId::new("agg_sliver_after_days", days), |b| {
            b.iter_batched(
                || {
                    let mut world = build_world(days);
                    let tero = build_tero();
                    let day = SimDuration::from_hours(24);
                    let mut to = SimTime::EPOCH + day;
                    for _ in 0..days - 1 {
                        assert!(matches!(
                            tero.run_window(&mut world, SimTime::EPOCH, to),
                            WindowOutcome::Advanced
                        ));
                        to += day;
                    }
                    (world, tero, to - day)
                },
                |(mut world, tero, mut to)| {
                    for _ in 0..16 {
                        to += SimDuration::from_secs(1);
                        match tero.run_window(&mut world, SimTime::EPOCH, to) {
                            WindowOutcome::Advanced => {}
                            _ => unreachable!("bound is below the horizon"),
                        }
                    }
                    black_box(to)
                },
                BatchSize::PerIteration,
            )
        });
    }

    // The marginal full window: setup drives the run to day `days - 2`,
    // the measured routine executes the *next* 1-day window — the same
    // new data in every variant, history growing from 1 to 7 days. Every
    // group with a fed member is dirty, so this row pays the locate
    // slice, the dirty-group re-analyses and the serving refresh; the
    // dirty-group *count* is the same in every variant, so growth across
    // `days` is bounded by the re-analysed members' own histories, never
    // by groups the window left clean.
    for days in [3u64, 5, 9] {
        group.bench_function(BenchmarkId::new("agg_marginal_day", days), |b| {
            b.iter_batched(
                || {
                    let mut world = build_world(days);
                    let tero = build_tero();
                    let day = SimDuration::from_hours(24);
                    let mut to = SimTime::EPOCH + day;
                    for _ in 0..days - 2 {
                        assert!(matches!(
                            tero.run_window(&mut world, SimTime::EPOCH, to),
                            WindowOutcome::Advanced
                        ));
                        to += day;
                    }
                    (world, tero, to)
                },
                |(mut world, tero, to)| {
                    assert!(matches!(
                        tero.run_window(&mut world, SimTime::EPOCH, to),
                        WindowOutcome::Advanced
                    ));
                    black_box(to)
                },
                BatchSize::PerIteration,
            )
        });
    }

    // The budget dial: one first window, unlimited vs tightly budgeted.
    // A tight budget defers most profile lookups (and their simulated
    // API calls) to later windows, trading per-window locate cost for
    // provisional serving — the deferral machinery itself must cost
    // nothing measurable.
    for (label, budget) in [("unlimited", None), ("budget_10", Some(10u64))] {
        group.bench_function(BenchmarkId::new("first_window", label), |b| {
            b.iter_batched(
                || {
                    let world = build_world(3);
                    let tero = Tero {
                        locate_budget: budget,
                        ..build_tero()
                    };
                    (world, tero)
                },
                |(mut world, tero)| {
                    let day = SimDuration::from_hours(24);
                    assert!(matches!(
                        tero.run_window(&mut world, SimTime::EPOCH, SimTime::EPOCH + day),
                        WindowOutcome::Advanced
                    ));
                    black_box(tero.engine_snapshot().is_some())
                },
                BatchSize::PerIteration,
            )
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_locate
}
criterion_main!(benches);
