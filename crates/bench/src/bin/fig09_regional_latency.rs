//! Fig 9 — League-of-Legends latency distributions for the locations with
//! the best and worst (a) absolute and (b) distance-normalised latency.
//!
//! Builds a world with the paper's locations pinned (50 League streamers
//! each after location matching), runs the full pipeline, and prints each
//! location's 5/25/50/75/95 boxplot with its primary server and average
//! corrected distance — the same annotations as the paper's figure.
//!
//! Paper's ordering to reproduce: best absolute latency at Korea/Illinois/
//! Netherlands/Chile (all < 500 km from their servers); worst at Bolivia,
//! Greece, Saudi Arabia, Hawaii; Turkey's 75th percentile as bad as
//! double-distance Brazil; Bolivia as bad as 3.5×-distance Hawaii.
//!
//! Usage: `fig09_regional_latency [--per 80] [--days 10]`

use serde::Serialize;
use tero_bench::{arg_usize, ascii_box, boxplot_row, header, run_lol_world, write_json};
use tero_types::{GameId, Location};

#[derive(Serialize)]
struct Row {
    label: String,
    n: usize,
    location: String,
    server: Option<String>,
    corrected_km: Option<f64>,
    p25: f64,
    p50: f64,
    p75: f64,
    p95: f64,
    normalized_p50: Option<f64>,
}

fn main() {
    let per = arg_usize("--per", 80);
    let days = arg_usize("--days", 10) as u64;

    let locations = vec![
        Location::country("South Korea"),
        Location::region("United States", "Illinois"),
        Location::country("Netherlands"),
        Location::country("Chile"),
        Location::country("Bolivia"),
        Location::country("Greece"),
        Location::country("Saudi Arabia"),
        Location::region("United States", "Hawaii"),
        Location::country("Turkey"),
        Location::country("Belgium"),
        Location::country("Brazil"),
        Location::country("Ecuador"),
        Location::country("Lithuania"),
        Location::region("United States", "Montana"),
    ];
    header("Fig 9: LoL latency by location (building world, running pipeline)");
    let (_world, report) = run_lol_world(&locations, per, days, 909);

    let mut rows: Vec<Row> = Vec::new();
    for loc in &locations {
        let Some(dist) = report.distribution(loc, GameId::LeagueOfLegends) else {
            eprintln!("warning: no distribution for {loc}");
            continue;
        };
        rows.push(Row {
            label: loc.to_string(),
            n: dist.stats.n,
            location: loc.key(),
            server: dist.server.as_ref().map(|s| s.to_string()),
            corrected_km: dist.corrected_distance_km,
            p25: dist.stats.p25,
            p50: dist.stats.p50,
            p75: dist.stats.p75,
            p95: dist.stats.p95,
            normalized_p50: dist.normalized.as_ref().map(|n| n.p50),
        });
    }

    // (a) sorted by absolute median.
    rows.sort_by(|a, b| a.p50.partial_cmp(&b.p50).unwrap());
    println!();
    println!("(a) by absolute latency (best → worst):");
    for (loc, r) in rows.iter().map(|r| (&r.label, r)) {
        let server = r.server.as_deref().unwrap_or("?");
        let km = r.corrected_km.unwrap_or(0.0);
        let stats = tero_stats::BoxplotStats {
            n: r.n,
            mean: r.p50,
            p5: r.p25, // unused in strip
            p25: r.p25,
            p50: r.p50,
            p75: r.p75,
            p95: r.p95,
        };
        println!(
            "  {:<28} [{}] {:>5.0} km via {server}",
            loc,
            ascii_box(&stats, 0.0, 200.0, 50),
            km
        );
        println!("    {}", boxplot_row("", &stats));
    }

    // (b) by distance-normalised median.
    let mut by_norm: Vec<&Row> = rows.iter().filter(|r| r.normalized_p50.is_some()).collect();
    by_norm.sort_by(|a, b| b.normalized_p50.partial_cmp(&a.normalized_p50).unwrap());
    println!();
    println!("(b) by distance-normalised latency (worst → best, ms per 1000 km):");
    for r in &by_norm {
        println!(
            "  {:<28} {:>8.1} ms/Mm   (absolute p50 {:>5.1} ms over {:>5.0} km)",
            r.label,
            r.normalized_p50.unwrap(),
            r.p50,
            r.corrected_km.unwrap_or(0.0)
        );
    }

    // Paper cross-checks.
    println!();
    let get = |name: &str| rows.iter().find(|r| r.label.contains(name));
    if let (Some(tr), Some(br)) = (get("Turkey"), get("Brazil")) {
        println!(
            "Turkey p75 {:.0} ms at {:.0} km vs Brazil p75 {:.0} ms at {:.0} km (paper: similar p75, double distance)",
            tr.p75, tr.corrected_km.unwrap_or(0.0), br.p75, br.corrected_km.unwrap_or(0.0)
        );
    }
    if let (Some(bo), Some(hi)) = (get("Bolivia"), get("Hawaii")) {
        println!(
            "Bolivia p75 {:.0} ms at {:.0} km vs Hawaii p75 {:.0} ms at {:.0} km (paper: similar p75, 3.5x distance)",
            bo.p75, bo.corrected_km.unwrap_or(0.0), hi.p75, hi.corrected_km.unwrap_or(0.0)
        );
    }
    if let (Some(gr), Some(sa)) = (get("Greece"), get("Saudi")) {
        println!(
            "Greece p75 {:.0} ms vs Saudi Arabia p75 {:.0} ms (paper: ~25 ms apart at similar distance)",
            gr.p75, sa.p75
        );
    }

    write_json("fig09_regional_latency", &rows);
}
