//! Per-stage latency budgets over `tero-trace` spans.
//!
//! The miscord-LATENCY.md method (ROADMAP item 3): declare a budget per
//! pipeline stage, measure what each stage actually costs, and render
//! one table that says *pass* or *OVER* per row — so a regression is a
//! diff in a committed table, not a hunch.
//!
//! Spans are aggregated by exact span name. Two clocks are supported:
//!
//! * [`BudgetSource::Ticks`] — logical-tick durations
//!   (`end_tick - start_tick`). Ticks advance once per record boundary,
//!   so a tick duration is a deterministic proxy for "work under this
//!   span" and the table is byte-identical across replays and worker
//!   counts. This is what CI pins.
//! * [`BudgetSource::WallMicros`] — wall-clock microseconds, present
//!   only when the tracer ran with wall timing on. Real latency, not
//!   deterministic; this is what PERFORMANCE.md snapshots.
//!
//! Percentiles are nearest-rank (the p-th percentile is the smallest
//! recorded value ≥ p % of the sample), so every reported number is a
//! value that actually occurred.

use serde::{Deserialize, Serialize};
use tero_trace::SpanRecord;

/// One declared budget: the stage's span name and its limit, in the
/// table's source unit, applied to the stage's p95.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Budget {
    /// Span name the budget covers (e.g. `stage.extract`).
    pub stage: String,
    /// Inclusive p95 limit, in the table's source unit.
    pub limit: u64,
}

impl Budget {
    /// Shorthand constructor.
    pub fn new(stage: impl Into<String>, limit: u64) -> Budget {
        Budget {
            stage: stage.into(),
            limit,
        }
    }
}

/// Which span field the table measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BudgetSource {
    /// Deterministic logical-tick durations.
    Ticks,
    /// Wall-clock microseconds (zero when wall timing was off).
    WallMicros,
}

impl BudgetSource {
    fn unit(self) -> &'static str {
        match self {
            BudgetSource::Ticks => "ticks",
            BudgetSource::WallMicros => "us",
        }
    }
}

/// One stage's aggregated row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetRow {
    /// Stage (span) name.
    pub stage: String,
    /// Spans aggregated.
    pub count: u64,
    /// Nearest-rank 50th percentile (0 when `count == 0`).
    pub p50: u64,
    /// Nearest-rank 95th percentile.
    pub p95: u64,
    /// Nearest-rank 99th percentile.
    pub p99: u64,
    /// Largest recorded value.
    pub worst: u64,
    /// The declared p95 limit.
    pub limit: u64,
    /// Did p95 exceed the limit?
    pub over: bool,
}

/// The aggregated latency-budget table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetTable {
    /// The clock the numbers are in.
    pub source: BudgetSource,
    /// One row per declared budget, in declaration order.
    pub rows: Vec<BudgetRow>,
}

/// Nearest-rank percentile of an ascending-sorted non-empty slice.
fn nearest_rank(sorted: &[u64], p: u64) -> u64 {
    let n = sorted.len() as u64;
    let rank = (p * n).div_ceil(100).max(1);
    sorted[(rank - 1) as usize]
}

impl BudgetTable {
    /// Aggregate `spans` against the declared `budgets`. Every budget
    /// produces a row (zeros when no span matched), in declaration
    /// order, so the table shape never depends on what happened to run.
    pub fn from_spans(
        spans: &[SpanRecord],
        budgets: &[Budget],
        source: BudgetSource,
    ) -> BudgetTable {
        let rows = budgets
            .iter()
            .map(|b| {
                let mut values: Vec<u64> = spans
                    .iter()
                    .filter(|s| *s.name == *b.stage)
                    .map(|s| match source {
                        BudgetSource::Ticks => s.end_tick.saturating_sub(s.start_tick),
                        BudgetSource::WallMicros => s.wall_us.unwrap_or(0),
                    })
                    .collect();
                values.sort_unstable();
                if values.is_empty() {
                    return BudgetRow {
                        stage: b.stage.clone(),
                        count: 0,
                        p50: 0,
                        p95: 0,
                        p99: 0,
                        worst: 0,
                        limit: b.limit,
                        over: false,
                    };
                }
                let p95 = nearest_rank(&values, 95);
                BudgetRow {
                    stage: b.stage.clone(),
                    count: values.len() as u64,
                    p50: nearest_rank(&values, 50),
                    p95,
                    p99: nearest_rank(&values, 99),
                    worst: *values.last().expect("non-empty"),
                    limit: b.limit,
                    over: p95 > b.limit,
                }
            })
            .collect();
        BudgetTable { source, rows }
    }

    /// Any row over budget?
    pub fn any_over(&self) -> bool {
        self.rows.iter().any(|r| r.over)
    }

    /// Deterministic JSON encoding.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("budget tables always serialize")
    }

    /// Aligned-text table, byte-identical across replays when built
    /// from [`BudgetSource::Ticks`].
    pub fn render_text(&self) -> String {
        let unit = self.source.unit();
        let mut out = format!(
            "{:<18} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}\n",
            "stage",
            "count",
            format!("p50/{unit}"),
            format!("p95/{unit}"),
            format!("p99/{unit}"),
            format!("worst/{unit}"),
            "budget",
            "verdict"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<18} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}\n",
                r.stage,
                r.count,
                r.p50,
                r.p95,
                r.p99,
                r.worst,
                r.limit,
                if r.over { "OVER" } else { "pass" },
            ));
        }
        out
    }
}

/// The pipeline's declared tick budgets: every `stage.*` span plus the
/// downloader and the run root. Limits are set from the stock
/// two-country exploration world (see PERFORMANCE.md's table) with
/// ~2× headroom, so honest growth fits but a runaway stage trips.
pub fn default_stage_budgets() -> Vec<Budget> {
    vec![
        Budget::new("download.run", 4_000),
        Budget::new("stage.extract", 4_000),
        Budget::new("stage.analyze", 4_000),
        Budget::new("stage.locate", 1_000),
        Budget::new("stage.aggregate", 1_000),
        Budget::new("stage.provenance", 1_000),
        Budget::new("stage.behavior", 1_000),
        Budget::new("pipeline.run", 20_000),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn span(name: &str, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            id: start + 1,
            parent: 0,
            name: Arc::from(name),
            index: None,
            lane: 0,
            start_tick: start,
            end_tick: end,
            sim_at: None,
            wall_us: None,
            remote: None,
        }
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let spans: Vec<SpanRecord> = (1..=100).map(|i| span("s", 0, i)).collect();
        let table = BudgetTable::from_spans(&spans, &[Budget::new("s", 95)], BudgetSource::Ticks);
        let row = &table.rows[0];
        assert_eq!(row.count, 100);
        assert_eq!(row.p50, 50);
        assert_eq!(row.p95, 95);
        assert_eq!(row.p99, 99);
        assert_eq!(row.worst, 100);
        assert!(!row.over, "p95 == limit is within budget");
        let tight = BudgetTable::from_spans(&spans, &[Budget::new("s", 94)], BudgetSource::Ticks);
        assert!(tight.rows[0].over);
        assert!(tight.any_over());
    }

    #[test]
    fn missing_stages_render_zero_rows_in_declared_order() {
        let spans = [span("b", 0, 10)];
        let budgets = [Budget::new("a", 5), Budget::new("b", 5)];
        let table = BudgetTable::from_spans(&spans, &budgets, BudgetSource::Ticks);
        assert_eq!(table.rows[0].count, 0);
        assert!(!table.rows[0].over);
        assert_eq!(table.rows[1].count, 1);
        assert!(table.rows[1].over, "10 > 5");
        let text = table.render_text();
        let a_line = text.lines().nth(1).unwrap();
        assert!(a_line.starts_with('a'), "declared order kept: {text}");
    }

    #[test]
    fn table_encodings_round_trip_deterministically() {
        let spans = [span("s", 0, 7), span("s", 2, 21)];
        let budgets = [Budget::new("s", 100)];
        let a = BudgetTable::from_spans(&spans, &budgets, BudgetSource::Ticks);
        let b = BudgetTable::from_spans(&spans, &budgets, BudgetSource::Ticks);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.render_text(), b.render_text());
        let parsed: BudgetTable = serde_json::from_str(&a.to_json()).expect("round trip");
        assert_eq!(parsed, a);
    }
}
