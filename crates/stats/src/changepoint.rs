//! PELT changepoint detection (Killick, Fearnhead & Eckley \[26\]) — batch
//! and streaming.
//!
//! The paper tried PELT on its latency series before designing the QoE-based
//! detector, and found it impractical on OCR-noisy data (§3.3.2). We
//! implement it both as a baseline for comparison and because Tero's own
//! detector "is a simple form of changepoint detection with extra steps".
//!
//! Two entry points share one implementation:
//!
//! * [`pelt_mean_shift`] — the offline baseline: hand it the whole series.
//! * [`OnlinePelt`] — the streaming form: [`OnlinePelt::push`] one value at
//!   a time and read [`OnlinePelt::segment_ends`] whenever a fresh
//!   segmentation is needed. The PELT recursion is already sequential in
//!   the series index — `f[t]` depends only on `f[0..t]` and prefix sums —
//!   so the online detector runs the *identical* float operations in the
//!   identical order, and its horizon output is **byte-equal** to the
//!   batch call on the same values (the equivalence contract of
//!   docs/CLEANING.md, enforced by tests here and in
//!   `tests/determinism.rs`). The only caveat is the penalty: a data-
//!   dependent penalty like [`bic_penalty`] needs the full series, so the
//!   exact contract holds under any *fixed* penalty chosen up front.
//!
//! The cost function is the within-segment sum of squared deviations from
//! the segment mean (the classical mean-shift cost); the default penalty is
//! the BIC-style `β = 2 σ̂² ln n`.

/// Cost of segment `[a, b)` under the mean-shift model, from prefix sums:
/// `Σx² − (Σx)²/len`.
#[inline]
fn seg_cost(s1: &[f64], s2: &[f64], a: usize, b: usize) -> f64 {
    let len = (b - a) as f64;
    let sum = s1[b] - s1[a];
    (s2[b] - s2[a]) - sum * sum / len
}

/// Streaming PELT under the mean-shift cost (§3.3.2's changepoint
/// baseline, in the online form the staged engine's per-window clean
/// stage feeds).
///
/// §3.3.2 motivates this detector: Tero's glitch/spike scan "is a simple
/// form of changepoint detection with extra steps", and the paper
/// evaluated PELT on the same series before settling on the QoE-based
/// rules. App. J cross-validates the resulting anomaly labels against
/// LOF, Isolation Forest and MCD — the division of labour being that the
/// changepoint layer explains *level shifts* (server changes, route
/// changes) while the App. J outlier baselines explain *point anomalies*
/// (spikes, OCR glitches); `online_detector_cross_validates_against_app_j_baselines`
/// in this module pins that split.
///
/// State per tracked series is `O(n)` (prefix sums plus the dynamic-
/// programming arrays); each [`OnlinePelt::push`] costs `O(|candidates|)`,
/// which PELT's pruning keeps small on series with detectable structure.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlinePelt {
    penalty: f64,
    min_seg: usize,
    /// Prefix sums of the values (`s1[i]` = sum of the first `i`).
    s1: Vec<f64>,
    /// Prefix sums of the squared values.
    s2: Vec<f64>,
    /// `f[t]` = optimal cost of the first `t` values.
    f: Vec<f64>,
    /// `cp[t]` = last changepoint before `t` in the optimal segmentation.
    cp: Vec<usize>,
    /// PELT's pruned candidate set for the next step.
    candidates: Vec<usize>,
}

impl OnlinePelt {
    /// A fresh detector. `penalty` trades off fit against the number of
    /// changepoints (must be fixed up front — see the module docs for why
    /// a data-dependent penalty forfeits the byte-equality contract);
    /// `min_seg_len` is the minimum number of points per segment (≥ 1).
    pub fn new(penalty: f64, min_seg_len: usize) -> OnlinePelt {
        OnlinePelt {
            penalty,
            min_seg: min_seg_len.max(1),
            s1: vec![0.0],
            s2: vec![0.0],
            f: vec![-penalty],
            cp: vec![0],
            candidates: vec![0],
        }
    }

    /// Number of values pushed so far.
    pub fn len(&self) -> usize {
        self.s1.len() - 1
    }

    /// Whether no values have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feed the next value. Runs one step of the PELT recursion — the
    /// exact loop body of the batch algorithm at `t = len()`.
    pub fn push(&mut self, x: f64) {
        let i = self.len();
        self.s1.push(self.s1[i] + x);
        self.s2.push(self.s2[i] + x * x);
        self.f.push(f64::INFINITY);
        self.cp.push(0);
        let t = i + 1;
        if t < self.min_seg {
            return;
        }
        let min_seg = self.min_seg;
        let penalty = self.penalty;
        let (s1, s2, f, cp, candidates) = (
            &self.s1,
            &self.s2,
            &mut self.f,
            &mut self.cp,
            &mut self.candidates,
        );
        let mut best = f64::INFINITY;
        let mut best_tau = 0;
        for &tau in candidates.iter() {
            if t - tau < min_seg {
                continue;
            }
            let c = f[tau] + seg_cost(s1, s2, tau, t) + penalty;
            if c < best {
                best = c;
                best_tau = tau;
            }
        }
        f[t] = best;
        cp[t] = best_tau;

        // PELT pruning: drop candidates that can never be optimal again.
        let ft = f[t];
        candidates.retain(|&tau| t - tau < min_seg || f[tau] + seg_cost(s1, s2, tau, t) <= ft);
        candidates.push(t.saturating_sub(min_seg - 1).max(1).min(t));
        // Keep candidate list sorted-unique (push may duplicate).
        candidates.sort_unstable();
        candidates.dedup();
    }

    /// The current optimal segmentation: *segment end indices*
    /// (exclusive), always ending with `len()` — e.g. `[5, 12]` means
    /// segments `0..5` and `5..12`. Identical to
    /// [`pelt_mean_shift`] over the values pushed so far.
    pub fn segment_ends(&self) -> Vec<usize> {
        let n = self.len();
        if n == 0 {
            return vec![];
        }
        if n < 2 * self.min_seg {
            return vec![n];
        }
        let mut ends = vec![n];
        let mut t = n;
        while self.cp[t] > 0 {
            t = self.cp[t];
            ends.push(t);
        }
        ends.reverse();
        ends
    }

    /// Number of changepoints in the current optimal segmentation
    /// (segments − 1). Later pushes may *revise* this downward as well as
    /// up — PELT re-optimises globally — which is why the engine's
    /// `stats.changepoint.shifts` counter is documented as
    /// schedule-dependent.
    pub fn change_count(&self) -> usize {
        self.segment_ends().len().saturating_sub(1)
    }
}

/// Detect changepoints in `xs` with the PELT algorithm under the mean-shift
/// cost. Returns the *segment end indices* (exclusive), always ending with
/// `xs.len()` — e.g. `[5, 12]` means segments `0..5` and `5..12`.
///
/// `penalty` trades off fit against the number of changepoints; use
/// [`bic_penalty`] for a standard default. `min_seg_len` is the minimum
/// number of points per segment (≥ 1).
///
/// This is a thin wrapper over [`OnlinePelt`]: the batch and streaming
/// detectors are one implementation, which is what makes their
/// equivalence exact rather than approximate.
pub fn pelt_mean_shift(xs: &[f64], penalty: f64, min_seg_len: usize) -> Vec<usize> {
    let mut pelt = OnlinePelt::new(penalty, min_seg_len);
    for &x in xs {
        pelt.push(x);
    }
    pelt.segment_ends()
}

/// BIC-style penalty for the mean-shift cost: `2 σ̂² ln n`, with σ̂ estimated
/// robustly from first differences (MAD), so that level shifts do not
/// inflate it.
///
/// Note this penalty reads the *whole* series (`n` and the MAD), so it is
/// only available offline; the streaming [`OnlinePelt`] requires a fixed
/// penalty chosen up front (see the module docs).
pub fn bic_penalty(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 3 {
        return 1.0;
    }
    let mut diffs: Vec<f64> = xs.windows(2).map(|w| (w[1] - w[0]).abs()).collect();
    diffs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mad = diffs[diffs.len() / 2];
    // σ ≈ MAD/ (0.6745 · sqrt(2)) for Gaussian first differences.
    let sigma = (mad / (0.6745 * std::f64::consts::SQRT_2)).max(1e-6);
    2.0 * sigma * sigma * (n as f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_types::SimRng;

    fn noisy_levels(levels: &[(f64, usize)], sd: f64, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::new(seed);
        let mut xs = Vec::new();
        for &(mu, len) in levels {
            for _ in 0..len {
                xs.push(rng.normal_with(mu, sd));
            }
        }
        xs
    }

    #[test]
    fn no_change_yields_single_segment() {
        let xs = noisy_levels(&[(50.0, 200)], 1.0, 1);
        let ends = pelt_mean_shift(&xs, bic_penalty(&xs), 3);
        assert_eq!(ends, vec![200]);
    }

    #[test]
    fn detects_single_shift() {
        let xs = noisy_levels(&[(30.0, 100), (80.0, 100)], 1.5, 2);
        let ends = pelt_mean_shift(&xs, bic_penalty(&xs), 3);
        assert_eq!(ends.len(), 2, "ends {ends:?}");
        assert!((ends[0] as i64 - 100).unsigned_abs() <= 2, "ends {ends:?}");
        assert_eq!(*ends.last().unwrap(), 200);
    }

    #[test]
    fn detects_multiple_shifts() {
        let xs = noisy_levels(&[(20.0, 80), (60.0, 60), (35.0, 80)], 2.0, 3);
        let ends = pelt_mean_shift(&xs, bic_penalty(&xs), 3);
        assert_eq!(ends.len(), 3, "ends {ends:?}");
        assert!((ends[0] as i64 - 80).unsigned_abs() <= 3);
        assert!((ends[1] as i64 - 140).unsigned_abs() <= 3);
    }

    #[test]
    fn penalty_controls_sensitivity() {
        let xs = noisy_levels(&[(30.0, 50), (45.0, 50)], 2.0, 4);
        // Huge penalty: no changepoints.
        let ends = pelt_mean_shift(&xs, 1e9, 3);
        assert_eq!(ends, vec![100]);
        // Tiny penalty: many changepoints.
        let ends = pelt_mean_shift(&xs, 1e-6, 3);
        assert!(ends.len() > 2);
    }

    #[test]
    fn respects_min_segment_length() {
        let xs = noisy_levels(&[(10.0, 30), (90.0, 30)], 1.0, 5);
        let ends = pelt_mean_shift(&xs, 1e-6, 10);
        for w in ends.windows(2) {
            assert!(w[1] - w[0] >= 10, "segment too short: {ends:?}");
        }
        assert!(ends[0] >= 10);
    }

    #[test]
    fn edge_cases() {
        assert!(pelt_mean_shift(&[], 1.0, 3).is_empty());
        assert_eq!(pelt_mean_shift(&[1.0], 1.0, 3), vec![1]);
        assert_eq!(pelt_mean_shift(&[1.0, 2.0, 3.0], 1.0, 3), vec![3]);
        let empty = OnlinePelt::new(1.0, 3);
        assert!(empty.is_empty());
        assert!(empty.segment_ends().is_empty());
        assert_eq!(empty.change_count(), 0);
    }

    #[test]
    fn segments_partition_input() {
        let xs = noisy_levels(&[(5.0, 40), (25.0, 40), (5.0, 40)], 1.0, 6);
        let ends = pelt_mean_shift(&xs, bic_penalty(&xs), 3);
        assert_eq!(*ends.last().unwrap(), xs.len());
        assert!(ends.windows(2).all(|w| w[0] < w[1]));
    }

    /// The equivalence contract (docs/CLEANING.md): at every prefix
    /// length, the streaming detector's segmentation is byte-equal to the
    /// batch call on the same values — not approximately, exactly.
    #[test]
    fn online_matches_batch_at_every_prefix() {
        let xs = noisy_levels(&[(30.0, 40), (75.0, 35), (30.0, 25), (55.0, 30)], 2.5, 7);
        for (penalty, min_seg) in [(bic_penalty(&xs), 3), (50.0, 1), (5.0, 6), (1e9, 3)] {
            let mut online = OnlinePelt::new(penalty, min_seg);
            for (i, &x) in xs.iter().enumerate() {
                online.push(x);
                let batch = pelt_mean_shift(&xs[..=i], penalty, min_seg);
                assert_eq!(
                    online.segment_ends(),
                    batch,
                    "prefix {} penalty {penalty} min_seg {min_seg}",
                    i + 1
                );
            }
        }
    }

    /// Feeding the same values in differently-sized chunks (the window
    /// schedules of the staged engine) cannot change the detector: state
    /// depends only on the value sequence.
    #[test]
    fn online_state_is_schedule_invariant() {
        let xs = noisy_levels(&[(20.0, 50), (60.0, 50)], 1.5, 8);
        let feed = |chunk: usize| {
            let mut p = OnlinePelt::new(40.0, 3);
            for c in xs.chunks(chunk) {
                for &x in c {
                    p.push(x);
                }
            }
            p
        };
        let whole = feed(xs.len());
        for chunk in [1, 7, 33] {
            assert_eq!(feed(chunk), whole, "chunk size {chunk}");
        }
    }

    /// App. J cross-validation: on a series with one genuine level shift
    /// plus injected point spikes, the changepoint layer must explain the
    /// *shift* (a boundary near the true change) while the App. J outlier
    /// baselines — LOF, Isolation Forest, MCD — each flag the *spikes*
    /// and leave the shifted plateau alone. This is the division of
    /// labour docs/CLEANING.md documents: level shifts are structure,
    /// spikes are anomalies, and neither detector family explains the
    /// other's signal away.
    #[test]
    fn online_detector_cross_validates_against_app_j_baselines() {
        let mut xs = noisy_levels(&[(30.0, 60), (70.0, 60)], 1.0, 9);
        let spike_idxs = [20usize, 90];
        for &i in &spike_idxs {
            xs[i] = 160.0;
        }

        // Streaming changepoint: boundary near the true shift at 60.
        let mut online = OnlinePelt::new(bic_penalty(&xs), 5);
        for &x in &xs {
            online.push(x);
        }
        let ends = online.segment_ends();
        assert!(
            ends.iter().any(|&e| (e as i64 - 60).unsigned_abs() <= 3),
            "no boundary near the level shift: {ends:?}"
        );

        // LOF (App. J's k-tuned variant) flags the spikes, not the shift.
        let lof = crate::lof::lof_outliers(&xs, 5, 1.5);
        for &i in &spike_idxs {
            assert!(lof.contains(&i), "LOF missed spike at {i}: {lof:?}");
        }
        assert!(
            !lof.contains(&65),
            "LOF flagged the post-shift plateau as an outlier"
        );

        // Isolation Forest scores the spikes as the most isolated points.
        let mut rng = SimRng::new(42);
        let forest = crate::iforest::IsolationForest::fit(&xs, 100, 64, &mut rng);
        let scores = forest.scores(&xs);
        for &i in &spike_idxs {
            assert!(
                scores[i] > scores[65],
                "iForest score at spike {i} not above plateau"
            );
        }

        // MCD robust distances: spikes far outside, plateau inside.
        let mcd = crate::mcd::UnivariateMcd::fit(&xs, None).expect("fit succeeds");
        let outliers = mcd.outliers_by_contamination(&xs, 0.05);
        for &i in &spike_idxs {
            assert!(outliers.contains(&i), "MCD missed spike at {i}");
        }
    }
}
