//! Fault-injection acceptance tests: the ingest pipeline under a
//! `tero-chaos` [`FaultPlan`] must degrade gracefully — bounded throughput
//! loss, zero panics, every injected fault visible in metrics, poison
//! entries quarantined, and bit-for-bit replayability.

use tero::chaos::{ChaosInjector, CrashWindow, FaultPlan};
use tero::core::download::{DownloadModule, DownloadStats, ThumbnailTask};
use tero::core::pipeline::{ExtractionMode, Tero};
use tero::obs::Registry;
use tero::store::{KvStore, ObjectStore};
use tero::types::{GameId, SimTime, StreamerId};
use tero::world::{World, WorldConfig};

fn chaos_world(seed: u64) -> World {
    World::build(WorldConfig {
        seed,
        n_streamers: 25,
        days: 2,
        ..WorldConfig::default()
    })
}

/// Run the download module alone against a world, optionally under a fault
/// plan, recording into `registry`.
fn run_download(world_seed: u64, plan: Option<FaultPlan>, registry: &Registry) -> DownloadStats {
    let mut world = chaos_world(world_seed);
    let kv = KvStore::new();
    let objects = ObjectStore::new();
    if let Some(plan) = plan {
        let injector = ChaosInjector::new(plan);
        injector.instrument(registry);
        kv.inject_faults(injector.clone());
        objects.inject_faults(injector.clone());
        world.install_chaos(injector);
    }
    let mut module = DownloadModule::new(kv, objects);
    module.instrument(registry);
    let horizon = world.horizon;
    module.run(&mut world, SimTime::EPOCH, horizon)
}

#[test]
fn default_fault_plan_retains_ninety_percent_throughput() {
    let clean = run_download(33, None, &Registry::new());
    let faulty = run_download(33, Some(FaultPlan::default_plan(7)), &Registry::new());
    assert!(clean.downloaded > 0);
    assert!(
        faulty.downloaded as f64 >= clean.downloaded as f64 * 0.9,
        "fault plan cost too much throughput: {} vs {} fault-free",
        faulty.downloaded,
        clean.downloaded
    );
    // The plan's faults actually fired — this was not a quiet run.
    assert!(faulty.api_errors > 0, "no API 5xx injected");
    assert!(faulty.cdn_faults > 0, "no CDN faults injected");
    assert!(faulty.retries > 0, "faults never triggered a retry");
    assert!(faulty.reassigned > 0, "crash window moved no streamers");
}

#[test]
fn every_fault_class_is_visible_in_metrics() {
    let plan = FaultPlan {
        seed: 99,
        api_5xx_rate: 0.05,
        cdn_timeout_rate: 0.05,
        cdn_truncate_rate: 0.03,
        cdn_corrupt_rate: 0.03,
        kv_write_drop_rate: 0.02,
        object_write_drop_rate: 0.02,
        crashes: vec![CrashWindow {
            downloader: 2,
            at: SimTime::from_hours(6),
            until: SimTime::from_hours(9),
        }],
        engine_kills: vec![],
        net: tero::chaos::NetFault::quiet(),
    };
    let registry = Registry::new();
    let stats = run_download(34, Some(plan), &registry);
    let snap = registry.snapshot();
    for metric in [
        "chaos.injected.api_5xx",
        "chaos.injected.cdn_timeout",
        "chaos.injected.cdn_truncated",
        "chaos.injected.cdn_corrupt",
        "chaos.injected.kv_write_drop",
        "chaos.injected.object_write_drop",
        "chaos.injected.crash",
    ] {
        assert!(
            snap.counter(metric).unwrap_or(0) > 0,
            "{metric} never moved under an all-faults plan"
        );
    }
    // Recovery-side metrics mirror the run stats.
    assert_eq!(snap.counter("download.api_errors"), Some(stats.api_errors));
    assert_eq!(snap.counter("download.retries"), Some(stats.retries));
    assert_eq!(snap.counter("download.reassigned"), Some(stats.reassigned));
    assert_eq!(
        snap.counter("download.breaker_open"),
        Some(stats.breaker_trips)
    );
    // And the run still made progress.
    assert!(stats.downloaded > 0, "pipeline collapsed under faults");
}

#[test]
fn dead_letter_depth_matches_poison_injected() {
    let kv = KvStore::new();
    let registry = Registry::new();
    let mut module = DownloadModule::new(kv.clone(), ObjectStore::new());
    module.instrument(&registry);
    let good = ThumbnailTask {
        streamer: StreamerId::new("finewolf"),
        game_label: GameId::Dota2,
        generated_at: SimTime::from_mins(5),
        object_key: "finewolf/300000000".into(),
    };
    let poison = ["", "a|b", "user|nogame|12|key", "u|dota2|notanumber|key"];
    kv.rpush("queue:thumbs", good.encode());
    for p in poison {
        kv.rpush("queue:thumbs", p.to_string());
    }
    let tasks = module.drain_tasks();
    assert_eq!(tasks, vec![good]);
    assert_eq!(module.dead_letter_depth(), poison.len());
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("download.dead_letter"),
        Some(poison.len() as u64)
    );
    assert_eq!(
        snap.counter("download.decode_failures"),
        Some(poison.len() as u64)
    );
    // Draining empties the quarantine in arrival order.
    assert_eq!(module.drain_dead_letters(), poison);
    assert_eq!(module.dead_letter_depth(), 0);
}

/// The operator recovery path: a task quarantined *because of a fault*
/// (its object was unreadable mid-plan) is reinjected by `requeue_dead`
/// once the plan ends, and then completes — it decodes off the live
/// queue and its thumbnail loads. Genuine poison stays quarantined.
#[test]
fn requeued_dead_letter_task_completes() {
    let kv = KvStore::new();
    let objects = ObjectStore::new();
    let mut module = DownloadModule::new(kv.clone(), objects.clone());
    module.instrument(&Registry::new());

    let task = ThumbnailTask {
        streamer: StreamerId::new("finewolf"),
        game_label: GameId::Dota2,
        generated_at: SimTime::from_mins(5),
        object_key: "finewolf/300000000".into(),
    };
    // Mid-plan, the extract stage found the object unreadable and parked
    // the (perfectly well-formed) task; a malformed entry is parked too.
    module.dead_letter(task.encode());
    module.dead_letter("not|a|task");
    assert_eq!(module.dead_letter_depth(), 2);

    // The fault plan is over: the object is readable again.
    let (width, height) = (4u32, 3u32);
    let mut payload = Vec::new();
    payload.extend(width.to_le_bytes());
    payload.extend(height.to_le_bytes());
    payload.extend(vec![0u8; (width * height) as usize]);
    objects.put("thumbs", &task.object_key, payload);

    let (requeued, still_dead) = module.requeue_dead();
    assert_eq!((requeued, still_dead), (1, 1));
    assert_eq!(module.dead_letter_depth(), 1, "poison stays quarantined");

    // The requeued task completes: it drains off the live queue and its
    // thumbnail decodes.
    let tasks = module.drain_tasks();
    assert_eq!(tasks, vec![task.clone()]);
    let image = module
        .load_image(&task.object_key)
        .expect("requeued task's object loads");
    assert_eq!((image.width, image.height), (4, 3));
    // Requeueing did not re-count the entries as fresh quarantines, and
    // the decodable entry did not bump decode_failures on the way out.
    assert_eq!(module.dead_letter_depth(), 1);
    // A second sweep finds nothing new to requeue.
    assert_eq!(module.requeue_dead(), (0, 1));
}

#[test]
fn same_seed_and_plan_replay_byte_identical_stats() {
    let run = || run_download(35, Some(FaultPlan::default_plan(11)), &Registry::new());
    let a = serde_json::to_string(&run()).unwrap();
    let b = serde_json::to_string(&run()).unwrap();
    assert_eq!(a, b, "fault injection and recovery must be deterministic");
}

#[test]
fn breaker_trips_under_sustained_cdn_faults() {
    let plan = FaultPlan {
        cdn_timeout_rate: 0.9,
        ..FaultPlan::quiet(3)
    };
    let stats = run_download(36, Some(plan), &Registry::new());
    assert!(
        stats.breaker_trips > 0,
        "90% CDN timeouts must trip circuit breakers"
    );
    assert!(
        stats.downloaded > 0,
        "half-open probes must eventually recover"
    );
}

#[test]
fn full_pipeline_survives_default_faults() {
    let mut world = World::build(WorldConfig {
        seed: 9,
        n_streamers: 12,
        days: 2,
        ..WorldConfig::default()
    });
    world.install_chaos(ChaosInjector::new(FaultPlan::default_plan(5)));
    let tero = Tero {
        mode: ExtractionMode::FullOcr,
        min_streamers: 2,
        ..Tero::default()
    };
    let report = tero.run(&mut world);
    assert!(report.thumbnails > 0);
    assert!(report.extracted > 0, "faults must not sink the whole run");
    let snap = tero.metrics_snapshot();
    assert!(snap.counter("chaos.injected.api_5xx").unwrap_or(0) > 0);
    assert!(snap.counter("download.retries").unwrap_or(0) > 0);
    // Even with faults dead-lettering thumbnails mid-flight, the ledger
    // still conserves samples: everything ingested is either published or
    // carries a typed drop reason, and the totals equal the counters.
    let summary = tero
        .trace
        .ledger()
        .reconcile(&tero.obs)
        .expect("ledger reconciles under the default fault plan");
    assert_eq!(summary.ingested, report.thumbnails);
    assert_eq!(
        summary.published + summary.total_dropped(),
        summary.ingested,
        "every sample is published or carries a typed drop reason"
    );
}
