//! # tero-chaos
//!
//! Deterministic fault injection for the Tero ingest pipeline.
//!
//! The paper's download module survives a hostile environment — Helix rate
//! limits, CDN overwrites every ~5 minutes, offline redirects, and machine
//! crashes (App. A/B). The synthetic world is far kinder than the real
//! platform, so this crate supplies the missing hostility *on demand*: a
//! [`FaultPlan`] describes the failure modes and their rates, and a
//! [`ChaosInjector`] built from it hands out per-call fault decisions from
//! seeded [`SimRng`] streams. The same `(seed, plan)` pair always produces
//! the same fault sequence, so every chaos experiment is replayable and
//! every recovery test is deterministic.
//!
//! Fault classes:
//!
//! * **Transient API 5xx** on `get_streams` / `get_profile` — the caller is
//!   expected to retry with backoff;
//! * **CDN faults** on `cdn_get` — request timeouts, truncated payloads
//!   (stored bytes shorter than the header promises), and corrupted pixel
//!   bytes (length preserved, content garbage);
//! * **Downloader crash windows** — a worker dies at a planned instant and
//!   recovers later; the coordinator must reassign its streamers;
//! * **Write drops** on the KV / object stores — the write is acknowledged
//!   but never lands, as a crashed store node would lose it.
//!
//! Every injected fault is counted under `chaos.injected.*` once the
//! injector is [instrumented](ChaosInjector::instrument), so a recovery
//! test can assert that the fault classes it claims to survive actually
//! fired.
//!
//! ```
//! use tero_chaos::{ChaosInjector, FaultPlan};
//!
//! let plan = FaultPlan { cdn_timeout_rate: 1.0, ..FaultPlan::quiet(7) };
//! let chaos = ChaosInjector::new(plan);
//! assert!(matches!(
//!     chaos.cdn_fault(),
//!     Some(tero_chaos::CdnFault::Timeout)
//! ));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use parking_lot::Mutex;
use serde::Serialize;
use std::sync::{Arc, OnceLock};
use tero_obs::{CounterHandle, Registry};
use tero_trace::{Level, Tracer};
use tero_types::{SimDuration, SimRng, SimTime};

/// One planned downloader crash: the worker is dead over `[at, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CrashWindow {
    /// Index of the downloader that dies.
    pub downloader: usize,
    /// When it dies.
    pub at: SimTime,
    /// When it comes back.
    pub until: SimTime,
}

/// One planned engine kill: the staged pipeline engine aborts the given
/// window mid-flight — after the ingest stage has committed its cursor
/// but before the extract stage runs — exactly once. The caller resumes
/// the window from the persisted stage cursors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct EngineKill {
    /// Zero-based index of the window to abort.
    pub window: u64,
}

/// A planned network partition: frames between hosts `a` and `b` (in
/// either direction) are dropped for every window in
/// `[from_window, until_window)`. Host names follow the sharded
/// topology's convention (`engine{i}`, `shard{s}p`, `shard{s}r`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct NetPartition {
    /// One side of the severed pair.
    pub a: String,
    /// The other side.
    pub b: String,
    /// First window (zero-based) during which the pair is partitioned.
    pub from_window: u64,
    /// First window during which the pair is healed again.
    pub until_window: u64,
}

/// A planned store-host kill: the named host answers no frames for every
/// window in `[from_window, until_window)`, then comes back with whatever
/// state it held when it died (a stale replica until resynced).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HostKill {
    /// Name of the store host that dies (e.g. `shard1p`).
    pub host: String,
    /// First window (zero-based) during which the host is dead.
    pub from_window: u64,
    /// First window during which the host is back.
    pub until_window: u64,
}

/// The network-layer fault schedule consulted by the simnet transport:
/// random frame loss and delay, plus planned partitions and store-host
/// kills. All rates are per-frame Bernoulli draws from the injector's
/// dedicated net stream.
#[derive(Debug, Clone, Serialize)]
pub struct NetFault {
    /// Probability that a frame is dropped in flight (the client sees a
    /// deadline expiry and retries).
    pub frame_drop_rate: f64,
    /// Probability that a frame is delayed by [`NetFault::frame_delay`]
    /// on top of its modelled transfer time.
    pub frame_delay_rate: f64,
    /// Extra logical delay applied to delayed frames.
    pub frame_delay: SimDuration,
    /// Planned host-pair partitions.
    pub partitions: Vec<NetPartition>,
    /// Planned store-host kills.
    pub kills: Vec<HostKill>,
}

impl NetFault {
    /// A net-fault schedule with everything disabled.
    pub fn quiet() -> NetFault {
        NetFault {
            frame_drop_rate: 0.0,
            frame_delay_rate: 0.0,
            frame_delay: SimDuration(0),
            partitions: Vec::new(),
            kills: Vec::new(),
        }
    }

    /// True when no class of network fault can ever fire.
    pub fn is_quiet(&self) -> bool {
        self.frame_drop_rate <= 0.0
            && self.frame_delay_rate <= 0.0
            && self.partitions.is_empty()
            && self.kills.is_empty()
    }
}

/// A random fault drawn for one frame in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFrameFault {
    /// The frame is lost; the sender sees a deadline expiry.
    Drop,
    /// The frame arrives late by the given extra delay.
    Delay(SimDuration),
}

/// A fault a CDN fetch can suffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CdnFault {
    /// The request times out; no payload is returned. Detectable at fetch
    /// time — the caller should retry with backoff.
    Timeout,
    /// The payload arrives shorter than its header promises. Undetectable
    /// at fetch time; surfaces as a decode failure downstream.
    Truncated,
    /// The payload arrives with corrupted pixel bytes but the right
    /// length. Decodes fine; the OCR stage reads garbage and extracts
    /// nothing.
    Corrupted,
}

/// The declarative fault schedule: rates per fault class plus explicit
/// crash windows. All probabilities are per-call Bernoulli draws from the
/// injector's seeded streams.
#[derive(Debug, Clone, Serialize)]
pub struct FaultPlan {
    /// Seed of the injector's RNG streams. The whole fault sequence is a
    /// pure function of `(seed, plan rates, call sequence)`.
    pub seed: u64,
    /// Probability that an API call (`get_streams` / `get_profile`)
    /// returns a transient 5xx after spending its rate-limit budget.
    pub api_5xx_rate: f64,
    /// Probability that a CDN fetch times out.
    pub cdn_timeout_rate: f64,
    /// Probability that a CDN payload is truncated.
    pub cdn_truncate_rate: f64,
    /// Probability that a CDN payload has corrupted pixels.
    pub cdn_corrupt_rate: f64,
    /// Probability that a KV write (set / rpush / hset) is silently lost.
    pub kv_write_drop_rate: f64,
    /// Probability that an object-store put is silently lost.
    pub object_write_drop_rate: f64,
    /// Planned downloader crashes.
    pub crashes: Vec<CrashWindow>,
    /// Planned staged-engine kills (each fires at most once).
    pub engine_kills: Vec<EngineKill>,
    /// Network-layer faults, consulted by the simnet store transport.
    pub net: NetFault,
}

impl FaultPlan {
    /// A plan with every fault class disabled — installing it is a no-op.
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            api_5xx_rate: 0.0,
            cdn_timeout_rate: 0.0,
            cdn_truncate_rate: 0.0,
            cdn_corrupt_rate: 0.0,
            kv_write_drop_rate: 0.0,
            object_write_drop_rate: 0.0,
            crashes: Vec::new(),
            engine_kills: Vec::new(),
            net: NetFault::quiet(),
        }
    }

    /// The default chaos mix used by the recovery suite: transient API
    /// errors, CDN timeouts and payload corruption at modest rates, and
    /// one downloader crash a few hours in. A hardened ingest pipeline
    /// retains ≥ 90 % of its fault-free throughput under this plan.
    pub fn default_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            api_5xx_rate: 0.05,
            cdn_timeout_rate: 0.03,
            cdn_truncate_rate: 0.01,
            cdn_corrupt_rate: 0.01,
            kv_write_drop_rate: 0.0,
            object_write_drop_rate: 0.0,
            crashes: vec![CrashWindow {
                downloader: 1,
                at: SimTime::from_hours(6),
                until: SimTime::from_hours(10),
            }],
            engine_kills: Vec::new(),
            net: NetFault::quiet(),
        }
    }
}

/// Counter handles resolved by [`ChaosInjector::instrument`]. All names
/// are registered eagerly so the catalogue stays complete even for fault
/// classes that never fire.
struct ChaosMetrics {
    api_5xx: CounterHandle,
    cdn_timeout: CounterHandle,
    cdn_truncated: CounterHandle,
    cdn_corrupt: CounterHandle,
    kv_write_drop: CounterHandle,
    object_write_drop: CounterHandle,
    crash: CounterHandle,
    engine_kill: CounterHandle,
    net_partition_drop: CounterHandle,
    net_frame_drop: CounterHandle,
    net_frame_delay: CounterHandle,
    net_shard_kill: CounterHandle,
}

struct Inner {
    plan: FaultPlan,
    /// Independent streams per call site, so (say) KV write volume never
    /// perturbs the CDN fault sequence.
    api_rng: Mutex<SimRng>,
    cdn_rng: Mutex<SimRng>,
    kv_rng: Mutex<SimRng>,
    object_rng: Mutex<SimRng>,
    net_rng: Mutex<SimRng>,
    metrics: OnceLock<ChaosMetrics>,
    trace: OnceLock<Tracer>,
    /// Window indices whose planned engine kill has already fired, so a
    /// resumed window is not killed again.
    fired_engine_kills: Mutex<Vec<u64>>,
}

/// The live injector: consulted by the world's API/CDN, the stores, and
/// the download module. Cloning is cheap (shared handle); all clones draw
/// from the same streams.
#[derive(Clone)]
pub struct ChaosInjector {
    inner: Arc<Inner>,
}

impl ChaosInjector {
    /// Build an injector from a plan. The decision streams are forked
    /// deterministically from `plan.seed`; the net stream is forked last
    /// so pre-existing replay sequences are unchanged by its addition.
    pub fn new(plan: FaultPlan) -> ChaosInjector {
        let mut root = SimRng::new(plan.seed);
        ChaosInjector {
            inner: Arc::new(Inner {
                api_rng: Mutex::new(root.fork()),
                cdn_rng: Mutex::new(root.fork()),
                kv_rng: Mutex::new(root.fork()),
                object_rng: Mutex::new(root.fork()),
                net_rng: Mutex::new(root.fork()),
                plan,
                metrics: OnceLock::new(),
                trace: OnceLock::new(),
                fired_engine_kills: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Register the `chaos.injected.*` counters with a registry. All
    /// counter names are created immediately (at zero), so the metric
    /// catalogue cross-check sees them whether or not they fire. The first
    /// call wins; all clones share the handles.
    pub fn instrument(&self, registry: &Registry) {
        let _ = self.inner.metrics.set(ChaosMetrics {
            api_5xx: registry.counter("chaos.injected.api_5xx"),
            cdn_timeout: registry.counter("chaos.injected.cdn_timeout"),
            cdn_truncated: registry.counter("chaos.injected.cdn_truncated"),
            cdn_corrupt: registry.counter("chaos.injected.cdn_corrupt"),
            kv_write_drop: registry.counter("chaos.injected.kv_write_drop"),
            object_write_drop: registry.counter("chaos.injected.object_write_drop"),
            crash: registry.counter("chaos.injected.crash"),
            engine_kill: registry.counter("chaos.injected.engine_kill"),
            net_partition_drop: registry.counter("chaos.injected.net_partition_drop"),
            net_frame_drop: registry.counter("chaos.injected.net_frame_drop"),
            net_frame_delay: registry.counter("chaos.injected.net_frame_delay"),
            net_shard_kill: registry.counter("chaos.injected.net_shard_kill"),
        });
    }

    /// Attach a tracer: every injected fault is also journaled as a
    /// `chaos:` event, so faults show up inline in span timelines and
    /// flight-recorder dumps. The first call wins, like
    /// [`ChaosInjector::instrument`].
    pub fn set_trace(&self, tracer: &Tracer) {
        let _ = self.inner.trace.set(tracer.clone());
    }

    fn journal(&self, level: Level, message: &str) {
        if let Some(t) = self.inner.trace.get() {
            t.event(level, message);
        }
    }

    /// The plan this injector was built from.
    pub fn plan(&self) -> &FaultPlan {
        &self.inner.plan
    }

    /// The planned downloader crash windows.
    pub fn crash_windows(&self) -> &[CrashWindow] {
        &self.inner.plan.crashes
    }

    /// Should this API call fail with a transient 5xx?
    pub fn api_fault(&self) -> bool {
        let rate = self.inner.plan.api_5xx_rate;
        if rate <= 0.0 {
            return false;
        }
        let hit = self.inner.api_rng.lock().chance(rate);
        if hit {
            if let Some(m) = self.inner.metrics.get() {
                m.api_5xx.inc();
            }
            self.journal(Level::Warn, "chaos: injected transient API 5xx");
        }
        hit
    }

    /// How many consecutive transient 5xx faults does the *profile*
    /// lookup for `key` suffer? Capped at 5 (after five the caller gives
    /// up, matching the download module's retry discipline). Unlike
    /// [`ChaosInjector::api_fault`], the draws come from a stream keyed on
    /// `(plan.seed, key)` rather than the shared sequential API stream:
    /// the location module runs on its own credentials, on its own
    /// schedule, so its fault outcomes are a pure function of the
    /// streamer — independent of call order and of the window schedule
    /// the pipeline happens to be driven with. Each fault is counted
    /// under `chaos.injected.api_5xx` and journaled like any other API
    /// 5xx. Zero rates consume no RNG.
    pub fn profile_faults(&self, key: &str) -> u32 {
        let rate = self.inner.plan.api_5xx_rate;
        if rate <= 0.0 {
            return 0;
        }
        // FNV-1a over the key, folded into the plan seed: a cheap stable
        // per-streamer stream id (same recipe the world uses to derive
        // per-streamer scene seeds).
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = SimRng::new(self.inner.plan.seed ^ seed);
        let mut faults = 0u32;
        while faults < 5 && rng.chance(rate) {
            faults += 1;
            if let Some(m) = self.inner.metrics.get() {
                m.api_5xx.inc();
            }
            self.journal(Level::Warn, "chaos: injected transient API 5xx");
        }
        faults
    }

    /// Should this CDN fetch fault, and how? One draw per call; the three
    /// fault classes partition the unit interval.
    pub fn cdn_fault(&self) -> Option<CdnFault> {
        let p = &self.inner.plan;
        let total = p.cdn_timeout_rate + p.cdn_truncate_rate + p.cdn_corrupt_rate;
        if total <= 0.0 {
            return None;
        }
        let u = self.inner.cdn_rng.lock().f64();
        let fault = if u < p.cdn_timeout_rate {
            CdnFault::Timeout
        } else if u < p.cdn_timeout_rate + p.cdn_truncate_rate {
            CdnFault::Truncated
        } else if u < total {
            CdnFault::Corrupted
        } else {
            return None;
        };
        if let Some(m) = self.inner.metrics.get() {
            match fault {
                CdnFault::Timeout => m.cdn_timeout.inc(),
                CdnFault::Truncated => m.cdn_truncated.inc(),
                CdnFault::Corrupted => m.cdn_corrupt.inc(),
            }
        }
        self.journal(
            Level::Warn,
            match fault {
                CdnFault::Timeout => "chaos: injected CDN timeout",
                CdnFault::Truncated => "chaos: injected CDN truncated payload",
                CdnFault::Corrupted => "chaos: injected CDN corrupted payload",
            },
        );
        Some(fault)
    }

    /// Deterministically mangle a payload according to a CDN fault.
    /// `Truncated` halves the pixel bytes; `Corrupted` XOR-flips a stride
    /// of bytes in place (same length, garbage content).
    pub fn mangle_payload(&self, fault: CdnFault, pixels: &mut Vec<u8>) {
        match fault {
            CdnFault::Timeout => {}
            CdnFault::Truncated => {
                let keep = pixels.len() / 2;
                pixels.truncate(keep);
            }
            CdnFault::Corrupted => {
                for byte in pixels.iter_mut().step_by(3) {
                    *byte ^= 0xA5;
                }
            }
        }
    }

    /// Should this KV write be silently dropped?
    pub fn drop_kv_write(&self) -> bool {
        let rate = self.inner.plan.kv_write_drop_rate;
        if rate <= 0.0 {
            return false;
        }
        let hit = self.inner.kv_rng.lock().chance(rate);
        if hit {
            if let Some(m) = self.inner.metrics.get() {
                m.kv_write_drop.inc();
            }
            self.journal(Level::Error, "chaos: silently dropped KV write");
        }
        hit
    }

    /// Should this object-store put be silently dropped?
    pub fn drop_object_write(&self) -> bool {
        let rate = self.inner.plan.object_write_drop_rate;
        if rate <= 0.0 {
            return false;
        }
        let hit = self.inner.object_rng.lock().chance(rate);
        if hit {
            if let Some(m) = self.inner.metrics.get() {
                m.object_write_drop.inc();
            }
            self.journal(Level::Error, "chaos: silently dropped object-store put");
        }
        hit
    }

    /// Should the engine abort `window` mid-flight? True exactly once per
    /// planned [`EngineKill`]: the first check of a planned window fires
    /// (and is counted under `chaos.injected.engine_kill`); the re-check
    /// after the caller resumes does not, so resumed runs terminate.
    pub fn engine_kill(&self, window: u64) -> bool {
        if !self
            .inner
            .plan
            .engine_kills
            .iter()
            .any(|k| k.window == window)
        {
            return false;
        }
        let mut fired = self.inner.fired_engine_kills.lock();
        if fired.contains(&window) {
            return false;
        }
        fired.push(window);
        drop(fired);
        if let Some(m) = self.inner.metrics.get() {
            m.engine_kill.inc();
        }
        self.journal(Level::Error, "chaos: killed engine mid-window");
        true
    }

    /// Is the host pair `(a, b)` partitioned during `window`? Pure plan
    /// lookup — no RNG is consumed. Counted under
    /// `chaos.injected.net_partition_drop` once per blocked frame.
    pub fn net_partitioned(&self, a: &str, b: &str, window: u64) -> bool {
        let hit = self.net_partitioned_quiet(a, b, window);
        if hit {
            if let Some(m) = self.inner.metrics.get() {
                m.net_partition_drop.inc();
            }
            self.journal(Level::Error, "chaos: frame blocked by network partition");
        }
        hit
    }

    /// [`ChaosInjector::net_partitioned`] without the fault accounting:
    /// same plan lookup, but no counter bump and no journal entry. The
    /// ops plane (health polls) uses this so *monitoring* a partitioned
    /// mesh never inflates the data plane's injected-fault counters or
    /// perturbs replay determinism.
    pub fn net_partitioned_quiet(&self, a: &str, b: &str, window: u64) -> bool {
        self.inner.plan.net.partitions.iter().any(|p| {
            ((p.a == a && p.b == b) || (p.a == b && p.b == a))
                && window >= p.from_window
                && window < p.until_window
        })
    }

    /// Is the named store host dead during `window`? Pure plan lookup — no
    /// RNG is consumed. Counted under `chaos.injected.net_shard_kill` once
    /// per frame the dead host would have answered.
    pub fn net_host_killed(&self, host: &str, window: u64) -> bool {
        let hit = self.net_host_killed_quiet(host, window);
        if hit {
            if let Some(m) = self.inner.metrics.get() {
                m.net_shard_kill.inc();
            }
            self.journal(Level::Error, "chaos: frame addressed to killed store host");
        }
        hit
    }

    /// [`ChaosInjector::net_host_killed`] without the fault accounting
    /// (no counter, no journal) — the ops-plane variant, matching
    /// [`ChaosInjector::net_partitioned_quiet`].
    pub fn net_host_killed_quiet(&self, host: &str, window: u64) -> bool {
        self.inner
            .plan
            .net
            .kills
            .iter()
            .any(|k| k.host == host && window >= k.from_window && window < k.until_window)
    }

    /// Should this frame in flight suffer a random fault, and which? One
    /// draw per call from the dedicated net stream; the drop and delay
    /// rates partition the unit interval. Zero rates consume no RNG.
    pub fn net_frame_fault(&self) -> Option<NetFrameFault> {
        let net = &self.inner.plan.net;
        let total = net.frame_drop_rate + net.frame_delay_rate;
        if total <= 0.0 {
            return None;
        }
        let u = self.inner.net_rng.lock().f64();
        let fault = if u < net.frame_drop_rate {
            NetFrameFault::Drop
        } else if u < total {
            NetFrameFault::Delay(net.frame_delay)
        } else {
            return None;
        };
        if let Some(m) = self.inner.metrics.get() {
            match fault {
                NetFrameFault::Drop => m.net_frame_drop.inc(),
                NetFrameFault::Delay(_) => m.net_frame_delay.inc(),
            }
        }
        self.journal(
            Level::Warn,
            match fault {
                NetFrameFault::Drop => "chaos: dropped store frame in flight",
                NetFrameFault::Delay(_) => "chaos: delayed store frame in flight",
            },
        );
        Some(fault)
    }

    /// Record that a planned crash window activated (called by the
    /// download module when the crash event fires).
    pub fn note_crash(&self) {
        if let Some(m) = self.inner.metrics.get() {
            m.crash.inc();
        }
        self.journal(Level::Error, "chaos: downloader crash window opened");
    }
}

impl std::fmt::Debug for ChaosInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosInjector")
            .field("plan", &self.inner.plan)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T>(n: usize, mut f: impl FnMut() -> T) -> Vec<T> {
        (0..n).map(|_| f()).collect()
    }

    #[test]
    fn quiet_plan_never_faults() {
        let chaos = ChaosInjector::new(FaultPlan::quiet(1));
        for _ in 0..1000 {
            assert!(!chaos.api_fault());
            assert!(chaos.cdn_fault().is_none());
            assert!(!chaos.drop_kv_write());
            assert!(!chaos.drop_object_write());
        }
    }

    #[test]
    fn fault_sequence_is_deterministic() {
        let seq = |seed| {
            let chaos = ChaosInjector::new(FaultPlan::default_plan(seed));
            (
                drain(500, || chaos.api_fault()),
                drain(500, || chaos.cdn_fault()),
            )
        };
        assert_eq!(seq(42), seq(42));
        assert_ne!(seq(42), seq(43));
    }

    #[test]
    fn streams_are_independent() {
        // Interleaving KV draws must not perturb the CDN fault sequence.
        let plain = {
            let chaos = ChaosInjector::new(FaultPlan {
                kv_write_drop_rate: 0.5,
                ..FaultPlan::default_plan(7)
            });
            drain(200, || chaos.cdn_fault())
        };
        let interleaved = {
            let chaos = ChaosInjector::new(FaultPlan {
                kv_write_drop_rate: 0.5,
                ..FaultPlan::default_plan(7)
            });
            drain(200, || {
                chaos.drop_kv_write();
                chaos.api_fault();
                chaos.cdn_fault()
            })
        };
        assert_eq!(plain, interleaved);
    }

    #[test]
    fn rates_are_respected() {
        let chaos = ChaosInjector::new(FaultPlan {
            api_5xx_rate: 0.3,
            cdn_timeout_rate: 0.2,
            cdn_truncate_rate: 0.1,
            cdn_corrupt_rate: 0.1,
            ..FaultPlan::quiet(11)
        });
        let n = 20_000;
        let api = (0..n).filter(|_| chaos.api_fault()).count();
        assert!((api as f64 / n as f64 - 0.3).abs() < 0.02);
        let faults: Vec<_> = (0..n).filter_map(|_| chaos.cdn_fault()).collect();
        let frac = faults.len() as f64 / n as f64;
        assert!((frac - 0.4).abs() < 0.02, "cdn fault fraction {frac}");
        let timeouts = faults.iter().filter(|f| **f == CdnFault::Timeout).count();
        assert!((timeouts as f64 / n as f64 - 0.2).abs() < 0.02);
    }

    #[test]
    fn metrics_count_injected_faults() {
        let registry = Registry::new();
        let chaos = ChaosInjector::new(FaultPlan {
            cdn_timeout_rate: 1.0,
            ..FaultPlan::quiet(3)
        });
        chaos.instrument(&registry);
        for _ in 0..5 {
            assert_eq!(chaos.cdn_fault(), Some(CdnFault::Timeout));
        }
        chaos.note_crash();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("chaos.injected.cdn_timeout"), Some(5));
        assert_eq!(snap.counter("chaos.injected.crash"), Some(1));
        // Every chaos counter is registered, fired or not.
        assert_eq!(snap.counter("chaos.injected.api_5xx"), Some(0));
        assert_eq!(snap.counter("chaos.injected.kv_write_drop"), Some(0));
    }

    #[test]
    fn injected_faults_are_journaled() {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        let chaos = ChaosInjector::new(FaultPlan {
            cdn_corrupt_rate: 1.0,
            ..FaultPlan::quiet(3)
        });
        chaos.set_trace(&tracer);
        assert_eq!(chaos.cdn_fault(), Some(CdnFault::Corrupted));
        chaos.note_crash();
        let (_, events) = tracer.records();
        let messages: Vec<&str> = events.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(
            messages,
            vec![
                "chaos: injected CDN corrupted payload",
                "chaos: downloader crash window opened"
            ]
        );
        assert_eq!(events[0].level, Level::Warn);
        assert_eq!(events[1].level, Level::Error);
    }

    #[test]
    fn engine_kill_fires_exactly_once_per_window() {
        let registry = Registry::new();
        let chaos = ChaosInjector::new(FaultPlan {
            engine_kills: vec![EngineKill { window: 2 }],
            ..FaultPlan::quiet(9)
        });
        chaos.instrument(&registry);
        assert!(!chaos.engine_kill(0), "unplanned window is never killed");
        assert!(chaos.engine_kill(2), "planned window is killed");
        assert!(!chaos.engine_kill(2), "resumed window is not re-killed");
        assert_eq!(
            registry.snapshot().counter("chaos.injected.engine_kill"),
            Some(1)
        );
    }

    #[test]
    fn profile_faults_are_keyed_and_capped() {
        let registry = Registry::new();
        let chaos = ChaosInjector::new(FaultPlan::default_plan(7));
        chaos.instrument(&registry);
        // Pure function of (seed, key): same key, same count, regardless
        // of interleaved draws on the sequential API stream.
        let a = chaos.profile_faults("streamer_a");
        chaos.api_fault();
        assert_eq!(chaos.profile_faults("streamer_a"), a);
        // A certain rate hits the give-up cap.
        let certain = ChaosInjector::new(FaultPlan {
            api_5xx_rate: 1.0,
            ..FaultPlan::quiet(3)
        });
        assert_eq!(certain.profile_faults("anyone"), 5);
        // Quiet plans draw nothing and fault nobody.
        let quiet = ChaosInjector::new(FaultPlan::quiet(3));
        assert_eq!(quiet.profile_faults("anyone"), 0);
        // Keyed draws never perturb the sequential streams.
        let baseline = {
            let c = ChaosInjector::new(FaultPlan::default_plan(9));
            drain(200, || c.api_fault())
        };
        let interleaved = {
            let c = ChaosInjector::new(FaultPlan::default_plan(9));
            drain(200, || {
                c.profile_faults("someone");
                c.api_fault()
            })
        };
        assert_eq!(baseline, interleaved);
    }

    #[test]
    fn net_faults_follow_the_plan() {
        let registry = Registry::new();
        let chaos = ChaosInjector::new(FaultPlan {
            net: NetFault {
                frame_drop_rate: 1.0,
                partitions: vec![NetPartition {
                    a: "engine0".into(),
                    b: "shard1p".into(),
                    from_window: 2,
                    until_window: 4,
                }],
                kills: vec![HostKill {
                    host: "shard0p".into(),
                    from_window: 1,
                    until_window: 3,
                }],
                ..NetFault::quiet()
            },
            ..FaultPlan::quiet(21)
        });
        chaos.instrument(&registry);
        // Partition is symmetric and window-bounded.
        assert!(!chaos.net_partitioned("engine0", "shard1p", 1));
        assert!(chaos.net_partitioned("engine0", "shard1p", 2));
        assert!(chaos.net_partitioned("shard1p", "engine0", 3));
        assert!(!chaos.net_partitioned("engine0", "shard1p", 4));
        assert!(!chaos.net_partitioned("engine0", "shard0p", 2));
        // Kill is host- and window-bounded.
        assert!(!chaos.net_host_killed("shard0p", 0));
        assert!(chaos.net_host_killed("shard0p", 1));
        assert!(!chaos.net_host_killed("shard0p", 3));
        assert!(!chaos.net_host_killed("shard0r", 1));
        // Certain drop rate fires every draw.
        assert_eq!(chaos.net_frame_fault(), Some(NetFrameFault::Drop));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("chaos.injected.net_partition_drop"), Some(2));
        assert_eq!(snap.counter("chaos.injected.net_shard_kill"), Some(1));
        assert_eq!(snap.counter("chaos.injected.net_frame_drop"), Some(1));
        assert_eq!(snap.counter("chaos.injected.net_frame_delay"), Some(0));
    }

    #[test]
    fn net_stream_is_forked_last() {
        // Adding the net stream must not have perturbed the pre-existing
        // streams, and quiet net plans must not consume net draws.
        let chaos = ChaosInjector::new(FaultPlan::default_plan(7));
        let baseline = drain(200, || chaos.cdn_fault());
        let noisy = ChaosInjector::new(FaultPlan {
            net: NetFault {
                frame_drop_rate: 0.5,
                frame_delay_rate: 0.3,
                frame_delay: SimDuration::from_millis(5),
                ..NetFault::quiet()
            },
            ..FaultPlan::default_plan(7)
        });
        let interleaved = drain(200, || {
            noisy.net_frame_fault();
            noisy.cdn_fault()
        });
        assert_eq!(baseline, interleaved);
        // And the net stream itself is deterministic per seed.
        let seq = |seed| {
            let c = ChaosInjector::new(FaultPlan {
                net: NetFault {
                    frame_drop_rate: 0.4,
                    frame_delay_rate: 0.2,
                    frame_delay: SimDuration::from_millis(2),
                    ..NetFault::quiet()
                },
                ..FaultPlan::quiet(seed)
            });
            drain(300, || c.net_frame_fault())
        };
        assert_eq!(seq(13), seq(13));
        assert_ne!(seq(13), seq(14));
    }

    #[test]
    fn mangle_truncates_and_corrupts() {
        let chaos = ChaosInjector::new(FaultPlan::quiet(5));
        let original: Vec<u8> = (0..100).map(|i| i as u8).collect();

        let mut truncated = original.clone();
        chaos.mangle_payload(CdnFault::Truncated, &mut truncated);
        assert_eq!(truncated.len(), 50);

        let mut corrupted = original.clone();
        chaos.mangle_payload(CdnFault::Corrupted, &mut corrupted);
        assert_eq!(corrupted.len(), original.len());
        assert_ne!(corrupted, original);

        let mut untouched = original.clone();
        chaos.mangle_payload(CdnFault::Timeout, &mut untouched);
        assert_eq!(untouched, original);
    }
}
