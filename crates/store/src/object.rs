//! An S3/Ceph-like object store: buckets of named immutable blobs.
//!
//! Tero stores downloaded thumbnails and the intermediate products of
//! image-processing here (App. B), and deletes them as soon as they are
//! processed (§7's data-minimisation rule) — hence the emphasis on cheap
//! deletion and occupancy accounting.
//!
//! Like [`KvStore`](crate::KvStore), the public API is a facade over
//! either the in-process map or a [`RemoteStore`] client; metrics and
//! chaos write-drops stay on the facade side so both deployments
//! account identically.

use crate::remote::{ObjRequest, ObjResponse, RemoteStore};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use tero_chaos::ChaosInjector;
use tero_obs::{CounterHandle, HistogramHandle, Registry, StageTimer};

#[derive(Default)]
struct Inner {
    buckets: HashMap<String, HashMap<String, Bytes>>,
    total_bytes: usize,
}

/// Metric handles installed by [`ObjectStore::instrument`].
struct ObjectMetrics {
    reads: CounterHandle,
    writes: CounterHandle,
    put_bytes: CounterHandle,
    op_us: HistogramHandle,
    registry: Registry,
}

/// Where the objects actually live.
enum Backend {
    Local(Arc<RwLock<Inner>>),
    Remote(Arc<dyn RemoteStore>),
}

impl Clone for Backend {
    fn clone(&self) -> Self {
        match self {
            Backend::Local(inner) => Backend::Local(Arc::clone(inner)),
            Backend::Remote(r) => Backend::Remote(Arc::clone(r)),
        }
    }
}

impl Default for Backend {
    fn default() -> Self {
        Backend::Local(Arc::default())
    }
}

/// A thread-safe in-memory object store. Cloning is cheap (shared handle).
#[derive(Clone, Default)]
pub struct ObjectStore {
    backend: Backend,
    metrics: Arc<OnceLock<ObjectMetrics>>,
    chaos: Arc<OnceLock<ChaosInjector>>,
}

impl ObjectStore {
    /// Create an empty in-process store.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// Create a store whose operations execute on a [`RemoteStore`]
    /// client instead of in-process memory.
    pub fn remote(backend: Arc<dyn RemoteStore>) -> Self {
        ObjectStore {
            backend: Backend::Remote(backend),
            metrics: Arc::new(OnceLock::new()),
            chaos: Arc::new(OnceLock::new()),
        }
    }

    /// Register this store's operation metrics (`store.object.*`) with a
    /// registry. The first call wins; every clone shares the handles.
    pub fn instrument(&self, registry: &Registry) {
        let _ = self.metrics.set(ObjectMetrics {
            reads: registry.counter("store.object.reads"),
            writes: registry.counter("store.object.writes"),
            put_bytes: registry.counter("store.object.put_bytes"),
            op_us: registry.histogram("store.object.op_us"),
            registry: registry.clone(),
        });
    }

    /// Count one operation and (when timing is enabled) time it.
    #[inline]
    fn observe(&self, write: bool) -> Option<StageTimer> {
        let m = self.metrics.get()?;
        if write {
            m.writes.inc();
        } else {
            m.reads.inc();
        }
        Some(m.registry.stage_timer(&m.op_us))
    }

    /// Install a fault injector: `put` calls may then be acked but silently
    /// lost, per the injector's `object_write_drop_rate`. Deletes are never
    /// dropped. First call wins; every clone shares the injector.
    pub fn inject_faults(&self, injector: ChaosInjector) {
        let _ = self.chaos.set(injector);
    }

    /// Store an object, replacing any previous object with the same key.
    pub fn put(&self, bucket: &str, key: &str, data: impl Into<Bytes>) {
        let _op = self.observe(true);
        if self.chaos.get().is_some_and(|c| c.drop_object_write()) {
            return;
        }
        let data = data.into();
        if let Some(m) = self.metrics.get() {
            m.put_bytes.add(data.len() as u64);
        }
        match &self.backend {
            Backend::Local(inner) => {
                let mut inner = inner.write();
                let b = inner.buckets.entry(bucket.to_string()).or_default();
                let old = b.insert(key.to_string(), data.clone());
                // Borrow of `b` ends here; update accounting on `inner`.
                inner.total_bytes += data.len();
                if let Some(old) = old {
                    inner.total_bytes -= old.len();
                }
            }
            Backend::Remote(r) => {
                r.obj(ObjRequest::Put {
                    bucket: bucket.to_string(),
                    key: key.to_string(),
                    data: data.to_vec(),
                });
            }
        }
    }

    /// Fetch an object (cheap on the local backend: `Bytes` is
    /// reference-counted).
    pub fn get(&self, bucket: &str, key: &str) -> Option<Bytes> {
        let _op = self.observe(false);
        match &self.backend {
            Backend::Local(inner) => inner.read().buckets.get(bucket)?.get(key).cloned(),
            Backend::Remote(r) => match r.obj(ObjRequest::Get {
                bucket: bucket.to_string(),
                key: key.to_string(),
            }) {
                ObjResponse::MaybeBytes(v) => v.map(Bytes::from),
                other => unreachable!("get returned {other:?}"),
            },
        }
    }

    /// Delete an object. Returns whether it existed.
    pub fn delete(&self, bucket: &str, key: &str) -> bool {
        let _op = self.observe(true);
        match &self.backend {
            Backend::Local(inner) => {
                let mut inner = inner.write();
                let removed = inner.buckets.get_mut(bucket).and_then(|b| b.remove(key));
                match removed {
                    Some(data) => {
                        inner.total_bytes -= data.len();
                        true
                    }
                    None => false,
                }
            }
            Backend::Remote(r) => match r.obj(ObjRequest::Delete {
                bucket: bucket.to_string(),
                key: key.to_string(),
            }) {
                ObjResponse::Bool(b) => b,
                other => unreachable!("delete returned {other:?}"),
            },
        }
    }

    /// Delete a whole bucket. Returns the number of objects removed.
    pub fn delete_bucket(&self, bucket: &str) -> usize {
        let _op = self.observe(true);
        match &self.backend {
            Backend::Local(inner) => {
                let mut inner = inner.write();
                match inner.buckets.remove(bucket) {
                    Some(b) => {
                        let n = b.len();
                        let bytes: usize = b.values().map(|v| v.len()).sum();
                        inner.total_bytes -= bytes;
                        n
                    }
                    None => 0,
                }
            }
            Backend::Remote(r) => match r.obj(ObjRequest::DeleteBucket {
                bucket: bucket.to_string(),
            }) {
                ObjResponse::Uint(n) => n as usize,
                other => unreachable!("delete_bucket returned {other:?}"),
            },
        }
    }

    /// Keys in a bucket, sorted.
    pub fn list(&self, bucket: &str) -> Vec<String> {
        let _op = self.observe(false);
        match &self.backend {
            Backend::Local(inner) => {
                let inner = inner.read();
                let mut keys: Vec<String> = inner
                    .buckets
                    .get(bucket)
                    .map(|b| b.keys().cloned().collect())
                    .unwrap_or_default();
                keys.sort_unstable();
                keys
            }
            Backend::Remote(r) => match r.obj(ObjRequest::List {
                bucket: bucket.to_string(),
            }) {
                ObjResponse::Strs(mut keys) => {
                    keys.sort_unstable();
                    keys
                }
                other => unreachable!("list returned {other:?}"),
            },
        }
    }

    /// Number of objects in a bucket.
    pub fn count(&self, bucket: &str) -> usize {
        let _op = self.observe(false);
        match &self.backend {
            Backend::Local(inner) => inner.read().buckets.get(bucket).map_or(0, |b| b.len()),
            Backend::Remote(r) => match r.obj(ObjRequest::Count {
                bucket: bucket.to_string(),
            }) {
                ObjResponse::Uint(n) => n as usize,
                other => unreachable!("count returned {other:?}"),
            },
        }
    }

    /// Total payload bytes across all buckets.
    pub fn total_bytes(&self) -> usize {
        let _op = self.observe(false);
        match &self.backend {
            Backend::Local(inner) => inner.read().total_bytes,
            Backend::Remote(r) => match r.obj(ObjRequest::TotalBytes) {
                ObjResponse::Uint(n) => n as usize,
                other => unreachable!("total_bytes returned {other:?}"),
            },
        }
    }

    /// Capture every object as a deterministic, serializable snapshot
    /// (sorted by bucket then key). Administrative — not counted in
    /// `store.object.*`.
    pub fn snapshot(&self) -> ObjectSnapshot {
        match &self.backend {
            Backend::Local(inner) => {
                let inner = inner.read();
                let mut objects = Vec::new();
                for (bucket, contents) in &inner.buckets {
                    for (key, data) in contents {
                        objects.push((bucket.clone(), key.clone(), data.to_vec()));
                    }
                }
                objects.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
                ObjectSnapshot { objects }
            }
            Backend::Remote(r) => match r.obj(ObjRequest::Snapshot) {
                ObjResponse::Snapshot(s) => s,
                other => unreachable!("snapshot returned {other:?}"),
            },
        }
    }

    /// Replace the full store contents with a snapshot's. Bypasses fault
    /// injection and is not counted in `store.object.*`.
    pub fn restore(&self, snapshot: &ObjectSnapshot) {
        match &self.backend {
            Backend::Local(inner) => {
                let mut inner = inner.write();
                inner.buckets.clear();
                inner.total_bytes = 0;
                for (bucket, key, data) in &snapshot.objects {
                    inner.total_bytes += data.len();
                    inner
                        .buckets
                        .entry(bucket.clone())
                        .or_default()
                        .insert(key.clone(), Bytes::from(data.clone()));
                }
            }
            Backend::Remote(r) => {
                r.obj(ObjRequest::Restore {
                    snapshot: snapshot.clone(),
                });
            }
        }
    }
}

/// A point-in-time copy of an [`ObjectStore`], in deterministic order.
/// Produced by [`ObjectStore::snapshot`], consumed by
/// [`ObjectStore::restore`]; serializable so checkpoints can leave the
/// process.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct ObjectSnapshot {
    objects: Vec<(String, String, Vec<u8>)>,
}

impl ObjectSnapshot {
    /// Number of objects captured.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the snapshot holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Merge several snapshots into one, sorted by `(bucket, key)`.
    /// Later snapshots win on collisions.
    pub fn merged(parts: &[ObjectSnapshot]) -> ObjectSnapshot {
        let mut by_key: std::collections::BTreeMap<(String, String), Vec<u8>> =
            std::collections::BTreeMap::new();
        for part in parts {
            for (bucket, key, data) in &part.objects {
                by_key.insert((bucket.clone(), key.clone()), data.clone());
            }
        }
        ObjectSnapshot {
            objects: by_key
                .into_iter()
                .map(|((bucket, key), data)| (bucket, key, data))
                .collect(),
        }
    }

    /// A copy holding only the objects whose bucket starts with
    /// `prefix`, with the prefix stripped from the bucket name. Used by
    /// namespaced shard clients.
    pub fn strip_prefix(&self, prefix: &str) -> ObjectSnapshot {
        ObjectSnapshot {
            objects: self
                .objects
                .iter()
                .filter_map(|(bucket, key, data)| {
                    bucket
                        .strip_prefix(prefix)
                        .map(|b| (b.to_string(), key.clone(), data.clone()))
                })
                .collect(),
        }
    }

    /// The distinct bucket names captured, sorted.
    pub fn bucket_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.objects.iter().map(|(b, _, _)| b.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Decompose into the per-bucket requests that recreate this
    /// snapshot on a store: a `DeleteBucket` per captured bucket (so the
    /// sequence replaces existing contents), then a `Put` per object.
    /// Routable bucket-by-bucket, unlike
    /// [`ObjRequest::Restore`], which
    /// replaces a whole server's state.
    pub fn restore_requests(&self) -> Vec<crate::ObjRequest> {
        use crate::ObjRequest;
        let mut reqs: Vec<ObjRequest> = self
            .bucket_names()
            .into_iter()
            .map(|bucket| ObjRequest::DeleteBucket { bucket })
            .collect();
        reqs.extend(
            self.objects
                .iter()
                .map(|(bucket, key, data)| ObjRequest::Put {
                    bucket: bucket.clone(),
                    key: key.clone(),
                    data: data.clone(),
                }),
        );
        reqs
    }

    /// A copy with `prefix` prepended to every bucket name — the inverse
    /// of [`ObjectSnapshot::strip_prefix`], used when a namespaced client
    /// pushes a snapshot back into the shared servers.
    pub fn with_prefix(&self, prefix: &str) -> ObjectSnapshot {
        ObjectSnapshot {
            objects: self
                .objects
                .iter()
                .map(|(bucket, key, data)| (format!("{prefix}{bucket}"), key.clone(), data.clone()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.backend {
            Backend::Local(inner) => {
                let inner = inner.read();
                f.debug_struct("ObjectStore")
                    .field("buckets", &inner.buckets.len())
                    .field("total_bytes", &inner.total_bytes)
                    .finish()
            }
            Backend::Remote(_) => f
                .debug_struct("ObjectStore")
                .field("backend", &"remote")
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let s = ObjectStore::new();
        s.put("thumbs", "a.png", &b"abc"[..]);
        assert_eq!(
            s.get("thumbs", "a.png").unwrap(),
            Bytes::from_static(b"abc")
        );
        assert!(s.delete("thumbs", "a.png"));
        assert!(!s.delete("thumbs", "a.png"));
        assert!(s.get("thumbs", "a.png").is_none());
        assert!(s.get("nope", "a").is_none());
    }

    #[test]
    fn accounting_tracks_replacement() {
        let s = ObjectStore::new();
        s.put("b", "k", vec![0u8; 100]);
        assert_eq!(s.total_bytes(), 100);
        s.put("b", "k", vec![0u8; 40]);
        assert_eq!(s.total_bytes(), 40, "replacement adjusts accounting");
        s.put("b", "k2", vec![0u8; 10]);
        assert_eq!(s.total_bytes(), 50);
        s.delete("b", "k");
        assert_eq!(s.total_bytes(), 10);
    }

    #[test]
    fn bucket_operations() {
        let s = ObjectStore::new();
        s.put("x", "2", &b"b"[..]);
        s.put("x", "1", &b"a"[..]);
        s.put("y", "3", &b"c"[..]);
        assert_eq!(s.list("x"), vec!["1", "2"]);
        assert_eq!(s.count("x"), 2);
        assert_eq!(s.delete_bucket("x"), 2);
        assert_eq!(s.count("x"), 0);
        assert_eq!(s.total_bytes(), 1);
        assert_eq!(s.delete_bucket("x"), 0);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let s = ObjectStore::new();
        s.put("thumbs", "b", &b"two"[..]);
        s.put("thumbs", "a", &b"one"[..]);
        s.put("aux", "x", &b"y"[..]);
        let snap = s.snapshot();
        assert_eq!(snap.len(), 3);

        let other = ObjectStore::new();
        other.put("stale", "k", &b"gone"[..]);
        other.restore(&snap);
        assert_eq!(
            other.get("thumbs", "a").unwrap(),
            Bytes::from_static(b"one")
        );
        assert_eq!(other.count("stale"), 0, "restore replaces prior contents");
        assert_eq!(other.total_bytes(), s.total_bytes());
        assert_eq!(other.snapshot(), snap, "roundtrip is lossless");

        let json = serde_json::to_string(&snap).unwrap();
        let back: ObjectSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_merge_and_strip() {
        let a = ObjectStore::new();
        a.put("e0:thumbs", "x", &b"1"[..]);
        let b = ObjectStore::new();
        b.put("e1:thumbs", "y", &b"2"[..]);
        let merged = ObjectSnapshot::merged(&[
            a.snapshot().strip_prefix("e0:"),
            b.snapshot().strip_prefix("e1:"),
        ]);
        let s = ObjectStore::new();
        s.restore(&merged);
        assert_eq!(s.get("thumbs", "x").unwrap(), Bytes::from_static(b"1"));
        assert_eq!(s.get("thumbs", "y").unwrap(), Bytes::from_static(b"2"));
    }

    #[test]
    fn concurrent_writers() {
        let s = ObjectStore::new();
        let mut handles = vec![];
        for t in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    s.put("shared", &format!("{t}-{i}"), vec![1u8; 10]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.count("shared"), 400);
        assert_eq!(s.total_bytes(), 4_000);
    }

    #[test]
    fn remote_backend_round_trips_through_requests() {
        use crate::remote::{KvRequest, KvResponse, ObjRequest, ObjResponse, RemoteStore};

        struct Loopback(ObjectStore);
        impl RemoteStore for Loopback {
            fn kv(&self, _req: KvRequest) -> KvResponse {
                unimplemented!("object-only loopback")
            }
            fn obj(&self, req: ObjRequest) -> ObjResponse {
                crate::apply_obj(&self.0, req)
            }
        }

        let s = ObjectStore::remote(Arc::new(Loopback(ObjectStore::new())));
        s.put("b", "k", &b"payload"[..]);
        assert_eq!(s.get("b", "k").unwrap(), Bytes::from_static(b"payload"));
        assert_eq!(s.list("b"), vec!["k"]);
        assert_eq!(s.count("b"), 1);
        assert_eq!(s.total_bytes(), 7);
        let snap = s.snapshot();
        assert_eq!(snap.len(), 1);
        assert!(s.delete("b", "k"));
        assert_eq!(s.delete_bucket("b"), 0);
        s.restore(&snap);
        assert_eq!(s.count("b"), 1);
    }
}
