//! Simulated time.
//!
//! All Tero components run against a simulated clock expressed in integer
//! **microseconds** since the simulation epoch — fine enough to model
//! packet serialization on gigabit links, while keeping event ordering
//! total and every experiment deterministic (no floating point, no
//! wall-clock types).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulated time, in microseconds since the simulation epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const EPOCH: SimTime = SimTime(0);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// microsecond.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s * 1_000_000.0).round().max(0.0) as u64)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the epoch as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since the epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Minutes since the epoch (truncating).
    pub const fn as_mins(self) -> u64 {
        self.0 / 60_000_000
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of `self` and `other`.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of `self` and `other`.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// microsecond.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1_000_000.0).round().max(0.0) as u64)
    }

    /// Construct from fractional milliseconds, rounding to the nearest
    /// microsecond.
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms * 1_000.0).round().max(0.0) as u64)
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Length in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Length in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Length in whole minutes (truncating).
    pub const fn as_mins(self) -> u64 {
        self.0 / 60_000_000
    }

    /// Scale the duration by a float factor, rounding to microseconds.
    pub fn mul_f64(self, k: f64) -> Self {
        SimDuration((self.0 as f64 * k).round().max(0.0) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0 / 1_000;
        let us = self.0 % 1_000;
        let (h, rem) = (ms / 3_600_000, ms % 3_600_000);
        let (m, rem) = (rem / 60_000, rem % 60_000);
        let (s, ms) = (rem / 1_000, rem % 1_000);
        if us == 0 {
            write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}")
        } else {
            write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}{us:03}")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 60_000_000 {
            write!(f, "{:.1}min", self.0 as f64 / 60_000_000.0)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.2}s", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_mins(3).as_secs(), 180);
        assert_eq!(SimTime::from_hours(1).as_mins(), 60);
        assert_eq!(SimDuration::from_secs(5).as_millis(), 5_000);
        assert_eq!(SimDuration::from_hours(2).as_mins(), 120);
        assert_eq!(SimDuration::from_micros(1_500).as_millis(), 1);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!((t + d).as_secs(), 14);
        assert_eq!((t - d).as_secs(), 6);
        assert_eq!((t + d) - t, d);
        // Saturating subtraction never underflows.
        assert_eq!(SimTime::EPOCH - d, SimTime::EPOCH);
        assert_eq!(SimTime::EPOCH.since(t), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5).as_millis(), 5_000);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1_500);
        assert_eq!(SimDuration::from_secs_f64(0.0002).as_micros(), 200);
        assert_eq!(SimDuration::from_millis_f64(0.25).as_micros(), 250);
    }

    #[test]
    fn sub_millisecond_resolution() {
        // The motivating case: 1250-byte packets at 50 Mbps are 200 µs
        // apart — representable exactly.
        let d = SimDuration::from_secs_f64(1250.0 * 8.0 / 50e6);
        assert_eq!(d.as_micros(), 200);
        assert!((d.as_millis_f64() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(3_661_004).to_string(), "01:01:01.004");
        assert_eq!(SimDuration::from_micros(500).to_string(), "500us");
        assert_eq!(SimDuration::from_millis(500).to_string(), "500.00ms");
        assert_eq!(SimDuration::from_millis(1_500).to_string(), "1.50s");
        assert_eq!(SimDuration::from_mins(2).to_string(), "2.0min");
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
