//! Three template-matching OCR engines with complementary error profiles.
//!
//! The paper uses Tesseract, EasyOCR and PaddleOCR, and observes that "the
//! three engines were complementary (they made mistakes on partially
//! overlapping sets of thumbnails)" (§3.2). We reproduce that property by
//! giving each engine the same template bank but its *own preprocessing
//! policy* (threshold factor, denoising, smoothing — see
//! [`OcrEngine::recognize_gray`]) plus distinct quantisation and
//! acceptance thresholds:
//!
//! * [`OcrEngineKind::TesseractLike`] — a strict sub-Otsu threshold: faint
//!   strokes vanish (the highest miss rate, as in Table 4) and only close
//!   matches are accepted;
//! * [`OcrEngineKind::EasyOcrLike`] — median-filter denoising, permissive
//!   quantisation and the most lenient acceptance threshold (few misses,
//!   more confusions);
//! * [`OcrEngineKind::PaddleOcrLike`] — extra smoothing and an
//!   edge-weighted distance that over-trusts stroke caps (a different
//!   confusion set).
//!
//! Matching is scale-free: each segmented glyph is cropped to its ink
//! bounding box and compared against *cropped* templates on the template's
//! own grid, with an aspect-ratio penalty — so a '1' (a narrow glyph) is
//! never confused with a ':' purely because both are thin.

use crate::font::{glyph, Glyph, GLYPH_H, GLYPH_W, TEMPLATE_CHARS};
use crate::image::Image;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Which of the three simulated engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OcrEngineKind {
    /// Strict matcher over an eroded input (Tesseract stand-in).
    TesseractLike,
    /// Lenient matcher (EasyOCR stand-in).
    EasyOcrLike,
    /// Edge-weighted matcher (PaddleOCR stand-in).
    PaddleOcrLike,
}

impl OcrEngineKind {
    /// All three engines, in the paper's order.
    pub const ALL: [OcrEngineKind; 3] = [
        OcrEngineKind::TesseractLike,
        OcrEngineKind::EasyOcrLike,
        OcrEngineKind::PaddleOcrLike,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            OcrEngineKind::TesseractLike => "tesseract-like",
            OcrEngineKind::EasyOcrLike => "easyocr-like",
            OcrEngineKind::PaddleOcrLike => "paddleocr-like",
        }
    }
}

/// One recognised character with its normalised match distance (lower =
/// more confident; comparable across glyph sizes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OcrChar {
    /// The recognised character.
    pub ch: char,
    /// Normalised template distance of the accepted match.
    pub distance: f64,
}

/// A cropped template: the ink bounding box of a 5×7 font glyph.
#[derive(Debug, Clone)]
struct Template {
    ch: char,
    w: usize,
    h: usize,
    cells: Vec<bool>,
    aspect: f64,
}

#[allow(clippy::needless_range_loop)]
fn crop_template(ch: char, g: &Glyph) -> Option<Template> {
    let mut min_r = GLYPH_H;
    let mut max_r = 0;
    let mut min_c = GLYPH_W;
    let mut max_c = 0;
    for (r, bits) in g.iter().enumerate() {
        for c in 0..GLYPH_W {
            if bits & (1 << (GLYPH_W - 1 - c)) != 0 {
                min_r = min_r.min(r);
                max_r = max_r.max(r);
                min_c = min_c.min(c);
                max_c = max_c.max(c);
            }
        }
    }
    if min_r > max_r {
        return None; // blank glyph (space)
    }
    let (w, h) = (max_c - min_c + 1, max_r - min_r + 1);
    let mut cells = Vec::with_capacity(w * h);
    for r in min_r..=max_r {
        for c in min_c..=max_c {
            cells.push(g[r] & (1 << (GLYPH_W - 1 - c)) != 0);
        }
    }
    Some(Template {
        ch,
        w,
        h,
        cells,
        aspect: w as f64 / h as f64,
    })
}

fn templates() -> &'static [Template] {
    static BANK: OnceLock<Vec<Template>> = OnceLock::new();
    BANK.get_or_init(|| {
        TEMPLATE_CHARS
            .iter()
            .filter_map(|&c| crop_template(c, &glyph(c).expect("template glyph")))
            .collect()
    })
}

/// A template-matching OCR engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OcrEngine {
    kind: OcrEngineKind,
}

impl OcrEngine {
    /// Construct an engine of the given kind.
    pub fn new(kind: OcrEngineKind) -> Self {
        OcrEngine { kind }
    }

    /// The engine's kind.
    pub fn kind(&self) -> OcrEngineKind {
        self.kind
    }

    /// Recognise characters in a binarised image (0 = ink, 255 =
    /// background). Returns the accepted characters left-to-right;
    /// unrecognisable glyph boxes (too-wide blobs, poor matches) are
    /// silently dropped — exactly the behaviour that turns an occluded
    /// "45ms" into "5ms".
    pub fn recognize(&self, bin: &Image) -> Vec<OcrChar> {
        let boxes = segment_glyphs(bin);
        let (ink_frac, accept) = match self.kind {
            OcrEngineKind::TesseractLike => (0.50, 5.0),
            OcrEngineKind::EasyOcrLike => (0.30, 9.0),
            OcrEngineKind::PaddleOcrLike => (0.40, 8.5),
        };
        let mut out = Vec::new();
        let mut rejected_any = false;
        for gb in &boxes {
            if gb.is_blob {
                continue;
            }
            let mut best: Option<(char, f64)> = None;
            for t in templates() {
                let quant = quantize_to(&gb.img, t.w, t.h, ink_frac);
                let d = match self.kind {
                    OcrEngineKind::PaddleOcrLike => edge_weighted_distance(&quant, t),
                    _ => plain_distance(&quant, t),
                };
                // Aspect-ratio penalty keeps thin glyphs from matching
                // wide templates and vice versa.
                let g_aspect = gb.img.width as f64 / gb.img.height.max(1) as f64;
                let d = d + 6.0 * (g_aspect / t.aspect).ln().abs();
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((t.ch, d));
                }
            }
            match best {
                Some((ch, distance)) if distance <= accept => out.push(OcrChar { ch, distance }),
                _ => rejected_any = true,
            }
        }
        let _ = rejected_any;
        out
    }

    /// The engine's thresholding policy (multiplier on Otsu's threshold).
    /// The strict engine's low factor makes faint strokes vanish — its
    /// misses; the lenient policies keep them, occasionally as misshapen
    /// glyphs — their confusions.
    pub fn threshold_factor(&self) -> f64 {
        match self.kind {
            OcrEngineKind::TesseractLike => 0.82,
            OcrEngineKind::EasyOcrLike => 1.0,
            OcrEngineKind::PaddleOcrLike => 0.93,
        }
    }

    /// The engine's own smoothing radius (added to the pipeline's base
    /// blur). PaddleOCR-like smooths harder, which suppresses speck noise
    /// at the cost of fine stroke detail — a different error set from the
    /// other two.
    pub fn extra_blur(&self) -> usize {
        match self.kind {
            OcrEngineKind::PaddleOcrLike => 1,
            _ => 0,
        }
    }

    /// Whether the engine denoises with a median filter before smoothing
    /// (EasyOCR-like's distinctive stage: salt-and-pepper specks vanish,
    /// so its error set under noise differs from the other engines').
    pub fn uses_median(&self) -> bool {
        self.kind == OcrEngineKind::EasyOcrLike
    }

    /// Recognise from the shared *upscaled grayscale* stage: each engine
    /// applies its own denoising, smoothing and binarization policy first
    /// (real OCR engines run their own preprocessing, which is where much
    /// of their complementary behaviour comes from).
    pub fn recognize_gray(
        &self,
        upscaled: &Image,
        cfg: &crate::preprocess::PreprocessConfig,
    ) -> Vec<OcrChar> {
        let mut stage = if self.uses_median() && cfg.blur_radius > 0 {
            crate::preprocess::median3(upscaled)
        } else {
            upscaled.clone()
        };
        let blur = cfg.blur_radius + self.extra_blur();
        if blur > 0 {
            stage = crate::preprocess::gaussian_blur(&stage, blur);
        }
        let bin = crate::preprocess::finish_binary(&stage, self.threshold_factor(), cfg);
        self.recognize(&bin)
    }

    /// Recognise and return the raw string (convenience).
    pub fn recognize_string(&self, bin: &Image) -> String {
        self.recognize(bin).iter().map(|c| c.ch).collect()
    }
}

/// One segmented glyph candidate, cropped to its own ink bounding box.
#[derive(Debug, Clone)]
pub struct GlyphBox {
    /// The cropped glyph image.
    pub img: Image,
    /// True when the box is too wide to be a single glyph (e.g. an
    /// occluding menu blob).
    pub is_blob: bool,
}

/// Segment a binarised text line into glyph boxes by column projection:
/// consecutive columns with enough ink form a run; each run is cropped to
/// its own ink bounding box. Runs wider than 1.8× the width a 5×7 glyph of
/// that run's height would have are flagged as blobs.
#[allow(clippy::needless_range_loop)]
pub fn segment_glyphs(bin: &Image) -> Vec<GlyphBox> {
    if bin.width == 0 || bin.height == 0 {
        return vec![];
    }
    // Columns with enough ink to be part of a glyph (noise specks after
    // upscaling are ≤3 px tall; glyph strokes are taller).
    let col_threshold = 4.min(bin.height).max(1);
    let col_ink: Vec<usize> = (0..bin.width)
        .map(|x| (0..bin.height).filter(|&y| bin.get(x, y) == 0).count())
        .collect();

    let mut boxes = Vec::new();
    let mut run_start: Option<usize> = None;
    for x in 0..=bin.width {
        let ink = x < bin.width && col_ink[x] >= col_threshold;
        match (run_start, ink) {
            (None, true) => run_start = Some(x),
            (Some(s), false) => {
                if let Some(gb) = crop_run(bin, s, x) {
                    boxes.push(gb);
                }
                run_start = None;
            }
            _ => {}
        }
    }
    boxes
}

/// Crop a column run `[x0, x1)` to its ink bounding rows; classify blobs.
fn crop_run(bin: &Image, x0: usize, x1: usize) -> Option<GlyphBox> {
    let mut top = None;
    let mut bottom = None;
    for y in 0..bin.height {
        let ink = (x0..x1).filter(|&x| bin.get(x, y) == 0).count();
        if ink >= 2.min(x1 - x0) {
            if top.is_none() {
                top = Some(y);
            }
            bottom = Some(y);
        }
    }
    let (top, bottom) = (top?, bottom?);
    let h = bottom - top + 1;
    let w = x1 - x0;
    let img = bin.crop(x0, top, w, h);
    // A single glyph is at most 5 units wide for 7 tall; anything much
    // wider for its height is an occlusion blob or merged junk.
    let expected_w = (h * GLYPH_W).div_ceil(GLYPH_H);
    let is_blob = w > expected_w * 9 / 5;
    Some(GlyphBox { img, is_blob })
}

/// Downsample a cropped glyph image onto a `tw × th` template grid: a cell
/// is ink when at least `ink_frac` of its pixels are ink.
pub fn quantize_to(img: &Image, tw: usize, th: usize, ink_frac: f64) -> Vec<bool> {
    let mut cells = vec![false; tw * th];
    if img.width == 0 || img.height == 0 {
        return cells;
    }
    for row in 0..th {
        for col in 0..tw {
            let y0 = row * img.height / th;
            let y1 = ((row + 1) * img.height / th).max(y0 + 1).min(img.height);
            let x0 = col * img.width / tw;
            let x1 = ((col + 1) * img.width / tw).max(x0 + 1).min(img.width);
            let total = (y1 - y0) * (x1 - x0);
            let mut ink = 0usize;
            for y in y0..y1 {
                for x in x0..x1 {
                    if img.get(x, y) == 0 {
                        ink += 1;
                    }
                }
            }
            cells[row * tw + col] = (ink as f64) >= ink_frac * total as f64;
        }
    }
    cells
}

/// Hamming distance normalised to the 35-cell (5×7) scale, so thresholds
/// are comparable across template sizes.
fn plain_distance(quant: &[bool], t: &Template) -> f64 {
    let d = quant.iter().zip(&t.cells).filter(|(a, b)| a != b).count();
    d as f64 * 35.0 / (t.w * t.h) as f64
}

/// Like [`plain_distance`], but mismatches on the template's top and bottom
/// rows count double (stroke caps distinguish many glyph pairs), with the
/// normalisation adjusted accordingly.
fn edge_weighted_distance(quant: &[bool], t: &Template) -> f64 {
    let mut d = 0.0;
    for (i, (a, b)) in quant.iter().zip(&t.cells).enumerate() {
        if a != b {
            let row = i / t.w;
            d += if row == 0 || row == t.h - 1 { 2.0 } else { 1.0 };
        }
    }
    let total_weight = (t.w * t.h + 2 * t.w) as f64;
    d * 35.0 / total_weight
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::font::rasterize;
    use crate::preprocess::{preprocess, PreprocessConfig};

    fn render_and_preprocess(text: &str) -> Image {
        let text_img = rasterize(text, 2, 20, 230);
        let mut canvas = Image::filled(text_img.width + 12, text_img.height + 8, 230);
        canvas.blit(&text_img, 6, 4);
        preprocess(&canvas, &PreprocessConfig::default())
    }

    #[test]
    fn clean_text_is_read_by_all_engines() {
        let bin = render_and_preprocess("45ms");
        for kind in OcrEngineKind::ALL {
            let engine = OcrEngine::new(kind);
            let s = engine.recognize_string(&bin);
            // The digits must come through intact; decorations may degrade
            // (e.g. the strict engine fragments 'm' after its extra erosion),
            // which cleanup tolerates.
            assert!(s.contains("45"), "{} read {s:?}", kind.name());
            assert_eq!(
                crate::combine::cleanup(&engine.recognize(&bin)),
                Some(45),
                "{} cleanup",
                kind.name()
            );
        }
    }

    #[test]
    fn all_digits_read_correctly_when_clean() {
        for d in 0..10u32 {
            let text = format!("{d}{d}ms");
            let bin = render_and_preprocess(&text);
            let engine = OcrEngine::new(OcrEngineKind::EasyOcrLike);
            let out = crate::combine::cleanup(&engine.recognize(&bin));
            // "00" is correctly read but rejected by cleanup as the lobby
            // placeholder (App. E step 3).
            let want = if d == 0 { None } else { Some(d * 11) };
            assert_eq!(out, want, "digit {d}: {:?}", engine.recognize_string(&bin));
        }
    }

    #[test]
    fn three_digit_values_supported() {
        let bin = render_and_preprocess("187ms");
        for kind in [OcrEngineKind::EasyOcrLike, OcrEngineKind::PaddleOcrLike] {
            let engine = OcrEngine::new(kind);
            let out = crate::combine::cleanup(&engine.recognize(&bin));
            assert_eq!(
                out,
                Some(187),
                "{}: {:?}",
                kind.name(),
                engine.recognize_string(&bin)
            );
        }
    }

    #[test]
    fn ping_prefix_read() {
        let bin = render_and_preprocess("ping 62");
        let engine = OcrEngine::new(OcrEngineKind::EasyOcrLike);
        let out = crate::combine::cleanup(&engine.recognize(&bin));
        assert_eq!(out, Some(62), "read {:?}", engine.recognize_string(&bin));
    }

    #[test]
    fn segmentation_counts_glyphs() {
        let bin = render_and_preprocess("123");
        let boxes = segment_glyphs(&bin);
        assert_eq!(boxes.len(), 3);
        assert!(boxes.iter().all(|b| !b.is_blob));
        assert!(segment_glyphs(&Image::filled(10, 10, 255)).is_empty());
    }

    #[test]
    fn wide_blob_is_flagged_and_dropped() {
        // A solid block the width of several glyphs, followed by one digit.
        let mut canvas = Image::filled(90, 22, 230);
        canvas.fill_rect(4, 4, 40, 14, 20); // blob
        let digit = rasterize("5", 2, 20, 230);
        canvas.blit(&digit, 60, 4);
        let bin = preprocess(&canvas, &PreprocessConfig::default());
        let boxes = segment_glyphs(&bin);
        assert!(boxes.iter().any(|b| b.is_blob), "blob not flagged");
        let engine = OcrEngine::new(OcrEngineKind::EasyOcrLike);
        assert_eq!(engine.recognize_string(&bin), "5", "blob must be dropped");
    }

    #[test]
    fn quantize_recovers_exact_glyph() {
        // '8' fills its whole 5×7 box; rasterised at scale 4 and quantised
        // back on a 5×7 grid it must reproduce the template exactly.
        let img = rasterize("8", 4, 0, 255);
        let q = quantize_to(&img, 5, 7, 0.5);
        let g = glyph('8').unwrap();
        for (i, &cell) in q.iter().enumerate() {
            let (r, c) = (i / 5, i % 5);
            let want = g[r] & (1 << (4 - c)) != 0;
            assert_eq!(cell, want, "cell ({r},{c})");
        }
    }

    #[test]
    fn templates_cropped_sensibly() {
        let bank = templates();
        assert_eq!(
            bank.len(),
            TEMPLATE_CHARS.len(),
            "space is not in TEMPLATE_CHARS"
        );
        let one = bank.iter().find(|t| t.ch == '1').unwrap();
        assert_eq!((one.w, one.h), (3, 7), "'1' crops to 3 columns");
        let colon = bank.iter().find(|t| t.ch == ':').unwrap();
        assert!(colon.w < 3 && colon.h <= 6);
    }

    #[test]
    fn engines_disagree_under_heavy_noise() {
        // Degrade an '8'-heavy reading with noise; the three engines should
        // sometimes disagree (partially overlapping error sets, §3.2) but
        // not always.
        use tero_types::SimRng;
        let mut rng = SimRng::new(1234);
        let mut disagreements = 0;
        let cfg = PreprocessConfig::default();
        for _ in 0..60 {
            let text_img = rasterize("88ms", 2, 20, 230);
            let mut canvas = Image::filled(text_img.width + 12, text_img.height + 8, 230);
            canvas.blit(&text_img, 6, 4);
            for p in canvas.pixels.iter_mut() {
                if rng.chance(0.12) {
                    *p = rng.range_u64(0, 256) as u8;
                }
            }
            // Each engine runs its own preprocessing policy, as in the
            // combiner.
            let upscaled = canvas.upscale(cfg.upscale);
            let outs: Vec<Option<u32>> = OcrEngineKind::ALL
                .iter()
                .map(|&k| {
                    crate::combine::cleanup(&OcrEngine::new(k).recognize_gray(&upscaled, &cfg))
                })
                .collect();
            if !(outs[0] == outs[1] && outs[1] == outs[2]) {
                disagreements += 1;
            }
        }
        assert!(disagreements > 0, "engines never disagreed under noise");
        assert!(disagreements < 60, "engines always disagreed — too chaotic");
    }
}
