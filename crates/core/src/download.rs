//! The download module (App. A).
//!
//! A *coordinator* polls the Twitch API (respecting its rate limit) to
//! detect streamers coming online, and hands their thumbnail URLs to lean
//! *downloaders* through the key-value store. Each downloader races the
//! CDN's 5-minute overwrite: it HEADs the URL to learn when the next
//! thumbnail lands, GETs it in time, stores the image in the object store
//! and pushes a processing task onto the work queue. Offline URLs redirect,
//! at which point the downloader signals the coordinator through the store.
//!
//! Load balancing follows the paper: "a downloader takes on a new streamer
//! whenever it becomes idle" — here, new URLs go to the downloader with
//! the fewest assignments.

use serde::Serialize;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use tero_obs::Registry;
use tero_store::{KvStore, ObjectStore};
use tero_types::{GameId, SimDuration, SimTime, StreamerId};
use tero_world::twitch::CdnResponse;
use tero_world::World;

/// A downloaded-thumbnail task pushed onto the processing queue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ThumbnailTask {
    /// The broadcaster.
    pub streamer: StreamerId,
    /// The game label on the stream at download time.
    pub game_label: GameId,
    /// Content timestamp of the thumbnail.
    pub generated_at: SimTime,
    /// Object-store key of the stored image.
    pub object_key: String,
}

impl ThumbnailTask {
    /// Serialise for the KV work queue.
    pub fn encode(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            self.streamer.as_str(),
            self.game_label.slug(),
            self.generated_at.as_micros(),
            self.object_key
        )
    }

    /// Parse a queue entry.
    pub fn decode(s: &str) -> Option<ThumbnailTask> {
        let mut parts = s.splitn(4, '|');
        let streamer = StreamerId::new(parts.next()?);
        let slug = parts.next()?;
        let game_label = GameId::ALL.into_iter().find(|g| g.slug() == slug)?;
        let generated_at = SimTime::from_micros(parts.next()?.parse().ok()?);
        let object_key = parts.next()?.to_string();
        Some(ThumbnailTask {
            streamer,
            game_label,
            generated_at,
            object_key,
        })
    }
}

/// Statistics of one download run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct DownloadStats {
    /// API polls issued.
    pub polls: u64,
    /// Polls rejected by the rate limiter.
    pub rate_limited: u64,
    /// Thumbnails fetched and stored.
    pub downloaded: u64,
    /// Thumbnails lost to CDN overwrites (a new thumbnail replaced one we
    /// never fetched).
    pub missed: u64,
    /// Offline redirects observed.
    pub offline_signals: u64,
}

#[derive(Debug)]
struct Assignment {
    url: String,
    streamer: StreamerId,
    game_label: GameId,
    last_generated: Option<SimTime>,
    downloader: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Poll,
    Fetch(u32), // assignment id
}

#[derive(PartialEq, Eq)]
struct HeapEv(SimTime, u64, Ev);
impl Ord for HeapEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0, self.1).cmp(&(other.0, other.1))
    }
}
impl PartialOrd for HeapEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The download module.
pub struct DownloadModule {
    kv: KvStore,
    objects: ObjectStore,
    obs: Registry,
    /// How often the coordinator polls `Get Streams`.
    pub poll_interval: SimDuration,
    /// Number of downloader workers.
    pub downloaders: usize,
    /// Time a downloader spends fetching one thumbnail (serialised per
    /// worker — the reason the coordinator/downloader split exists).
    pub fetch_cost: SimDuration,
}

/// Metric handles resolved once per [`DownloadModule::run`] — bumping them
/// inside the event loop is lock-free.
struct DownloadObs {
    polls: tero_obs::CounterHandle,
    rate_limited: tero_obs::CounterHandle,
    get_attempts: tero_obs::CounterHandle,
    get_hits: tero_obs::CounterHandle,
    same_content: tero_obs::CounterHandle,
    fetch_deferred: tero_obs::CounterHandle,
    overwrite_missed: tero_obs::CounterHandle,
    offline_signals: tero_obs::CounterHandle,
    assignments: tero_obs::CounterHandle,
    idle_steals: tero_obs::CounterHandle,
    queue_depth: tero_obs::HistogramHandle,
    downloader_load: tero_obs::GaugeHandle,
}

impl DownloadObs {
    fn resolve(obs: &Registry) -> Self {
        DownloadObs {
            polls: obs.counter("download.polls"),
            rate_limited: obs.counter("download.rate_limited"),
            get_attempts: obs.counter("download.get_attempts"),
            get_hits: obs.counter("download.get_hits"),
            same_content: obs.counter("download.same_content"),
            fetch_deferred: obs.counter("download.fetch_deferred"),
            overwrite_missed: obs.counter("download.overwrite_missed"),
            offline_signals: obs.counter("download.offline_signals"),
            assignments: obs.counter("download.assignments"),
            idle_steals: obs.counter("download.idle_steals"),
            queue_depth: obs.histogram("download.queue_depth"),
            downloader_load: obs.gauge("download.downloader_load"),
        }
    }
}

impl DownloadModule {
    /// A module writing into the given stores.
    pub fn new(kv: KvStore, objects: ObjectStore) -> Self {
        DownloadModule {
            kv,
            objects,
            obs: Registry::new(),
            poll_interval: SimDuration::from_mins(2),
            downloaders: 4,
            fetch_cost: SimDuration::from_millis(500),
        }
    }

    /// Record this module's metrics (`download.*`) into `registry` instead
    /// of the private default registry.
    pub fn instrument(&mut self, registry: &Registry) {
        self.obs = registry.clone();
    }

    /// Run the module against the world from `from` to `until` (logical
    /// time). Thumbnails land in the object store (bucket `thumbs`) and
    /// tasks on the KV list `queue:thumbs`.
    pub fn run(&mut self, world: &mut World, from: SimTime, until: SimTime) -> DownloadStats {
        let obs = DownloadObs::resolve(&self.obs);
        let run_us = self.obs.histogram("download.run_us");
        let _run_timer = self.obs.stage_timer(&run_us);
        let mut stats = DownloadStats::default();
        let mut heap: BinaryHeap<Reverse<HeapEv>> = BinaryHeap::new();
        let mut seq = 0u64;
        let push = |heap: &mut BinaryHeap<Reverse<HeapEv>>, seq: &mut u64, at: SimTime, ev: Ev| {
            *seq += 1;
            heap.push(Reverse(HeapEv(at, *seq, ev)));
        };
        push(&mut heap, &mut seq, from, Ev::Poll);

        let mut assignments: HashMap<u32, Assignment> = HashMap::new();
        let mut next_assignment_id = 0u32;
        let mut downloader_load = vec![0usize; self.downloaders.max(1)];
        let mut downloader_busy_until = vec![SimTime::EPOCH; self.downloaders.max(1)];

        // Crash recovery (App. A/B): after a restart, the coordinator
        // rebuilds its assignment table from the `active:*` keys persisted
        // in the KV store, so streamers being tracked before the crash keep
        // being downloaded without waiting for the next status change.
        for key in self.kv.keys_with_prefix("active:") {
            let Some(url) = self.kv.get(&key) else {
                continue;
            };
            let username = key.trim_start_matches("active:");
            let streamer = StreamerId::new(username);
            let game_label = self
                .kv
                .get(&format!("game:{username}"))
                .and_then(|slug| GameId::ALL.into_iter().find(|g| g.slug() == slug))
                .unwrap_or(GameId::LeagueOfLegends);
            let d = (0..downloader_load.len())
                .min_by_key(|&i| downloader_load[i])
                .unwrap_or(0);
            obs.assignments.inc();
            if downloader_load[d] == 0 {
                obs.idle_steals.inc();
            }
            downloader_load[d] += 1;
            obs.queue_depth.record(downloader_load[d] as u64);
            obs.downloader_load.set(downloader_load[d] as i64);
            let id = next_assignment_id;
            next_assignment_id += 1;
            assignments.insert(
                id,
                Assignment {
                    url,
                    streamer,
                    game_label,
                    last_generated: None,
                    downloader: d,
                },
            );
            push(&mut heap, &mut seq, from, Ev::Fetch(id));
        }

        while let Some(Reverse(HeapEv(at, _, ev))) = heap.pop() {
            if at > until {
                break;
            }
            match ev {
                Ev::Poll => {
                    match world.twitch.get_streams(at) {
                        Ok(listings) => {
                            stats.polls += 1;
                            obs.polls.inc();
                            for l in &listings {
                                let key = format!("active:{}", l.streamer.as_str());
                                if self.kv.exists(&key) {
                                    continue;
                                }
                                self.kv.set(&key, &l.thumbnail_url);
                                self.kv
                                    .set(&format!("game:{}", l.streamer.as_str()), l.game_label.slug());
                                // Record country tags for the location
                                // module's tag recovery.
                                if let Some(tag) = &l.country_tag {
                                    self.kv
                                        .rpush(&format!("tags:{}", l.streamer.as_str()), tag.clone());
                                }
                                // Least-loaded downloader takes the URL.
                                let d = (0..downloader_load.len())
                                    .min_by_key(|&i| downloader_load[i])
                                    .unwrap_or(0);
                                obs.assignments.inc();
                                if downloader_load[d] == 0 {
                                    obs.idle_steals.inc();
                                }
                                downloader_load[d] += 1;
                                obs.queue_depth.record(downloader_load[d] as u64);
                                obs.downloader_load.set(downloader_load[d] as i64);
                                let id = next_assignment_id;
                                next_assignment_id += 1;
                                assignments.insert(
                                    id,
                                    Assignment {
                                        url: l.thumbnail_url.clone(),
                                        streamer: l.streamer.clone(),
                                        game_label: l.game_label,
                                        last_generated: None,
                                        downloader: d,
                                    },
                                );
                                push(&mut heap, &mut seq, at, Ev::Fetch(id));
                            }
                        }
                        Err(limited) => {
                            stats.rate_limited += 1;
                            obs.rate_limited.inc();
                            push(&mut heap, &mut seq, limited.retry_at, Ev::Poll);
                            continue;
                        }
                    }
                    push(&mut heap, &mut seq, at + self.poll_interval, Ev::Poll);
                }
                Ev::Fetch(id) => {
                    let Some(assignment) = assignments.get_mut(&id) else {
                        continue;
                    };
                    let d = assignment.downloader;
                    // Serialise fetches per downloader.
                    if downloader_busy_until[d] > at {
                        let retry = downloader_busy_until[d];
                        obs.fetch_deferred.inc();
                        push(&mut heap, &mut seq, retry, Ev::Fetch(id));
                        continue;
                    }
                    downloader_busy_until[d] = at + self.fetch_cost;
                    obs.get_attempts.inc();
                    match world.twitch.cdn_get(&assignment.url, at) {
                        CdnResponse::Thumbnail {
                            image,
                            generated_at,
                            next_update,
                        } => {
                            if let Some(last) = assignment.last_generated {
                                if generated_at == last {
                                    // Same content; try again shortly.
                                    obs.same_content.inc();
                                    push(
                                        &mut heap,
                                        &mut seq,
                                        at + SimDuration::from_secs(30),
                                        Ev::Fetch(id),
                                    );
                                    continue;
                                }
                                // Count thumbnails we never saw (gap of
                                // more than one nominal interval).
                                let gap = generated_at.since(last).as_secs();
                                if gap > 400 {
                                    stats.missed += gap / 330 - 1;
                                    obs.overwrite_missed.add(gap / 330 - 1);
                                }
                            }
                            assignment.last_generated = Some(generated_at);
                            let object_key = format!(
                                "{}/{}",
                                assignment.streamer.as_str(),
                                generated_at.as_micros()
                            );
                            let bytes: Vec<u8> = image.pixels.clone();
                            let mut payload =
                                Vec::with_capacity(bytes.len() + 8);
                            payload.extend((image.width as u32).to_le_bytes());
                            payload.extend((image.height as u32).to_le_bytes());
                            payload.extend(bytes);
                            self.objects.put("thumbs", &object_key, payload);
                            let task = ThumbnailTask {
                                streamer: assignment.streamer.clone(),
                                game_label: assignment.game_label,
                                generated_at,
                                object_key,
                            };
                            self.kv.rpush("queue:thumbs", task.encode());
                            stats.downloaded += 1;
                            obs.get_hits.inc();
                            // Schedule the next fetch right after the next
                            // expected overwrite.
                            let next = next_update
                                .map(|t| t + SimDuration::from_secs(5))
                                .unwrap_or(at + SimDuration::from_mins(5));
                            push(&mut heap, &mut seq, next.max(at + self.fetch_cost), Ev::Fetch(id));
                        }
                        CdnResponse::Offline => {
                            // Could be "live but first thumbnail pending":
                            // check activity via another short retry, but
                            // only once — the KV active flag with TTL keeps
                            // this bounded. Signal the coordinator.
                            stats.offline_signals += 1;
                            obs.offline_signals.inc();
                            self.kv
                                .rpush("offline", assignment.streamer.as_str().to_string());
                            self.kv.del(&format!("active:{}", assignment.streamer.as_str()));
                            downloader_load[d] = downloader_load[d].saturating_sub(1);
                            obs.downloader_load.set(downloader_load[d] as i64);
                            assignments.remove(&id);
                        }
                    }
                }
            }
        }
        stats
    }

    /// Decode and drain every queued thumbnail task.
    pub fn drain_tasks(&self) -> Vec<ThumbnailTask> {
        let mut out = Vec::new();
        while let Some(raw) = self.kv.lpop("queue:thumbs") {
            if let Some(task) = ThumbnailTask::decode(&raw) {
                out.push(task);
            }
        }
        out
    }

    /// Fetch a stored thumbnail image back from the object store.
    pub fn load_image(&self, object_key: &str) -> Option<tero_vision::Image> {
        let bytes = self.objects.get("thumbs", object_key)?;
        if bytes.len() < 8 {
            return None;
        }
        let width = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
        let height = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
        let pixels = bytes[8..].to_vec();
        if pixels.len() != width * height {
            return None;
        }
        Some(tero_vision::Image {
            width,
            height,
            pixels,
        })
    }

    /// Country-tag history collected for a streamer during the run.
    pub fn tag_history(&self, username: &str) -> Vec<String> {
        let mut out = Vec::new();
        let key = format!("tags:{username}");
        while let Some(tag) = self.kv.lpop(&key) {
            out.push(tag);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_world::WorldConfig;

    fn small_world() -> World {
        World::build(WorldConfig {
            seed: 21,
            n_streamers: 25,
            days: 2,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn task_roundtrip() {
        let task = ThumbnailTask {
            streamer: StreamerId::new("darkwolf42"),
            game_label: GameId::Dota2,
            generated_at: SimTime::from_mins(1234),
            object_key: "darkwolf42/74040000000".into(),
        };
        assert_eq!(ThumbnailTask::decode(&task.encode()), Some(task));
        assert_eq!(ThumbnailTask::decode("garbage"), None);
        assert_eq!(ThumbnailTask::decode("a|nope|1|k"), None);
    }

    #[test]
    fn downloads_track_world_thumbnails() {
        let mut world = small_world();
        let kv = KvStore::new();
        let objects = ObjectStore::new();
        let mut module = DownloadModule::new(kv, objects.clone());
        let horizon = world.horizon;
        let stats = module.run(&mut world, SimTime::EPOCH, horizon);

        let truth = world.total_samples() as u64;
        assert!(truth > 0);
        // With a 2-minute poll and per-streamer scheduling we should catch
        // the overwhelming majority of thumbnails.
        assert!(
            stats.downloaded as f64 > truth as f64 * 0.85,
            "downloaded {} of {truth}",
            stats.downloaded
        );
        assert!(stats.downloaded <= truth);
        assert_eq!(objects.count("thumbs") as u64, stats.downloaded);

        // Tasks decode and reference stored objects.
        let tasks = module.drain_tasks();
        assert_eq!(tasks.len() as u64, stats.downloaded);
        let img = module.load_image(&tasks[0].object_key).expect("image");
        assert_eq!(img.width, tero_vision::scene::THUMB_W);
    }

    #[test]
    fn metrics_mirror_run_stats() {
        let mut world = small_world();
        let mut module = DownloadModule::new(KvStore::new(), ObjectStore::new());
        let registry = Registry::new();
        module.instrument(&registry);
        let horizon = world.horizon;
        let stats = module.run(&mut world, SimTime::EPOCH, horizon);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("download.polls"), Some(stats.polls));
        assert_eq!(snap.counter("download.get_hits"), Some(stats.downloaded));
        assert_eq!(
            snap.counter("download.offline_signals"),
            Some(stats.offline_signals)
        );
        assert_eq!(snap.counter("download.overwrite_missed"), Some(stats.missed));
        assert!(snap.counter("download.get_attempts") >= snap.counter("download.get_hits"));
        assert!(snap.histogram("download.queue_depth").unwrap().count > 0);
        assert!(snap.gauge("download.downloader_load").unwrap().high_watermark >= 1);
        assert_eq!(
            snap.histogram("download.run_us").unwrap().count,
            0,
            "wall-clock timing stays off by default"
        );
    }

    #[test]
    fn offline_streamers_are_released() {
        let mut world = small_world();
        let mut module = DownloadModule::new(KvStore::new(), ObjectStore::new());
        let horizon = world.horizon;
        let stats = module.run(&mut world, SimTime::EPOCH, horizon);
        assert!(stats.offline_signals > 0, "streams end → offline signals");
        assert!(stats.polls > 100);
    }

    #[test]
    fn lean_downloaders_beat_one_slow_worker() {
        // DESIGN.md ablation 6: the coordinator/downloader split exists
        // because downloads are time-sensitive. One worker with a heavy
        // per-fetch cost loses thumbnails to CDN overwrites; a pool of
        // lean workers does not.
        let run = |workers: usize, cost_ms: u64| {
            let mut world = World::build(WorldConfig {
                seed: 404,
                n_streamers: 60,
                days: 1,
                ..WorldConfig::default()
            });
            let mut module = DownloadModule::new(KvStore::new(), ObjectStore::new());
            module.downloaders = workers;
            module.fetch_cost = SimDuration::from_millis(cost_ms);
            let horizon = world.horizon;
            module.run(&mut world, SimTime::EPOCH, horizon).downloaded
        };
        let pool = run(4, 500);
        let single_slow = run(1, 45_000); // 45 s per fetch, one worker
        assert!(
            single_slow < pool,
            "a slow single worker must fall behind: {single_slow} vs {pool}"
        );
    }

    #[test]
    fn crash_recovery_resumes_from_kv_state() {
        // Run the first half with one module instance, "crash", and run
        // the second half with a fresh instance sharing the same stores:
        // the union must capture roughly what an uninterrupted run does.
        let kv = KvStore::new();
        let objects = ObjectStore::new();
        let horizon;
        let two_phase = {
            let mut world = small_world();
            horizon = world.horizon;
            let half = SimTime::from_micros(horizon.as_micros() / 2);
            let mut first = DownloadModule::new(kv.clone(), objects.clone());
            let s1 = first.run(&mut world, SimTime::EPOCH, half);
            drop(first); // the crash: all in-memory assignment state is lost
            let mut second = DownloadModule::new(kv.clone(), objects.clone());
            let s2 = second.run(&mut world, half, horizon);
            s1.downloaded + s2.downloaded
        };
        let uninterrupted = {
            let mut world = small_world();
            let mut module = DownloadModule::new(KvStore::new(), ObjectStore::new());
            module.run(&mut world, SimTime::EPOCH, horizon).downloaded
        };
        assert!(
            two_phase as f64 > uninterrupted as f64 * 0.9,
            "recovery lost too much: {two_phase} vs {uninterrupted}"
        );
    }

    #[test]
    fn rate_limit_is_respected() {
        let mut world = World::build(WorldConfig {
            seed: 5,
            n_streamers: 10,
            days: 1,
            api_budget_per_min: 1,
            ..WorldConfig::default()
        });
        let mut module = DownloadModule::new(KvStore::new(), ObjectStore::new());
        module.poll_interval = SimDuration::from_secs(10); // over budget
        let horizon = world.horizon;
        let stats = module.run(&mut world, SimTime::EPOCH, horizon);
        assert!(stats.rate_limited > 0, "limiter must have pushed back");
        // The module kept running regardless.
        assert!(stats.polls > 0);
    }
}
