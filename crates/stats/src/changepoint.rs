//! PELT changepoint detection (Killick, Fearnhead & Eckley \[26\]).
//!
//! The paper tried PELT on its latency series before designing the QoE-based
//! detector, and found it impractical on OCR-noisy data (§3.3.2). We
//! implement it both as a baseline for comparison and because Tero's own
//! detector "is a simple form of changepoint detection with extra steps".
//!
//! The cost function is the within-segment sum of squared deviations from
//! the segment mean (the classical mean-shift cost); the default penalty is
//! the BIC-style `β = 2 σ̂² ln n`.

/// Detect changepoints in `xs` with the PELT algorithm under the mean-shift
/// cost. Returns the *segment end indices* (exclusive), always ending with
/// `xs.len()` — e.g. `[5, 12]` means segments `0..5` and `5..12`.
///
/// `penalty` trades off fit against the number of changepoints; use
/// [`bic_penalty`] for a standard default. `min_seg_len` is the minimum
/// number of points per segment (≥ 1).
pub fn pelt_mean_shift(xs: &[f64], penalty: f64, min_seg_len: usize) -> Vec<usize> {
    let n = xs.len();
    if n == 0 {
        return vec![];
    }
    let min_seg = min_seg_len.max(1);
    if n < 2 * min_seg {
        return vec![n];
    }

    // Prefix sums for O(1) segment cost.
    let mut s1 = vec![0.0; n + 1];
    let mut s2 = vec![0.0; n + 1];
    for (i, &x) in xs.iter().enumerate() {
        s1[i + 1] = s1[i] + x;
        s2[i + 1] = s2[i] + x * x;
    }
    // Cost of segment [a, b) = Σx² − (Σx)²/len.
    let cost = |a: usize, b: usize| -> f64 {
        let len = (b - a) as f64;
        let sum = s1[b] - s1[a];
        (s2[b] - s2[a]) - sum * sum / len
    };

    // f[t] = optimal cost of xs[0..t]; cp[t] = last changepoint before t.
    let mut f = vec![f64::INFINITY; n + 1];
    f[0] = -penalty;
    let mut cp = vec![0usize; n + 1];
    let mut candidates: Vec<usize> = vec![0];

    for t in min_seg..=n {
        let mut best = f64::INFINITY;
        let mut best_tau = 0;
        for &tau in &candidates {
            if t - tau < min_seg {
                continue;
            }
            let c = f[tau] + cost(tau, t) + penalty;
            if c < best {
                best = c;
                best_tau = tau;
            }
        }
        f[t] = best;
        cp[t] = best_tau;

        // PELT pruning: drop candidates that can never be optimal again.
        candidates.retain(|&tau| t - tau < min_seg || f[tau] + cost(tau, t) <= f[t]);
        candidates.push(t.saturating_sub(min_seg - 1).max(1).min(t));
        // Keep candidate list sorted-unique (push may duplicate).
        candidates.sort_unstable();
        candidates.dedup();
    }

    // Backtrack.
    let mut ends = vec![n];
    let mut t = n;
    while cp[t] > 0 {
        t = cp[t];
        ends.push(t);
    }
    ends.reverse();
    ends
}

/// BIC-style penalty for the mean-shift cost: `2 σ̂² ln n`, with σ̂ estimated
/// robustly from first differences (MAD), so that level shifts do not
/// inflate it.
pub fn bic_penalty(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 3 {
        return 1.0;
    }
    let mut diffs: Vec<f64> = xs.windows(2).map(|w| (w[1] - w[0]).abs()).collect();
    diffs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mad = diffs[diffs.len() / 2];
    // σ ≈ MAD/ (0.6745 · sqrt(2)) for Gaussian first differences.
    let sigma = (mad / (0.6745 * std::f64::consts::SQRT_2)).max(1e-6);
    2.0 * sigma * sigma * (n as f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_types::SimRng;

    fn noisy_levels(levels: &[(f64, usize)], sd: f64, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::new(seed);
        let mut xs = Vec::new();
        for &(mu, len) in levels {
            for _ in 0..len {
                xs.push(rng.normal_with(mu, sd));
            }
        }
        xs
    }

    #[test]
    fn no_change_yields_single_segment() {
        let xs = noisy_levels(&[(50.0, 200)], 1.0, 1);
        let ends = pelt_mean_shift(&xs, bic_penalty(&xs), 3);
        assert_eq!(ends, vec![200]);
    }

    #[test]
    fn detects_single_shift() {
        let xs = noisy_levels(&[(30.0, 100), (80.0, 100)], 1.5, 2);
        let ends = pelt_mean_shift(&xs, bic_penalty(&xs), 3);
        assert_eq!(ends.len(), 2, "ends {ends:?}");
        assert!((ends[0] as i64 - 100).unsigned_abs() <= 2, "ends {ends:?}");
        assert_eq!(*ends.last().unwrap(), 200);
    }

    #[test]
    fn detects_multiple_shifts() {
        let xs = noisy_levels(&[(20.0, 80), (60.0, 60), (35.0, 80)], 2.0, 3);
        let ends = pelt_mean_shift(&xs, bic_penalty(&xs), 3);
        assert_eq!(ends.len(), 3, "ends {ends:?}");
        assert!((ends[0] as i64 - 80).unsigned_abs() <= 3);
        assert!((ends[1] as i64 - 140).unsigned_abs() <= 3);
    }

    #[test]
    fn penalty_controls_sensitivity() {
        let xs = noisy_levels(&[(30.0, 50), (45.0, 50)], 2.0, 4);
        // Huge penalty: no changepoints.
        let ends = pelt_mean_shift(&xs, 1e9, 3);
        assert_eq!(ends, vec![100]);
        // Tiny penalty: many changepoints.
        let ends = pelt_mean_shift(&xs, 1e-6, 3);
        assert!(ends.len() > 2);
    }

    #[test]
    fn respects_min_segment_length() {
        let xs = noisy_levels(&[(10.0, 30), (90.0, 30)], 1.0, 5);
        let ends = pelt_mean_shift(&xs, 1e-6, 10);
        for w in ends.windows(2) {
            assert!(w[1] - w[0] >= 10, "segment too short: {ends:?}");
        }
        assert!(ends[0] >= 10);
    }

    #[test]
    fn edge_cases() {
        assert!(pelt_mean_shift(&[], 1.0, 3).is_empty());
        assert_eq!(pelt_mean_shift(&[1.0], 1.0, 3), vec![1]);
        assert_eq!(pelt_mean_shift(&[1.0, 2.0, 3.0], 1.0, 3), vec![3]);
    }

    #[test]
    fn segments_partition_input() {
        let xs = noisy_levels(&[(5.0, 40), (25.0, 40), (5.0, 40)], 1.0, 6);
        let ends = pelt_mean_shift(&xs, bic_penalty(&xs), 3);
        assert_eq!(*ends.last().unwrap(), xs.len());
        assert!(ends.windows(2).all(|w| w[0] < w[1]));
    }
}
