//! The hot-key cache: decoded sketches kept by recency, invalidated by
//! serving-view version.
//!
//! Decoding a committed sketch (JSON → buckets) is the expensive step of
//! every query; the answers themselves are a walk over a few hundred
//! buckets. The cache therefore holds *decoded sketches* keyed by their
//! KV key, bounded by a capacity with least-recently-used eviction.
//!
//! Invalidation is version-based, not per-key: every engine commit that
//! touches a sketch bumps `engine:serve:version`, and the cache drops its
//! whole contents the first time it is consulted at a newer version. A
//! window commit can rewrite any number of raw sketches, so per-key
//! tracking would buy little — and the whole-view drop is what keeps a
//! cached answer from ever mixing two serving versions.

use std::collections::HashMap;
use tero_stats::QuantileSketch;

/// A bounded LRU of decoded sketches, stamped with the serving-view
/// version its contents were read at. Not thread-safe on its own — the
/// query engine wraps it in a mutex.
#[derive(Debug)]
pub struct HotKeyCache {
    capacity: usize,
    version: u64,
    /// Key → (last-touched tick, decoded sketch).
    entries: HashMap<String, (u64, QuantileSketch)>,
    tick: u64,
}

impl HotKeyCache {
    /// An empty cache holding at most `capacity` sketches. Capacity 0
    /// disables caching: every lookup misses and nothing is stored.
    pub fn new(capacity: usize) -> HotKeyCache {
        HotKeyCache {
            capacity,
            version: 0,
            entries: HashMap::new(),
            tick: 0,
        }
    }

    /// Number of cached sketches.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reconcile with the serving view's current version: if it moved,
    /// drop everything. Returns the number of entries invalidated.
    pub fn sync_version(&mut self, version: u64) -> usize {
        if version == self.version {
            return 0;
        }
        self.version = version;
        let dropped = self.entries.len();
        self.entries.clear();
        dropped
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<&QuantileSketch> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(key)?;
        entry.0 = tick;
        Some(&entry.1)
    }

    /// Insert a decoded sketch, evicting the least-recently-used entry
    /// if the cache is full. Returns the number of evictions (0 or 1;
    /// always 0 at capacity 0, where nothing is stored at all).
    pub fn insert(&mut self, key: String, sketch: QuantileSketch) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        self.tick += 1;
        let mut evicted = 0;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            // Ties on the tick cannot happen (every touch increments it),
            // so the victim — and therefore the cache's whole behaviour —
            // is deterministic for a fixed lookup sequence.
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
                evicted = 1;
            }
        }
        self.entries.insert(key, (self.tick, sketch));
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch(v: f64) -> QuantileSketch {
        QuantileSketch::from_values(&[v])
    }

    #[test]
    fn lru_evicts_the_coldest_key() {
        let mut cache = HotKeyCache::new(2);
        assert_eq!(cache.insert("a".into(), sketch(1.0)), 0);
        assert_eq!(cache.insert("b".into(), sketch(2.0)), 0);
        assert!(cache.get("a").is_some()); // "b" is now coldest
        assert_eq!(cache.insert("c".into(), sketch(3.0)), 1);
        assert!(cache.get("b").is_none(), "coldest key evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinserting_a_cached_key_never_evicts() {
        let mut cache = HotKeyCache::new(2);
        cache.insert("a".into(), sketch(1.0));
        cache.insert("b".into(), sketch(2.0));
        assert_eq!(
            cache.insert("a".into(), sketch(9.0)),
            0,
            "overwrite in place"
        );
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a").unwrap().max(), Some(9.0));
    }

    #[test]
    fn version_change_drops_everything() {
        let mut cache = HotKeyCache::new(4);
        cache.insert("a".into(), sketch(1.0));
        cache.insert("b".into(), sketch(2.0));
        assert_eq!(cache.sync_version(0), 0, "same version keeps entries");
        assert_eq!(cache.sync_version(3), 2, "new version invalidates all");
        assert!(cache.is_empty());
        assert_eq!(cache.sync_version(3), 0);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut cache = HotKeyCache::new(0);
        assert_eq!(cache.insert("a".into(), sketch(1.0)), 0);
        assert!(cache.get("a").is_none());
        assert!(cache.is_empty());
    }
}
