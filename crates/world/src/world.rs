//! The [`World`]: one handle over the whole synthetic platform.

use crate::latency::SharedEvent;
use crate::population::PopulationModel;
use crate::sessions::{generate_timeline, TruthStream};
use crate::streamer::Streamer;
use crate::twitch::{RateLimiter, TwitchSim};
use tero_geoparse::{Gazetteer, PlaceKind, SocialProfile};
use tero_types::{GameId, Location, SimDuration, SimRng, SimTime, StreamerId};

/// Configuration of a synthetic world.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed — the whole world is a pure function of this.
    pub seed: u64,
    /// Number of organically placed streamers.
    pub n_streamers: usize,
    /// Data-set length in days.
    pub days: u64,
    /// Pinned populations: force `count` streamers at `location` whose
    /// main game is `game` (used by the Figs 9–12 regenerators, which need
    /// 50 League players in specific places).
    pub pinned: Vec<(Location, GameId, usize)>,
    /// Number of regional shared-anomaly events to scatter over the run.
    pub shared_events: usize,
    /// Optional release-day surge: `(game, start_day)` — five days of
    /// frequent world-wide events for one game (§4.2.3's Nov-16 anecdote).
    pub release_event: Option<(GameId, u64)>,
    /// Twitch API request budget per minute.
    pub api_budget_per_min: u32,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 1,
            n_streamers: 200,
            days: 14,
            pinned: Vec::new(),
            shared_events: 10,
            release_event: None,
            api_budget_per_min: 800,
        }
    }
}

/// The built world: ground truth plus the platform view over it.
pub struct World {
    /// The gazetteer used everywhere.
    pub gaz: Gazetteer,
    /// The configuration the world was built from.
    pub config: WorldConfig,
    /// The platform simulator (API + CDN).
    pub twitch: TwitchSim,
    /// All shared-anomaly events (ground truth).
    pub shared_events: Vec<SharedEvent>,
    /// The public social-media directory (Twitter + Steam profiles of
    /// everyone who has one — what the location module searches).
    pub social_directory: Vec<SocialProfile>,
    /// End of the data-set.
    pub horizon: SimTime,
}

impl World {
    /// Build a world. Deterministic in `config.seed`.
    pub fn build(config: WorldConfig) -> World {
        let gaz = Gazetteer::new();
        let mut rng = SimRng::new(config.seed);
        let horizon = SimTime::from_hours(24 * config.days);
        let population = PopulationModel::new(&gaz);

        // Streamers: pinned first, then organic. Usernames are unique on
        // the platform (Twitch enforces this).
        let mut streamers: Vec<Streamer> = Vec::new();
        let mut taken: std::collections::HashSet<String> = std::collections::HashSet::new();
        let unique = |s: Streamer,
                      taken: &mut std::collections::HashSet<String>,
                      rng: &mut SimRng,
                      gaz: &Gazetteer,
                      horizon: SimTime|
         -> Streamer {
            let mut s = s;
            while !taken.insert(s.id.as_str().to_string()) {
                let home = s.home.clone();
                s = Streamer::generate(gaz, home, horizon, rng);
            }
            s
        };
        for (loc, game, count) in &config.pinned {
            let place = gaz
                .resolve(loc)
                .unwrap_or_else(|| panic!("pinned location {loc} not in gazetteer"))
                .clone();
            for _ in 0..*count {
                // City-level home: if the pin is coarser than a city, keep
                // the resolved place (its centre/radius represent the
                // region).
                let mut s = Streamer::generate(&gaz, place.clone(), horizon, &mut rng);
                if let Some(pos) = s.games.iter().position(|&g| g == *game) {
                    s.games.swap(0, pos);
                } else {
                    s.games.insert(0, *game);
                    s.games.truncate(3);
                    // Regenerate behaviour for the adjusted game list.
                    s.behavior = s
                        .games
                        .iter()
                        .map(|&g| crate::streamer::Behavior::for_game(g, &mut rng))
                        .collect();
                }
                // Pinned streamers should not move away mid-data-set.
                s.second_home = None;
                s.net_second = None;
                let s = unique(s, &mut taken, &mut rng, &gaz, horizon);
                streamers.push(s);
            }
        }
        for _ in 0..config.n_streamers {
            let home = population.sample(&mut rng).clone();
            let s = Streamer::generate(&gaz, home, horizon, &mut rng);
            let s = unique(s, &mut taken, &mut rng, &gaz, horizon);
            streamers.push(s);
        }

        // Shared events: random {region of an actual streamer, game}.
        let mut shared_events = Vec::new();
        if !streamers.is_empty() {
            for _ in 0..config.shared_events {
                let s = &streamers[rng.range_usize(0, streamers.len())];
                let game = *rng.choose(&s.games);
                let region = s.home.location.to_region_level();
                let start = SimTime::from_micros(rng.below(horizon.as_micros().max(1)));
                let duration = SimDuration::from_mins(10 + rng.below(40));
                shared_events.push(SharedEvent {
                    game,
                    region: Some(region),
                    start,
                    end: start + duration,
                    magnitude_ms: 25.0 + rng.f64() * 70.0,
                });
            }
        }
        // Release-day surge: five days of frequent world-wide events.
        if let Some((game, start_day)) = config.release_event {
            for day in start_day..(start_day + 5).min(config.days) {
                for _ in 0..30 {
                    let start =
                        SimTime::from_hours(24 * day) + SimDuration::from_secs(rng.below(86_400));
                    shared_events.push(SharedEvent {
                        game,
                        region: None,
                        start,
                        end: start + SimDuration::from_mins(10 + rng.below(25)),
                        magnitude_ms: 30.0 + rng.f64() * 60.0,
                    });
                }
            }
        }
        shared_events.sort_by_key(|e| e.start);

        // Timelines.
        let timelines: Vec<Vec<TruthStream>> = streamers
            .iter()
            .map(|s| generate_timeline(s, &gaz, &shared_events, horizon, &mut rng))
            .collect();

        // Social directory (shuffled so order leaks nothing). Movers who
        // have already relocated by the end of the data-set advertise
        // their *new* home in their profile (§3.1.1: streamers do update
        // their location) — so measurements taken before the move get
        // attributed to the new location, the contamination §3.1.2's
        // cluster-rejection option screens.
        let mut social_directory: Vec<SocialProfile> = streamers
            .iter()
            .flat_map(|s| {
                let mut profiles: Vec<SocialProfile> =
                    s.twitter.iter().chain(s.steam.iter()).cloned().collect();
                if let Some((second, move_at)) = &s.second_home {
                    if *move_at < horizon {
                        for p in &mut profiles {
                            if p.location_field.is_some() {
                                let style = crate::textgen::TwitterFieldStyle::CityRegion;
                                p.location_field =
                                    Some(crate::textgen::twitter_field(style, second, &mut rng));
                            }
                        }
                    }
                }
                profiles
            })
            .collect();
        // ~1 % of streamers also have a *fan/impersonator* profile under
        // their username with an explicit link to them but a wrong
        // location — the source of the paper's 1.6 % mapping errors.
        for s in &streamers {
            if rng.chance(0.01) {
                let wrong_home = gaz
                    .places()
                    .iter()
                    .filter(|p| p.kind == PlaceKind::City && p.location != s.home.location)
                    .nth(rng.range_usize(0, 40))
                    .cloned();
                if let Some(place) = wrong_home {
                    social_directory.push(SocialProfile {
                        platform: tero_geoparse::profiles::SocialPlatform::Steam,
                        username: s.id.as_str().to_string(),
                        location_field: Some(place.location.country.clone()),
                        bio: format!("fan of twitch.tv/{}", s.id.as_str()),
                        links_to_twitch: Some(s.id.as_str().to_string()),
                    });
                }
            }
        }
        rng.shuffle(&mut social_directory);

        let twitch = TwitchSim {
            streamers,
            timelines,
            limiter: RateLimiter::new(config.api_budget_per_min),
            chaos: None,
        };

        World {
            gaz,
            config,
            twitch,
            shared_events,
            social_directory,
            horizon,
        }
    }

    /// Install a deterministic fault injector on the platform simulator.
    /// API and CDN calls consult it from then on; the injector is also
    /// what the stores and the download module should share (clone it).
    pub fn install_chaos(&mut self, injector: tero_chaos::ChaosInjector) {
        self.twitch.install_chaos(injector);
    }

    /// The installed fault injector, if any.
    pub fn chaos(&self) -> Option<&tero_chaos::ChaosInjector> {
        self.twitch.chaos()
    }

    /// All streamers (ground truth).
    pub fn streamers(&self) -> &[Streamer] {
        &self.twitch.streamers
    }

    /// Ground-truth timelines, parallel to [`World::streamers`].
    pub fn timelines(&self) -> &[Vec<TruthStream>] {
        &self.twitch.timelines
    }

    /// Look up a streamer by username.
    pub fn streamer(&self, id: &StreamerId) -> Option<&Streamer> {
        self.twitch.streamers.iter().find(|s| &s.id == id)
    }

    /// Ground-truth location (city granularity) of a streamer at `t`.
    pub fn truth_location(&self, id: &StreamerId, t: SimTime) -> Option<Location> {
        self.streamer(id).map(|s| s.location_at(t).location.clone())
    }

    /// Total ground-truth thumbnail instants across the world.
    pub fn total_samples(&self) -> usize {
        self.twitch
            .timelines
            .iter()
            .flat_map(|tl| tl.iter())
            .map(|s| s.samples.len())
            .sum()
    }

    /// A helper city pin for tests and benches: resolve a named city.
    pub fn city(gaz: &Gazetteer, name: &str) -> Location {
        gaz.lookup_kind(name, PlaceKind::City)
            .first()
            .map(|p| p.location.clone())
            .unwrap_or_else(|| panic!("city {name} not in gazetteer"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_world() {
        let world = World::build(WorldConfig {
            seed: 42,
            n_streamers: 30,
            days: 7,
            ..WorldConfig::default()
        });
        assert_eq!(world.streamers().len(), 30);
        assert!(world.total_samples() > 200, "{}", world.total_samples());
        assert!(!world.social_directory.is_empty());
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = WorldConfig {
            seed: 7,
            n_streamers: 10,
            days: 3,
            ..WorldConfig::default()
        };
        let a = World::build(cfg.clone());
        let b = World::build(cfg);
        assert_eq!(a.total_samples(), b.total_samples());
        for (x, y) in a.streamers().iter().zip(b.streamers()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.home.location, y.home.location);
        }
    }

    #[test]
    fn pinned_streamers_get_location_and_game() {
        let gaz = Gazetteer::new();
        let chicago = World::city(&gaz, "Chicago");
        let world = World::build(WorldConfig {
            seed: 3,
            n_streamers: 5,
            days: 3,
            pinned: vec![(chicago.clone(), GameId::LeagueOfLegends, 8)],
            ..WorldConfig::default()
        });
        let pinned: Vec<&Streamer> = world
            .streamers()
            .iter()
            .filter(|s| s.home.location == chicago)
            .collect();
        assert!(pinned.len() >= 8);
        assert!(pinned
            .iter()
            .take(8)
            .all(|s| s.games[0] == GameId::LeagueOfLegends));
    }

    #[test]
    fn api_flow_end_to_end() {
        let mut world = World::build(WorldConfig {
            seed: 11,
            n_streamers: 40,
            days: 3,
            ..WorldConfig::default()
        });
        // Find a time with live streams.
        let mut t = SimTime::from_hours(1);
        let mut listings = Vec::new();
        while t < world.horizon {
            listings = world.twitch.get_streams(t).expect("budget");
            if !listings.is_empty() {
                break;
            }
            t += SimDuration::from_mins(30);
        }
        assert!(!listings.is_empty(), "no live stream found in 3 days");
        let url = &listings[0].thumbnail_url;
        match world.twitch.cdn_get(url, t) {
            crate::twitch::CdnResponse::Thumbnail {
                image,
                generated_at,
                ..
            } => {
                assert_eq!(image.width, tero_vision::scene::THUMB_W);
                assert!(generated_at <= t);
            }
            crate::twitch::CdnResponse::Offline => {
                // Live but first thumbnail not yet posted is possible only
                // within 5 min of stream start; accept but verify the HEAD
                // agrees.
                assert!(world.twitch.cdn_head(url, t).is_none());
            }
            crate::twitch::CdnResponse::TimedOut => {
                unreachable!("no fault injector installed");
            }
        }
        // Unknown URL is offline.
        assert!(matches!(
            world.twitch.cdn_get("cdn://thumbs/nobody", t),
            crate::twitch::CdnResponse::Offline
        ));
    }

    #[test]
    fn release_event_floods_one_game() {
        let world = World::build(WorldConfig {
            seed: 5,
            n_streamers: 10,
            days: 10,
            shared_events: 0,
            release_event: Some((GameId::CodWarzone, 2)),
            ..WorldConfig::default()
        });
        assert!(world.shared_events.len() >= 100);
        assert!(world
            .shared_events
            .iter()
            .all(|e| e.game == GameId::CodWarzone && e.region.is_none()));
        let first = world.shared_events.first().unwrap().start;
        assert!(first >= SimTime::from_hours(48));
    }
}
