//! Similar-latency clusters, static/mobile classification and end-point
//! changes (§3.3.3).

use crate::analysis::anomaly::AnomalyReport;
use crate::analysis::segments::Segment;
use serde::{Deserialize, Serialize};
use tero_types::{AnonId, GameId, LatencySample, SimTime, TeroParams};

/// A similar-latency cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyCluster {
    /// Smallest latency inside the cluster, ms.
    pub min_ms: u32,
    /// Largest latency inside the cluster, ms.
    pub max_ms: u32,
    /// All samples inside the cluster.
    pub samples: Vec<LatencySample>,
    /// Fraction of the streamer's measurements inside the cluster
    /// (for per-location clusters: fraction of streamers).
    pub weight: f64,
}

impl LatencyCluster {
    fn from_segment(seg: &Segment) -> LatencyCluster {
        LatencyCluster {
            min_ms: seg.min_ms(),
            max_ms: seg.max_ms(),
            samples: seg.samples.clone(),
            weight: 0.0,
        }
    }

    /// Whether two clusters must merge: they stay separate only if *all*
    /// their measurements differ by at least `gap` — i.e. they merge when
    /// their value ranges come within `gap` of each other.
    pub fn touches(&self, other: &LatencyCluster, gap: u32) -> bool {
        self.min_ms < other.max_ms.saturating_add(gap)
            && other.min_ms < self.max_ms.saturating_add(gap)
    }

    fn absorb(&mut self, other: LatencyCluster) {
        self.min_ms = self.min_ms.min(other.min_ms);
        self.max_ms = self.max_ms.max(other.max_ms);
        self.samples.extend(other.samples);
        self.weight += other.weight;
    }

    /// Whether a segment's value range falls inside this cluster (used for
    /// end-point-change attribution).
    pub fn contains_segment(&self, seg: &Segment, gap: u32) -> bool {
        seg.min_ms() < self.max_ms.saturating_add(gap)
            && self.min_ms < seg.max_ms().saturating_add(gap)
    }
}

/// Merge a list of clusters under the `touches` criterion until fixpoint.
fn merge_until_stable(mut clusters: Vec<LatencyCluster>, gap: u32) -> Vec<LatencyCluster> {
    loop {
        let mut merged_any = false;
        let mut out: Vec<LatencyCluster> = Vec::with_capacity(clusters.len());
        for c in clusters.drain(..) {
            match out.iter_mut().find(|o| o.touches(&c, gap)) {
                Some(o) => {
                    o.absorb(c);
                    merged_any = true;
                }
                None => out.push(c),
            }
        }
        clusters = out;
        if !merged_any {
            break;
        }
    }
    clusters.sort_by(|a, b| b.weight.partial_cmp(&a.weight).unwrap());
    clusters
}

/// Cluster one streamer's stable segments (spikes were already excluded by
/// the anomaly stage). `merge_gap_ms` is `LatGap` by default; Fig 14
/// sweeps ×0.5 and ×1.5.
pub fn cluster_segments(stable: &[&Segment], merge_gap_ms: u32) -> Vec<LatencyCluster> {
    let total: usize = stable.iter().map(|s| s.len()).sum();
    if total == 0 {
        return vec![];
    }
    let mut clusters: Vec<LatencyCluster> = stable
        .iter()
        .map(|s| {
            let mut c = LatencyCluster::from_segment(s);
            c.weight = s.len() as f64 / total as f64;
            c
        })
        .collect();
    clusters = merge_until_stable(clusters, merge_gap_ms);
    clusters
}

/// One streamer, classified.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifiedStreamer {
    /// Anonymised identity.
    pub anon: AnonId,
    /// Clusters, sorted by weight (descending).
    pub clusters: Vec<LatencyCluster>,
    /// Static: one cluster holds at least `MinWeight` of the measurements.
    pub is_static: bool,
    /// High-quality: spike fraction below `MaxSpikes` (§3.3.3).
    pub high_quality: bool,
}

/// Classify a streamer from their anomaly report (§3.3.3 steps 1–2).
pub fn classify_streamer(
    anon: AnonId,
    report: &AnomalyReport,
    params: &TeroParams,
) -> ClassifiedStreamer {
    let stable: Vec<&Segment> = report
        .stable_segments()
        .into_iter()
        .map(|(_, s)| s)
        .collect();
    let clusters = cluster_segments(&stable, params.lat_gap_ms);
    let is_static = clusters
        .first()
        .is_some_and(|c| c.weight >= params.min_weight);
    let high_quality = report.spike_fraction() <= params.max_spikes && !report.all_unstable;
    ClassifiedStreamer {
        anon,
        clusters,
        is_static,
        high_quality,
    }
}

/// Merge the highest-weight clusters of the *static* streamers of one
/// `{location, game}` (§3.3.3 step 3 / Fig 2). Cluster weights become the
/// fraction of streamers inside each merged cluster.
pub fn merge_location_clusters(
    streamers: &[&ClassifiedStreamer],
    merge_gap_ms: u32,
) -> Vec<LatencyCluster> {
    let statics: Vec<&ClassifiedStreamer> = streamers
        .iter()
        .copied()
        .filter(|s| s.is_static && s.high_quality && !s.clusters.is_empty())
        .collect();
    if statics.is_empty() {
        return vec![];
    }
    let per = 1.0 / statics.len() as f64;
    let tops: Vec<LatencyCluster> = statics
        .iter()
        .map(|s| {
            let mut c = s.clusters[0].clone();
            c.weight = per;
            c
        })
        .collect();
    merge_until_stable(tops, merge_gap_ms)
}

/// The live per-`{location, game}` merged clusters, maintained
/// incrementally by the aggregation stage: each group's
/// [`merge_location_clusters`] output, re-merged only when the group is
/// dirty (membership moved, or a member gained sealed data) and
/// committed under `engine:agg:clusters:*`. The per-window serving
/// refresh screens provisional distributions against these — the
/// canonical cluster picture as of the last committed window — via
/// `reject_outside`.
#[derive(Debug, Clone, Default)]
pub struct OnlineLocationClusters {
    groups: std::collections::BTreeMap<(String, GameId), Vec<LatencyCluster>>,
}

impl OnlineLocationClusters {
    /// Replace the clusters of one `{region-key, game}` group.
    pub fn set(&mut self, location_key: String, game: GameId, clusters: Vec<LatencyCluster>) {
        self.groups.insert((location_key, game), clusters);
    }

    /// Drop a group whose membership vanished.
    pub fn remove(&mut self, location_key: &str, game: GameId) {
        self.groups.remove(&(location_key.to_string(), game));
    }

    /// The current clusters of one group, if maintained.
    pub fn get(&self, location_key: &str, game: GameId) -> Option<&[LatencyCluster]> {
        self.groups
            .get(&(location_key.to_string(), game))
            .map(Vec::as_slice)
    }

    /// Iterate every maintained group in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&(String, GameId), &Vec<LatencyCluster>)> + '_ {
        self.groups.iter()
    }

    /// Number of maintained groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no group is maintained yet.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

/// An end-point change detected for a mobile streamer (§3.3.3 step 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChangeKind {
    /// Within one stream: the streamer joined a different server.
    Server,
    /// Across two streams: possibly a location change.
    PossibleLocation,
}

/// One end-point change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EndPointChange {
    /// When the later segment started.
    pub at: SimTime,
    /// Server vs possible-location change.
    pub kind: ChangeKind,
}

/// Detect end-point changes: consecutive stable segments that fall into
/// different `{location, game}` clusters. A change within one stream is a
/// *server change* (the paper assumes a streamer does not move mid-stream);
/// across streams it is a *possible location change*.
pub fn endpoint_changes(
    report: &AnomalyReport,
    location_clusters: &[LatencyCluster],
    gap: u32,
) -> Vec<EndPointChange> {
    let stable = report.stable_segments();
    let mut out = Vec::new();
    for pair in stable.windows(2) {
        let (_, a) = pair[0];
        let (_, b) = pair[1];
        let cluster_of = |seg: &Segment| {
            location_clusters
                .iter()
                .position(|c| c.contains_segment(seg, gap))
        };
        let (ca, cb) = (cluster_of(a), cluster_of(b));
        if let (Some(ca), Some(cb)) = (ca, cb) {
            if ca != cb {
                let kind = if a.stream_idx == b.stream_idx {
                    ChangeKind::Server
                } else {
                    ChangeKind::PossibleLocation
                };
                let at = b.samples.first().map(|s| s.at).unwrap_or_default();
                out.push(EndPointChange { at, kind });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::anomaly::detect_anomalies;
    use crate::analysis::segments::segment_stream;
    use tero_types::{LatencySample, SimTime};

    fn seg(values: &[u32], stream_idx: usize) -> Vec<Segment> {
        let samples: Vec<LatencySample> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                LatencySample::new(
                    SimTime::from_mins(5 * (i as u64 + 100 * stream_idx as u64)),
                    v,
                )
            })
            .collect();
        segment_stream(stream_idx, &samples, &TeroParams::default())
    }

    #[test]
    fn nearby_segments_merge() {
        let s1 = seg(&[40; 8], 0);
        let s2 = seg(&[50; 8], 0);
        let stable: Vec<&Segment> = s1.iter().chain(s2.iter()).collect();
        let clusters = cluster_segments(&stable, 15);
        assert_eq!(
            clusters.len(),
            1,
            "ranges 40..40 and 50..50 touch at gap 15"
        );
        assert!((clusters[0].weight - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distant_segments_stay_separate() {
        let s1 = seg(&[40; 12], 0);
        let s2 = seg(&[90; 6], 0);
        let stable: Vec<&Segment> = s1.iter().chain(s2.iter()).collect();
        let clusters = cluster_segments(&stable, 15);
        assert_eq!(clusters.len(), 2);
        // Sorted by weight: the 12-point cluster first.
        assert!((clusters[0].weight - 12.0 / 18.0).abs() < 1e-9);
        assert_eq!(clusters[0].min_ms, 40);
        assert_eq!(clusters[1].min_ms, 90);
    }

    #[test]
    fn transitive_chain_merges() {
        // 40, 52, 64: consecutive pairs within gap, ends not.
        let s1 = seg(&[40; 6], 0);
        let s2 = seg(&[52; 6], 0);
        let s3 = seg(&[64; 6], 0);
        let stable: Vec<&Segment> = s1.iter().chain(s2.iter()).chain(s3.iter()).collect();
        let clusters = cluster_segments(&stable, 15);
        assert_eq!(clusters.len(), 1, "chain merging is transitive");
        assert_eq!(clusters[0].min_ms, 40);
        assert_eq!(clusters[0].max_ms, 64);
    }

    #[test]
    fn merge_factor_changes_granularity() {
        // Fig 14: with ×0.5 gap the 40/52 pair separates.
        let s1 = seg(&[40; 6], 0);
        let s2 = seg(&[52; 6], 0);
        let stable: Vec<&Segment> = s1.iter().chain(s2.iter()).collect();
        assert_eq!(cluster_segments(&stable, 15).len(), 1);
        assert_eq!(cluster_segments(&stable, 7).len(), 2);
        assert_eq!(cluster_segments(&stable, 22).len(), 1);
    }

    #[test]
    fn static_vs_mobile_classification() {
        let params = TeroParams::default();
        // Static: 90 % of measurements in one level.
        let mut vals = vec![40u32; 27];
        vals.extend([90u32; 3].iter()); // 10 % elsewhere — but 3 points is unstable → not clustered
        let report = detect_anomalies(seg(&vals, 0), &params);
        let c = classify_streamer(AnonId(1), &report, &params);
        assert!(c.is_static);
        assert!(c.high_quality);

        // Mobile: 50/50 split between two levels (both stable).
        let mut vals = vec![40u32; 10];
        vals.extend([90u32; 10].iter());
        let report = detect_anomalies(seg(&vals, 0), &params);
        let c = classify_streamer(AnonId(2), &report, &params);
        assert!(!c.is_static);
        assert_eq!(c.clusters.len(), 2);
    }

    #[test]
    fn location_cluster_merge_weights_are_streamer_fractions() {
        let params = TeroParams::default();
        let mk = |level: u32, id: u64| {
            let report = detect_anomalies(seg(&[level; 12], 0), &params);
            classify_streamer(AnonId(id), &report, &params)
        };
        let streamers = [mk(40, 1), mk(42, 2), mk(44, 3), mk(90, 4)];
        let refs: Vec<&ClassifiedStreamer> = streamers.iter().collect();
        let clusters = merge_location_clusters(&refs, 15);
        assert_eq!(clusters.len(), 2);
        assert!((clusters[0].weight - 0.75).abs() < 1e-9);
        assert!((clusters[1].weight - 0.25).abs() < 1e-9);
    }

    #[test]
    fn mobile_only_streamers_yield_no_location_clusters() {
        let params = TeroParams::default();
        let mut vals = vec![40u32; 10];
        vals.extend([90u32; 10].iter());
        let report = detect_anomalies(seg(&vals, 0), &params);
        let c = classify_streamer(AnonId(9), &report, &params);
        let refs = [&c];
        assert!(merge_location_clusters(&refs, 15).is_empty());
    }

    #[test]
    fn endpoint_change_kinds() {
        let params = TeroParams::default();
        // Two stable levels inside ONE stream → server change.
        let mut vals = vec![40u32; 10];
        vals.extend([90u32; 10].iter());
        let report = detect_anomalies(seg(&vals, 0), &params);
        let clusters = vec![
            LatencyCluster {
                min_ms: 35,
                max_ms: 45,
                samples: vec![],
                weight: 0.5,
            },
            LatencyCluster {
                min_ms: 85,
                max_ms: 95,
                samples: vec![],
                weight: 0.5,
            },
        ];
        let changes = endpoint_changes(&report, &clusters, 5);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].kind, ChangeKind::Server);

        // Same two levels in DIFFERENT streams → possible location change.
        let mut segs = seg(&[40u32; 10], 0);
        segs.extend(seg(&[90u32; 10], 1));
        let report = detect_anomalies(segs, &params);
        let changes = endpoint_changes(&report, &clusters, 5);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].kind, ChangeKind::PossibleLocation);
    }
}
