//! Combining tool outputs (§3.1, App. D.2, App. D.3).
//!
//! Tero accepts a location when (1) a tool's output passes the conservative
//! filter, (2) at least two tools agree, or (3) one tool's output is a more
//! general location compatible with another's (subsumption) — in which case
//! the more complete output wins.

use crate::filter::conservative_filter;
use crate::gazetteer::Gazetteer;
use crate::tools::{GeoTool, ToolKind};
use tero_types::Location;

/// Process a Twitch description (App. D.2): CLIFF + Xponents + Mordecai,
/// conservative filter, 2-of-3 agreement, subsumption.
pub fn combine_twitch_description(gaz: &Gazetteer, text: &str) -> Option<Location> {
    let cliff = GeoTool::new(ToolKind::Cliff, gaz).extract(text);
    let xponents = GeoTool::new(ToolKind::Xponents, gaz).extract(text);
    let mordecai = GeoTool::new(ToolKind::Mordecai, gaz).extract(text);

    // Step 2: conservative filter on CLIFF's and Xponents' output.
    for out in cliff.iter().chain(xponents.iter()) {
        if conservative_filter(gaz, text, out) {
            return Some(out.clone());
        }
    }

    // Step 3: at least two of the three tools agree. Mordecai contributes
    // each of its candidates as a vote.
    let votes: Vec<&Location> = cliff
        .iter()
        .chain(xponents.iter())
        .chain(mordecai.iter())
        .collect();
    for (i, a) in votes.iter().enumerate() {
        for b in votes.iter().skip(i + 1) {
            if a == b {
                return Some((*a).clone());
            }
        }
    }

    // Step 4: subsumption — one output more complete than another.
    for (i, a) in votes.iter().enumerate() {
        for b in votes.iter().skip(i + 1) {
            if let Some(more) = a.more_complete(b) {
                if more != *a || more != *b {
                    return Some(more.clone());
                }
            }
        }
    }
    None
}

/// Process a Twitter location field (App. D.3): Nominatim + GeoNames; if
/// they agree or one subsumes the other, accept the more complete output;
/// otherwise fall back to processing the field as a Twitch description.
pub fn combine_twitter_location(gaz: &Gazetteer, field: &str) -> Option<Location> {
    let nominatim = GeoTool::new(ToolKind::Nominatim, gaz).extract(field);
    let geonames = GeoTool::new(ToolKind::GeoNames, gaz).extract(field);

    match (nominatim.first(), geonames.first()) {
        (Some(a), Some(b)) => {
            if a == b {
                return Some(a.clone());
            }
            if let Some(more) = a.more_complete(b) {
                return Some(more.clone());
            }
            // Disagreement: process as unstructured text (the paper's
            // "Your heart, Chicago"路 fallback).
            combine_twitch_description(gaz, field)
        }
        // One tool silent: fall back to the description pipeline rather
        // than trusting a single unconfirmed geoparse.
        _ => combine_twitch_description(gaz, field),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaz() -> Gazetteer {
        Gazetteer::new()
    }

    #[test]
    fn filter_pass_accepts_immediately() {
        let g = gaz();
        let out = combine_twitch_description(&g, "From Miami, Florida").unwrap();
        assert_eq!(out.city.as_deref(), Some("Miami"));
    }

    #[test]
    fn agreement_recovers_filtered_output() {
        // "Join us in Detroit!" fails the filter, but CLIFF, Xponents and
        // Mordecai all output Detroit → 2-of-3 agreement accepts it.
        let g = gaz();
        let out = combine_twitch_description(&g, "Join us in Detroit!").unwrap();
        assert_eq!(out.city.as_deref(), Some("Detroit"));
    }

    #[test]
    fn no_location_yields_none() {
        let g = gaz();
        assert!(combine_twitch_description(&g, "pro gamer, 3k elo, road to top 500").is_none());
        assert!(combine_twitter_location(&g, "the moon").is_none());
    }

    #[test]
    fn twitter_field_comma_pattern() {
        let g = gaz();
        let out = combine_twitter_location(&g, "Barcelona, Spain").unwrap();
        assert_eq!(out.city.as_deref(), Some("Barcelona"));
        assert_eq!(out.country, "Spain");
    }

    #[test]
    fn twitter_field_nongeo_fluff() {
        let g = gaz();
        // The paper's example: "Your heart, Chicago" — geoparser + fallback
        // should land on Chicago.
        let out = combine_twitter_location(&g, "Your heart, Chicago").unwrap();
        assert_eq!(out.city.as_deref(), Some("Chicago"));
    }

    #[test]
    fn subsumption_prefers_more_complete() {
        let g = gaz();
        // "Los Angeles" + "California" in one text: one tool may output the
        // region, another the city; the city (more complete) should win
        // via filter (California present) or subsumption.
        let out = combine_twitch_description(&g, "Los Angeles, California based streamer").unwrap();
        assert_eq!(out.city.as_deref(), Some("Los Angeles"));
        assert_eq!(out.region.as_deref(), Some("California"));
    }
}
