//! Sample provenance: the drop ledger.
//!
//! Every latency sample that enters the pipeline (one per stored
//! thumbnail) gets a lineage record keyed by `(anon id, game, capture
//! time)`. As the funnel narrows, each stage resolves its casualties with
//! a typed [`DropReason`]; whatever reaches a published `{location, game}`
//! distribution is resolved as [`SampleState::Published`]. At the end of a
//! run [`Ledger::reconcile`] proves — against the live
//! [`tero_obs::Registry`] — that every ingested sample is accounted for
//! and that the ledger's totals equal the `pipeline.funnel.*` counters
//! exactly.
//!
//! The ledger is deliberately *always on* (unlike spans, which are gated
//! behind [`crate::Tracer::set_enabled`]): provenance is an accounting
//! invariant, not a debugging aid, and keeping it on means the
//! reconciliation check runs in every test and chaos run.
//!
//! ## Caveats (documented, asserted nowhere else)
//!
//! * `reject_outside_clusters` (Appendix C's stricter filter) is off by
//!   default and not modeled as a distinct reason; runs that enable it
//!   should expect `reconcile` mismatches.
//! * Shared-anomaly detection (§6) is detection-only in this pipeline —
//!   it annotates groups but never removes samples, so it contributes no
//!   drops.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use tero_obs::Registry;
use tero_types::{AnonId, GameId, SimTime};

/// Identity of one latency sample: who, which game, when captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SampleKey {
    /// Anonymized streamer id.
    pub anon: AnonId,
    /// Game the thumbnail came from.
    pub game: GameId,
    /// Simulated capture time of the thumbnail.
    pub at: SimTime,
}

/// Why a sample left the funnel before publication.
///
/// Each variant mirrors one `pipeline.funnel.dropped.*` counter; the
/// mapping is [`DropReason::metric_name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DropReason {
    /// The thumbnail never yielded an image (CDN fault → dead-letter queue).
    DeadLetter,
    /// OCR could not read a latency value (unreadable HUD or vote
    /// confusion between engines).
    OcrUnreadable,
    /// Removed by per-stream cleaning as an OCR glitch (§3.3).
    Glitch,
    /// Removed by per-stream cleaning as a latency spike (§3.3).
    Spike,
    /// The whole stream was too unstable to keep any segment (§3.3).
    Unstable,
    /// The streamer's profile never produced a location (App. D).
    GeoparseMiss,
    /// The sample survived cleaning but fell outside every latency
    /// cluster used for location distributions (§5).
    NotClustered,
    /// Mobile streamer: sample belongs to a below-top-weight cluster
    /// filtered by the `MinWeight` rule (§5).
    MinWeight,
    /// The streamer had a possible location change and was excluded as a
    /// mover from group distributions (§5).
    LocationChange,
    /// The stream failed the quality gate (spike fraction too high or all
    /// segments unstable), so none of its samples are published.
    LowQuality,
    /// The `{location, game}` group had fewer contributors than
    /// `min_streamers`, so its distribution was withheld (§7).
    GroupTooSmall,
}

impl DropReason {
    /// Every reason, in ledger/display order.
    pub const ALL: [DropReason; 11] = [
        DropReason::DeadLetter,
        DropReason::OcrUnreadable,
        DropReason::Glitch,
        DropReason::Spike,
        DropReason::Unstable,
        DropReason::GeoparseMiss,
        DropReason::NotClustered,
        DropReason::MinWeight,
        DropReason::LocationChange,
        DropReason::LowQuality,
        DropReason::GroupTooSmall,
    ];

    /// The `pipeline.funnel.dropped.*` counter this reason reconciles
    /// against.
    pub fn metric_name(self) -> &'static str {
        match self {
            DropReason::DeadLetter => "pipeline.funnel.dropped.dead_letter",
            DropReason::OcrUnreadable => "pipeline.funnel.dropped.ocr_unreadable",
            DropReason::Glitch => "pipeline.funnel.dropped.glitch",
            DropReason::Spike => "pipeline.funnel.dropped.spike",
            DropReason::Unstable => "pipeline.funnel.dropped.unstable",
            DropReason::GeoparseMiss => "pipeline.funnel.dropped.geoparse_miss",
            DropReason::NotClustered => "pipeline.funnel.dropped.not_clustered",
            DropReason::MinWeight => "pipeline.funnel.dropped.min_weight",
            DropReason::LocationChange => "pipeline.funnel.dropped.location_change",
            DropReason::LowQuality => "pipeline.funnel.dropped.low_quality",
            DropReason::GroupTooSmall => "pipeline.funnel.dropped.group_too_small",
        }
    }

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            DropReason::DeadLetter => "dead-letter",
            DropReason::OcrUnreadable => "OCR unreadable",
            DropReason::Glitch => "glitch removed",
            DropReason::Spike => "spike removed",
            DropReason::Unstable => "stream unstable",
            DropReason::GeoparseMiss => "geoparse miss",
            DropReason::NotClustered => "outside clusters",
            DropReason::MinWeight => "MinWeight filter",
            DropReason::LocationChange => "possible mover",
            DropReason::LowQuality => "low-quality stream",
            DropReason::GroupTooSmall => "group too small",
        }
    }

    /// Position of this reason in [`DropReason::ALL`] — a stable index
    /// callers can use to keep per-reason counter arrays aligned with the
    /// ledger's books.
    pub fn index(self) -> usize {
        DropReason::ALL
            .iter()
            .position(|r| *r == self)
            .expect("reason listed in ALL")
    }
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Final state of one sample's lineage record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SampleState {
    /// Ingested, not yet resolved.
    Pending,
    /// Contributed to at least one published distribution.
    Published,
    /// Dropped with a typed reason.
    Dropped(DropReason),
}

struct LedgerState {
    /// One record per ingested sample, in ingest order.
    records: Vec<(SampleKey, SampleState)>,
    /// Pending record indices by key; a queue because duplicate keys are
    /// legal (the same streamer can be polled twice in one minute) and
    /// must resolve FIFO.
    open: BTreeMap<SampleKey, VecDeque<usize>>,
    /// Resolutions that matched no pending record — always a bug.
    unmatched: u64,
}

/// The sample-provenance ledger. Thread-safe and cheap to share.
pub struct Ledger {
    state: Mutex<LedgerState>,
}

impl Default for Ledger {
    fn default() -> Self {
        Ledger::new()
    }
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Ledger {
            state: Mutex::new(LedgerState {
                records: Vec::new(),
                open: BTreeMap::new(),
                unmatched: 0,
            }),
        }
    }

    /// Forget everything (fresh pipeline run).
    pub fn reset(&self) {
        let mut s = self.state.lock();
        s.records.clear();
        s.open.clear();
        s.unmatched = 0;
    }

    /// Record a sample entering the pipeline.
    pub fn ingest(&self, key: SampleKey) {
        let mut s = self.state.lock();
        let idx = s.records.len();
        s.records.push((key, SampleState::Pending));
        s.open.entry(key).or_default().push_back(idx);
    }

    /// Resolve the oldest pending record for `key` to `state`. Returns
    /// `false` (and counts an unmatched resolution) if no pending record
    /// exists for the key.
    pub fn resolve(&self, key: &SampleKey, state: SampleState) -> bool {
        let mut s = self.state.lock();
        let idx = match s.open.get_mut(key) {
            Some(q) => match q.pop_front() {
                Some(idx) => {
                    if q.is_empty() {
                        s.open.remove(key);
                    }
                    idx
                }
                None => {
                    s.open.remove(key);
                    s.unmatched += 1;
                    return false;
                }
            },
            None => {
                s.unmatched += 1;
                return false;
            }
        };
        s.records[idx].1 = state;
        true
    }

    /// Number of ingested samples.
    pub fn len(&self) -> usize {
        self.state.lock().records.len()
    }

    /// Whether the ledger has no records.
    pub fn is_empty(&self) -> bool {
        self.state.lock().records.is_empty()
    }

    /// Copy of every lineage record, in ingest order.
    pub fn records(&self) -> Vec<(SampleKey, SampleState)> {
        self.state.lock().records.clone()
    }

    /// The fates of every record for `key`, in ingest order (empty if the
    /// sample never entered the pipeline).
    pub fn fate(&self, key: &SampleKey) -> Vec<SampleState> {
        self.state
            .lock()
            .records
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, s)| *s)
            .collect()
    }

    /// Aggregate totals.
    pub fn summary(&self) -> LedgerSummary {
        let s = self.state.lock();
        let mut out = LedgerSummary {
            ingested: s.records.len() as u64,
            unmatched: s.unmatched,
            ..LedgerSummary::default()
        };
        for (_, state) in &s.records {
            match state {
                SampleState::Pending => out.unresolved += 1,
                SampleState::Published => out.published += 1,
                SampleState::Dropped(r) => out.dropped[r.index()] += 1,
            }
        }
        out
    }

    /// Prove the ledger agrees with the `pipeline.funnel.*` counters in
    /// `registry` (and the legacy `pipeline.*` / `analysis.*` counters
    /// they shadow). Returns the summary on success; on failure, every
    /// mismatch found.
    pub fn reconcile(&self, registry: &Registry) -> Result<LedgerSummary, ReconcileError> {
        let summary = self.summary();
        let snap = registry.snapshot();
        let mut mismatches = Vec::new();

        // Internal consistency first.
        if summary.unmatched != 0 {
            mismatches.push(format!(
                "{} resolutions matched no pending record",
                summary.unmatched
            ));
        }
        if summary.unresolved != 0 {
            mismatches.push(format!(
                "{} ingested samples were never resolved",
                summary.unresolved
            ));
        }
        if summary.published + summary.total_dropped() + summary.unresolved != summary.ingested {
            mismatches.push(format!(
                "published {} + dropped {} + unresolved {} != ingested {}",
                summary.published,
                summary.total_dropped(),
                summary.unresolved,
                summary.ingested
            ));
        }

        let mut check = |name: &str, expected: u64| {
            let got = snap.counter(name);
            if got != Some(expected) {
                mismatches.push(format!(
                    "{name}: registry has {got:?}, ledger expects {expected}"
                ));
            }
        };

        // Funnel counters must equal the ledger exactly.
        check("pipeline.funnel.ingested", summary.ingested);
        check("pipeline.funnel.published", summary.published);
        for reason in DropReason::ALL {
            check(reason.metric_name(), summary.dropped[reason.index()]);
        }

        // Legacy counters the funnel shadows.
        check("pipeline.thumbnails", summary.ingested);
        check(
            "pipeline.images_missing",
            summary.count(DropReason::DeadLetter),
        );
        check(
            "pipeline.no_measurement",
            summary.count(DropReason::OcrUnreadable),
        );
        check(
            "pipeline.extracted",
            summary.ingested
                - summary.count(DropReason::DeadLetter)
                - summary.count(DropReason::OcrUnreadable),
        );
        check(
            "analysis.points_discarded",
            summary.count(DropReason::Glitch)
                + summary.count(DropReason::Spike)
                + summary.count(DropReason::Unstable),
        );

        if mismatches.is_empty() {
            Ok(summary)
        } else {
            Err(ReconcileError { mismatches })
        }
    }
}

impl std::fmt::Debug for Ledger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let summary = self.summary();
        f.debug_struct("Ledger")
            .field("ingested", &summary.ingested)
            .field("published", &summary.published)
            .field("dropped", &summary.total_dropped())
            .field("unresolved", &summary.unresolved)
            .finish()
    }
}

/// Aggregate ledger totals, one slot per [`DropReason`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerSummary {
    /// Samples ingested.
    pub ingested: u64,
    /// Samples that reached a published distribution.
    pub published: u64,
    /// Samples still pending (must be 0 after a run).
    pub unresolved: u64,
    /// Resolutions that matched no pending record (must be 0, ever).
    pub unmatched: u64,
    /// Drops, indexed in [`DropReason::ALL`] order.
    pub dropped: [u64; 11],
}

impl LedgerSummary {
    /// Total drops across all reasons.
    pub fn total_dropped(&self) -> u64 {
        self.dropped.iter().sum()
    }

    /// Drops for one reason.
    pub fn count(&self, reason: DropReason) -> u64 {
        self.dropped[reason.index()]
    }

    /// Render the funnel as an aligned text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("ingested            {:>8}\n", self.ingested));
        out.push_str(&format!("published           {:>8}\n", self.published));
        for reason in DropReason::ALL {
            out.push_str(&format!(
                "dropped: {:<18} {:>8}\n",
                reason.label(),
                self.count(reason)
            ));
        }
        if self.unresolved > 0 {
            out.push_str(&format!("UNRESOLVED          {:>8}\n", self.unresolved));
        }
        if self.unmatched > 0 {
            out.push_str(&format!("UNMATCHED           {:>8}\n", self.unmatched));
        }
        out
    }
}

/// All mismatches found by a failed [`Ledger::reconcile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconcileError {
    /// One line per mismatch.
    pub mismatches: Vec<String>,
}

impl std::fmt::Display for ReconcileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "ledger/registry reconciliation failed:")?;
        for m in &self.mismatches {
            writeln!(f, "  - {m}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ReconcileError {}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_types::StreamerId;

    fn key(n: u64) -> SampleKey {
        SampleKey {
            anon: AnonId::from_streamer(&StreamerId(format!("s{n}")), 7),
            game: GameId::Dota2,
            at: SimTime::from_secs(n),
        }
    }

    fn funnel_registry(summary: &LedgerSummary) -> Registry {
        let registry = Registry::new();
        registry
            .counter("pipeline.funnel.ingested")
            .add(summary.ingested);
        registry
            .counter("pipeline.funnel.published")
            .add(summary.published);
        for reason in DropReason::ALL {
            registry
                .counter(reason.metric_name())
                .add(summary.count(reason));
        }
        registry
            .counter("pipeline.thumbnails")
            .add(summary.ingested);
        registry
            .counter("pipeline.images_missing")
            .add(summary.count(DropReason::DeadLetter));
        registry
            .counter("pipeline.no_measurement")
            .add(summary.count(DropReason::OcrUnreadable));
        registry.counter("pipeline.extracted").add(
            summary.ingested
                - summary.count(DropReason::DeadLetter)
                - summary.count(DropReason::OcrUnreadable),
        );
        registry.counter("analysis.points_discarded").add(
            summary.count(DropReason::Glitch)
                + summary.count(DropReason::Spike)
                + summary.count(DropReason::Unstable),
        );
        registry
    }

    #[test]
    fn reconcile_accepts_a_consistent_run() {
        let ledger = Ledger::new();
        for n in 0..6 {
            ledger.ingest(key(n));
        }
        ledger.resolve(&key(0), SampleState::Published);
        ledger.resolve(&key(1), SampleState::Published);
        ledger.resolve(&key(2), SampleState::Dropped(DropReason::DeadLetter));
        ledger.resolve(&key(3), SampleState::Dropped(DropReason::OcrUnreadable));
        ledger.resolve(&key(4), SampleState::Dropped(DropReason::Glitch));
        ledger.resolve(&key(5), SampleState::Dropped(DropReason::GroupTooSmall));
        let summary = ledger.summary();
        assert_eq!(summary.ingested, 6);
        assert_eq!(summary.published, 2);
        assert_eq!(summary.total_dropped(), 4);
        let registry = funnel_registry(&summary);
        let reconciled = ledger.reconcile(&registry).expect("consistent");
        assert_eq!(reconciled, summary);
    }

    #[test]
    fn reconcile_flags_counter_mismatch() {
        let ledger = Ledger::new();
        ledger.ingest(key(0));
        ledger.resolve(&key(0), SampleState::Published);
        let registry = funnel_registry(&ledger.summary());
        registry.counter("pipeline.funnel.published").inc(); // skew it
        let err = ledger.reconcile(&registry).unwrap_err();
        assert!(
            err.to_string().contains("pipeline.funnel.published"),
            "{err}"
        );
    }

    #[test]
    fn reconcile_flags_unresolved_and_unmatched() {
        let ledger = Ledger::new();
        ledger.ingest(key(0));
        assert!(!ledger.resolve(&key(9), SampleState::Published));
        let registry = funnel_registry(&ledger.summary());
        let err = ledger.reconcile(&registry).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("never resolved"), "{text}");
        assert!(text.contains("matched no pending record"), "{text}");
    }

    #[test]
    fn duplicate_keys_resolve_fifo() {
        let ledger = Ledger::new();
        ledger.ingest(key(0));
        ledger.ingest(key(0));
        assert!(ledger.resolve(&key(0), SampleState::Dropped(DropReason::Spike)));
        assert!(ledger.resolve(&key(0), SampleState::Published));
        assert!(!ledger.resolve(&key(0), SampleState::Published));
        assert_eq!(
            ledger.fate(&key(0)),
            vec![
                SampleState::Dropped(DropReason::Spike),
                SampleState::Published
            ]
        );
    }

    #[test]
    fn reset_clears_everything() {
        let ledger = Ledger::new();
        ledger.ingest(key(0));
        ledger.reset();
        assert!(ledger.is_empty());
        assert_eq!(ledger.summary(), LedgerSummary::default());
    }

    #[test]
    fn metric_names_are_unique_and_prefixed() {
        let mut names: Vec<&str> = DropReason::ALL.iter().map(|r| r.metric_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), DropReason::ALL.len());
        assert!(names
            .iter()
            .all(|n| n.starts_with("pipeline.funnel.dropped.")));
    }
}
