//! 8-bit grayscale raster images.

use serde::{Deserialize, Serialize};

/// An 8-bit grayscale image. Pixel `(x, y)` lives at `pixels[y * width + x]`;
/// 0 is black, 255 is white.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major pixel data, `width * height` bytes.
    pub pixels: Vec<u8>,
}

impl Image {
    /// A new image filled with the given shade.
    pub fn filled(width: usize, height: usize, shade: u8) -> Self {
        Image {
            width,
            height,
            pixels: vec![shade; width * height],
        }
    }

    /// Pixel at `(x, y)`; panics when out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x]
    }

    /// Pixel at `(x, y)` or `None` when out of bounds.
    #[inline]
    pub fn get_checked(&self, x: usize, y: usize) -> Option<u8> {
        if x < self.width && y < self.height {
            Some(self.pixels[y * self.width + x])
        } else {
            None
        }
    }

    /// Set pixel `(x, y)`; silently ignores out-of-bounds writes (callers
    /// draw shapes that may extend past the edge).
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, shade: u8) {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x] = shade;
        }
    }

    /// Fill the axis-aligned rectangle with corner `(x, y)` and the given
    /// size, clipped to the image.
    pub fn fill_rect(&mut self, x: usize, y: usize, w: usize, h: usize, shade: u8) {
        let x1 = (x + w).min(self.width);
        let y1 = (y + h).min(self.height);
        for yy in y.min(self.height)..y1 {
            for xx in x.min(self.width)..x1 {
                self.pixels[yy * self.width + xx] = shade;
            }
        }
    }

    /// Copy `src` into this image with its top-left corner at `(x, y)`,
    /// clipped to the destination.
    pub fn blit(&mut self, src: &Image, x: usize, y: usize) {
        for sy in 0..src.height {
            let dy = y + sy;
            if dy >= self.height {
                break;
            }
            for sx in 0..src.width {
                let dx = x + sx;
                if dx >= self.width {
                    break;
                }
                self.pixels[dy * self.width + dx] = src.pixels[sy * src.width + sx];
            }
        }
    }

    /// Extract the axis-aligned sub-image with corner `(x, y)` and the given
    /// size, clipped to the image bounds.
    pub fn crop(&self, x: usize, y: usize, w: usize, h: usize) -> Image {
        let x0 = x.min(self.width);
        let y0 = y.min(self.height);
        let x1 = (x + w).min(self.width);
        let y1 = (y + h).min(self.height);
        let (cw, ch) = (x1 - x0, y1 - y0);
        let mut out = Image::filled(cw, ch, 0);
        for yy in 0..ch {
            for xx in 0..cw {
                out.pixels[yy * cw + xx] = self.get(x0 + xx, y0 + yy);
            }
        }
        out
    }

    /// Nearest-neighbour upscale by an integer factor.
    pub fn upscale(&self, factor: usize) -> Image {
        assert!(factor >= 1);
        let mut out = Image::filled(self.width * factor, self.height * factor, 0);
        for y in 0..out.height {
            for x in 0..out.width {
                out.pixels[y * out.width + x] = self.get(x / factor, y / factor);
            }
        }
        out
    }

    /// Mean pixel value (`None` for an empty image).
    pub fn mean(&self) -> Option<f64> {
        if self.pixels.is_empty() {
            return None;
        }
        Some(self.pixels.iter().map(|&p| p as f64).sum::<f64>() / self.pixels.len() as f64)
    }

    /// Count of pixels darker than `threshold` (foreground under dark-on-
    /// light convention).
    pub fn count_below(&self, threshold: u8) -> usize {
        self.pixels.iter().filter(|&&p| p < threshold).count()
    }

    /// Render as ASCII art (dark pixels become `#`), used for the Fig 6
    /// example gallery.
    pub fn to_ascii(&self) -> String {
        let mut s = String::with_capacity((self.width + 1) * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let p = self.get(x, y);
                s.push(match p {
                    0..=63 => '#',
                    64..=127 => '+',
                    128..=191 => '.',
                    _ => ' ',
                });
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = Image::filled(4, 3, 255);
        assert_eq!(img.pixels.len(), 12);
        img.set(2, 1, 0);
        assert_eq!(img.get(2, 1), 0);
        assert_eq!(img.get_checked(3, 2), Some(255));
        assert_eq!(img.get_checked(4, 0), None);
        // Out-of-bounds set is a no-op.
        img.set(100, 100, 7);
    }

    #[test]
    fn fill_rect_clips() {
        let mut img = Image::filled(10, 10, 255);
        img.fill_rect(8, 8, 5, 5, 0);
        assert_eq!(img.get(9, 9), 0);
        assert_eq!(img.get(7, 7), 255);
        assert_eq!(img.count_below(128), 4);
    }

    #[test]
    fn blit_and_crop_roundtrip() {
        let mut small = Image::filled(3, 2, 0);
        small.set(1, 1, 200);
        let mut big = Image::filled(10, 10, 255);
        big.blit(&small, 4, 5);
        let back = big.crop(4, 5, 3, 2);
        assert_eq!(back, small);
    }

    #[test]
    fn crop_clips_to_bounds() {
        let img = Image::filled(5, 5, 9);
        let c = img.crop(3, 3, 10, 10);
        assert_eq!((c.width, c.height), (2, 2));
        let empty = img.crop(10, 10, 2, 2);
        assert_eq!((empty.width, empty.height), (0, 0));
    }

    #[test]
    fn upscale_factor() {
        let mut img = Image::filled(2, 1, 0);
        img.set(1, 0, 255);
        let up = img.upscale(3);
        assert_eq!((up.width, up.height), (6, 3));
        assert_eq!(up.get(0, 0), 0);
        assert_eq!(up.get(5, 2), 255);
        assert_eq!(up.get(2, 1), 0);
        assert_eq!(up.get(3, 1), 255);
    }

    #[test]
    fn stats() {
        let mut img = Image::filled(2, 2, 0);
        img.set(0, 0, 200);
        assert_eq!(img.mean(), Some(50.0));
        assert_eq!(img.count_below(10), 3);
        assert_eq!(Image::filled(0, 0, 0).mean(), None);
    }

    #[test]
    fn ascii_render() {
        let mut img = Image::filled(2, 1, 255);
        img.set(0, 0, 0);
        assert_eq!(img.to_ascii(), "# \n");
    }
}
