//! The partition-tolerant sharded store client.
//!
//! [`ShardedStoreClient`] is the [`RemoteStore`] implementation an
//! engine's store facade plugs into. Each logical operation is:
//!
//! 1. **namespaced** — keys get the engine's `e{i}:` prefix (buckets
//!    likewise), so engines sharing the store mesh never collide;
//! 2. **routed** — the prefixed key's [`consistent_hash`] picks one of
//!    the `M` shards (fan-out operations visit every shard);
//! 3. **executed robustly** — bounded retries with exponential backoff
//!    and deterministic jitter against the shard's *acting* primary,
//!    under a per-shard circuit [`Breaker`];
//! 4. **replicated** — writes land on the primary, then the replica,
//!    so the replica always holds a superset of every engine's writes
//!    (the invariant that makes failover and resync lossless);
//! 5. **failed over** — when the primary is unreachable, the client
//!    promotes the replica under a window-TTL lease and keeps
//!    committing; at lease expiry it probes the primary, resyncs it
//!    from the replica (full raw snapshot → restore), and demotes the
//!    lease.
//!
//! Everything is deterministic: the backoff jitter comes from the
//! client's own seeded [`SimRng`], time is the logical clock of
//! accumulated transfer delays, and fault decisions live in the
//! transport's [`ChaosInjector`](tero_chaos::ChaosInjector). Replaying
//! the same `(plan, seed)` replays the same `net.*` recovery metrics.
//!
//! If the fault plan makes recovery impossible — both replicas of a
//! shard unreachable, or a promotion forced onto a stale replica — the
//! client panics with a clear message rather than silently diverging.

use crate::frame::{decode, encode, Frame, Payload};
use crate::transport::{engine_host, primary_host, replica_host, NetError, SimNet};
use parking_lot::Mutex;
use std::sync::OnceLock;
use tero_obs::{CounterHandle, Registry};
use tero_store::{
    KvRequest, KvResponse, KvSnapshot, ObjRequest, ObjResponse, ObjectSnapshot, RemoteStore,
};
use tero_trace::{Level, SpanGuard, Tracer};
use tero_types::{consistent_hash, SimDuration, SimRng, SimTime};

/// Retry attempts per request before the acting host is declared down.
const MAX_ATTEMPTS: u32 = 4;
/// Attempts for liveness probes (cheaper than full requests).
const PROBE_ATTEMPTS: u32 = 2;
/// Logical time charged when an attempt's deadline expires.
const ATTEMPT_TIMEOUT: SimDuration = SimDuration::from_millis(100);
/// Base of the exponential backoff between attempts.
const BACKOFF_BASE: SimDuration = SimDuration::from_millis(2);
/// Consecutive faults that open a shard's breaker.
const BREAKER_THRESHOLD: u32 = 3;
/// How long an open breaker rejects before allowing a half-open probe.
const BREAKER_COOLDOWN: SimDuration = SimDuration::from_millis(250);
/// Lease TTL in windows: how long a promoted replica acts as primary
/// before the client re-probes the configured primary.
const LEASE_WINDOWS: u64 = 2;
/// Full primary→replica failover sequences attempted before the client
/// declares the fault plan unrecoverable. Random frame loss can exhaust
/// one round's attempt budget on both hosts; only a fault that survives
/// every round is treated as fatal.
const RECOVERY_ROUNDS: u32 = 3;
/// Salt for key-to-shard routing (fixed protocol constant).
const ROUTE_SALT: u64 = 0x7e60_11e7;

/// Deterministic exponential backoff with jitter — the same shape the
/// download module uses: `base * 2^min(attempt-1, 10)` plus a uniform
/// jitter of up to `base`.
fn backoff_delay(base: SimDuration, attempt: u32, rng: &mut SimRng) -> SimDuration {
    let shift = (attempt.saturating_sub(1)).min(10);
    let exp = SimDuration(base.0 << shift);
    exp + SimDuration(rng.below(base.0.max(1)))
}

/// Observable state of a circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are rejected until the cooldown elapses.
    Open,
    /// Cooled down: exactly one probe request may pass; its outcome
    /// closes or re-opens the breaker.
    HalfOpen,
}

/// A circuit breaker over a logical clock: `threshold` consecutive
/// faults open it for `cooldown`, after which a single half-open probe
/// decides between closing it again and another full cooldown.
#[derive(Debug, Clone)]
pub struct Breaker {
    threshold: u32,
    cooldown: SimDuration,
    consecutive_faults: u32,
    open_until: Option<SimTime>,
    probe_in_flight: bool,
}

impl Breaker {
    /// A closed breaker.
    pub fn new(threshold: u32, cooldown: SimDuration) -> Breaker {
        Breaker {
            threshold: threshold.max(1),
            cooldown,
            consecutive_faults: 0,
            open_until: None,
            probe_in_flight: false,
        }
    }

    /// The state an observer at `now` would see.
    pub fn state(&self, now: SimTime) -> BreakerState {
        match self.open_until {
            Some(t) if now < t => BreakerState::Open,
            Some(_) => BreakerState::HalfOpen,
            None if self.probe_in_flight => BreakerState::HalfOpen,
            None => BreakerState::Closed,
        }
    }

    /// May a request pass at `now`? Crossing an elapsed cooldown
    /// converts the breaker to half-open and admits the probe.
    pub fn allows(&mut self, now: SimTime) -> bool {
        match self.open_until {
            Some(t) if now < t => false,
            Some(_) => {
                self.open_until = None;
                self.probe_in_flight = true;
                true
            }
            None => true,
        }
    }

    /// The guarded host answered: close fully.
    pub fn record_success(&mut self) {
        self.consecutive_faults = 0;
        self.open_until = None;
        self.probe_in_flight = false;
    }

    /// The guarded host faulted at `now`. A faulted half-open probe
    /// re-opens immediately; otherwise `threshold` consecutive faults
    /// open the breaker.
    pub fn record_fault(&mut self, now: SimTime) -> BreakerState {
        if self.probe_in_flight {
            self.probe_in_flight = false;
            self.open_until = Some(now + self.cooldown);
            return BreakerState::Open;
        }
        self.consecutive_faults += 1;
        if self.consecutive_faults >= self.threshold {
            self.consecutive_faults = 0;
            self.open_until = Some(now + self.cooldown);
            return BreakerState::Open;
        }
        BreakerState::Closed
    }
}

/// Counter handles for the `net.*` catalogue. Registered eagerly so the
/// metric cross-check sees every name whether or not it fires.
#[derive(Clone)]
pub struct NetMetrics {
    /// Logical store operations issued (`net.requests`).
    pub requests: CounterHandle,
    /// Frames put on the wire, including retries (`net.frames`).
    pub frames: CounterHandle,
    /// Request-frame bytes put on the wire (`net.bytes`).
    pub bytes: CounterHandle,
    /// Attempts that ended in a deadline expiry (`net.timeouts`).
    pub timeouts: CounterHandle,
    /// Re-sent frames after an expired attempt (`net.retries`).
    pub retries: CounterHandle,
    /// Replica promotions under a new lease (`net.failovers`).
    pub failovers: CounterHandle,
    /// Lease TTLs extended because the primary stayed dead
    /// (`net.lease_renewals`).
    pub lease_renewals: CounterHandle,
    /// Full snapshot→restore state copies onto a stale peer
    /// (`net.resyncs`).
    pub resyncs: CounterHandle,
    /// Shard breakers tripped open (`net.breaker_open`).
    pub breaker_open: CounterHandle,
}

impl NetMetrics {
    /// Resolve (and eagerly create) every `net.*` counter.
    pub fn register(registry: &Registry) -> NetMetrics {
        NetMetrics {
            requests: registry.counter("net.requests"),
            frames: registry.counter("net.frames"),
            bytes: registry.counter("net.bytes"),
            timeouts: registry.counter("net.timeouts"),
            retries: registry.counter("net.retries"),
            failovers: registry.counter("net.failovers"),
            lease_renewals: registry.counter("net.lease_renewals"),
            resyncs: registry.counter("net.resyncs"),
            breaker_open: registry.counter("net.breaker_open"),
        }
    }
}

/// Per-shard failover state.
struct ShardState {
    primary: String,
    replica: String,
    /// `Some(w)`: the replica acts as primary until window `w`.
    lease_until: Option<u64>,
    /// The configured primary missed writes made under the lease and
    /// must be resynced before it can lead again.
    primary_stale: bool,
    /// The replica missed a replicated write (it was unreachable while
    /// the primary was healthy) and must be resynced before it can be
    /// promoted.
    replica_stale: bool,
    /// Last window a replica heal was attempted (one probe per window).
    last_heal_window: Option<u64>,
    breaker: Breaker,
}

struct ClientInner {
    /// Monotonic per-client operation sequence (retries reuse it).
    seq: u64,
    /// Logical clock: accumulated transfer / timeout / backoff time.
    clock: SimTime,
    /// Deterministic jitter source.
    rng: SimRng,
    shards: Vec<ShardState>,
}

/// The robust store client of one engine. Shared behind an `Arc` as the
/// [`RemoteStore`] of that engine's KV and object store facades.
pub struct ShardedStoreClient {
    host: String,
    client_id: u64,
    namespace: String,
    net: SimNet,
    metrics: NetMetrics,
    /// Tracer plus this client's derived trace id; first `set_trace`
    /// wins. Absent → no spans, no wire context, zero overhead.
    trace: OnceLock<(Tracer, u64)>,
    inner: Mutex<ClientInner>,
}

/// Point-in-time, client-side health facts about one shard, exposed to
/// the ops layer by [`ShardedStoreClient::shard_views`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardView {
    /// Shard index.
    pub shard: usize,
    /// A failover lease is in effect: the replica is acting primary.
    pub lease_active: bool,
    /// The configured primary missed leased writes and awaits resync.
    pub primary_stale: bool,
    /// The replica missed a replicated write and awaits resync.
    pub replica_stale: bool,
    /// The shard's circuit breaker as seen at the client's clock.
    pub breaker: BreakerState,
}

impl ShardedStoreClient {
    /// Build the client for engine `engine_index` against a mesh of
    /// `shards` primary/replica pairs, with its `net.*` counters in
    /// `registry` and its jitter stream seeded from `seed`.
    pub fn new(
        net: SimNet,
        engine_index: usize,
        shards: usize,
        registry: &Registry,
        seed: u64,
    ) -> ShardedStoreClient {
        assert!(shards > 0, "a sharded client needs at least one shard");
        let shard_states = (0..shards)
            .map(|s| ShardState {
                primary: primary_host(s),
                replica: replica_host(s),
                lease_until: None,
                primary_stale: false,
                replica_stale: false,
                last_heal_window: None,
                breaker: Breaker::new(BREAKER_THRESHOLD, BREAKER_COOLDOWN),
            })
            .collect();
        ShardedStoreClient {
            host: engine_host(engine_index),
            client_id: engine_index as u64,
            namespace: format!("e{engine_index}:"),
            net,
            metrics: NetMetrics::register(registry),
            trace: OnceLock::new(),
            inner: Mutex::new(ClientInner {
                seq: 0,
                clock: SimTime::EPOCH,
                rng: SimRng::new(seed ^ 0x006e_6574_776f_726b_u64 ^ (engine_index as u64) << 32),
                shards: shard_states,
            }),
        }
    }

    /// This client's namespace prefix (`e{i}:`).
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// Number of store shards this client routes across.
    pub fn shard_count(&self) -> usize {
        self.inner.lock().shards.len()
    }

    /// Record this client's operations as `net.*` spans/events in
    /// `tracer`. Each operation's span is stamped into the frame header
    /// as a [`tero_trace::TraceContext`] (trace id derived from the
    /// client id), so server-side handling stitches under it in a
    /// merged mesh trace. First call wins, like `Tracer::instrument`.
    pub fn set_trace(&self, tracer: &Tracer) {
        let trace_id = (self.client_id + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let _ = self.trace.set((tracer.clone(), trace_id));
    }

    /// Per-shard client-side health facts at the current logical clock,
    /// for the ops layer. Read-only: no probes, no clock movement.
    pub fn shard_views(&self) -> Vec<ShardView> {
        let inner = self.inner.lock();
        let now = inner.clock;
        inner
            .shards
            .iter()
            .enumerate()
            .map(|(shard, st)| ShardView {
                shard,
                lease_active: st.lease_until.is_some(),
                primary_stale: st.primary_stale,
                replica_stale: st.replica_stale,
                breaker: st.breaker.state(now),
            })
            .collect()
    }

    /// Open the span for one logical operation, if tracing is attached.
    /// Probes, resyncs and replication legs run *inside* this span —
    /// one span per logical store operation.
    fn op_span(&self, name: &str) -> Option<(SpanGuard, u64)> {
        let (tracer, trace_id) = self.trace.get()?;
        let guard = tracer.span(name);
        guard.is_recording().then_some((guard, *trace_id))
    }

    /// One request/response exchange with bounded retries. `Err` means
    /// the destination never produced a response within the attempt
    /// budget — the caller decides whether that means failover or panic.
    ///
    /// Bumps the client sequence: this is one fresh logical operation.
    fn exchange(
        &self,
        inner: &mut ClientInner,
        to: &str,
        payload: Payload,
        attempts: u32,
    ) -> Result<Payload, NetError> {
        inner.seq += 1;
        let seq = inner.seq;
        let frame = encode(&Frame {
            client: self.client_id,
            seq,
            ctx: None,
            payload,
        });
        self.send_frame(inner, to, &frame, seq, attempts)
    }

    /// Retry an already-encoded frame against one destination. Every
    /// attempt reuses the frame verbatim — same `seq` — so a request
    /// the server applied but whose response was lost is answered from
    /// the server's dedup cache, never re-applied. Failed attempts
    /// charge the deadline plus a deterministic jittered backoff.
    fn send_frame(
        &self,
        inner: &mut ClientInner,
        to: &str,
        frame: &[u8],
        seq: u64,
        attempts: u32,
    ) -> Result<Payload, NetError> {
        let mut last = NetError::FrameLost;
        for attempt in 1..=attempts {
            self.metrics.frames.inc();
            self.metrics.bytes.add(frame.len() as u64);
            let (elapsed, result) = self.net.exchange(&self.host, to, frame);
            inner.clock += elapsed;
            match result {
                Ok(bytes) => {
                    let resp = decode(&bytes).expect("malformed response frame");
                    assert_eq!(resp.seq, seq, "response for a different request");
                    return Ok(resp.payload);
                }
                Err(e) => {
                    last = e;
                    self.metrics.timeouts.inc();
                    inner.clock += ATTEMPT_TIMEOUT;
                    if attempt < attempts {
                        self.metrics.retries.inc();
                        inner.clock += backoff_delay(BACKOFF_BASE, attempt, &mut inner.rng);
                    }
                }
            }
        }
        Err(last)
    }

    /// Copy the full raw state of `from` onto `to` (KV and objects).
    /// Used for both directions of resync; panics if either side is
    /// unreachable, because the caller already established it is not.
    fn resync(&self, inner: &mut ClientInner, from: &str, to: &str) {
        let kv_snap = match self.exchange(
            inner,
            from,
            Payload::KvReq(KvRequest::Snapshot),
            MAX_ATTEMPTS,
        ) {
            Ok(Payload::KvResp(KvResponse::Snapshot(s))) => s,
            other => panic!("resync: KV snapshot from {from} failed: {other:?}"),
        };
        match self.exchange(
            inner,
            to,
            Payload::KvReq(KvRequest::Restore { snapshot: kv_snap }),
            MAX_ATTEMPTS,
        ) {
            Ok(Payload::KvResp(KvResponse::Unit)) => {}
            other => panic!("resync: KV restore onto {to} failed: {other:?}"),
        }
        let obj_snap = match self.exchange(
            inner,
            from,
            Payload::ObjReq(ObjRequest::Snapshot),
            MAX_ATTEMPTS,
        ) {
            Ok(Payload::ObjResp(ObjResponse::Snapshot(s))) => s,
            other => panic!("resync: object snapshot from {from} failed: {other:?}"),
        };
        match self.exchange(
            inner,
            to,
            Payload::ObjReq(ObjRequest::Restore { snapshot: obj_snap }),
            MAX_ATTEMPTS,
        ) {
            Ok(Payload::ObjResp(ObjResponse::Unit)) => {}
            other => panic!("resync: object restore onto {to} failed: {other:?}"),
        }
        self.metrics.resyncs.inc();
    }

    /// At lease expiry, probe the configured primary: if it answers,
    /// resync it from the replica (it missed every write made under the
    /// lease) and demote the lease; otherwise renew the lease.
    fn maybe_reclaim_primary(&self, inner: &mut ClientInner, shard: usize, window: u64) {
        let Some(until) = inner.shards[shard].lease_until else {
            return;
        };
        if window < until {
            return;
        }
        let primary = inner.shards[shard].primary.clone();
        let replica = inner.shards[shard].replica.clone();
        if self
            .exchange(inner, &primary, Payload::Ping, PROBE_ATTEMPTS)
            .is_ok()
        {
            if inner.shards[shard].primary_stale {
                self.resync(inner, &replica, &primary);
            }
            let st = &mut inner.shards[shard];
            st.lease_until = None;
            st.primary_stale = false;
            st.breaker.record_success();
        } else {
            inner.shards[shard].lease_until = Some(window + LEASE_WINDOWS);
            self.metrics.lease_renewals.inc();
        }
    }

    /// While the primary leads and the replica is stale, probe the
    /// replica once per window and resync it from the primary when it
    /// answers — restoring the "replica holds everything" invariant.
    fn maybe_heal_replica(&self, inner: &mut ClientInner, shard: usize, window: u64) {
        {
            let st = &inner.shards[shard];
            if !st.replica_stale || st.lease_until.is_some() || st.last_heal_window == Some(window)
            {
                return;
            }
        }
        let primary = inner.shards[shard].primary.clone();
        let replica = inner.shards[shard].replica.clone();
        if self
            .exchange(inner, &replica, Payload::Ping, PROBE_ATTEMPTS)
            .is_ok()
        {
            self.resync(inner, &primary, &replica);
            inner.shards[shard].replica_stale = false;
        } else {
            // The replica looks genuinely down: stop probing it until
            // the next window. (A successful probe does not set this,
            // so transient loss heals on the very next operation.)
            inner.shards[shard].last_heal_window = Some(window);
        }
    }

    /// Execute one already-namespaced request on its shard, with
    /// breaker, failover and replication. Never returns an error: the
    /// operation either completes or the client panics because the
    /// fault plan left no healthy replica.
    fn run_on_shard(&self, inner: &mut ClientInner, shard: usize, payload: Payload) -> Payload {
        let window = self.net.window();
        self.maybe_reclaim_primary(inner, shard, window);
        self.maybe_heal_replica(inner, shard, window);
        let is_write = payload_is_write(&payload);
        // The operation span covers every leg — retries, failover,
        // replication — and its context rides the frame header so the
        // server's handling span stitches under it.
        let sp = self.op_span(match &payload {
            Payload::KvReq(_) => "net.kv",
            Payload::ObjReq(_) => "net.obj",
            _ => "net.op",
        });
        let ctx = sp
            .as_ref()
            .and_then(|(guard, trace_id)| guard.context(*trace_id));
        let note = |sp: &Option<(SpanGuard, u64)>, msg: String| {
            if let Some((guard, _)) = sp {
                guard.event(Level::Warn, msg);
            }
        };
        // One logical operation = one seq = one frame, no matter how
        // many hosts or recovery rounds it takes: a host that silently
        // applied it answers every later delivery from its dedup cache.
        inner.seq += 1;
        let seq = inner.seq;
        let frame = encode(&Frame {
            client: self.client_id,
            seq,
            ctx,
            payload,
        });
        let mut last = NetError::FrameLost;
        for _round in 0..RECOVERY_ROUNDS {
            let under_lease = inner.shards[shard]
                .lease_until
                .is_some_and(|until| window < until);
            if !under_lease {
                let now = inner.clock;
                let allowed = inner.shards[shard].breaker.allows(now);
                if allowed {
                    let primary = inner.shards[shard].primary.clone();
                    match self.send_frame(inner, &primary, &frame, seq, MAX_ATTEMPTS) {
                        Ok(resp) => {
                            inner.shards[shard].breaker.record_success();
                            if is_write {
                                let replica = inner.shards[shard].replica.clone();
                                if self
                                    .send_frame(inner, &replica, &frame, seq, MAX_ATTEMPTS)
                                    .is_err()
                                {
                                    inner.shards[shard].replica_stale = true;
                                    note(
                                        &sp,
                                        format!("shard {shard}: replica {replica} missed a write"),
                                    );
                                }
                            }
                            return resp;
                        }
                        Err(e) => {
                            note(
                                &sp,
                                format!(
                                    "shard {shard}: primary {} unreachable ({e:?})",
                                    inner.shards[shard].primary
                                ),
                            );
                            let now = inner.clock;
                            if inner.shards[shard].breaker.record_fault(now) == BreakerState::Open {
                                self.metrics.breaker_open.inc();
                            }
                        }
                    }
                }
                // Promote the replica under a fresh lease.
                let st = &mut inner.shards[shard];
                assert!(
                    !st.replica_stale,
                    "shard {shard}: primary unreachable and replica stale — \
                     the fault plan makes recovery impossible"
                );
                st.lease_until = Some(window + LEASE_WINDOWS);
                self.metrics.failovers.inc();
                note(
                    &sp,
                    format!(
                        "shard {shard}: failed over to {} under lease until window {}",
                        st.replica,
                        window + LEASE_WINDOWS
                    ),
                );
            }
            // The replica is the acting primary (lease holder).
            if is_write {
                inner.shards[shard].primary_stale = true;
            }
            let replica = inner.shards[shard].replica.clone();
            match self.send_frame(inner, &replica, &frame, seq, MAX_ATTEMPTS) {
                Ok(resp) => return resp,
                Err(e) => last = e,
            }
        }
        panic!(
            "shard {shard}: primary and replica both unreachable ({last:?}) \
             after {RECOVERY_ROUNDS} recovery rounds — the fault plan makes \
             recovery impossible"
        )
    }

    fn run_kv_on_shard(&self, inner: &mut ClientInner, shard: usize, req: KvRequest) -> KvResponse {
        match self.run_on_shard(inner, shard, Payload::KvReq(req)) {
            Payload::KvResp(resp) => resp,
            other => panic!("KV request answered with {other:?}"),
        }
    }

    fn run_obj_on_shard(
        &self,
        inner: &mut ClientInner,
        shard: usize,
        req: ObjRequest,
    ) -> ObjResponse {
        match self.run_on_shard(inner, shard, Payload::ObjReq(req)) {
            Payload::ObjResp(resp) => resp,
            other => panic!("object request answered with {other:?}"),
        }
    }

    /// Route an already-prefixed KV request by its key.
    fn routed_kv(&self, inner: &mut ClientInner, req: KvRequest) -> KvResponse {
        let shard = {
            let key = req.routing_key().expect("routed request has a key");
            let n = inner.shards.len();
            (consistent_hash(key.as_bytes(), ROUTE_SALT) % n as u64) as usize
        };
        self.run_kv_on_shard(inner, shard, req)
    }

    /// Route an already-prefixed object request by its bucket.
    fn routed_obj(&self, inner: &mut ClientInner, req: ObjRequest) -> ObjResponse {
        let shard = {
            let bucket = req.routing_bucket().expect("routed request has a bucket");
            let n = inner.shards.len();
            (consistent_hash(bucket.as_bytes(), ROUTE_SALT) % n as u64) as usize
        };
        self.run_obj_on_shard(inner, shard, req)
    }

    /// All keys in this client's namespace, as stored (prefix intact).
    fn namespace_keys(&self, inner: &mut ClientInner, extra_prefix: &str) -> Vec<String> {
        let prefix = format!("{}{extra_prefix}", self.namespace);
        let mut keys = Vec::new();
        for shard in 0..inner.shards.len() {
            match self.run_kv_on_shard(
                inner,
                shard,
                KvRequest::KeysWithPrefix {
                    prefix: prefix.clone(),
                },
            ) {
                KvResponse::Strs(mut ks) => keys.append(&mut ks),
                other => panic!("keys_with_prefix answered with {other:?}"),
            }
        }
        keys.sort();
        keys
    }

    fn kv_fanout(&self, inner: &mut ClientInner, req: KvRequest) -> KvResponse {
        match req {
            KvRequest::KeysWithPrefix { prefix } => {
                let keys = self.namespace_keys(inner, &prefix);
                KvResponse::Strs(
                    keys.iter()
                        .map(|k| {
                            k.strip_prefix(&self.namespace)
                                .expect("namespace-scanned key carries the prefix")
                                .to_string()
                        })
                        .collect(),
                )
            }
            KvRequest::Len => KvResponse::Uint(self.namespace_keys(inner, "").len() as u64),
            KvRequest::Clear => {
                for key in self.namespace_keys(inner, "") {
                    self.routed_kv(inner, KvRequest::Del { key });
                }
                KvResponse::Unit
            }
            KvRequest::SweepExpired { now, prefix } => {
                // Scoped to this client's namespace: the sweep runs at
                // *this* engine's logical clock and must never evict a
                // co-tenant engine's TTL leases.
                let prefix = format!("{}{prefix}", self.namespace);
                let mut swept = 0;
                for shard in 0..inner.shards.len() {
                    let req = KvRequest::SweepExpired {
                        now,
                        prefix: prefix.clone(),
                    };
                    match self.run_kv_on_shard(inner, shard, req) {
                        KvResponse::Uint(n) => swept += n,
                        other => panic!("sweep_expired answered with {other:?}"),
                    }
                }
                KvResponse::Uint(swept)
            }
            KvRequest::Snapshot => {
                let mut parts = Vec::new();
                for shard in 0..inner.shards.len() {
                    match self.run_kv_on_shard(inner, shard, KvRequest::Snapshot) {
                        KvResponse::Snapshot(s) => parts.push(s),
                        other => panic!("snapshot answered with {other:?}"),
                    }
                }
                KvResponse::Snapshot(KvSnapshot::merged(&parts).strip_prefix(&self.namespace))
            }
            KvRequest::Restore { snapshot } => {
                for key in self.namespace_keys(inner, "") {
                    self.routed_kv(inner, KvRequest::Del { key });
                }
                for req in snapshot.with_prefix(&self.namespace).restore_requests() {
                    self.routed_kv(inner, req);
                }
                KvResponse::Unit
            }
            other => panic!("{other:?} is not a fan-out request"),
        }
    }

    fn obj_fanout_snapshot(&self, inner: &mut ClientInner) -> ObjectSnapshot {
        let mut parts = Vec::new();
        for shard in 0..inner.shards.len() {
            match self.run_obj_on_shard(inner, shard, ObjRequest::Snapshot) {
                ObjResponse::Snapshot(s) => parts.push(s),
                other => panic!("object snapshot answered with {other:?}"),
            }
        }
        ObjectSnapshot::merged(&parts).strip_prefix(&self.namespace)
    }

    fn obj_fanout(&self, inner: &mut ClientInner, req: ObjRequest) -> ObjResponse {
        match req {
            ObjRequest::TotalBytes => {
                // Deployment-wide figure: the mesh is shared, so this
                // sums every namespace — matching what an operator's
                // storage dashboard would show.
                let mut total = 0;
                for shard in 0..inner.shards.len() {
                    match self.run_obj_on_shard(inner, shard, ObjRequest::TotalBytes) {
                        ObjResponse::Uint(n) => total += n,
                        other => panic!("total_bytes answered with {other:?}"),
                    }
                }
                ObjResponse::Uint(total)
            }
            ObjRequest::Snapshot => ObjResponse::Snapshot(self.obj_fanout_snapshot(inner)),
            ObjRequest::Restore { snapshot } => {
                for bucket in self.obj_fanout_snapshot(inner).bucket_names() {
                    self.routed_obj(
                        inner,
                        ObjRequest::DeleteBucket {
                            bucket: format!("{}{bucket}", self.namespace),
                        },
                    );
                }
                for req in snapshot.with_prefix(&self.namespace).restore_requests() {
                    self.routed_obj(inner, req);
                }
                ObjResponse::Unit
            }
            other => panic!("{other:?} is not a fan-out request"),
        }
    }
}

/// Rewrite a routed KV request's key with the namespace prefix.
fn prefix_kv(req: KvRequest, ns: &str) -> KvRequest {
    let p = |key: String| format!("{ns}{key}");
    match req {
        KvRequest::Set { key, value } => KvRequest::Set { key: p(key), value },
        KvRequest::SetWithTtl {
            key,
            value,
            expires_at,
        } => KvRequest::SetWithTtl {
            key: p(key),
            value,
            expires_at,
        },
        KvRequest::Get { key } => KvRequest::Get { key: p(key) },
        KvRequest::Del { key } => KvRequest::Del { key: p(key) },
        KvRequest::Exists { key } => KvRequest::Exists { key: p(key) },
        KvRequest::IncrBy { key, delta } => KvRequest::IncrBy { key: p(key), delta },
        KvRequest::Rpush { key, value } => KvRequest::Rpush { key: p(key), value },
        KvRequest::RpushBatch { key, values } => KvRequest::RpushBatch {
            key: p(key),
            values,
        },
        KvRequest::Lpop { key } => KvRequest::Lpop { key: p(key) },
        KvRequest::LpopBatch { key, n } => KvRequest::LpopBatch { key: p(key), n },
        KvRequest::LpopExactBatch { key, n } => KvRequest::LpopExactBatch { key: p(key), n },
        KvRequest::Llen { key } => KvRequest::Llen { key: p(key) },
        KvRequest::LrangeFrom { key, start } => KvRequest::LrangeFrom { key: p(key), start },
        KvRequest::Hset { key, field, value } => KvRequest::Hset {
            key: p(key),
            field,
            value,
        },
        KvRequest::Hget { key, field } => KvRequest::Hget { key: p(key), field },
        KvRequest::Hgetall { key } => KvRequest::Hgetall { key: p(key) },
        other => other,
    }
}

/// Rewrite a routed object request's bucket with the namespace prefix.
fn prefix_obj(req: ObjRequest, ns: &str) -> ObjRequest {
    let p = |bucket: String| format!("{ns}{bucket}");
    match req {
        ObjRequest::Put { bucket, key, data } => ObjRequest::Put {
            bucket: p(bucket),
            key,
            data,
        },
        ObjRequest::Get { bucket, key } => ObjRequest::Get {
            bucket: p(bucket),
            key,
        },
        ObjRequest::Delete { bucket, key } => ObjRequest::Delete {
            bucket: p(bucket),
            key,
        },
        ObjRequest::DeleteBucket { bucket } => ObjRequest::DeleteBucket { bucket: p(bucket) },
        ObjRequest::List { bucket } => ObjRequest::List { bucket: p(bucket) },
        ObjRequest::Count { bucket } => ObjRequest::Count { bucket: p(bucket) },
        other => other,
    }
}

fn payload_is_write(payload: &Payload) -> bool {
    match payload {
        Payload::KvReq(r) => r.is_write(),
        Payload::ObjReq(r) => r.is_write(),
        _ => false,
    }
}

impl RemoteStore for ShardedStoreClient {
    fn kv(&self, req: KvRequest) -> KvResponse {
        let mut inner = self.inner.lock();
        self.metrics.requests.inc();
        if req.routing_key().is_some() {
            let req = prefix_kv(req, &self.namespace);
            self.routed_kv(&mut inner, req)
        } else {
            self.kv_fanout(&mut inner, req)
        }
    }

    fn obj(&self, req: ObjRequest) -> ObjResponse {
        let mut inner = self.inner.lock();
        self.metrics.requests.inc();
        if req.routing_bucket().is_some() {
            let req = prefix_obj(req, &self.namespace);
            self.routed_obj(&mut inner, req)
        } else {
            self.obj_fanout(&mut inner, req)
        }
    }
}

impl std::fmt::Debug for ShardedStoreClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStoreClient")
            .field("host", &self.host)
            .field("namespace", &self.namespace)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{default_link, SimNet};
    use std::sync::Arc;
    use tero_chaos::{ChaosInjector, FaultPlan, HostKill, NetFault};
    use tero_store::{KvStore, ObjectStore};

    fn mesh(plan: FaultPlan, shards: usize) -> SimNet {
        SimNet::with_shards(default_link(), ChaosInjector::new(plan), shards)
    }

    fn stores(net: &SimNet, engine: usize, shards: usize, seed: u64) -> (KvStore, ObjectStore) {
        let registry = Registry::new();
        let client: Arc<dyn RemoteStore> = Arc::new(ShardedStoreClient::new(
            net.clone(),
            engine,
            shards,
            &registry,
            seed,
        ));
        (KvStore::remote(client.clone()), ObjectStore::remote(client))
    }

    #[test]
    fn quiet_mesh_behaves_like_a_local_store() {
        let net = mesh(FaultPlan::quiet(1), 3);
        let (kv, objects) = stores(&net, 0, 3, 1);
        kv.set("k", "v");
        assert_eq!(kv.get("k").as_deref(), Some("v"));
        assert_eq!(kv.rpush("q", "a"), 1);
        assert_eq!(kv.rpush("q", "b"), 2);
        assert_eq!(kv.lpop("q").as_deref(), Some("a"));
        kv.hset("h", "f", "v");
        assert_eq!(kv.hget("h", "f").as_deref(), Some("v"));
        assert_eq!(kv.incr_by("c", 5), 5);
        assert_eq!(
            kv.keys_with_prefix(""),
            vec!["c".to_string(), "h".into(), "k".into(), "q".into()]
        );
        objects.put("b", "x", vec![1, 2, 3]);
        assert_eq!(
            objects.get("b", "x").map(|b| b.to_vec()),
            Some(vec![1, 2, 3])
        );
        assert_eq!(objects.list("b"), vec!["x".to_string()]);
    }

    #[test]
    fn namespaces_are_disjoint() {
        let net = mesh(FaultPlan::quiet(1), 2);
        let (kv0, _) = stores(&net, 0, 2, 1);
        let (kv1, _) = stores(&net, 1, 2, 2);
        kv0.set("k", "zero");
        kv1.set("k", "one");
        assert_eq!(kv0.get("k").as_deref(), Some("zero"));
        assert_eq!(kv1.get("k").as_deref(), Some("one"));
        assert_eq!(kv0.keys_with_prefix(""), vec!["k".to_string()]);
        // Snapshots are namespace-scoped too.
        assert_eq!(kv0.snapshot().len(), 1);
    }

    #[test]
    fn snapshot_restore_round_trips_through_the_mesh() {
        let net = mesh(FaultPlan::quiet(1), 3);
        let (kv, objects) = stores(&net, 0, 3, 1);
        kv.set("s", "v");
        kv.rpush("l", "a");
        kv.rpush("l", "b");
        kv.hset("h", "f", "v");
        objects.put("b", "k", vec![9]);
        let kv_snap = kv.snapshot();
        let obj_snap = objects.snapshot();
        kv.set("s", "changed");
        kv.rpush("l", "c");
        objects.put("b", "k2", vec![1]);
        kv.restore(&kv_snap);
        objects.restore(&obj_snap);
        assert_eq!(kv.get("s").as_deref(), Some("v"));
        assert_eq!(kv.llen("l"), 2);
        assert_eq!(kv.snapshot(), kv_snap);
        assert_eq!(objects.snapshot(), obj_snap);
    }

    #[test]
    fn writes_replicate_to_the_replica() {
        let net = mesh(FaultPlan::quiet(1), 1);
        let (kv, _) = stores(&net, 0, 1, 1);
        kv.set("k", "v");
        let primary = net.server("shard0p").expect("registered");
        let replica = net.server("shard0r").expect("registered");
        assert_eq!(primary.kv().get("e0:k").as_deref(), Some("v"));
        assert_eq!(replica.kv().get("e0:k").as_deref(), Some("v"));
    }

    #[test]
    fn killed_primary_fails_over_and_resyncs_on_revival() {
        let plan = FaultPlan {
            net: NetFault {
                kills: vec![HostKill {
                    host: "shard0p".into(),
                    from_window: 1,
                    until_window: 2,
                }],
                ..NetFault::quiet()
            },
            ..FaultPlan::quiet(7)
        };
        let net = mesh(plan, 1);
        let registry = Registry::new();
        let client = Arc::new(ShardedStoreClient::new(net.clone(), 0, 1, &registry, 3));
        let kv = KvStore::remote(client.clone() as Arc<dyn RemoteStore>);
        kv.set("before", "1");
        // Primary dies; the client must fail over and keep committing.
        net.set_window(1);
        kv.set("during", "2");
        assert_eq!(kv.get("during").as_deref(), Some("2"));
        let snap = registry.snapshot();
        assert!(snap.counter("net.failovers").unwrap() >= 1);
        // The dead primary never saw the write.
        assert!(net
            .server("shard0p")
            .expect("registered")
            .kv()
            .get("e0:during")
            .is_none());
        // Primary revives; lease expires after LEASE_WINDOWS; the next
        // operation reclaims it and resyncs the missed writes.
        net.set_window(3);
        assert_eq!(kv.get("before").as_deref(), Some("1"));
        let snap = registry.snapshot();
        assert!(snap.counter("net.resyncs").unwrap() >= 1);
        assert_eq!(
            net.server("shard0p")
                .expect("registered")
                .kv()
                .get("e0:during")
                .as_deref(),
            Some("2"),
            "revived primary was resynced from the replica"
        );
    }

    #[test]
    fn killed_replica_marks_stale_and_heals() {
        let plan = FaultPlan {
            net: NetFault {
                kills: vec![HostKill {
                    host: "shard0r".into(),
                    from_window: 0,
                    until_window: 1,
                }],
                ..NetFault::quiet()
            },
            ..FaultPlan::quiet(7)
        };
        let net = mesh(plan, 1);
        let registry = Registry::new();
        let client = Arc::new(ShardedStoreClient::new(net.clone(), 0, 1, &registry, 3));
        let kv = KvStore::remote(client.clone() as Arc<dyn RemoteStore>);
        kv.set("k", "v"); // replica unreachable → stale
        assert!(net
            .server("shard0r")
            .expect("registered")
            .kv()
            .get("e0:k")
            .is_none());
        net.set_window(1); // replica back; next op heals it
        kv.set("k2", "v2");
        assert_eq!(
            net.server("shard0r")
                .expect("registered")
                .kv()
                .get("e0:k")
                .as_deref(),
            Some("v"),
            "healed replica holds the missed write"
        );
        assert!(registry.snapshot().counter("net.resyncs").unwrap() >= 1);
    }

    #[test]
    fn frame_drops_are_retried_exactly_once_semantics() {
        let plan = FaultPlan {
            net: NetFault {
                frame_drop_rate: 0.3,
                ..NetFault::quiet()
            },
            ..FaultPlan::quiet(11)
        };
        let net = mesh(plan, 2);
        let (kv, _) = stores(&net, 0, 2, 5);
        // Lossy network, but rpush still lands exactly once each.
        for i in 0..50 {
            kv.rpush("q", format!("{i}"));
        }
        assert_eq!(kv.llen("q"), 50, "every push landed exactly once");
        let got: Vec<String> = kv.lpop_batch("q", 50);
        let want: Vec<String> = (0..50).map(|i| format!("{i}")).collect();
        assert_eq!(got, want, "order preserved despite retries");
    }

    #[test]
    fn net_metrics_replay_identically() {
        let run = || {
            let plan = FaultPlan {
                net: NetFault {
                    frame_drop_rate: 0.2,
                    frame_delay_rate: 0.2,
                    frame_delay: SimDuration::from_millis(3),
                    ..NetFault::quiet()
                },
                ..FaultPlan::quiet(13)
            };
            let net = mesh(plan, 2);
            let registry = Registry::new();
            let client = Arc::new(ShardedStoreClient::new(net.clone(), 0, 2, &registry, 9));
            let kv = KvStore::remote(client as Arc<dyn RemoteStore>);
            for i in 0..40 {
                kv.set(&format!("k{i}"), "v");
            }
            let snap = registry.snapshot();
            (
                snap.counter("net.frames"),
                snap.counter("net.retries"),
                snap.counter("net.timeouts"),
                snap.counter("net.bytes"),
            )
        };
        assert_eq!(run(), run(), "same plan and seed → same net.* metrics");
    }

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        let mut b = Breaker::new(3, SimDuration::from_millis(100));
        let t0 = SimTime::EPOCH;
        assert_eq!(b.state(t0), BreakerState::Closed);
        // Two faults: still closed.
        b.record_fault(t0);
        b.record_fault(t0);
        assert_eq!(b.state(t0), BreakerState::Closed);
        assert!(b.allows(t0));
        // Third fault trips it open.
        assert_eq!(b.record_fault(t0), BreakerState::Open);
        assert_eq!(b.state(t0), BreakerState::Open);
        assert!(!b.allows(t0), "open breaker rejects");
        // Cooldown elapses → half-open, one probe allowed.
        let t1 = t0 + SimDuration::from_millis(100);
        assert_eq!(b.state(t1), BreakerState::HalfOpen);
        assert!(b.allows(t1), "half-open admits the probe");
        assert_eq!(b.state(t1), BreakerState::HalfOpen);
        // Successful probe closes it.
        b.record_success();
        assert_eq!(b.state(t1), BreakerState::Closed);
    }

    #[test]
    fn breaker_failed_probe_reopens() {
        let mut b = Breaker::new(3, SimDuration::from_millis(100));
        let t0 = SimTime::EPOCH;
        for _ in 0..3 {
            b.record_fault(t0);
        }
        let t1 = t0 + SimDuration::from_millis(150);
        assert!(b.allows(t1));
        // The half-open probe fails → straight back to open, full cooldown.
        assert_eq!(b.record_fault(t1), BreakerState::Open);
        assert_eq!(b.state(t1), BreakerState::Open);
        assert!(!b.allows(t1));
        let t2 = t1 + SimDuration::from_millis(100);
        assert_eq!(b.state(t2), BreakerState::HalfOpen);
    }
}
