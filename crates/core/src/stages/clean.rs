//! The clean stage: §3.3 per-`{streamer, game}` cleaning and
//! classification — stream stitching, segmentation, glitch/spike anomaly
//! detection, and static/mobile cluster classification — run *online*.
//!
//! # Online cleaning (docs/CLEANING.md)
//!
//! The legacy pipeline deferred all cleaning to the horizon: a separate
//! stitch stage drained the sample lists once, then a stateless clean
//! stage re-analysed every series from scratch. This stage instead keeps
//! resumable per-series state and advances it every window:
//!
//! * **Feed** — each window, [`CleanStage::advance`] reads only the *new*
//!   records of every `engine:samples:*` list (a non-destructive
//!   [`tero_store::KvStore::lrange_from`] from the series' cursor),
//!   extends the stream-stitching and segmentation folds, and pushes each
//!   reading into a per-series streaming changepoint detector
//!   ([`tero_stats::OnlinePelt`]).
//! * **Seal** — segments strictly between two *closed stable* segments
//!   can never change label again: every anomaly-detection rule (glitch,
//!   spike fixpoint, correction, cleanup, spike-run merge) only reads up
//!   to the closest stable segment on either side, so the detector's
//!   output over a block bracketed by stable segments is final. The stage
//!   therefore freezes ("seals") everything up to the last closed stable
//!   segment and never re-detects it.
//! * **View** — the full per-series [`AnomalyReport`] is reconstructed on
//!   demand by re-detecting only the sealed anchor (the last sealed
//!   stable segment) plus the unsealed tail. At the horizon this is
//!   byte-identical to the batch detector over the whole series — the
//!   freshness contract is *exact*, not a tolerance
//!   (`online_view_matches_batch_under_any_window_split` below pins it).
//! * **Refresh** — after each non-final window the stage regroups the
//!   series under the *canonical* locations the budgeted locate stage
//!   has committed so far, falling back to *provisional* tags-only
//!   lookups for streamers whose profile fetch hasn't landed yet, and
//!   recomputes the distribution sketch of every `{location, game}`
//!   group whose membership, member data, settled aggregation state or
//!   provenance changed — so `engine:serve:dist:*` answers track the
//!   run window by window. All-canonical groups reuse the aggregation
//!   stage's committed analysis verbatim (marker `c`); mixed or
//!   provisional groups are analysed against the current views and
//!   screened against the live `engine:agg:clusters:*` picture
//!   (marker `p`). Every sketch carries an `engine:serve:dist_meta:*`
//!   provenance marker.
//!
//! All resumable state is committed under `engine:clean:*` keys
//! ([`CLEAN_CURSORS_KEY`], [`clean_state_key`]) and rebuilt from the
//! lists on [`CleanStage::rebuild`] after a chaos kill or a
//! fresh-process restore.

use super::{parse_sample_list_key, SampleRecord, Stage, StageCx, NAMES_KEY, SAMPLES_PREFIX};
use crate::analysis::anomaly::{detect_anomalies, AnomalyReport, SegmentLabel, SpikeEvent};
use crate::analysis::clusters::{classify_streamer, ClassifiedStreamer};
use crate::analysis::segments::{Segment, StreamSeries};
use crate::location::{LocationModule, LocationSource};
use crate::serving::{
    dist_meta_key, dist_sketch_key, DistProvenance, ServeGranularity, SERVE_VERSION_KEY,
};
use crate::stages::agg::AggStage;
use crate::stages::publish::{analyze_group, reject_outside, Granularity, ViewSource};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use tero_geoparse::tags::TagObservation;
use tero_stats::OnlinePelt;
use tero_store::KvStore;
use tero_trace::{Level, TaskTrace};
use tero_types::{
    AnonId, GameId, LatencySample, Location, SimDuration, SimTime, StreamerId, TeroParams,
};

/// A gap larger than this starts a new stream (thumbnails are ≥ 5 min
/// apart; in-stream breaks reach ~35 min; offline periods are longer).
pub const STREAM_GAP: SimDuration = SimDuration(45 * 60 * 1_000_000);

/// KV key prefix for the online cleaner's committed state. Lives under
/// the chaos-exempt [`tero_store::PROTECTED_PREFIX`], like the engine's
/// other cursors; *not* under `engine:serve:`, so serving-layer byte
/// comparisons never see it.
pub const CLEAN_PREFIX: &str = "engine:clean:";

/// KV hash mapping each `engine:samples:*` list key to the number of
/// records the cleaner has consumed from it. The lists themselves are the
/// ground truth; [`CleanStage::rebuild`] replays each list up to its
/// committed cursor to reconstruct the in-memory state exactly.
pub const CLEAN_CURSORS_KEY: &str = "engine:clean:cursors";

/// The fixed penalty of the per-series [`OnlinePelt`] detector. The
/// online/batch equivalence contract holds only under a fixed penalty
/// (a BIC penalty needs the full series length and variance up front);
/// this value is `2 σ² ln n` at the nominal σ ≈ 3 ms OCR noise and
/// n ≈ 500 samples of a multi-day series.
pub const ONLINE_PELT_PENALTY: f64 = 112.0;

/// The committed-state key for one `{streamer, game}` series: a compact
/// JSON summary of the cleaner's sealed/tail split (the fields are
/// documented in docs/CLEANING.md). Every field is a pure function of the
/// series' sample prefix, so at the horizon the committed values are
/// byte-identical across window schedules, worker counts, and
/// kill/resume (pinned by `tests/determinism.rs`).
pub fn clean_state_key(anon: AnonId, game: GameId) -> String {
    let idx = GameId::ALL
        .iter()
        .position(|g| *g == game)
        .expect("every GameId is in GameId::ALL");
    format!("{CLEAN_PREFIX}state:{:016x}:{idx:02}", anon.0)
}

/// What the clean stage hands the publish stage.
pub struct Cleaned {
    /// Stitched streams per `{streamer, game}` (passed through).
    pub streams: BTreeMap<(AnonId, GameId), Vec<StreamSeries>>,
    /// Anomaly reports per `{streamer, game}`.
    pub anomalies: BTreeMap<(AnonId, GameId), AnomalyReport>,
    /// Classified streamers per `{streamer, game}`.
    pub classified: BTreeMap<(AnonId, GameId), ClassifiedStreamer>,
}

/// A cached per-series analysis view: the full report over sealed + tail,
/// recomputed only when the series receives new samples.
#[derive(Debug, Clone)]
struct ViewCache {
    report: AnomalyReport,
    classified: ClassifiedStreamer,
}

/// The online cleaner's resumable state for one `{streamer, game}`
/// series.
#[derive(Debug, Clone)]
struct SeriesState {
    anon: AnonId,
    game: GameId,
    /// Raw samples per stitched stream — the `Cleaned.streams`
    /// passthrough, identical to what the batch stitcher produced.
    streams: Vec<Vec<LatencySample>>,
    /// Timestamp of the last fed sample (stream-split + ordering guard).
    last_at: Option<SimTime>,
    /// Records consumed from this series' sample list.
    cursor: usize,
    /// Samples of the still-open (unclosed) trailing segment.
    open: Vec<LatencySample>,
    /// Value span of the open segment.
    open_lo: u32,
    open_hi: u32,
    /// Closed segments after the sealed prefix — labels not yet final.
    tail: Vec<Segment>,
    /// Sealed prefix: segments whose labels, corrections and spikes are
    /// final. When non-empty it always ends with a stable segment (the
    /// *anchor*), which brackets every later detection block.
    sealed: Vec<Segment>,
    sealed_labels: Vec<SegmentLabel>,
    sealed_spikes: Vec<SpikeEvent>,
    /// The §3.3.2 streaming changepoint detector over the primary
    /// readings, fed sample by sample.
    pelt: OnlinePelt,
    /// `pelt.change_count()` at the last metric flush, for the
    /// `stats.changepoint.shifts` delta.
    shifts_seen: usize,
    /// Cached view; `None` while the series is dirty.
    view: Option<ViewCache>,
}

impl SeriesState {
    fn new(anon: AnonId, game: GameId, params: &TeroParams) -> SeriesState {
        SeriesState {
            anon,
            game,
            streams: Vec::new(),
            last_at: None,
            cursor: 0,
            open: Vec::new(),
            open_lo: 0,
            open_hi: 0,
            tail: Vec::new(),
            sealed: Vec::new(),
            sealed_labels: Vec::new(),
            sealed_spikes: Vec::new(),
            pelt: OnlinePelt::new(ONLINE_PELT_PENALTY, params.stable_points()),
            shifts_seen: 0,
            view: None,
        }
    }

    /// Close the open segment (if any) into the tail, exactly as
    /// `segment_stream` closes a segment at a span break or stream end.
    fn close_open(&mut self, params: &TeroParams) {
        if self.open.is_empty() {
            return;
        }
        let stream_idx = self.streams.len().saturating_sub(1);
        let samples = std::mem::take(&mut self.open);
        let stable = samples.len() >= params.stable_points();
        self.tail.push(Segment {
            stream_idx,
            samples,
            stable,
        });
    }

    /// Extend the stitching and segmentation folds with `samples` (sorted
    /// by time, non-decreasing relative to everything fed before).
    fn feed(&mut self, samples: &[LatencySample], params: &TeroParams) {
        for &s in samples {
            let new_stream = match self.last_at {
                None => true,
                Some(last) => s.at.since(last) > STREAM_GAP,
            };
            if new_stream {
                self.close_open(params);
                self.streams.push(Vec::new());
            }
            self.streams
                .last_mut()
                .expect("a stream was just opened")
                .push(s);
            self.last_at = Some(s.at);
            if self.open.is_empty() {
                self.open_lo = s.latency_ms;
                self.open_hi = s.latency_ms;
                self.open.push(s);
            } else {
                let lo = self.open_lo.min(s.latency_ms);
                let hi = self.open_hi.max(s.latency_ms);
                if hi - lo <= params.lat_gap_ms {
                    self.open_lo = lo;
                    self.open_hi = hi;
                    self.open.push(s);
                } else {
                    self.close_open(params);
                    self.open_lo = s.latency_ms;
                    self.open_hi = s.latency_ms;
                    self.open.push(s);
                }
            }
            self.pelt.push(s.latency_ms as f64);
        }
        if !samples.is_empty() {
            self.view = None;
        }
    }

    /// Freeze every tail segment up to (and including) the last *closed*
    /// stable segment: re-detect the block bracketed by the current
    /// anchor, splice the final labels into the sealed prefix, and make
    /// the block's last stable segment the new anchor. Returns the number
    /// of segments sealed.
    fn seal(&mut self, params: &TeroParams) -> usize {
        let Some(last_stable) = self.tail.iter().rposition(|s| s.stable) else {
            return 0;
        };
        let block_tail: Vec<Segment> = self.tail.drain(..=last_stable).collect();
        let sealed_now = block_tail.len();
        let (block, base) = match self.sealed.last() {
            Some(anchor) => {
                let mut block = Vec::with_capacity(block_tail.len() + 1);
                block.push(anchor.clone());
                block.extend(block_tail);
                (block, self.sealed.len() - 1)
            }
            None => (block_tail, 0),
        };
        // The block contains a stable segment by construction, so the
        // detector never takes its all-unstable early return here.
        let report = detect_anomalies(block, params);
        self.sealed.truncate(base);
        self.sealed_labels.truncate(base);
        self.sealed.extend(report.segments);
        self.sealed_labels.extend(report.labels);
        // Spikes are runs of unstable segments, so none references the
        // (stable) anchor: previously sealed spikes all sit before
        // `base`, and the block's spikes re-index after it.
        for mut sp in report.spikes {
            for idx in &mut sp.segment_idxs {
                *idx += base;
            }
            self.sealed_spikes.push(sp);
        }
        debug_assert_eq!(
            self.sealed_labels.last(),
            Some(&SegmentLabel::Stable),
            "the sealed prefix always ends with its anchor"
        );
        sealed_now
    }

    /// The full anomaly report over sealed + tail + open: re-detect only
    /// the anchor and the unsealed suffix, then splice the sealed prefix
    /// in front. Byte-identical to the batch detector over the complete
    /// segment list.
    fn view_report(&self, params: &TeroParams) -> AnomalyReport {
        let mut suffix: Vec<Segment> = self.tail.clone();
        if !self.open.is_empty() {
            suffix.push(Segment {
                stream_idx: self.streams.len().saturating_sub(1),
                samples: self.open.clone(),
                stable: self.open.len() >= params.stable_points(),
            });
        }
        let Some(anchor) = self.sealed.last() else {
            return detect_anomalies(suffix, params);
        };
        let mut block = Vec::with_capacity(suffix.len() + 1);
        block.push(anchor.clone());
        block.extend(suffix);
        let r = detect_anomalies(block, params);
        let base = self.sealed.len() - 1;
        let mut segments = self.sealed[..base].to_vec();
        let mut labels = self.sealed_labels[..base].to_vec();
        segments.extend(r.segments);
        labels.extend(r.labels);
        let mut spikes = self.sealed_spikes.clone();
        spikes.extend(r.spikes.into_iter().map(|mut sp| {
            for idx in &mut sp.segment_idxs {
                *idx += base;
            }
            sp
        }));
        AnomalyReport {
            segments,
            labels,
            spikes,
            all_unstable: false,
        }
    }

    /// The committed per-series summary (see [`clean_state_key`]).
    fn summary(&self) -> String {
        format!(
            "{{\"records\":{},\"streams\":{},\"sealed_segments\":{},\"sealed_spikes\":{},\"tail_segments\":{},\"open_len\":{},\"changepoints\":{}}}",
            self.cursor,
            self.streams.len(),
            self.sealed.len(),
            self.sealed_spikes.len(),
            self.tail.len(),
            self.open.len(),
            self.pelt.change_count(),
        )
    }
}

/// Read-only view lookup over the cleaner's cached per-series analyses,
/// for the group-level refresh and the incremental aggregation stage
/// (see [`ViewSource`]).
pub(crate) struct StateViews<'a>(&'a BTreeMap<(AnonId, GameId), SeriesState>);

impl ViewSource for StateViews<'_> {
    fn classified_for(&self, anon: AnonId, game: GameId) -> Option<&ClassifiedStreamer> {
        self.0
            .get(&(anon, game))
            .and_then(|s| s.view.as_ref())
            .map(|v| &v.classified)
    }

    fn report_for(&self, anon: AnonId, game: GameId) -> Option<&AnomalyReport> {
        self.0
            .get(&(anon, game))
            .and_then(|s| s.view.as_ref())
            .map(|v| &v.report)
    }
}

/// The clean stage: stateful, windowed, resumable.
#[derive(Debug, Default)]
pub struct CleanStage {
    states: BTreeMap<(AnonId, GameId), SeriesState>,
    /// Provisional-location cache: tag-list length at last lookup and the
    /// result. Invalidated when the streamer's tag list grows.
    loc_cache: BTreeMap<AnonId, (usize, Option<(Location, LocationSource)>)>,
    /// Members of every `{location, game}` group at the last refresh,
    /// keyed by distribution-sketch key — the membership-change detector.
    group_members: BTreeMap<String, Vec<AnonId>>,
    /// Distribution-sketch keys this stage currently has committed,
    /// with the provenance each was committed under.
    online_keys: BTreeMap<String, DistProvenance>,
}

impl CleanStage {
    /// The cleaner's cached per-series views, for the aggregation stage.
    pub(crate) fn views(&self) -> StateViews<'_> {
        StateViews(&self.states)
    }

    /// Every `{streamer, game}` series the cleaner tracks, in key order.
    pub(crate) fn series_keys(&self) -> Vec<(AnonId, GameId)> {
        self.states.keys().copied().collect()
    }

    /// Advance the online cleaner by one window: feed the new sample-list
    /// records, seal newly closed stable blocks, and commit
    /// `engine:clean:*` state. Returns the set of series that received
    /// new records (the engine feeds it to the aggregation stage's dirty
    /// tracking and to `CleanStage::refresh_serving`). Per-window cost
    /// is proportional to the new data plus the unsealed tails, not the
    /// total history (`benches/window.rs`, `clean_scaling`).
    pub fn advance(&mut self, cx: &mut StageCx<'_>) -> BTreeSet<(AnonId, GameId)> {
        let m = cx.stage_metrics(<Self as Stage>::NAME);
        let _t = m.begin();
        let params = &cx.tero.params;
        let mut fed_records = 0u64;
        let mut fed_keys: Vec<(AnonId, GameId)> = Vec::new();
        for key in cx.kv.keys_with_prefix(SAMPLES_PREFIX) {
            let Some((anon, game)) = parse_sample_list_key(&key) else {
                continue;
            };
            let state = self
                .states
                .entry((anon, game))
                .or_insert_with(|| SeriesState::new(anon, game, params));
            let raw = cx.kv.lrange_from(&key, state.cursor);
            if raw.is_empty() {
                continue;
            }
            state.cursor += raw.len();
            let mut samples: Vec<LatencySample> = raw
                .iter()
                .filter_map(|r| SampleRecord::decode(r))
                .map(decode_sample)
                .collect();
            samples.sort_by_key(|s| s.at);
            // The batch stitcher sorts the *whole* list; the fold only
            // matches it while batches arrive in time order. An inversion
            // (first new sample earlier than the last fed one) falls back
            // to a full metric-silent rebuild of this series from the
            // list — the final state is the same either way.
            let inverted = matches!(
                (samples.first(), state.last_at),
                (Some(first), Some(last)) if first.at < last
            );
            if inverted {
                let consumed = state.cursor;
                let mut rebuilt = SeriesState::new(anon, game, params);
                rebuilt.cursor = consumed;
                let mut all: Vec<LatencySample> = cx
                    .kv
                    .lrange_from(&key, 0)
                    .iter()
                    .take(consumed)
                    .filter_map(|r| SampleRecord::decode(r))
                    .map(decode_sample)
                    .collect();
                all.sort_by_key(|s| s.at);
                rebuilt.feed(&all, params);
                *state = rebuilt;
            } else {
                state.feed(&samples, params);
            }
            fed_records += samples.len() as u64;
            fed_keys.push((anon, game));
        }
        cx.metrics.clean_samples_in.add(fed_records);
        cx.metrics.clean_series_dirty.add(fed_keys.len() as u64);
        cx.metrics.changepoint_points.add(fed_records);
        // Seal, flush the changepoint delta, and commit per-series state.
        let mut sealed_total = 0u64;
        for key in &fed_keys {
            let state = self.states.get_mut(key).expect("state was just fed");
            sealed_total += state.seal(params) as u64;
            let shifts = state.pelt.change_count();
            cx.metrics
                .changepoint_shifts
                .add(shifts.saturating_sub(state.shifts_seen) as u64);
            state.shifts_seen = shifts;
            cx.kv
                .set(&clean_state_key(state.anon, state.game), state.summary());
            cx.kv.hset(
                CLEAN_CURSORS_KEY,
                &super::sample_list_key(state.anon, state.game),
                state.cursor.to_string(),
            );
        }
        cx.metrics.clean_segments_sealed.add(sealed_total);
        fed_keys.into_iter().collect()
    }

    /// Recompute the cached view of every dirty series, fanned out over
    /// the pool (pure per-series work; results merged in key order).
    /// Returns the set of series whose views were recomputed.
    pub(crate) fn refresh_views(&mut self, cx: &mut StageCx<'_>) -> BTreeSet<(AnonId, GameId)> {
        let stale: Vec<(AnonId, GameId)> = self
            .states
            .iter()
            .filter(|(_, s)| s.view.is_none())
            .map(|(k, _)| *k)
            .collect();
        if stale.is_empty() {
            return BTreeSet::new();
        }
        let params = &cx.tero.params;
        let views: Vec<ViewCache> = {
            let entries: Vec<&SeriesState> = stale.iter().map(|k| &self.states[k]).collect();
            cx.pool.par_map(&entries, |st| {
                let report = st.view_report(params);
                let classified = classify_streamer(st.anon, &report, params);
                ViewCache { report, classified }
            })
        };
        for (key, view) in stale.iter().zip(views) {
            self.states.get_mut(key).expect("stale key exists").view = Some(view);
        }
        cx.metrics.clean_views.add(stale.len() as u64);
        stale.into_iter().collect()
    }

    /// Refresh the serving-layer distribution sketches from the current
    /// views and the locate/aggregation stages' committed state: group
    /// the series under the `canonical` locations (provisional tags-only
    /// fallbacks for streamers whose budgeted profile lookup hasn't
    /// landed yet), and recompute every `{location, game}` group whose
    /// membership, member data, settled aggregation state or provenance
    /// changed since the last refresh. All-canonical groups serve the
    /// aggregation stage's committed distribution verbatim; mixed or
    /// provisional groups are analysed against the current views and
    /// screened against the live `engine:agg:clusters:*` picture. One
    /// serve-version bump per refresh that changed anything.
    pub(crate) fn refresh_serving(
        &mut self,
        cx: &mut StageCx<'_>,
        canonical: &HashMap<AnonId, (Location, LocationSource)>,
        agg: &AggStage,
        fresh: &BTreeSet<(AnonId, GameId)>,
        agg_refreshed: &BTreeSet<String>,
    ) {
        let tero = cx.tero;
        // Provisional locations — tags + social directory only, no
        // profile text — for the streamers the locate stage hasn't
        // settled yet. Located streamers use their committed
        // `engine:locate:*` result, which is canonical from the window
        // it lands in.
        let mut names: Vec<(AnonId, StreamerId)> = cx
            .kv
            .hgetall(NAMES_KEY)
            .into_iter()
            .filter_map(|(hex, name)| {
                let anon = u64::from_str_radix(&hex, 16).ok()?;
                Some((AnonId(anon), StreamerId::new(&name)))
            })
            .collect();
        names.sort_unstable_by_key(|(a, _)| *a);
        let location_module = LocationModule::new(&cx.world.gaz);
        let mut locations: HashMap<AnonId, (Location, LocationSource)> = canonical.clone();
        let mut lookups = 0u64;
        for (anon, name) in &names {
            if canonical.contains_key(anon) {
                continue;
            }
            let tags_key = format!("tags:{}", name.as_str());
            let n_tags = cx.kv.llen(&tags_key);
            let located = match self.loc_cache.get(anon) {
                Some((seen, cached)) if *seen == n_tags => cached.clone(),
                _ => {
                    lookups += 1;
                    // Non-destructive read: the lists stay in place as
                    // the locate stage's replay log.
                    let tags: Vec<TagObservation> = cx
                        .kv
                        .lrange_from(&tags_key, 0)
                        .into_iter()
                        .enumerate()
                        .map(|(i, t)| TagObservation {
                            poll: i as u64,
                            country_tag: Some(t),
                        })
                        .collect();
                    let located = location_module.locate(
                        name.as_str(),
                        None,
                        &cx.world.social_directory,
                        &tags,
                    );
                    self.loc_cache.insert(*anon, (n_tags, located.clone()));
                    located
                }
            };
            if let Some(ls) = located {
                locations.insert(*anon, ls);
            }
        }
        cx.metrics.clean_provisional_locations.add(lookups);

        // Regroup at both granularities, keyed by sketch key.
        struct GroupSpec {
            granularity: Granularity,
            game: GameId,
            loc_key: String,
            members: Vec<AnonId>,
        }
        let mut groups: BTreeMap<String, GroupSpec> = BTreeMap::new();
        for (anon, game) in self.states.keys() {
            let Some((loc, _)) = locations.get(anon) else {
                continue;
            };
            for (granularity, serve, level) in [
                (
                    Granularity::Region,
                    ServeGranularity::Region,
                    loc.to_region_level(),
                ),
                (
                    Granularity::Country,
                    ServeGranularity::Country,
                    loc.to_country_level(),
                ),
            ] {
                let loc_key = level.key();
                let key = dist_sketch_key(serve, *game, &loc_key);
                groups
                    .entry(key)
                    .or_insert_with(|| GroupSpec {
                        granularity,
                        game: *game,
                        loc_key,
                        members: Vec::new(),
                    })
                    .members
                    .push(*anon);
            }
        }

        // Recompute only groups that moved: membership changed, a member
        // received new data, the settled aggregation state behind the
        // group was re-committed, or the group's provenance flipped.
        let gap = tero.params.lat_gap_ms;
        let mut results: Vec<(String, DistProvenance, Option<tero_stats::QuantileSketch>)> =
            Vec::new();
        {
            let views = StateViews(&self.states);
            for (key, spec) in &groups {
                let prov = if spec.members.iter().all(|a| canonical.contains_key(a)) {
                    DistProvenance::Canonical
                } else {
                    DistProvenance::Provisional
                };
                let membership_changed = self.group_members.get(key) != Some(&spec.members);
                let member_fresh = spec
                    .members
                    .iter()
                    .any(|a| fresh.contains(&(*a, spec.game)));
                let agg_moved = agg_refreshed.contains(key);
                let prov_moved = self.online_keys.get(key).is_some_and(|p| *p != prov);
                if !membership_changed && !member_fresh && !agg_moved && !prov_moved {
                    continue;
                }
                let serve = match spec.granularity {
                    Granularity::Region => ServeGranularity::Region,
                    Granularity::Country => ServeGranularity::Country,
                };
                let dist = if prov == DistProvenance::Canonical {
                    // Every member carries a committed locate result, so
                    // the aggregation stage analysed exactly this group
                    // this window: serve its settled distribution — the
                    // same bytes the publish finalizer will write at the
                    // horizon.
                    agg.analysis_for(serve, &spec.loc_key, spec.game)
                        .and_then(|a| a.distribution.clone())
                } else if spec.members.len() >= tero.min_streamers {
                    let mut dist = analyze_group(
                        tero,
                        &cx.world.gaz,
                        spec.game,
                        &spec.members,
                        &locations,
                        &views,
                        spec.granularity,
                    )
                    .distribution;
                    // §3.1.2 screen for provisional groups: a mislocated
                    // provisional member's samples rarely land inside the
                    // location's *canonical* latency clusters, so filter
                    // against the live `engine:agg:clusters:*` picture
                    // (on top of the group's own merged clusters, which
                    // `analyze_group` already applied).
                    if tero.reject_outside_clusters && spec.granularity == Granularity::Region {
                        if let (Some(d), Some(clusters)) = (
                            dist.as_mut(),
                            agg.live_clusters().get(&spec.loc_key, spec.game),
                        ) {
                            reject_outside(d, clusters, gap);
                        }
                    }
                    dist
                } else {
                    None
                };
                results.push((
                    key.clone(),
                    prov,
                    dist.map(|d| tero_stats::QuantileSketch::from_values(&d.values_ms)),
                ));
            }
        }
        let mut changed = false;
        let mut written = 0u64;
        for (key, prov, sketch) in results {
            let meta = dist_meta_key(&key).expect("online keys are dist keys");
            match sketch {
                Some(sketch) => {
                    let encoded = sketch.encode();
                    cx.metrics.sketch_bytes.add(encoded.len() as u64);
                    cx.metrics.sketch_commits.inc();
                    cx.kv.set(&key, encoded);
                    cx.kv.set(&meta, prov.tag());
                    self.online_keys.insert(key, prov);
                    written += 1;
                    changed = true;
                }
                None => {
                    if self.online_keys.remove(&key).is_some() {
                        cx.kv.del(&key);
                        cx.kv.del(&meta);
                        changed = true;
                    }
                }
            }
        }
        // Groups that vanished entirely (membership moved away).
        let gone: Vec<String> = self
            .online_keys
            .keys()
            .filter(|k| !groups.contains_key(*k))
            .cloned()
            .collect();
        for key in gone {
            cx.kv.del(&key);
            cx.kv
                .del(&dist_meta_key(&key).expect("online keys are dist keys"));
            self.online_keys.remove(&key);
            changed = true;
        }
        self.group_members = groups
            .into_iter()
            .map(|(k, spec)| (k, spec.members))
            .collect();
        let canonical_count = self
            .online_keys
            .values()
            .filter(|p| **p == DistProvenance::Canonical)
            .count();
        cx.metrics.clean_dists_canonical.set(canonical_count as i64);
        cx.metrics
            .clean_dists_provisional
            .set((self.online_keys.len() - canonical_count) as i64);
        if changed {
            cx.kv.incr_by(SERVE_VERSION_KEY, 1);
        }
        cx.metrics.clean_dists_refreshed.add(written);
    }

    /// Rebuild the in-memory state from the store after a restore: replay
    /// every sample list up to its committed cursor (metric-silent — the
    /// counters were already restored from `engine:counters`). By the
    /// sealing argument above, replaying the same sample prefix
    /// reconstructs the identical sealed/tail split.
    pub fn rebuild(&mut self, kv: &KvStore, params: &TeroParams) {
        let cursors = kv.hgetall(CLEAN_CURSORS_KEY);
        for key in kv.keys_with_prefix(SAMPLES_PREFIX) {
            let Some((anon, game)) = parse_sample_list_key(&key) else {
                continue;
            };
            let consumed: usize = cursors.get(&key).and_then(|v| v.parse().ok()).unwrap_or(0);
            if consumed == 0 {
                continue;
            }
            let mut state = SeriesState::new(anon, game, params);
            state.cursor = consumed;
            let mut samples: Vec<LatencySample> = kv
                .lrange_from(&key, 0)
                .iter()
                .take(consumed)
                .filter_map(|r| SampleRecord::decode(r))
                .map(decode_sample)
                .collect();
            samples.sort_by_key(|s| s.at);
            state.feed(&samples, params);
            state.seal(params);
            state.shifts_seen = state.pelt.change_count();
            self.states.insert((anon, game), state);
        }
    }
}

/// Decode a wire [`SampleRecord`] into a [`LatencySample`], exactly as
/// the batch stitcher did.
fn decode_sample(r: SampleRecord) -> LatencySample {
    match r.alternative {
        Some(alt) => LatencySample::with_alternative(r.at, r.primary, alt),
        None => LatencySample::new(r.at, r.primary),
    }
}

impl Stage for CleanStage {
    type In = ();
    type Out = Cleaned;
    const NAME: &'static str = "clean";

    /// Finalize: produce the full per-series analyses from the online
    /// state. Every view is recomputed fresh on the pool (sealed prefix +
    /// one detection over the unsealed tail), so the output — and the
    /// analyze task traces — are byte-identical to the legacy batch path.
    fn run(&mut self, cx: &mut StageCx<'_>, _input: ()) -> Self::Out {
        let m = cx.stage_metrics(Self::NAME);
        let _t = m.begin();
        m.records_in.add(self.states.len() as u64);
        let mut anomalies: BTreeMap<(AnonId, GameId), AnomalyReport> = BTreeMap::new();
        let mut classified: BTreeMap<(AnonId, GameId), ClassifiedStreamer> = BTreeMap::new();
        let entries: Vec<(&(AnonId, GameId), &SeriesState)> = self.states.iter().collect();
        let sp_analyze = cx.sp_run.child("stage.analyze");
        let analyze_stage = cx.tero.trace.stage(&sp_analyze, "analyze.task");
        let params = &cx.tero.params;
        let analyzed: Vec<((AnomalyReport, ClassifiedStreamer), TaskTrace)> = {
            let _t = cx.tero.obs.stage_timer(&cx.metrics.stage_analyze_us);
            cx.pool.par_map_indexed(&entries, |i, (key, state)| {
                let mut t = analyze_stage.task(i as u64);
                if let Some(first) = state.streams.first().and_then(|s| s.first()) {
                    t.set_sim_time(first.at);
                }
                let report = state.view_report(params);
                if report.all_unstable {
                    t.event(Level::Warn, "all segments unstable; streamer discarded");
                }
                let cls = classify_streamer(key.0, &report, params);
                ((report, cls), t.finish())
            })
        };
        let mut analyze_traces = Vec::with_capacity(analyzed.len());
        let mut streams: BTreeMap<(AnonId, GameId), Vec<StreamSeries>> = BTreeMap::new();
        for ((key, state), ((report, cls), trace)) in entries.iter().zip(analyzed) {
            analyze_traces.push(trace);
            let (anon, game) = **key;
            let series: Vec<StreamSeries> = state
                .streams
                .iter()
                .map(|samples| StreamSeries {
                    anon,
                    game,
                    samples: samples.clone(),
                })
                .collect();
            cx.metrics.streams_stitched.add(series.len() as u64);
            cx.metrics.segments_built.add(report.segments.len() as u64);
            cx.metrics.spikes_detected.add(report.spikes.len() as u64);
            for label in &report.labels {
                match label {
                    SegmentLabel::CorrectedGlitch => cx.metrics.glitches_corrected.inc(),
                    SegmentLabel::DiscardedGlitch => cx.metrics.glitches_discarded.inc(),
                    _ => {}
                }
            }
            let total_points: usize = report.segments.iter().map(|s| s.samples.len()).sum();
            let kept = report.clean_count();
            cx.metrics
                .points_discarded
                .add(total_points.saturating_sub(kept) as u64);
            streams.insert((anon, game), series);
            classified.insert((anon, game), cls);
            anomalies.insert((anon, game), report);
        }
        analyze_stage.flush(analyze_traces);
        drop(sp_analyze);
        m.records_out.add(anomalies.len() as u64);
        drop(entries);
        Cleaned {
            streams,
            anomalies,
            classified,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TeroParams {
        TeroParams::default() // LatGap 15, StableLen 30 min → 6 points
    }

    /// The batch reference: full stitch + segmentation + detection, as
    /// the legacy stitch/clean stages computed it.
    fn batch_report(samples: &[LatencySample], params: &TeroParams) -> AnomalyReport {
        let mut sorted = samples.to_vec();
        sorted.sort_by_key(|s| s.at);
        let mut streams: Vec<Vec<LatencySample>> = Vec::new();
        for &s in &sorted {
            let split = streams
                .last()
                .and_then(|st| st.last())
                .is_none_or(|last| s.at.since(last.at) > STREAM_GAP);
            if split {
                streams.push(Vec::new());
            }
            streams.last_mut().unwrap().push(s);
        }
        let mut segments = Vec::new();
        for (idx, stream) in streams.iter().enumerate() {
            segments.extend(crate::analysis::segments::segment_stream(
                idx, stream, params,
            ));
        }
        detect_anomalies(segments, params)
    }

    /// A synthetic multi-stream series with stable plateaus, glitches,
    /// spikes, drift, and an offline gap — rich enough to exercise every
    /// label.
    fn synthetic_series(seed: u64) -> Vec<LatencySample> {
        let mut out = Vec::new();
        let mut t = 0u64;
        let mut rng = seed;
        let mut next = || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) as u32
        };
        let push = |t: u64, v: u32, out: &mut Vec<LatencySample>| {
            out.push(LatencySample::new(SimTime::from_mins(t), v));
        };
        for block in 0..6u32 {
            let level = 40 + (next() % 4) * 25;
            let len = 4 + next() % 10;
            for _ in 0..len {
                push(t, level + next() % 6, &mut out);
                t += 5;
            }
            match next() % 4 {
                0 => {
                    // A short glitch run far below the level.
                    for _ in 0..1 + next() % 2 {
                        push(t, (level / 10).max(1), &mut out);
                        t += 5;
                    }
                }
                1 => {
                    // A short spike run far above the level.
                    for _ in 0..1 + next() % 3 {
                        push(t, level + 120 + next() % 30, &mut out);
                        t += 5;
                    }
                }
                2 => {
                    // Offline gap: a new stream starts.
                    t += 60 * (1 + (next() % 4) as u64);
                }
                _ => {}
            }
            let _ = block;
        }
        out
    }

    #[test]
    fn online_view_matches_batch_under_any_window_split() {
        let p = params();
        for seed in [1u64, 7, 23, 99, 1234] {
            let series = synthetic_series(seed);
            let want = format!("{:?}", batch_report(&series, &p));
            // Feed the same series in windows of several sizes, checking
            // the view after every batch against the batch detector over
            // the fed prefix.
            for chunk in [1usize, 3, 5, 17, series.len().max(1)] {
                let mut state = SeriesState::new(AnonId(1), GameId::ALL[0], &p);
                let mut fed = 0usize;
                for batch in series.chunks(chunk) {
                    state.feed(batch, &p);
                    state.seal(&p);
                    fed += batch.len();
                    let got = format!("{:?}", state.view_report(&p));
                    let want_prefix = format!("{:?}", batch_report(&series[..fed], &p));
                    assert_eq!(
                        got, want_prefix,
                        "seed {seed} chunk {chunk}: view diverged after {fed} samples"
                    );
                }
                let got = format!("{:?}", state.view_report(&p));
                assert_eq!(got, want, "seed {seed} chunk {chunk}: horizon view");
                // The passthrough streams match the batch stitcher too.
                let batch_streams: Vec<usize> = {
                    let mut sorted = series.clone();
                    sorted.sort_by_key(|s| s.at);
                    let mut streams: Vec<Vec<LatencySample>> = Vec::new();
                    for &s in &sorted {
                        let split = streams
                            .last()
                            .and_then(|st| st.last())
                            .is_none_or(|last| s.at.since(last.at) > STREAM_GAP);
                        if split {
                            streams.push(Vec::new());
                        }
                        streams.last_mut().unwrap().push(s);
                    }
                    streams.iter().map(|s| s.len()).collect()
                };
                let got_streams: Vec<usize> = state.streams.iter().map(|s| s.len()).collect();
                assert_eq!(got_streams, batch_streams, "seed {seed} chunk {chunk}");
            }
        }
    }

    #[test]
    fn sealing_actually_freezes_a_prefix() {
        // A series with several long stable plateaus must seal segments
        // well before the horizon — otherwise the per-window cost claim
        // is vacuous.
        let p = params();
        let series = synthetic_series(42);
        let mut state = SeriesState::new(AnonId(1), GameId::ALL[0], &p);
        let mut max_sealed = 0usize;
        for batch in series.chunks(6) {
            state.feed(batch, &p);
            state.seal(&p);
            max_sealed = max_sealed.max(state.sealed.len());
        }
        assert!(
            max_sealed > 0,
            "no segment ever sealed over {} samples",
            series.len()
        );
        // The unsealed suffix stays bounded by the data since the last
        // stable segment, not the total history.
        assert!(state.tail.len() < state.sealed.len() + state.tail.len());
    }

    #[test]
    fn all_unstable_series_never_seals_and_matches_batch() {
        // Latencies that never settle: no stable segment, so nothing
        // seals and the view takes the detector's all-unstable path.
        let p = params();
        let series: Vec<LatencySample> = (0..30)
            .map(|i| LatencySample::new(SimTime::from_mins(5 * i), 40 + (i as u32 % 5) * 40))
            .collect();
        let mut state = SeriesState::new(AnonId(1), GameId::ALL[0], &p);
        for batch in series.chunks(4) {
            state.feed(batch, &p);
            assert_eq!(state.seal(&p), 0);
        }
        let got = state.view_report(&p);
        assert!(got.all_unstable);
        assert_eq!(
            format!("{got:?}"),
            format!("{:?}", batch_report(&series, &p))
        );
    }

    #[test]
    fn clean_state_key_is_protected() {
        let key = clean_state_key(AnonId(0xabcd), GameId::ALL[1]);
        assert!(key.starts_with(tero_store::PROTECTED_PREFIX));
        assert!(key.starts_with(CLEAN_PREFIX));
        assert!(CLEAN_CURSORS_KEY.starts_with(CLEAN_PREFIX));
    }

    #[test]
    fn summary_reflects_fed_state() {
        let p = params();
        let series = synthetic_series(7);
        let mut a = SeriesState::new(AnonId(1), GameId::ALL[0], &p);
        a.feed(&series, &p);
        a.seal(&p);
        a.cursor = series.len();
        // Feeding the same series in two halves commits the same summary.
        let mut b = SeriesState::new(AnonId(1), GameId::ALL[0], &p);
        let mid = series.len() / 2;
        b.feed(&series[..mid], &p);
        b.seal(&p);
        b.feed(&series[mid..], &p);
        b.seal(&p);
        b.cursor = series.len();
        assert_eq!(a.summary(), b.summary());
        assert!(a.summary().contains("\"records\":"));
    }
}
