//! # tero-vision
//!
//! Image-processing substrate for the Tero reproduction (§3.2, App. E).
//!
//! The paper extracts latency numbers from low-resolution gaming thumbnails
//! with three OCR engines (Tesseract, EasyOCR, PaddleOCR) whose errors are
//! *complementary*, enabling a 2-of-3 vote. This crate rebuilds the whole
//! stack from scratch, offline:
//!
//! * [`image`] — an 8-bit grayscale raster type;
//! * [`font`] — a 5×7 bitmap font whose glyph shapes reproduce the paper's
//!   confusion pairs (8 ↔ B/S, 0 ↔ O, 4 ↔ A);
//! * [`scene`] — a HUD *scene composer* that renders synthetic thumbnails
//!   with the failure modes of Fig 6: typical displays, too-light fonts,
//!   partially hidden values, and clock overlays;
//! * [`preprocess`] — the App. E pre-processing pipeline: crop, upscale,
//!   Gaussian blur, Otsu thresholding \[40\], dilation and erosion;
//! * [`ocr`] — three template-matching OCR engines with deliberately
//!   different pre-processing and acceptance thresholds, so their error
//!   sets overlap only partially (the property the voting step exploits);
//! * [`combine`] — the cleanup + 2-of-3 voting combiner with primary and
//!   alternative outputs, plus the reprocessing fallback (App. E step 4).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod combine;
pub mod font;
pub mod image;
pub mod ocr;
pub mod preprocess;
pub mod scene;

pub use combine::{CombineOutcome, OcrCombiner};
pub use image::Image;
pub use ocr::{OcrEngine, OcrEngineKind};
pub use scene::{HudScene, ScenarioKind};
