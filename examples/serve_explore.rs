//! Serving-layer explorer: run the pipeline, stand up a `tero-serve`
//! query engine over the committed sketches, and walk through every query
//! shape — percentiles against the exact report values, CDFs, histograms,
//! Wasserstein comparisons, and a seeded load replay.
//!
//! ```sh
//! cargo run --release --example serve_explore            # defaults
//! cargo run --release --example serve_explore -- 7      # explicit seed
//! cargo run --release --example serve_explore -- 7 4    # run in 4 windows
//! ```
//!
//! The first argument is the world seed, the optional second a window
//! count: the run is driven through `Tero::run_window` in that many equal
//! time slices (`1` = the single-shot `run()`). Stdout is **byte-stable**:
//! for a fixed seed it is identical across repeat runs, worker counts and
//! window schedules, because everything printed derives from the committed
//! sketches (byte-identical by the serving layer's determinism contract)
//! and from sequential, seed-pinned query streams. Run-specific facts —
//! the serving version, wall-clock — go to stderr. `scripts/ci.sh` runs
//! this example twice and diffs stdout, then once more with a 4-window
//! schedule and diffs again.

use tero::core::pipeline::{ExtractionMode, Tero, TeroReport, WindowOutcome};
use tero::core::serving::{dist_provenance, dist_sketch_key, DistProvenance, ServeGranularity};
use tero::pool::Pool;
use tero::serve::{run_load, LoadGen, QueryEngine, SketchRef};
use tero::types::{GameId, Location, SimDuration, SimTime};
use tero::world::{World, WorldConfig};

/// Drive the run as `n` equal windows through the staged engine.
fn run_windowed(tero: &Tero, world: &mut World, n: u64) -> TeroReport {
    let horizon = world.horizon;
    let step = SimDuration::from_micros(horizon.as_micros().div_ceil(n).max(1));
    let mut to = SimTime::EPOCH + step;
    loop {
        match tero.run_window(world, SimTime::EPOCH, to) {
            WindowOutcome::Complete(report) => return report,
            WindowOutcome::Advanced => to += step,
            WindowOutcome::Killed => {}
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be a u64"))
        .unwrap_or(7);
    let windows: u64 = args
        .next()
        .map(|a| a.parse().expect("windows must be a u64"))
        .unwrap_or(1);

    // The §5.2 workload shape: streamers pinned to a handful of places so
    // the publish stage has location groups that clear `min_streamers` —
    // a random small world rarely concentrates enough located streamers
    // in one country to publish anything.
    let locations = [
        Location::country("Netherlands"),
        Location::country("Poland"),
        Location::country("Switzerland"),
        Location::region("United States", "Illinois"),
    ];
    let pinned = locations
        .iter()
        .map(|l| (l.clone(), GameId::LeagueOfLegends, 16))
        .collect();
    let mut world = World::build(WorldConfig {
        seed,
        n_streamers: 0,
        days: 3,
        pinned,
        api_budget_per_min: 2_000,
        ..WorldConfig::default()
    });
    let tero = Tero {
        mode: ExtractionMode::Calibrated,
        min_streamers: 2,
        ..Tero::default()
    };
    let report = if windows <= 1 {
        tero.run(&mut world)
    } else {
        run_windowed(&tero, &mut world, windows)
    };

    // The serving store outlives the engine; the query front-end wraps it.
    let engine = QueryEngine::new(
        tero.serving_store().expect("completed run serves"),
        &tero.obs,
    );
    // Run-specific: the version counts engine commits, which vary with
    // the window schedule — stderr, like trace_explore's output path.
    eprintln!("serving view at version {}", engine.version());

    // ---- Every served distribution, sketch vs exact report summary ----
    println!("== served distributions (seed {seed}) ==");
    let served = engine.distributions();
    println!(
        "{} distributions served, {} in the report",
        served.len(),
        report.distributions.len()
    );
    // Every sketch carries a provenance marker: `c` when all members were
    // located by committed (profile-backed) `engine:locate:*` results, `p`
    // when a mid-run window served a provisional tags-only fallback. By
    // the horizon the publish finalizer has rewritten the family from the
    // settled aggregation state, so the markers must read 100 % canonical
    // regardless of the window schedule.
    let store = tero.serving_store().expect("completed run serves");
    for (granularity, game, location_key) in &served {
        let target = SketchRef::dist(*granularity, *game, location_key);
        let sketch_bp = engine.boxplot(&target).expect("served sketch is non-empty");
        // The matching report distribution: same location key, game and
        // sample count (count disambiguates the two granularities when a
        // country-only-located group publishes the same key at both).
        let exact = report
            .distributions
            .iter()
            .find(|d| {
                d.game == *game && d.location.key() == *location_key && d.stats.n == sketch_bp.n
            })
            .expect("every served distribution is in the report");
        let tag = match granularity {
            ServeGranularity::Region => 'r',
            ServeGranularity::Country => 'c',
        };
        let prov = dist_provenance(&store, &dist_sketch_key(*granularity, *game, location_key))
            .expect("every served sketch carries a provenance marker");
        println!(
            "[{tag}/{}] {location_key} / {game}: n={} served p50={:.2} p95={:.2} (report p50={:.2} p95={:.2})",
            prov.tag(), sketch_bp.n, sketch_bp.p50, sketch_bp.p95, exact.stats.p50, exact.stats.p95
        );
    }
    let canonical = served
        .iter()
        .filter(|(g, game, loc)| {
            dist_provenance(&store, &dist_sketch_key(*g, *game, loc))
                == Some(DistProvenance::Canonical)
        })
        .count();
    assert_eq!(
        canonical,
        served.len(),
        "the horizon serves canonical locations only"
    );
    println!(
        "provenance: {canonical}/{} canonical at the horizon",
        served.len()
    );

    // ---- CDF and histogram of the largest distribution ----------------
    let largest = served
        .iter()
        .max_by_key(|(g, game, loc)| {
            let bp = engine.boxplot(&SketchRef::dist(*g, *game, loc));
            (
                bp.map(|b| b.n).unwrap_or(0),
                std::cmp::Reverse((*g, *game, loc.clone())),
            )
        })
        .expect("run published at least one distribution");
    let target = SketchRef::dist(largest.0, largest.1, &largest.2);
    println!();
    println!("== {} / {} in depth ==", largest.2, largest.1);
    for x in [25.0, 50.0, 75.0, 100.0, 150.0] {
        println!(
            "  P(latency <= {x:>5.1} ms) = {:.4}",
            engine.cdf(&target, x).expect("non-empty")
        );
    }
    let rows = engine.histogram(&target);
    println!(
        "  histogram: {} buckets, {} values, widest bucket holds {}",
        rows.len(),
        rows.iter().map(|r| r.2).sum::<u64>(),
        rows.iter().map(|r| r.2).max().unwrap_or(0)
    );

    // ---- Wasserstein distances between the first few distributions ----
    println!();
    println!("== pairwise Wasserstein-1 (first 3 served) ==");
    for (ga, gamea, la) in served.iter().take(3) {
        for (gb, gameb, lb) in served.iter().take(3) {
            let d = engine
                .wasserstein(
                    &SketchRef::dist(*ga, *gamea, la),
                    &SketchRef::dist(*gb, *gameb, lb),
                )
                .expect("non-empty");
            print!("  {d:>8.2}");
        }
        println!(
            "  <- [{}] {la} / {gamea}",
            match ga {
                ServeGranularity::Region => 'r',
                ServeGranularity::Country => 'c',
            }
        );
    }

    // ---- Sequential warm-up: deterministic cache behaviour ------------
    // Cache hit/miss counts are only schedule-dependent under parallel
    // replay (which worker warms a key first is a race); a sequential
    // stream's counts depend on nothing but the query order.
    let targets: Vec<SketchRef> = served
        .iter()
        .map(|(g, game, loc)| SketchRef::dist(*g, *game, loc))
        .collect();
    let warm_queries = LoadGen::new(seed, targets.clone()).generate(500);
    for q in &warm_queries {
        engine.query(q);
    }
    let (hits, misses, evictions) = engine.cache_stats();
    println!();
    println!("== sequential replay, 500 queries ==");
    println!("cache: {hits} hits, {misses} misses, {evictions} evictions");

    // ---- Parallel load replay: only the answers are contract ----------
    let load_queries = LoadGen::new(seed.wrapping_add(1), targets).generate(20_000);
    let load = run_load(&engine, &Pool::new(4), &load_queries);
    println!();
    println!("== parallel replay, 4 workers ==");
    println!(
        "{} queries, {} answered, answer checksum {:#018x}",
        load.queries, load.answered, load.checksum
    );
}
