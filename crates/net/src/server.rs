//! One store shard: a local KV + object store behind a frame handler.
//!
//! A [`StoreServer`] is what a `shard{N}p` / `shard{N}r` host runs. It
//! owns plain in-process stores and executes decoded requests through
//! [`tero_store::apply_kv`] / [`tero_store::apply_obj`] — the same
//! executors a loopback test double uses, so server behaviour is the
//! local-store behaviour by construction.
//!
//! **Exactly-once:** list mutations (`rpush`, `lpop`) are not
//! idempotent, and the transport may lose a *response* after the server
//! already applied the request. The server therefore remembers, per
//! client, the last `seq` it executed and the encoded response it sent;
//! a frame re-carrying that `seq` is answered from cache without
//! touching the stores. The client bumps `seq` once per logical
//! operation and reuses it on retries, which makes every retry safe.

use crate::frame::{decode, encode, Frame, Payload};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use tero_store::{apply_kv, apply_obj, KvStore, ObjectStore};

struct ServerInner {
    name: String,
    kv: KvStore,
    objects: ObjectStore,
    /// Per-client retry cache: client id → (last seq, encoded response).
    dedup: Mutex<HashMap<u64, (u64, Vec<u8>)>>,
}

/// One store shard host. Cloning shares the underlying stores.
#[derive(Clone)]
pub struct StoreServer {
    inner: Arc<ServerInner>,
}

impl StoreServer {
    /// Create a server with empty stores, named after its host.
    pub fn new(name: impl Into<String>) -> StoreServer {
        StoreServer {
            inner: Arc::new(ServerInner {
                name: name.into(),
                kv: KvStore::new(),
                objects: ObjectStore::new(),
                dedup: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// The host name this server answers as.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Direct handle to the shard's KV store (tests and debugging).
    pub fn kv(&self) -> &KvStore {
        &self.inner.kv
    }

    /// Direct handle to the shard's object store (tests and debugging).
    pub fn objects(&self) -> &ObjectStore {
        &self.inner.objects
    }

    /// Execute one request frame and produce the response frame.
    ///
    /// Panics on malformed frames: inside the simulation the only frame
    /// producer is [`crate::client`], so corruption is a programming
    /// error, not an operational condition.
    pub fn handle(&self, bytes: &[u8]) -> Vec<u8> {
        let frame = decode(bytes).expect("server received malformed frame");
        {
            let dedup = self.inner.dedup.lock();
            if let Some((last_seq, cached)) = dedup.get(&frame.client) {
                if *last_seq == frame.seq {
                    return cached.clone();
                }
            }
        }
        let payload = match frame.payload {
            Payload::KvReq(req) => Payload::KvResp(apply_kv(&self.inner.kv, req)),
            Payload::ObjReq(req) => Payload::ObjResp(apply_obj(&self.inner.objects, req)),
            Payload::Ping => Payload::Pong,
            other => panic!("server received non-request frame {other:?}"),
        };
        let out = encode(&Frame {
            client: frame.client,
            seq: frame.seq,
            payload,
        });
        self.inner
            .dedup
            .lock()
            .insert(frame.client, (frame.seq, out.clone()));
        out
    }
}

impl std::fmt::Debug for StoreServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreServer")
            .field("name", &self.inner.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_store::{KvRequest, KvResponse};

    fn kv_frame(seq: u64, req: KvRequest) -> Vec<u8> {
        encode(&Frame {
            client: 1,
            seq,
            payload: Payload::KvReq(req),
        })
    }

    fn kv_resp(bytes: &[u8]) -> KvResponse {
        match decode(bytes).expect("valid response").payload {
            Payload::KvResp(r) => r,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn executes_requests_against_local_stores() {
        let server = StoreServer::new("shard0p");
        let resp = server.handle(&kv_frame(
            1,
            KvRequest::Rpush {
                key: "q".into(),
                value: "a".into(),
            },
        ));
        assert_eq!(kv_resp(&resp), KvResponse::Uint(1));
        assert_eq!(server.kv().llen("q"), 1);
    }

    #[test]
    fn retried_seq_is_answered_from_cache_not_reapplied() {
        let server = StoreServer::new("shard0p");
        let push = kv_frame(
            7,
            KvRequest::Rpush {
                key: "q".into(),
                value: "a".into(),
            },
        );
        let first = server.handle(&push);
        // The response was "lost"; the client retries the same frame.
        let second = server.handle(&push);
        assert_eq!(first, second, "retry must see the cached response");
        assert_eq!(server.kv().llen("q"), 1, "mutation applied exactly once");
        // A new seq executes normally again.
        let resp = server.handle(&kv_frame(8, KvRequest::Lpop { key: "q".into() }));
        assert_eq!(kv_resp(&resp), KvResponse::MaybeStr(Some("a".into())));
    }

    #[test]
    fn dedup_is_per_client() {
        let server = StoreServer::new("shard0p");
        let mk = |client: u64| {
            encode(&Frame {
                client,
                seq: 1,
                payload: Payload::KvReq(KvRequest::Rpush {
                    key: "q".into(),
                    value: format!("c{client}"),
                }),
            })
        };
        server.handle(&mk(1));
        server.handle(&mk(2));
        assert_eq!(server.kv().llen("q"), 2, "distinct clients both apply");
    }

    #[test]
    fn ping_pongs() {
        let server = StoreServer::new("shard0p");
        let resp = server.handle(&encode(&Frame {
            client: 9,
            seq: 1,
            payload: Payload::Ping,
        }));
        assert_eq!(decode(&resp).expect("pong").payload, Payload::Pong);
    }
}
