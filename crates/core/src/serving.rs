//! The serving-layer key schema: where the staged engine commits
//! [`QuantileSketch`] state into [`tero_store::KvStore`], and how
//! `tero-serve` finds it.
//!
//! Two sketch families live under the chaos-exempt `engine:serve:` prefix:
//!
//! * **Raw sketches** ([`raw_sketch_key`], one per `{streamer, game}`):
//!   every extracted primary value, maintained by the extract stage and
//!   committed — together with the rest of the engine's resumable state —
//!   at every window boundary. This is the incrementally-updating view: it
//!   is complete up to the last committed window even while a run is still
//!   in flight, and it survives a chaos kill/resume.
//! * **Distribution sketches** ([`dist_sketch_key`], one per `{granularity,
//!   game, location}`): the cleaned per-`{location, game}` §5.2
//!   distributions, written by the publish stage at finalize from exactly
//!   the values behind the report's `LocationDistribution`s. These are
//!   what `tero-serve` answers percentile/CDF/histogram/Wasserstein
//!   queries from.
//!
//! The granularity tag (`r`/`c`) comes *before* the location key because
//! region-level and country-level groups can share a key string (a
//! country-only-located streamer's region-level location *is* its
//! country), and because location keys contain `/` and `:` freely — the
//! tag and game index are fixed-width fields in front, so parsing never
//! has to guess where the location starts.
//!
//! Every write to the serving view bumps [`SERVE_VERSION_KEY`]; the
//! `tero-serve` hot-key cache stamps entries with the version it read and
//! drops them when it changes, so a committed window invalidates the
//! cache without any cross-component signalling.

use tero_stats::QuantileSketch;
use tero_store::KvStore;
use tero_types::{AnonId, GameId};

/// Everything the serving layer stores lives under this prefix (inside
/// [`tero_store::PROTECTED_PREFIX`], so chaos never drops it).
pub const SERVE_PREFIX: &str = "engine:serve:";

/// Monotonic version of the serving view. Bumped once per engine commit
/// that touched a sketch and once by the publish stage; cache entries
/// carry the version they were computed at and expire when it moves.
pub const SERVE_VERSION_KEY: &str = "engine:serve:version";

/// Prefix of the per-`{streamer, game}` raw sketches.
pub const RAW_SKETCH_PREFIX: &str = "engine:serve:raw:";

/// Prefix of the per-`{granularity, game, location}` distribution
/// sketches.
pub const DIST_SKETCH_PREFIX: &str = "engine:serve:dist:";

/// Prefix of the per-distribution provenance markers: for every
/// [`dist_sketch_key`] the engine also writes
/// `engine:serve:dist_meta:{same suffix}` holding a
/// [`DistProvenance`] tag. The `_meta` spelling (underscore, not a
/// colon segment) keeps the marker family out of any
/// `keys_with_prefix(DIST_SKETCH_PREFIX)` scan.
pub const DIST_META_PREFIX: &str = "engine:serve:dist_meta:";

/// Whether a served distribution was aggregated under canonical
/// (budgeted-locate, §3.1) locations or the mid-run provisional
/// fallback. By the horizon every marker is canonical — the publish
/// finalizer rewrites the whole family from committed aggregation
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistProvenance {
    /// Every group member carried a committed `engine:locate:*` result.
    Canonical,
    /// At least one member was still located by the provisional
    /// tags-only lookup (its budgeted profile fetch hasn't landed yet).
    Provisional,
}

impl DistProvenance {
    /// The stored marker value (`c` / `p`).
    pub fn tag(self) -> &'static str {
        match self {
            DistProvenance::Canonical => "c",
            DistProvenance::Provisional => "p",
        }
    }

    /// Parse a stored [`DistProvenance::tag`] value.
    pub fn from_tag(tag: &str) -> Option<DistProvenance> {
        match tag {
            "c" => Some(DistProvenance::Canonical),
            "p" => Some(DistProvenance::Provisional),
            _ => None,
        }
    }
}

/// The provenance-marker key paired with a [`dist_sketch_key`] (`None`
/// if `dist_key` is not one).
pub fn dist_meta_key(dist_key: &str) -> Option<String> {
    let suffix = dist_key.strip_prefix(DIST_SKETCH_PREFIX)?;
    Some(format!("{DIST_META_PREFIX}{suffix}"))
}

/// Read the provenance marker for a [`dist_sketch_key`], if present.
pub fn dist_provenance(kv: &KvStore, dist_key: &str) -> Option<DistProvenance> {
    DistProvenance::from_tag(&kv.get(&dist_meta_key(dist_key)?)?)
}

/// The aggregation level a distribution sketch was published at — the
/// serving-layer mirror of the publish stage's two §5 granularities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ServeGranularity {
    /// Region-level `{location, game}` groups.
    Region,
    /// Country-level groups (Figs 9, 11, 12).
    Country,
}

impl ServeGranularity {
    /// The single-character key tag (`r` / `c`).
    pub fn tag(self) -> char {
        match self {
            ServeGranularity::Region => 'r',
            ServeGranularity::Country => 'c',
        }
    }

    /// Parse a [`ServeGranularity::tag`] character.
    pub fn from_tag(tag: &str) -> Option<ServeGranularity> {
        match tag {
            "r" => Some(ServeGranularity::Region),
            "c" => Some(ServeGranularity::Country),
            _ => None,
        }
    }
}

/// Why a `Tero` cannot hand back a queryable serving view — the typed
/// result of [`crate::pipeline::Tero::try_serving_store`].
///
/// The dangerous case is [`ServingError::NoDistributions`]: a run
/// *completed* but the publish stage emitted zero distribution
/// sketches, so a query engine built over the store would answer every
/// percentile/CDF query with "unknown location" rather than failing
/// loudly. This happens legitimately on small or unlucky worlds — §5.2
/// drops every `{location, game}` group below the `min_streamers`
/// threshold, and a handful of randomly-located streamers can leave no
/// group large enough — which makes the silently-empty store easy to
/// mistake for a serving bug. The typed condition lets callers tell
/// "nothing ran" from "ran, but published nothing" at the point where
/// the store is handed to `tero-serve`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingError {
    /// No run has completed on this `Tero` yet: either nothing was run,
    /// or a windowed run is still in flight and has not finalized.
    NoCompletedRun,
    /// A run completed, but its publish stage wrote no
    /// [`dist_sketch_key`] entries — every candidate `{location, game}`
    /// group fell below the publish threshold.
    NoDistributions,
}

impl std::fmt::Display for ServingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServingError::NoCompletedRun => write!(f, "no completed run to serve from"),
            ServingError::NoDistributions => write!(
                f,
                "run completed but published no distributions \
                 (every {{location, game}} group fell below the publish threshold)"
            ),
        }
    }
}

impl std::error::Error for ServingError {}

/// Index of `game` in [`GameId::ALL`], the serving schema's fixed-width
/// game field (same convention as `stages::sample_list_key`).
pub(crate) fn game_index(game: GameId) -> usize {
    GameId::ALL
        .iter()
        .position(|g| *g == game)
        .expect("every GameId is in GameId::ALL")
}

/// The KV key of one `{streamer, game}` raw sketch:
/// `engine:serve:raw:{anon:016x}:{game_idx:02}`.
pub fn raw_sketch_key(anon: AnonId, game: GameId) -> String {
    format!("{RAW_SKETCH_PREFIX}{:016x}:{:02}", anon.0, game_index(game))
}

/// Parse a [`raw_sketch_key`] back into its `{streamer, game}` pair.
pub fn parse_raw_sketch_key(key: &str) -> Option<(AnonId, GameId)> {
    let rest = key.strip_prefix(RAW_SKETCH_PREFIX)?;
    let (anon_hex, idx) = rest.split_once(':')?;
    let anon = u64::from_str_radix(anon_hex, 16).ok()?;
    let game = *GameId::ALL.get(idx.parse::<usize>().ok()?)?;
    Some((AnonId(anon), game))
}

/// The KV key of one published distribution sketch:
/// `engine:serve:dist:{r|c}:{game_idx:02}:{location_key}` where
/// `location_key` is `Location::key()` at the group's granularity.
pub fn dist_sketch_key(granularity: ServeGranularity, game: GameId, location_key: &str) -> String {
    format!(
        "{DIST_SKETCH_PREFIX}{}:{:02}:{location_key}",
        granularity.tag(),
        game_index(game)
    )
}

/// Parse a [`dist_sketch_key`] into `(granularity, game, location_key)`.
pub fn parse_dist_sketch_key(key: &str) -> Option<(ServeGranularity, GameId, &str)> {
    let rest = key.strip_prefix(DIST_SKETCH_PREFIX)?;
    let (tag, rest) = rest.split_once(':')?;
    let granularity = ServeGranularity::from_tag(tag)?;
    let (idx, location_key) = rest.split_once(':')?;
    let game = *GameId::ALL.get(idx.parse::<usize>().ok()?)?;
    Some((granularity, game, location_key))
}

/// The serving view's current version (0 before anything committed).
pub fn serve_version(kv: &KvStore) -> u64 {
    kv.get(SERVE_VERSION_KEY)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Load and decode the sketch at `key`, if present and well-formed.
pub fn load_sketch(kv: &KvStore, key: &str) -> Option<QuantileSketch> {
    QuantileSketch::decode(&kv.get(key)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_key_roundtrip() {
        for game in GameId::ALL {
            let anon = AnonId(0xfeed_f00d_0000_0001);
            let key = raw_sketch_key(anon, game);
            assert!(key.starts_with(tero_store::PROTECTED_PREFIX));
            assert_eq!(parse_raw_sketch_key(&key), Some((anon, game)));
        }
        assert_eq!(parse_raw_sketch_key("engine:serve:raw:zz:00"), None);
        assert_eq!(parse_raw_sketch_key("engine:samples:00:00"), None);
    }

    #[test]
    fn dist_key_roundtrip_with_slashes_and_colons() {
        let game = GameId::ALL[2];
        for (granularity, loc_key) in [
            (ServeGranularity::Region, "France/Île-de-France"),
            (ServeGranularity::Country, "France"),
            // Location keys may contain the schema's own separators; the
            // fixed-width front fields keep parsing unambiguous.
            (ServeGranularity::Region, "a/b:c/d"),
        ] {
            let key = dist_sketch_key(granularity, game, loc_key);
            assert_eq!(
                parse_dist_sketch_key(&key),
                Some((granularity, game, loc_key))
            );
        }
        assert_eq!(parse_dist_sketch_key("engine:serve:dist:x:00:a"), None);
        assert_eq!(parse_dist_sketch_key("engine:serve:raw:00:00"), None);
    }

    #[test]
    fn region_and_country_keys_never_collide() {
        // The motivating case: a country-only-located group publishes the
        // same location key at both granularities.
        let game = GameId::ALL[0];
        let r = dist_sketch_key(ServeGranularity::Region, game, "France");
        let c = dist_sketch_key(ServeGranularity::Country, game, "France");
        assert_ne!(r, c);
    }

    #[test]
    fn meta_keys_pair_with_dist_keys_without_colliding() {
        let game = GameId::ALL[1];
        let dist = dist_sketch_key(ServeGranularity::Region, game, "France/Île-de-France");
        let meta = dist_meta_key(&dist).unwrap();
        assert!(meta.starts_with(DIST_META_PREFIX));
        assert!(
            !meta.starts_with(DIST_SKETCH_PREFIX),
            "marker keys must never surface in a dist-prefix scan"
        );
        assert_eq!(dist_meta_key("engine:serve:raw:00:00"), None);

        let kv = KvStore::new();
        assert_eq!(dist_provenance(&kv, &dist), None);
        kv.set(&meta, DistProvenance::Canonical.tag());
        assert_eq!(dist_provenance(&kv, &dist), Some(DistProvenance::Canonical));
        kv.set(&meta, DistProvenance::Provisional.tag());
        assert_eq!(
            dist_provenance(&kv, &dist),
            Some(DistProvenance::Provisional)
        );
        assert_eq!(DistProvenance::from_tag("x"), None);
    }

    #[test]
    fn version_and_sketch_helpers() {
        let kv = KvStore::new();
        assert_eq!(serve_version(&kv), 0);
        kv.incr_by(SERVE_VERSION_KEY, 1);
        assert_eq!(serve_version(&kv), 1);
        assert!(load_sketch(&kv, "missing").is_none());
        let sketch = QuantileSketch::from_values(&[1.0, 2.0, 3.0]);
        kv.set("engine:serve:test", sketch.encode());
        assert_eq!(load_sketch(&kv, "engine:serve:test"), Some(sketch));
    }
}
