//! A MongoDB-like document store: collections of JSON documents.
//!
//! Tero keeps latency measurements and analysis products in a document
//! store (App. B). This in-process equivalent supports typed inserts via
//! serde, predicate queries, updates and deletes, and assigns each document
//! a monotonically increasing id within its collection.

use parking_lot::RwLock;
use serde::de::DeserializeOwned;
use serde::Serialize;
use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use tero_obs::{CounterHandle, HistogramHandle, Registry, StageTimer};

#[derive(Default)]
struct Collection {
    next_id: u64,
    docs: BTreeMap<u64, Value>,
}

#[derive(Default)]
struct Inner {
    collections: BTreeMap<String, Collection>,
}

/// Metric handles installed by [`DocumentStore::instrument`].
struct DocMetrics {
    reads: CounterHandle,
    writes: CounterHandle,
    op_us: HistogramHandle,
    registry: Registry,
}

/// A thread-safe in-memory document store. Cloning is cheap (shared handle).
#[derive(Clone, Default)]
pub struct DocumentStore {
    inner: Arc<RwLock<Inner>>,
    metrics: Arc<OnceLock<DocMetrics>>,
}

impl DocumentStore {
    /// Create an empty store.
    pub fn new() -> Self {
        DocumentStore::default()
    }

    /// Register this store's operation metrics (`store.doc.*`) with a
    /// registry. The first call wins; every clone shares the handles.
    pub fn instrument(&self, registry: &Registry) {
        let _ = self.metrics.set(DocMetrics {
            reads: registry.counter("store.doc.reads"),
            writes: registry.counter("store.doc.writes"),
            op_us: registry.histogram("store.doc.op_us"),
            registry: registry.clone(),
        });
    }

    /// Count one operation and (when timing is enabled) time it.
    #[inline]
    fn observe(&self, write: bool) -> Option<StageTimer> {
        let m = self.metrics.get()?;
        if write {
            m.writes.inc();
        } else {
            m.reads.inc();
        }
        Some(m.registry.stage_timer(&m.op_us))
    }

    /// Insert a serialisable document; returns its id.
    ///
    /// # Panics
    /// Panics if the value fails to serialise (programmer error).
    pub fn insert<T: Serialize>(&self, collection: &str, doc: &T) -> u64 {
        let _op = self.observe(true);
        let value = serde_json::to_value(doc).expect("document serialisation failed");
        let mut inner = self.inner.write();
        let col = inner.collections.entry(collection.to_string()).or_default();
        let id = col.next_id;
        col.next_id += 1;
        col.docs.insert(id, value);
        id
    }

    /// Fetch one document by id, deserialised to `T`.
    pub fn get<T: DeserializeOwned>(&self, collection: &str, id: u64) -> Option<T> {
        let _op = self.observe(false);
        let inner = self.inner.read();
        let value = inner.collections.get(collection)?.docs.get(&id)?;
        serde_json::from_value(value.clone()).ok()
    }

    /// All documents matching `pred` (applied to the raw JSON), in id order,
    /// deserialised to `T`. Documents that fail to deserialise are skipped.
    pub fn find<T, F>(&self, collection: &str, pred: F) -> Vec<T>
    where
        T: DeserializeOwned,
        F: Fn(&Value) -> bool,
    {
        let _op = self.observe(false);
        let inner = self.inner.read();
        match inner.collections.get(collection) {
            Some(col) => col
                .docs
                .values()
                .filter(|v| pred(v))
                .filter_map(|v| serde_json::from_value(v.clone()).ok())
                .collect(),
            None => vec![],
        }
    }

    /// All documents in a collection, in id order.
    pub fn all<T: DeserializeOwned>(&self, collection: &str) -> Vec<T> {
        self.find(collection, |_| true)
    }

    /// Replace the document with the given id. Returns whether it existed.
    pub fn update<T: Serialize>(&self, collection: &str, id: u64, doc: &T) -> bool {
        let _op = self.observe(true);
        let value = serde_json::to_value(doc).expect("document serialisation failed");
        let mut inner = self.inner.write();
        match inner.collections.get_mut(collection) {
            Some(col) if col.docs.contains_key(&id) => {
                col.docs.insert(id, value);
                true
            }
            _ => false,
        }
    }

    /// Delete documents matching `pred`; returns how many were removed.
    pub fn delete_where<F>(&self, collection: &str, pred: F) -> usize
    where
        F: Fn(&Value) -> bool,
    {
        let _op = self.observe(true);
        let mut inner = self.inner.write();
        match inner.collections.get_mut(collection) {
            Some(col) => {
                let before = col.docs.len();
                col.docs.retain(|_, v| !pred(v));
                before - col.docs.len()
            }
            None => 0,
        }
    }

    /// Number of documents in a collection.
    pub fn count(&self, collection: &str) -> usize {
        let _op = self.observe(false);
        self.inner
            .read()
            .collections
            .get(collection)
            .map_or(0, |c| c.docs.len())
    }

    /// Names of all collections, sorted.
    pub fn collections(&self) -> Vec<String> {
        let _op = self.observe(false);
        self.inner.read().collections.keys().cloned().collect()
    }
}

impl std::fmt::Debug for DocumentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("DocumentStore")
            .field("collections", &inner.collections.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Measurement {
        streamer: String,
        latency_ms: u32,
    }

    fn m(s: &str, l: u32) -> Measurement {
        Measurement {
            streamer: s.to_string(),
            latency_ms: l,
        }
    }

    #[test]
    fn insert_and_get() {
        let db = DocumentStore::new();
        let id = db.insert("meas", &m("alice", 42));
        let got: Measurement = db.get("meas", id).unwrap();
        assert_eq!(got, m("alice", 42));
        assert!(db.get::<Measurement>("meas", 999).is_none());
        assert!(db.get::<Measurement>("nope", 0).is_none());
    }

    #[test]
    fn ids_are_monotonic() {
        let db = DocumentStore::new();
        let a = db.insert("c", &m("a", 1));
        let b = db.insert("c", &m("b", 2));
        assert!(b > a);
        // Ids are per-collection.
        let other = db.insert("d", &m("x", 3));
        assert_eq!(other, 0);
    }

    #[test]
    fn find_with_predicate() {
        let db = DocumentStore::new();
        for i in 0..10 {
            db.insert("meas", &m("s", i * 10));
        }
        let high: Vec<Measurement> =
            db.find("meas", |v| v["latency_ms"].as_u64().unwrap_or(0) >= 50);
        assert_eq!(high.len(), 5);
        assert!(high.iter().all(|d| d.latency_ms >= 50));
        let none: Vec<Measurement> = db.find("empty", |_| true);
        assert!(none.is_empty());
    }

    #[test]
    fn update_and_delete() {
        let db = DocumentStore::new();
        let id = db.insert("meas", &m("a", 1));
        assert!(db.update("meas", id, &m("a", 99)));
        let got: Measurement = db.get("meas", id).unwrap();
        assert_eq!(got.latency_ms, 99);
        assert!(!db.update("meas", 12345, &m("b", 2)));

        db.insert("meas", &m("b", 2));
        let removed = db.delete_where("meas", |v| v["streamer"] == "a");
        assert_eq!(removed, 1);
        assert_eq!(db.count("meas"), 1);
    }

    #[test]
    fn collection_listing() {
        let db = DocumentStore::new();
        db.insert("b", &m("x", 1));
        db.insert("a", &m("y", 2));
        assert_eq!(db.collections(), vec!["a", "b"]);
        assert_eq!(db.count("a"), 1);
        assert_eq!(db.count("missing"), 0);
    }

    #[test]
    fn concurrent_inserts_get_distinct_ids() {
        let db = DocumentStore::new();
        let mut handles = vec![];
        for t in 0..8 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                (0..50)
                    .map(|i| db.insert("c", &m(&format!("{t}"), i)))
                    .collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 400, "no id collisions");
        assert_eq!(db.count("c"), 400);
    }
}
