//! Anomaly watch — exercise the §3.3.2 detector and the App. F shared-
//! anomaly test on a world with an injected regional outage, the way a
//! monitoring deployment of Tero would see it.
//!
//! ```sh
//! cargo run --release --example anomaly_watch
//! ```

use tero::core::pipeline::{ExtractionMode, Tero};
use tero::types::GameId;
use tero::world::{World, WorldConfig};

fn main() {
    // One game's players concentrated in two regions, plus an injected
    // surge of shared events for that game (a release-day-style incident).
    let gaz = tero::geoparse::Gazetteer::new();
    let game = GameId::LeagueOfLegends;
    let pinned = vec![
        (World::city(&gaz, "Chicago"), game, 50),
        (World::city(&gaz, "Paris"), game, 50),
    ];
    let mut world = World::build(WorldConfig {
        seed: 99,
        n_streamers: 20,
        days: 8,
        pinned,
        shared_events: 0,
        release_event: Some((game, 3)),
        api_budget_per_min: 2_000,
    });
    println!(
        "injected {} ground-truth shared events for {}",
        world.shared_events.len(),
        game.name()
    );

    let tero = Tero {
        mode: ExtractionMode::Calibrated,
        ..Tero::default()
    };
    let report = tero.run(&mut world);

    let spikes: usize = report.anomalies.values().map(|r| r.spikes.len()).sum();
    let glitch_discards: usize = report
        .anomalies
        .values()
        .flat_map(|r| r.labels.iter())
        .filter(|l| {
            matches!(
                l,
                tero::core::analysis::anomaly::SegmentLabel::DiscardedGlitch
                    | tero::core::analysis::anomaly::SegmentLabel::CorrectedGlitch
            )
        })
        .count();
    println!();
    println!("per-streamer anomaly detection:");
    println!("  spikes: {spikes}   glitch segments handled: {glitch_discards}");

    println!();
    println!("shared anomalies (App. F binomial test):");
    if report.shared_anomalies.is_empty() {
        println!("  none — increase the world size or event magnitude");
    }
    for a in &report.shared_anomalies {
        println!(
            "  {} @ {}: {}/{} streamers spiking together (p = {:.2e})",
            a.region, a.at, a.spiking, a.active, a.probability
        );
    }

    // A monitoring deployment also cares *what kind* of locations the
    // served latency picture was aggregated under: every committed
    // distribution sketch carries a provenance marker (`c` = canonical,
    // all members located by committed profile-backed `engine:locate:*`
    // results; `p` = a mid-run provisional tags-only fallback). At the
    // horizon the publish finalizer rewrites the family from the settled
    // aggregation state, so the watch must read 100 % canonical.
    use tero::core::serving::{dist_provenance, DistProvenance, DIST_SKETCH_PREFIX};
    let store = tero.serving_store().expect("completed run serves");
    let dist_keys = store.keys_with_prefix(DIST_SKETCH_PREFIX);
    let canonical = dist_keys
        .iter()
        .filter(|key| dist_provenance(&store, key) == Some(DistProvenance::Canonical))
        .count();
    assert_eq!(
        canonical,
        dist_keys.len(),
        "the horizon serves canonical locations only"
    );
    println!();
    println!(
        "served distributions: {} sketches, {canonical} canonical — the",
        dist_keys.len()
    );
    println!("  anomaly picture above was aggregated under settled locations.");

    // How a deployment would read this: simultaneous spikes in multiple
    // regions for one game on release day → the game's own infrastructure,
    // not the regions' networks.
    let mut regions: Vec<String> = report
        .shared_anomalies
        .iter()
        .map(|a| a.region.key())
        .collect();
    regions.sort();
    regions.dedup();
    if regions.len() >= 2 {
        println!();
        println!(
            "→ {} regions affected at once for one game: points at the game's",
            regions.len()
        );
        println!("  servers or their connectivity (the paper's §4.2.3 reading).");
    }
}
