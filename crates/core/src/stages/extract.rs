//! The extract stage: image processing (§3.2) over the queued thumbnails.
//!
//! Drains `queue:thumbs`, fans the OCR work out over the pool, and
//! performs every order-sensitive side effect — funnel counters, ledger
//! ingestion, dead-lettering, sample persistence — in an ordered merge
//! that walks results in task order, so the outcome is byte-identical at
//! any worker count and over any window schedule. Extracted measurements
//! leave the stage as [`SampleRecord`]s appended to per-`{streamer,
//! game}` KV lists ([`super::sample_list_key`]); usernames land in the
//! [`super::NAMES_KEY`] hash for the locate stage.

use super::{sample_list_key, SampleRecord, Stage, StageCx, NAMES_KEY};
use crate::download::ThumbnailTask;
use crate::imageproc::ImageProcessor;
use crate::pipeline::ExtractionMode;
use std::collections::{BTreeMap, BTreeSet};
use tero_stats::QuantileSketch;
use tero_trace::{DropReason, Level, SampleKey, SampleState, TaskTrace};
use tero_types::{AnonId, GameId};
use tero_vision::combine::CombineOutcome;
use tero_vision::scene::ScenarioKind;
use tero_world::twitch::build_scene;
use tero_world::World;

/// The extract stage. Carries the OCR front-end and the cumulative task
/// counters the engine persists at each window commit.
pub struct ExtractStage {
    processor: ImageProcessor,
    /// Thumbnail tasks processed so far (== `pipeline.thumbnails`).
    pub tasks_processed: u64,
    /// Measurements extracted so far (== `pipeline.extracted`).
    pub extracted: u64,
    /// The serving layer's raw sketches: every extracted primary value,
    /// per `{streamer, game}`. Updated in the ordered merge (insertion
    /// order never affects a sketch, but the fixed order keeps this loop
    /// on the same path as every other side effect) and persisted by the
    /// engine at each window commit under
    /// [`crate::serving::raw_sketch_key`].
    pub(crate) sketches: BTreeMap<(AnonId, GameId), QuantileSketch>,
    /// Sketches touched since the last engine commit.
    pub(crate) dirty_sketches: BTreeSet<(AnonId, GameId)>,
}

impl ExtractStage {
    /// A fresh extract stage reporting into `registry`.
    pub fn new(registry: &tero_obs::Registry) -> ExtractStage {
        ExtractStage {
            processor: ImageProcessor::with_registry(registry),
            tasks_processed: 0,
            extracted: 0,
            sketches: BTreeMap::new(),
            dirty_sketches: BTreeSet::new(),
        }
    }
}

impl Stage for ExtractStage {
    type In = ();
    type Out = u64;
    const NAME: &'static str = "extract";

    /// Drain and process every queued thumbnail task. Returns the number
    /// of measurements extracted from this batch.
    fn run(&mut self, cx: &mut StageCx<'_>, _input: ()) -> Self::Out {
        let m = cx.stage_metrics(Self::NAME);
        let _t = m.begin();
        let mut tasks = cx.io.drain_tasks();
        // Sharded deployment: every engine ingests the full world (the
        // download schedule is identical everywhere, which is what makes
        // the committed cursors mergeable), but extracts only the
        // streamers its shard owns. Filtering happens before any
        // accounting, so the ledger, funnel and sample lists of one
        // engine cover exactly its shard — disjoint across engines,
        // union equal to a single-process run.
        if let Some(spec) = cx.tero.shard {
            let salt = cx.tero.salt;
            tasks.retain(|t| spec.owns(AnonId::from_streamer(&t.streamer, salt)));
        }
        m.records_in.add(tasks.len() as u64);

        let ledger = cx.tero.trace.ledger();
        let sp_extract = cx.sp_run.child("stage.extract");
        let extract_stage = cx.tero.trace.stage(&sp_extract, "extract.task");
        let base = self.tasks_processed;
        // The OCR fan-out: every task reads only thread-safe stores and
        // immutable world state, so the heavy extraction runs on the pool.
        // `None` marks a lost/corrupt object. Everything order-sensitive
        // happens in the ordered merge below, which walks results in task
        // order and is therefore byte-identical to the sequential path.
        let outcomes: Vec<(Option<CombineOutcome>, TaskTrace)> = {
            let _t = cx.tero.obs.stage_timer(&cx.metrics.stage_extract_us);
            let world_ro: &World = cx.world;
            let processor = &self.processor;
            let mode = cx.tero.mode;
            let io = cx.io;
            cx.pool.par_map_indexed(&tasks, |i, task| {
                let mut t = extract_stage.task(base + i as u64);
                t.set_sim_time(task.generated_at);
                let outcome = match mode {
                    ExtractionMode::FullOcr => io
                        .load_image(&task.object_key)
                        .map(|image| processor.extract(&image, task.game_label)),
                    ExtractionMode::Calibrated => Some(calibrated_extract(world_ro, task)),
                };
                match &outcome {
                    None => t.event(Level::Error, "thumbnail missing or corrupt; dead-lettered"),
                    Some(CombineOutcome::NoMeasurement) => {
                        t.event(Level::Debug, "ocr: 2-of-3 vote failed, no measurement")
                    }
                    Some(CombineOutcome::Extracted { .. }) => {}
                }
                (outcome, t.finish())
            })
        };

        let mut batch: BTreeMap<(AnonId, GameId), Vec<String>> = BTreeMap::new();
        let mut batch_extracted = 0u64;
        let mut extract_traces = Vec::with_capacity(outcomes.len());
        for (task, (outcome, trace)) in tasks.iter().zip(outcomes) {
            extract_traces.push(trace);
            cx.metrics.thumbnails.inc();
            let anon = AnonId::from_streamer(&task.streamer, cx.tero.salt);
            // Birth of a lineage record: every thumbnail task becomes a
            // ledger entry that must later be published or dropped with a
            // typed reason.
            let key = SampleKey {
                anon,
                game: task.game_label,
                at: task.generated_at,
            };
            ledger.ingest(key);
            cx.metrics.funnel_ingested.inc();
            let anon_hex = format!("{:016x}", anon.0);
            if cx.kv.hget(NAMES_KEY, &anon_hex).is_none() {
                cx.kv.hset(NAMES_KEY, &anon_hex, task.streamer.as_str());
            }
            let Some(outcome) = outcome else {
                // Lost or corrupt object: quarantine the task so the
                // failure stays auditable, and keep going.
                cx.metrics.images_missing.inc();
                cx.metrics.funnel_dropped[DropReason::DeadLetter.index()].inc();
                ledger.resolve(&key, SampleState::Dropped(DropReason::DeadLetter));
                cx.io.dead_letter(task.encode());
                continue;
            };
            if let CombineOutcome::Extracted {
                primary,
                alternative,
            } = outcome
            {
                batch_extracted += 1;
                cx.metrics.extracted.inc();
                self.sketches
                    .entry((anon, task.game_label))
                    .or_default()
                    .insert(primary as f64);
                self.dirty_sketches.insert((anon, task.game_label));
                cx.metrics.sketch_inserts.inc();
                batch.entry((anon, task.game_label)).or_default().push(
                    SampleRecord {
                        at: task.generated_at,
                        primary,
                        alternative,
                    }
                    .encode(),
                );
            } else {
                cx.metrics.no_measurement.inc();
                cx.metrics.funnel_dropped[DropReason::OcrUnreadable.index()].inc();
                ledger.resolve(&key, SampleState::Dropped(DropReason::OcrUnreadable));
            }
        }
        // Push this window's records to the per-{streamer, game} lists in
        // one batched append per list (App. B's push discipline).
        for ((anon, game), records) in batch {
            cx.kv.rpush_batch(&sample_list_key(anon, game), records);
        }
        extract_stage.flush(extract_traces);
        drop(sp_extract);

        self.tasks_processed += tasks.len() as u64;
        self.extracted += batch_extracted;
        m.records_out.add(batch_extracted);
        batch_extracted
    }
}

/// Mechanical extraction for [`ExtractionMode::Calibrated`]: reproduce the
/// OCR path's failure *mechanisms* from the scene ground truth, at rates
/// matched to the measured Full-OCR behaviour (see `tab04` in
/// EXPERIMENTS.md for the measurements this is calibrated against).
pub(crate) fn calibrated_extract(world: &World, task: &ThumbnailTask) -> CombineOutcome {
    let Some(streamer) = world.streamer(&task.streamer) else {
        return CombineOutcome::NoMeasurement;
    };
    let Some(sample) = world
        .twitch
        .truth_sample(task.streamer.as_str(), task.generated_at)
    else {
        return CombineOutcome::NoMeasurement;
    };
    // The true game being rendered (a mislabeled stream renders its actual
    // game, while the processor crops for the label).
    let truth_stream_game = world
        .timelines()
        .iter()
        .zip(world.streamers())
        .find(|(_, s)| s.id == task.streamer)
        .and_then(|(tl, _)| {
            tl.iter()
                .find(|st| st.start <= task.generated_at && task.generated_at < st.end)
        })
        .map(|st| st.game)
        .unwrap_or(task.game_label);
    if truth_stream_game != task.game_label {
        // Wrong crop: nothing legible.
        return CombineOutcome::NoMeasurement;
    }

    let (scene, mut rng) = build_scene(streamer, truth_stream_game, &sample);
    let value = sample.displayed_ms;
    if value == 0 {
        return CombineOutcome::NoMeasurement; // lobby placeholder
    }
    match scene.scenario {
        ScenarioKind::LightFont => CombineOutcome::NoMeasurement,
        ScenarioKind::ClockOverlay => {
            // The clock reads as a plausible wrong value (minutes field).
            let (_, mm) = scene.clock.unwrap_or((0, 42));
            if mm == 0 {
                CombineOutcome::NoMeasurement
            } else {
                CombineOutcome::Extracted {
                    primary: mm,
                    alternative: None,
                }
            }
        }
        ScenarioKind::PartiallyHidden => {
            let digits = value.to_string().len() as u32;
            let covered = scene.occlusion_fraction;
            if covered > 0.45 || digits == 1 {
                CombineOutcome::NoMeasurement
            } else {
                // Digit drop: leading digit(s) hidden; engines agree on the
                // visible tail (§4.2.2: 68 % of errors are digit drops).
                let keep = digits - 1;
                let primary = value % 10u32.pow(keep);
                if primary == 0 {
                    CombineOutcome::NoMeasurement
                } else {
                    // Occasionally one engine catches the full value and
                    // survives as the alternative.
                    let alternative = rng.chance(0.25).then_some(value);
                    CombineOutcome::Extracted {
                        primary,
                        alternative,
                    }
                }
            }
        }
        ScenarioKind::Typical => {
            // Measured Full-OCR behaviour on typical scenes: ~1-3 % miss
            // under heavy noise, ~2-4 % error (digit confusion), rare
            // disagreement alternatives.
            let noise_factor = (scene.noise * 40.0 + scene.grain / 10.0).min(1.0);
            if rng.chance(0.01 + 0.04 * noise_factor) {
                return CombineOutcome::NoMeasurement;
            }
            if rng.chance(0.015 + 0.05 * noise_factor) {
                // Digit confusion: perturb one digit.
                let digits = value.to_string().len() as u32;
                let pos = rng.below(digits as u64) as u32;
                let delta = [1u32, 2, 5, 7][rng.below(4) as usize];
                let scale = 10u32.pow(pos);
                let perturbed = if rng.chance(0.5) {
                    value.saturating_add(delta * scale)
                } else {
                    value.saturating_sub(delta * scale)
                };
                let perturbed = perturbed.clamp(1, 999);
                if perturbed != value {
                    let alternative = rng.chance(0.4).then_some(value);
                    return CombineOutcome::Extracted {
                        primary: perturbed,
                        alternative,
                    };
                }
            }
            CombineOutcome::Extracted {
                primary: value,
                alternative: None,
            }
        }
    }
}
