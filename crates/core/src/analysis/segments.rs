//! Streams and same-QoE segments (§3.3.1).
//!
//! A *stream* is the sequence of `{timestamp, latency}` tuples from one
//! streamer playing one game, from coming online to going offline. Each
//! stream divides into *same-QoE segments*: maximal runs whose latency
//! measurements all lie within `LatGap` of each other. A segment with at
//! least `StableLen`'s worth of points is *stable*.

use serde::{Deserialize, Serialize};
use tero_types::{AnonId, GameId, LatencySample, TeroParams};

/// One stream of a `{streamer, game}` series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSeries {
    /// Anonymised streamer.
    pub anon: AnonId,
    /// Game played.
    pub game: GameId,
    /// Samples in time order (≥ 5 minutes apart, by construction of the
    /// thumbnail cadence).
    pub samples: Vec<LatencySample>,
}

/// A same-QoE segment: indices into one stream's samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Which stream of the stitched series this segment belongs to.
    pub stream_idx: usize,
    /// The samples (cloned out of the stream for ergonomic processing).
    pub samples: Vec<LatencySample>,
    /// Whether the segment has at least `StableLen` worth of points.
    pub stable: bool,
}

impl Segment {
    /// Smallest latency in the segment.
    pub fn min_ms(&self) -> u32 {
        self.samples.iter().map(|s| s.latency_ms).min().unwrap_or(0)
    }

    /// Largest latency in the segment.
    pub fn max_ms(&self) -> u32 {
        self.samples.iter().map(|s| s.latency_ms).max().unwrap_or(0)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the segment holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Whether every measurement of `self` lies within `gap` of the value
    /// range of `other` (the §3.3.2 cleanup criterion).
    pub fn within_gap_of(&self, other: &Segment, gap: u32) -> bool {
        let lo = other.min_ms().saturating_sub(gap);
        let hi = other.max_ms().saturating_add(gap);
        self.samples
            .iter()
            .all(|s| s.latency_ms >= lo && s.latency_ms <= hi)
    }
}

/// Divide one stream into same-QoE segments: a new sample joins the
/// current segment iff the segment's value span (including the new sample)
/// stays within `LatGap`; otherwise a new segment starts.
pub fn segment_stream(
    stream_idx: usize,
    samples: &[LatencySample],
    params: &TeroParams,
) -> Vec<Segment> {
    let mut segments = Vec::new();
    let mut current: Vec<LatencySample> = Vec::new();
    let (mut lo, mut hi) = (0u32, 0u32);
    for &s in samples {
        if current.is_empty() {
            lo = s.latency_ms;
            hi = s.latency_ms;
            current.push(s);
            continue;
        }
        let new_lo = lo.min(s.latency_ms);
        let new_hi = hi.max(s.latency_ms);
        if new_hi - new_lo <= params.lat_gap_ms {
            lo = new_lo;
            hi = new_hi;
            current.push(s);
        } else {
            segments.push(mk_segment(stream_idx, std::mem::take(&mut current), params));
            lo = s.latency_ms;
            hi = s.latency_ms;
            current.push(s);
        }
    }
    if !current.is_empty() {
        segments.push(mk_segment(stream_idx, current, params));
    }
    segments
}

fn mk_segment(stream_idx: usize, samples: Vec<LatencySample>, params: &TeroParams) -> Segment {
    let stable = samples.len() >= params.stable_points();
    Segment {
        stream_idx,
        samples,
        stable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_types::SimTime;

    fn samples(values: &[u32]) -> Vec<LatencySample> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| LatencySample::new(SimTime::from_mins(5 * i as u64), v))
            .collect()
    }

    fn params() -> TeroParams {
        TeroParams::default() // LatGap 15, StableLen 30 min → 6 points
    }

    #[test]
    fn single_flat_stream_is_one_stable_segment() {
        let xs = samples(&[40, 42, 41, 43, 40, 44, 42, 41]);
        let segs = segment_stream(0, &xs, &params());
        assert_eq!(segs.len(), 1);
        assert!(segs[0].stable);
        assert_eq!(segs[0].len(), 8);
        assert_eq!(segs[0].min_ms(), 40);
        assert_eq!(segs[0].max_ms(), 44);
    }

    #[test]
    fn level_shift_splits_segments() {
        let xs = samples(&[40, 41, 42, 40, 41, 40, 80, 81, 80, 82, 81, 83]);
        let segs = segment_stream(0, &xs, &params());
        assert_eq!(segs.len(), 2);
        assert!(segs[0].stable && segs[1].stable);
        assert_eq!(segs[0].len(), 6);
        assert_eq!(segs[1].len(), 6);
    }

    #[test]
    fn short_excursion_is_unstable() {
        let xs = samples(&[40, 41, 40, 42, 41, 40, 90, 91, 40, 41, 42, 40, 41, 43]);
        let segs = segment_stream(0, &xs, &params());
        assert_eq!(segs.len(), 3);
        assert!(segs[0].stable);
        assert!(!segs[1].stable, "2-point excursion");
        assert!(segs[2].stable);
    }

    #[test]
    fn span_criterion_not_consecutive_diff() {
        // Drift: consecutive diffs small, total span exceeds LatGap →
        // must split (the segment criterion is the value *span*).
        let xs = samples(&[40, 48, 56, 64, 72]);
        let segs = segment_stream(0, &xs, &params());
        assert!(segs.len() >= 2, "drift must split: {segs:?}");
        for seg in &segs {
            assert!(seg.max_ms() - seg.min_ms() <= 15);
        }
    }

    #[test]
    fn empty_stream() {
        assert!(segment_stream(0, &[], &params()).is_empty());
    }

    #[test]
    fn within_gap_of_checks_all_points() {
        let p = params();
        let a = segment_stream(0, &samples(&[40, 41, 42]), &p).remove(0);
        let b = segment_stream(0, &samples(&[50, 52, 51]), &p).remove(0);
        let c = segment_stream(0, &samples(&[80, 82]), &p).remove(0);
        assert!(a.within_gap_of(&b, 15));
        assert!(!a.within_gap_of(&c, 15));
        assert!(!c.within_gap_of(&a, 15));
    }

    #[test]
    fn stable_threshold_follows_params() {
        let p = TeroParams::default().with_stable_len(tero_types::SimDuration::from_mins(10));
        // 10 min at 5-min cadence → 2 points for stability.
        let segs = segment_stream(0, &samples(&[40, 41]), &p);
        assert!(segs[0].stable);
        let p30 = params();
        let segs = segment_stream(0, &samples(&[40, 41]), &p30);
        assert!(!segs[0].stable);
    }
}
