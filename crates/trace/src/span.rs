//! Spans, the leveled event journal, and the flight recorder.
//!
//! ## Determinism contract
//!
//! Everything a [`Tracer`] records — ids, ticks, record order — is a pure
//! function of the *logical* pipeline execution, never of the thread
//! schedule:
//!
//! * **Ticks.** Records are ordered by a logical tick counter, not by a
//!   clock. Sequential spans take a tick when they start and another when
//!   they finish; spans produced inside a `tero_pool::par_map` fan-out are
//!   buffered on the worker ([`TaskCtx`]) and assigned their ticks during
//!   [`StageCtx::flush`], which walks the buffers in *input order*.
//! * **Ids.** Span ids are FNV-1a hashes: a sequential span hashes
//!   `(parent id, name, start tick)`; a fan-out task span hashes
//!   `(stage id, input index)` — the "(poll, stage, input index)"
//!   derivation that makes ids stable across worker counts.
//! * **Lanes.** Exports label task spans with a *virtual* lane
//!   `1 + index % VIRTUAL_LANES` instead of the OS worker that happened to
//!   run them; sequential spans use lane 0. Real worker identity is
//!   schedule-dependent and would break byte-identical exports.
//!
//! Consequently the full record sequence — and therefore every exporter's
//! output — is byte-identical for `worker_threads ∈ {1, 2, 8, …}`.
//!
//! ## Flight recorder
//!
//! [`Tracer::set_flight_recorder`] bounds the span and event buffers to the
//! last N records each. When a record is evicted the `trace.ring.evicted`
//! counter is bumped, so a post-mortem dump after a chaos fault states how
//! much history was lost.
//!
//! ## Overhead
//!
//! A disabled tracer does one relaxed atomic load per call site and
//! allocates nothing — the same budget as a disabled
//! `tero_obs::StageTimer`.

use crate::ledger::Ledger;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use tero_obs::{CounterHandle, Registry};
use tero_types::SimTime;

/// Number of virtual worker lanes used for fan-out task spans in exports.
///
/// Task spans are spread over `1 + index % VIRTUAL_LANES` by *input index*,
/// not by the OS thread that executed them, keeping exports byte-identical
/// across `worker_threads` settings. Lane 0 is the sequential coordinator.
pub const VIRTUAL_LANES: u64 = 8;

/// Severity of a journal event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Fine-grained flow tracing.
    Trace,
    /// Diagnostic detail (per-sample decisions).
    Debug,
    /// Notable but expected milestones.
    Info,
    /// Something degraded (retries, injected faults survived).
    Warn,
    /// Something was lost (dead letters, dropped writes).
    Error,
}

impl Level {
    /// All levels, lowest severity first.
    pub const ALL: [Level; 5] = [
        Level::Trace,
        Level::Debug,
        Level::Info,
        Level::Warn,
        Level::Error,
    ];

    /// The lower-case name used in metric names and exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Compact cross-process trace context, small enough to ride in a
/// `tero-net` frame header. The client stamps its in-flight operation
/// span here; the server opens its handling span via
/// [`Tracer::span_remote`] so both halves stitch into one tree when the
/// per-host tracers are merged by
/// [`merged_chrome_trace`](crate::export::merged_chrome_trace).
///
/// `trace_id` 0 is reserved for "no context" (the wire encodes an
/// absent context as all-zero words); span ids are never 0 either, so
/// any non-zero `trace_id` implies a valid `span`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Identifies the originating client's trace (non-zero).
    pub trace_id: u64,
    /// Id of the in-flight operation span on the originating host.
    pub span: u64,
    /// The originator's logical tick when the context was captured.
    pub tick: u64,
}

/// A finished span, as retained by the recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Deterministic span id (see module docs for the derivation).
    pub id: u64,
    /// Id of the parent span, or 0 for a root span.
    pub parent: u64,
    /// Span name, e.g. `"stage.extract"`.
    pub name: Arc<str>,
    /// Input index for fan-out task spans, `None` for sequential spans.
    pub index: Option<u64>,
    /// Virtual lane (Chrome-trace tid): 0 = coordinator, 1..=8 = workers.
    pub lane: u64,
    /// Logical tick at which the span started.
    pub start_tick: u64,
    /// Logical tick at which the span finished (`>= start_tick`).
    pub end_tick: u64,
    /// Simulated time associated with the span, if stamped.
    pub sim_at: Option<SimTime>,
    /// Wall-clock duration in microseconds, if wall timing was enabled.
    pub wall_us: Option<u64>,
    /// The wire-carried context this span was opened under, if it was
    /// started by [`Tracer::span_remote`] on behalf of another host.
    pub remote: Option<TraceContext>,
}

/// A journal event, attached to a span (or to the run when `span == 0`).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Id of the owning span, or 0 for a run-level event.
    pub span: u64,
    /// Virtual lane of the owning span.
    pub lane: u64,
    /// Severity.
    pub level: Level,
    /// Human-readable message.
    pub message: String,
    /// Logical tick at which the event was recorded.
    pub tick: u64,
    /// Simulated time associated with the event, if stamped.
    pub sim_at: Option<SimTime>,
}

/// Metric handles, resolved once when the tracer is instrumented.
struct TraceMetrics {
    spans: CounterHandle,
    events: [CounterHandle; 5],
    evicted: CounterHandle,
    export_bytes: CounterHandle,
}

impl TraceMetrics {
    fn new(registry: &Registry) -> Self {
        TraceMetrics {
            spans: registry.counter("trace.spans"),
            events: [
                registry.counter("trace.events.trace"),
                registry.counter("trace.events.debug"),
                registry.counter("trace.events.info"),
                registry.counter("trace.events.warn"),
                registry.counter("trace.events.error"),
            ],
            evicted: registry.counter("trace.ring.evicted"),
            export_bytes: registry.counter("trace.export_bytes"),
        }
    }

    fn event_counter(&self, level: Level) -> &CounterHandle {
        &self.events[level as usize]
    }
}

/// Mutable recorder state behind the tracer's mutex.
struct State {
    spans: VecDeque<SpanRecord>,
    events: VecDeque<EventRecord>,
    tick: u64,
    cap: Option<usize>,
    evicted: u64,
}

impl State {
    fn new() -> Self {
        State {
            spans: VecDeque::new(),
            events: VecDeque::new(),
            tick: 0,
            cap: None,
            evicted: 0,
        }
    }

    fn next_tick(&mut self) -> u64 {
        let t = self.tick;
        self.tick += 1;
        t
    }

    fn push_span(&mut self, rec: SpanRecord) -> u64 {
        self.spans.push_back(rec);
        let mut dropped = 0;
        if let Some(cap) = self.cap {
            while self.spans.len() > cap {
                self.spans.pop_front();
                dropped += 1;
            }
        }
        self.evicted += dropped;
        dropped
    }

    fn push_event(&mut self, rec: EventRecord) -> u64 {
        self.events.push_back(rec);
        let mut dropped = 0;
        if let Some(cap) = self.cap {
            while self.events.len() > cap {
                self.events.pop_front();
                dropped += 1;
            }
        }
        self.evicted += dropped;
        dropped
    }
}

struct Inner {
    enabled: AtomicBool,
    wall: AtomicBool,
    state: Mutex<State>,
    metrics: OnceLock<TraceMetrics>,
    ledger: Ledger,
}

/// The tracing facade: a cheaply clonable handle to one shared recorder.
///
/// A fresh tracer is **disabled**: every call site degrades to a relaxed
/// atomic load (comparable to a disabled `tero_obs::StageTimer`) and the
/// provenance [`Ledger`] is the only part that still records. Enable with
/// [`Tracer::set_enabled`].
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.state.lock();
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("spans", &state.spans.len())
            .field("events", &state.events.len())
            .field("cap", &state.cap)
            .finish()
    }
}

impl Tracer {
    /// A new, disabled tracer with an unbounded recorder.
    pub fn new() -> Self {
        Tracer {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(false),
                wall: AtomicBool::new(false),
                state: Mutex::new(State::new()),
                metrics: OnceLock::new(),
                ledger: Ledger::new(),
            }),
        }
    }

    /// Turn span/event recording on or off. The [`Ledger`] is unaffected:
    /// provenance is always on.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether span/event recording is on.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Also capture wall-clock durations for sequential spans. Off by
    /// default because wall times differ run-to-run; determinism tests
    /// compare exports with wall timing off.
    pub fn set_wall_clock(&self, enabled: bool) {
        self.inner.wall.store(enabled, Ordering::Relaxed);
    }

    /// Bound the recorder to the last `cap` spans and last `cap` events
    /// (flight-recorder mode). `None` restores the unbounded recorder.
    pub fn set_flight_recorder(&self, cap: Option<usize>) {
        self.inner.state.lock().cap = cap;
    }

    /// Register `trace.*` metrics eagerly and report into `registry` from
    /// now on. Like `ChaosInjector::instrument`, only the first registry
    /// wins; later calls are no-ops.
    pub fn instrument(&self, registry: &Registry) {
        let _ = self
            .inner
            .metrics
            .get_or_init(|| TraceMetrics::new(registry));
    }

    /// Reset the recorder (spans, events, ticks, eviction count) and the
    /// provenance ledger for a fresh pipeline run. The flight-recorder cap
    /// and the enabled/wall flags survive.
    pub fn begin_run(&self) {
        let mut state = self.inner.state.lock();
        let cap = state.cap;
        *state = State::new();
        state.cap = cap;
        drop(state);
        self.inner.ledger.reset();
    }

    /// The sample-provenance ledger attached to this tracer.
    pub fn ledger(&self) -> &Ledger {
        &self.inner.ledger
    }

    /// Number of span/event records evicted by the flight recorder.
    pub fn evicted(&self) -> u64 {
        self.inner.state.lock().evicted
    }

    /// Open a root span.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.open_span(name, 0, None)
    }

    /// Open a root span stamped with a simulated time.
    pub fn span_at(&self, name: &str, at: SimTime) -> SpanGuard {
        self.open_span(name, 0, Some(at))
    }

    /// Open a span under a *remote* parent described by a wire-carried
    /// [`TraceContext`] — the server half of cross-process stitching.
    /// The span is parented to `ctx.span` (an id that lives in another
    /// host's tracer) and keeps the full context on its record so
    /// exporters can label the remote edge.
    pub fn span_remote(&self, name: &str, ctx: TraceContext) -> SpanGuard {
        let mut guard = self.open_span(name, ctx.span, None);
        if let Some(g) = guard.inner.as_mut() {
            g.remote = Some(ctx);
        }
        guard
    }

    /// Record a run-level journal event (no owning span).
    pub fn event(&self, level: Level, message: impl AsRef<str>) {
        if !self.enabled() {
            return;
        }
        self.record_event(0, 0, level, message.as_ref().to_string(), None);
    }

    /// Record a run-level journal event stamped with a simulated time.
    pub fn event_at(&self, level: Level, message: impl AsRef<str>, at: SimTime) {
        if !self.enabled() {
            return;
        }
        self.record_event(0, 0, level, message.as_ref().to_string(), Some(at));
    }

    /// Build a stamped context for fanning `stage` out across
    /// `tero_pool::par_map` workers, parented under `parent`.
    ///
    /// Hand [`StageCtx::task`] the input index inside the worker closure,
    /// return the [`TaskTrace`] alongside the real result, and call
    /// [`StageCtx::flush`] with the traces in input order after the merge.
    pub fn stage(&self, parent: &SpanGuard, name: &str) -> StageCtx {
        if !self.enabled() {
            return StageCtx { shared: None };
        }
        let parent_id = parent.id();
        let name: Arc<str> = Arc::from(name);
        let stage_id = fnv1a(&[parent_id, hash_str(&name), 0x57a6e]);
        StageCtx {
            shared: Some(StageShared {
                tracer: self.clone(),
                parent: parent_id,
                stage_id,
                name,
            }),
        }
    }

    /// Copies of the retained records, for exporters and tests: spans
    /// sorted by `(start_tick, id)`, events sorted by `(tick, span)`.
    pub fn records(&self) -> (Vec<SpanRecord>, Vec<EventRecord>) {
        let state = self.inner.state.lock();
        let mut spans: Vec<SpanRecord> = state.spans.iter().cloned().collect();
        let mut events: Vec<EventRecord> = state.events.iter().cloned().collect();
        drop(state);
        spans.sort_by_key(|s| (s.start_tick, s.id));
        events.sort_by_key(|e| (e.tick, e.span));
        (spans, events)
    }

    fn open_span(&self, name: &str, parent: u64, sim_at: Option<SimTime>) -> SpanGuard {
        if !self.enabled() {
            return SpanGuard { inner: None };
        }
        let start_tick = self.inner.state.lock().next_tick();
        let name: Arc<str> = Arc::from(name);
        let id = fnv1a(&[parent, hash_str(&name), start_tick]);
        let wall = if self.inner.wall.load(Ordering::Relaxed) {
            Some(Instant::now())
        } else {
            None
        };
        SpanGuard {
            inner: Some(GuardInner {
                tracer: self.clone(),
                id,
                parent,
                name,
                start_tick,
                sim_at,
                wall,
                remote: None,
            }),
        }
    }

    fn record_event(
        &self,
        span: u64,
        lane: u64,
        level: Level,
        message: String,
        sim_at: Option<SimTime>,
    ) {
        let dropped = {
            let mut state = self.inner.state.lock();
            let tick = state.next_tick();
            state.push_event(EventRecord {
                span,
                lane,
                level,
                message,
                tick,
                sim_at,
            })
        };
        if let Some(m) = self.inner.metrics.get() {
            m.event_counter(level).inc();
            if dropped > 0 {
                m.evicted.add(dropped);
            }
        }
    }

    fn finish_span(&self, rec: SpanRecord) {
        let dropped = self.inner.state.lock().push_span(rec);
        if let Some(m) = self.inner.metrics.get() {
            m.spans.inc();
            if dropped > 0 {
                m.evicted.add(dropped);
            }
        }
    }

    pub(crate) fn note_export_bytes(&self, n: u64) {
        if let Some(m) = self.inner.metrics.get() {
            m.export_bytes.add(n);
        }
    }
}

struct GuardInner {
    tracer: Tracer,
    id: u64,
    parent: u64,
    name: Arc<str>,
    start_tick: u64,
    sim_at: Option<SimTime>,
    wall: Option<Instant>,
    remote: Option<TraceContext>,
}

/// An open span. The span is recorded when the guard drops (or
/// [`SpanGuard::finish`] is called); children created via
/// [`SpanGuard::child`] therefore appear *before* their parent in raw
/// record order, and exporters re-sort by start tick.
pub struct SpanGuard {
    inner: Option<GuardInner>,
}

impl SpanGuard {
    /// The span's deterministic id, or 0 when tracing is disabled.
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map(|g| g.id).unwrap_or(0)
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Capture this span as a [`TraceContext`] to carry across the
    /// wire under the caller's `trace_id`, or `None` when the guard is
    /// not recording (so disabled tracing sends no context at all).
    pub fn context(&self, trace_id: u64) -> Option<TraceContext> {
        self.inner.as_ref().map(|g| TraceContext {
            trace_id,
            span: g.id,
            tick: g.start_tick,
        })
    }

    /// Open a child span.
    pub fn child(&self, name: &str) -> SpanGuard {
        match &self.inner {
            Some(g) => g.tracer.open_span(name, g.id, None),
            None => SpanGuard { inner: None },
        }
    }

    /// Open a child span stamped with a simulated time.
    pub fn child_at(&self, name: &str, at: SimTime) -> SpanGuard {
        match &self.inner {
            Some(g) => g.tracer.open_span(name, g.id, Some(at)),
            None => SpanGuard { inner: None },
        }
    }

    /// Record an event under this span.
    pub fn event(&self, level: Level, message: impl AsRef<str>) {
        if let Some(g) = &self.inner {
            g.tracer
                .record_event(g.id, 0, level, message.as_ref().to_string(), None);
        }
    }

    /// Record an event under this span, stamped with a simulated time.
    pub fn event_at(&self, level: Level, message: impl AsRef<str>, at: SimTime) {
        if let Some(g) = &self.inner {
            g.tracer
                .record_event(g.id, 0, level, message.as_ref().to_string(), Some(at));
        }
    }

    /// Close the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(g) = self.inner.take() else { return };
        let wall_us = g.wall.map(|t| t.elapsed().as_micros() as u64);
        let end_tick = g.tracer.inner.state.lock().next_tick();
        g.tracer.finish_span(SpanRecord {
            id: g.id,
            parent: g.parent,
            name: g.name,
            index: None,
            lane: 0,
            start_tick: g.start_tick,
            end_tick,
            sim_at: g.sim_at,
            wall_us,
            remote: g.remote,
        });
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(g) => write!(f, "SpanGuard({} id={:#x})", g.name, g.id),
            None => f.write_str("SpanGuard(disabled)"),
        }
    }
}

struct StageShared {
    tracer: Tracer,
    parent: u64,
    stage_id: u64,
    name: Arc<str>,
}

/// Stamped context for one `par_map` fan-out stage.
///
/// Created on the coordinator via [`Tracer::stage`]; workers derive a
/// [`TaskCtx`] per input index, and the coordinator [`flush`es] the
/// resulting [`TaskTrace`]s in input order — the step that pins down ticks
/// and makes the trace independent of the worker schedule.
///
/// [`flush`es]: StageCtx::flush
pub struct StageCtx {
    shared: Option<StageShared>,
}

impl StageCtx {
    /// Start the stamped per-task context for input `index`. Cheap no-op
    /// when tracing is disabled.
    pub fn task(&self, index: u64) -> TaskCtx {
        match &self.shared {
            None => TaskCtx { buf: None },
            Some(s) => TaskCtx {
                buf: Some(TaskBuf {
                    span_id: fnv1a(&[s.stage_id, index, 0x7a5c]),
                    index,
                    sim_at: None,
                    events: Vec::new(),
                    wall: if s.tracer.inner.wall.load(Ordering::Relaxed) {
                        Some(Instant::now())
                    } else {
                        None
                    },
                }),
            },
        }
    }

    /// Append the buffered task traces to the recorder *in input order*,
    /// assigning deterministic ticks. Call once, after the ordered merge.
    pub fn flush(&self, traces: Vec<TaskTrace>) {
        let Some(s) = &self.shared else { return };
        let mut spans = 0u64;
        let mut dropped = 0u64;
        let mut event_counts = [0u64; 5];
        {
            let mut state = s.tracer.inner.state.lock();
            for trace in traces {
                let Some(buf) = trace.buf else { continue };
                let lane = 1 + buf.index % VIRTUAL_LANES;
                let start_tick = state.next_tick();
                for (level, message, sim_at) in buf.events {
                    let tick = state.next_tick();
                    event_counts[level as usize] += 1;
                    dropped += state.push_event(EventRecord {
                        span: buf.span_id,
                        lane,
                        level,
                        message,
                        tick,
                        sim_at,
                    });
                }
                let end_tick = state.next_tick();
                spans += 1;
                dropped += state.push_span(SpanRecord {
                    id: buf.span_id,
                    parent: s.parent,
                    name: s.name.clone(),
                    index: Some(buf.index),
                    lane,
                    start_tick,
                    end_tick,
                    sim_at: buf.sim_at,
                    wall_us: buf.wall.map(|t| t.elapsed().as_micros() as u64),
                    remote: None,
                });
            }
        }
        if let Some(m) = s.tracer.inner.metrics.get() {
            m.spans.add(spans);
            for (level, &n) in Level::ALL.iter().zip(event_counts.iter()) {
                if n > 0 {
                    m.event_counter(*level).add(n);
                }
            }
            if dropped > 0 {
                m.evicted.add(dropped);
            }
        }
    }
}

impl std::fmt::Debug for StageCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.shared {
            Some(s) => write!(f, "StageCtx({})", s.name),
            None => f.write_str("StageCtx(disabled)"),
        }
    }
}

struct TaskBuf {
    span_id: u64,
    index: u64,
    sim_at: Option<SimTime>,
    events: Vec<(Level, String, Option<SimTime>)>,
    wall: Option<Instant>,
}

/// Worker-side buffer for one fan-out task's span and events.
///
/// Nothing touches the shared recorder until [`StageCtx::flush`]; the
/// buffer is plain local state, so tracing adds no cross-worker contention
/// inside `par_map`.
pub struct TaskCtx {
    buf: Option<TaskBuf>,
}

impl TaskCtx {
    /// Whether this context is actually recording.
    pub fn is_recording(&self) -> bool {
        self.buf.is_some()
    }

    /// Stamp the simulated time this task's input was generated at.
    pub fn set_sim_time(&mut self, at: SimTime) {
        if let Some(buf) = &mut self.buf {
            buf.sim_at = Some(at);
        }
    }

    /// Buffer an event under this task's span.
    pub fn event(&mut self, level: Level, message: impl AsRef<str>) {
        if let Some(buf) = &mut self.buf {
            buf.events.push((level, message.as_ref().to_string(), None));
        }
    }

    /// Buffer an event stamped with a simulated time.
    pub fn event_at(&mut self, level: Level, message: impl AsRef<str>, at: SimTime) {
        if let Some(buf) = &mut self.buf {
            buf.events
                .push((level, message.as_ref().to_string(), Some(at)));
        }
    }

    /// Seal the buffer for shipping back through the `par_map` merge.
    pub fn finish(self) -> TaskTrace {
        TaskTrace { buf: self.buf }
    }
}

impl std::fmt::Debug for TaskCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.buf {
            Some(b) => write!(f, "TaskCtx(index={})", b.index),
            None => f.write_str("TaskCtx(disabled)"),
        }
    }
}

/// A sealed [`TaskCtx`], ready to travel through the ordered merge back to
/// the coordinator. `Send`, cheap, and inert until flushed.
pub struct TaskTrace {
    buf: Option<TaskBuf>,
}

impl std::fmt::Debug for TaskTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.buf {
            Some(b) => write!(f, "TaskTrace(index={})", b.index),
            None => f.write_str("TaskTrace(disabled)"),
        }
    }
}

/// FNV-1a over a word slice — stable, dependency-free id hashing.
fn fnv1a(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for w in words {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    // Reserve 0 as "no span".
    if h == 0 {
        1
    } else {
        h
    }
}

fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for byte in s.bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::new();
        let root = tracer.span("root");
        assert!(!root.is_recording());
        assert_eq!(root.id(), 0);
        root.event(Level::Error, "ignored");
        drop(root);
        tracer.event(Level::Warn, "ignored");
        let (spans, events) = tracer.records();
        assert!(spans.is_empty());
        assert!(events.is_empty());
    }

    #[test]
    fn span_ids_are_deterministic() {
        let run = |tracer: &Tracer| {
            tracer.begin_run();
            let root = tracer.span("pipeline.run");
            let child = root.child("stage.extract");
            child.event(Level::Debug, "vote failed");
            drop(child);
            drop(root);
            tracer.records()
        };
        let a = Tracer::new();
        a.set_enabled(true);
        let b = Tracer::new();
        b.set_enabled(true);
        assert_eq!(run(&a), run(&b));
        assert_eq!(run(&a), run(&a), "re-running resets cleanly");
    }

    #[test]
    fn stage_flush_is_schedule_independent() {
        let run = |completion_order: &[usize]| {
            let tracer = Tracer::new();
            tracer.set_enabled(true);
            let root = tracer.span("run");
            let stage = tracer.stage(&root, "stage.analysis");
            // Simulate workers finishing tasks in an arbitrary order...
            let mut traces: Vec<(usize, TaskTrace)> = completion_order
                .iter()
                .map(|&i| {
                    let mut t = stage.task(i as u64);
                    t.set_sim_time(SimTime::from_secs(i as u64));
                    t.event(Level::Trace, format!("task {i}"));
                    (i, t.finish())
                })
                .collect();
            // ...then flush strictly in input order, as the merge does.
            traces.sort_by_key(|(i, _)| *i);
            stage.flush(traces.into_iter().map(|(_, t)| t).collect());
            drop(root);
            tracer.records()
        };
        let forward = run(&[0, 1, 2, 3]);
        let scrambled = run(&[2, 0, 3, 1]);
        assert_eq!(forward, scrambled);
        let lanes: Vec<u64> = forward
            .0
            .iter()
            .filter_map(|s| s.index.map(|_| s.lane))
            .collect();
        assert_eq!(lanes, vec![1, 2, 3, 4], "virtual lanes follow input index");
    }

    #[test]
    fn flight_recorder_bounds_history() {
        let registry = Registry::new();
        let tracer = Tracer::new();
        tracer.instrument(&registry);
        tracer.set_enabled(true);
        tracer.set_flight_recorder(Some(4));
        for i in 0..10 {
            let s = tracer.span(&format!("span{i}"));
            drop(s);
        }
        let (spans, _) = tracer.records();
        assert_eq!(spans.len(), 4, "only the last N spans survive");
        assert_eq!(&*spans[0].name, "span6");
        assert_eq!(tracer.evicted(), 6);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("trace.ring.evicted"), Some(6));
        assert_eq!(snap.counter("trace.spans"), Some(10));
    }

    #[test]
    fn event_metrics_count_by_level() {
        let registry = Registry::new();
        let tracer = Tracer::new();
        tracer.instrument(&registry);
        tracer.set_enabled(true);
        let root = tracer.span("run");
        root.event(Level::Info, "a");
        root.event(Level::Warn, "b");
        root.event(Level::Warn, "c");
        tracer.event(Level::Error, "d");
        drop(root);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("trace.events.info"), Some(1));
        assert_eq!(snap.counter("trace.events.warn"), Some(2));
        assert_eq!(snap.counter("trace.events.error"), Some(1));
        assert_eq!(snap.counter("trace.events.trace"), Some(0));
        assert_eq!(snap.counter("trace.events.debug"), Some(0));
    }

    #[test]
    fn wall_clock_is_opt_in() {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        let s = tracer.span("no-wall");
        drop(s);
        tracer.set_wall_clock(true);
        let s = tracer.span("wall");
        drop(s);
        let (spans, _) = tracer.records();
        assert_eq!(spans[0].wall_us, None);
        assert!(spans[1].wall_us.is_some());
    }

    #[test]
    fn sim_time_is_carried() {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        let s = tracer.span_at("poll", SimTime::from_mins(5));
        s.event_at(Level::Info, "tick", SimTime::from_mins(6));
        drop(s);
        let (spans, events) = tracer.records();
        assert_eq!(spans[0].sim_at, Some(SimTime::from_mins(5)));
        assert_eq!(events[0].sim_at, Some(SimTime::from_mins(6)));
        assert_eq!(events[0].span, spans[0].id);
    }
}
