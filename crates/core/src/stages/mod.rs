//! The staged execution engine's stage layer (App. B).
//!
//! The paper's production pipeline is four decoupled programs connected
//! through Redis lists and S3 buckets. This module reproduces that shape
//! in-process: each stage is a [`Stage`] implementation with typed input
//! and output records, and stages hand work to each other through
//! [`tero_store::KvStore`] lists and [`tero_store::ObjectStore`] blobs —
//! never through shared memory. The [`crate::engine::Engine`] owns the
//! wiring (stores, pool, tracer, chaos) once and drives the stages either
//! as one full-horizon window ([`crate::Tero::run`]) or incrementally
//! ([`crate::Tero::run_window`]).
//!
//! * [`ingest`] — the App. A coordinator/downloader module, driven
//!   through a resumable [`crate::download::DownloadCursor`];
//! * [`extract`] — image-processing (§3.2): drains `queue:thumbs`,
//!   OCRs thumbnails on the pool, and appends [`SampleRecord`]s to
//!   per-`{streamer, game}` KV lists;
//! * [`locate`] — the §3.1 location module over the names the extractor
//!   registered, run *incrementally*: every window spends an explicit
//!   simulated-API budget locating newly-seen streamers (over-budget
//!   lookups carry over), commits resumable `engine:locate:*` state, and
//!   re-evaluates committed results as tag history grows — so locations
//!   become canonical as soon as a streamer is located, not at the
//!   horizon (see `docs/AGGREGATION.md`);
//! * [`clean`] — §3.3 per-`{streamer, game}` stitching (streams split at
//!   gaps larger than [`clean::STREAM_GAP`]), segmentation, anomaly
//!   detection and classification — run *online*: every window feeds the
//!   new records, seals finished blocks, and refreshes the per-window
//!   serving distributions (see `docs/CLEANING.md`);
//! * [`agg`] — the §3.3.3/§5/§6 per-`{location, game}` group analyses
//!   (merged clusters, end-point changes, distributions, shared
//!   anomalies), maintained incrementally: each window re-analyses only
//!   the groups whose membership or sealed data moved and commits the
//!   results under `engine:agg:*`;
//! * [`publish`] — the horizon finalizer: replays the committed
//!   aggregation state, runs the provenance pass, and assembles the
//!   final report.

pub mod agg;
pub mod clean;
pub mod extract;
pub mod ingest;
pub mod locate;
pub mod publish;

use crate::download::DownloadModule;
use crate::pipeline::{PipelineMetrics, Tero};
use tero_obs::StageMetrics;
use tero_pool::Pool;
use tero_store::{KvStore, ObjectStore};
use tero_trace::SpanGuard;
use tero_types::{AnonId, GameId, SimTime};
use tero_world::World;

/// Everything a stage invocation may touch. The engine builds one per
/// stage call, so the borrows stay scoped to the invocation; stages keep
/// their own resumable state in their struct, not in the context.
pub struct StageCx<'a> {
    /// The orchestrator's configuration (params, mode, salt, tracer…).
    pub tero: &'a Tero,
    /// The simulated platform the run executes against.
    pub world: &'a mut World,
    /// The worker pool shared by every parallel stage.
    pub pool: &'a Pool,
    /// The engine's KV store — queues, leases and `engine:*` state.
    pub kv: &'a KvStore,
    /// The engine's object store — thumbnail blobs.
    pub objects: &'a ObjectStore,
    /// Store-facing I/O helpers (task drain, dead-letter, image load,
    /// tag history). A second [`DownloadModule`] view over the same
    /// stores; the ingest stage owns the stateful one.
    pub io: &'a DownloadModule,
    /// The pipeline's pre-resolved metric handles.
    pub metrics: &'a PipelineMetrics,
    /// The run-level trace span stages hang their children off.
    pub sp_run: &'a SpanGuard,
}

impl<'a> StageCx<'a> {
    /// The `stage.<name>.*` metric bundle for `name`. Tied to the metrics
    /// borrow, not to `self`, so holding it doesn't freeze the context.
    pub fn stage_metrics(&self, name: &str) -> &'a StageMetrics {
        self.metrics.stage(name)
    }
}

/// One typed stage of the staged execution engine.
///
/// A stage consumes `In`, produces `Out`, and communicates with its
/// neighbours only through the stores in its [`StageCx`] (App. B's
/// push/pull discipline). Implementations bump their own
/// `stage.<NAME>.*` metrics via [`StageCx::stage_metrics`].
pub trait Stage {
    /// The input record the engine hands this stage.
    type In;
    /// The output record the stage returns to the engine.
    type Out;
    /// The stage's metric/trace name (`stage.<NAME>.*`).
    const NAME: &'static str;
    /// Run one invocation of the stage.
    fn run(&mut self, cx: &mut StageCx<'_>, input: Self::In) -> Self::Out;
}

/// KV key prefix for the per-`{streamer, game}` extracted-sample lists
/// the extract stage appends to and the clean stage consumes through a
/// non-destructive per-series cursor (the lists stay in place as the
/// cleaner's replay log). Lives under the chaos-exempt
/// [`tero_store::PROTECTED_PREFIX`]: these lists are the engine's own
/// commit log, not the simulated data plane.
pub const SAMPLES_PREFIX: &str = "engine:samples:";

/// KV hash mapping `{anon:016x}` → raw streamer username, written by the
/// extract stage (first write wins) and read by the locate stage.
pub const NAMES_KEY: &str = "engine:names";

/// The KV list key for one `{streamer, game}` sample series.
pub fn sample_list_key(anon: AnonId, game: GameId) -> String {
    let idx = GameId::ALL
        .iter()
        .position(|g| *g == game)
        .expect("every GameId is in GameId::ALL");
    format!("{SAMPLES_PREFIX}{:016x}:{idx:02}", anon.0)
}

/// Parse a [`sample_list_key`] back into its `{streamer, game}` pair.
pub fn parse_sample_list_key(key: &str) -> Option<(AnonId, GameId)> {
    let rest = key.strip_prefix(SAMPLES_PREFIX)?;
    let (anon_hex, idx) = rest.split_once(':')?;
    let anon = u64::from_str_radix(anon_hex, 16).ok()?;
    let game = *GameId::ALL.get(idx.parse::<usize>().ok()?)?;
    Some((AnonId(anon), game))
}

/// One extracted measurement, as it travels between the extract and
/// clean stages through a KV list (the in-process analogue of the
/// paper's Redis measurement queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleRecord {
    /// When the thumbnail was generated (the measurement's timestamp).
    pub at: SimTime,
    /// The primary extracted value (ms).
    pub primary: u32,
    /// A dissenting OCR engine's alternative reading, if any.
    pub alternative: Option<u32>,
}

impl SampleRecord {
    /// Wire encoding: `{at_micros}|{primary}|{alternative or -}`.
    pub fn encode(&self) -> String {
        match self.alternative {
            Some(alt) => format!("{}|{}|{alt}", self.at.as_micros(), self.primary),
            None => format!("{}|{}|-", self.at.as_micros(), self.primary),
        }
    }

    /// Decode a [`SampleRecord::encode`] string.
    pub fn decode(raw: &str) -> Option<SampleRecord> {
        let mut parts = raw.split('|');
        let at = SimTime::from_micros(parts.next()?.parse().ok()?);
        let primary = parts.next()?.parse().ok()?;
        let alt_raw = parts.next()?;
        if parts.next().is_some() {
            return None;
        }
        let alternative = match alt_raw {
            "-" => None,
            v => Some(v.parse().ok()?),
        };
        Some(SampleRecord {
            at,
            primary,
            alternative,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_record_roundtrip() {
        for rec in [
            SampleRecord {
                at: SimTime::from_mins(7),
                primary: 42,
                alternative: None,
            },
            SampleRecord {
                at: SimTime::from_micros(1),
                primary: 999,
                alternative: Some(17),
            },
        ] {
            assert_eq!(SampleRecord::decode(&rec.encode()), Some(rec));
        }
        assert_eq!(SampleRecord::decode("junk"), None);
        assert_eq!(SampleRecord::decode("1|2|3|4"), None);
    }

    #[test]
    fn sample_list_key_roundtrip() {
        for game in GameId::ALL {
            let anon = AnonId(0xdead_beef_0000_0001);
            let key = sample_list_key(anon, game);
            assert!(key.starts_with(tero_store::PROTECTED_PREFIX));
            assert_eq!(parse_sample_list_key(&key), Some((anon, game)));
        }
        assert_eq!(parse_sample_list_key("engine:samples:zz:00"), None);
        assert_eq!(parse_sample_list_key("queue:thumbs"), None);
    }
}
