//! The observability pins: the stitched mesh trace is byte-identical
//! across merge worker counts and replays, the `tero-ops` health
//! reports flag the injected partition window (and the recovery) with
//! deterministic encodings, and the downloader's advisory starvation
//! knob changes nothing on the data path.

use tero::chaos::FaultPlan;
use tero::core::download::DownloadModule;
use tero::core::pipeline::ExtractionMode;
use tero::core::sharded::{run_sharded, run_sharded_observed, ShardedConfig};
use tero::net::default_net_fault;
use tero::obs::Registry;
use tero::ops::{HealthMonitor, HealthReport, ShardStatus, Starvation};
use tero::store::{KvStore, ObjectStore};
use tero::types::SimTime;
use tero::world::{World, WorldConfig};

/// The trace-id derivation `ShardedStoreClient::set_trace` uses, so the
/// stitching assertion can attribute server spans to their engine.
fn trace_id_of(engine: u64) -> u64 {
    (engine + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1
}

fn world_cfg(seed: u64) -> WorldConfig {
    WorldConfig {
        seed,
        n_streamers: 6,
        days: 1,
        shared_events: 1,
        ..WorldConfig::default()
    }
}

/// A small traced mesh under the stock fault schedule.
fn traced_cfg(merge_workers: usize) -> ShardedConfig {
    let (shards, windows) = (2usize, 4u64);
    ShardedConfig {
        engines: 2,
        shards,
        windows,
        world: world_cfg(914),
        mode: ExtractionMode::Calibrated,
        min_streamers: 3,
        plan: FaultPlan {
            net: default_net_fault(shards, windows),
            ..FaultPlan::quiet(914)
        },
        net_seed: 914,
        trace: true,
        merge_workers,
    }
}

#[test]
fn mesh_trace_is_byte_identical_across_merge_workers_and_replays() {
    let base = run_sharded(&traced_cfg(1));
    let trace = base.mesh_chrome_trace();
    for workers in [2usize, 8] {
        let out = run_sharded(&traced_cfg(workers));
        assert_eq!(
            out.mesh_chrome_trace(),
            trace,
            "mesh trace must not depend on merge worker count ({workers})"
        );
    }
    let replay = run_sharded(&traced_cfg(1));
    assert_eq!(replay.mesh_chrome_trace(), trace, "replay must be exact");

    // Every mesh participant is announced as a named process.
    for host in [
        "engine0", "engine1", "merge", "shard0p", "shard0r", "shard1p", "shard1r",
    ] {
        assert!(
            trace.contains(&format!("\"name\":\"{host}\"")),
            "missing process_name for {host}"
        );
    }
    assert!(trace.contains("\"name\":\"process_sort_index\""));
}

#[test]
fn server_spans_stitch_under_their_engine_op_spans() {
    let out = run_sharded(&traced_cfg(1));

    // Collect each engine's client-side op span ids, keyed by the trace
    // id its frames carried.
    let mut op_ids: std::collections::HashMap<u64, std::collections::HashSet<u64>> =
        std::collections::HashMap::new();
    for (host, tracer) in &out.mesh {
        let Some(engine) = host.strip_prefix("engine") else {
            continue;
        };
        let engine: u64 = engine.parse().expect("engine hosts are engine<i>");
        let ids = op_ids.entry(trace_id_of(engine)).or_default();
        for s in tracer.records().0 {
            if s.name.starts_with("net.") {
                ids.insert(s.id);
            }
        }
    }

    let mut stitched = 0usize;
    for (host, tracer) in &out.mesh {
        if !host.starts_with("shard") {
            continue;
        }
        for s in tracer.records().0 {
            let ctx = s
                .remote
                .expect("every server span carries its remote context");
            assert_eq!(
                s.parent, ctx.span,
                "server span parents under the wire-carried span id"
            );
            let ids = op_ids
                .get(&ctx.trace_id)
                .unwrap_or_else(|| panic!("unknown trace id {:#x} on {host}", ctx.trace_id));
            assert!(
                ids.contains(&s.parent),
                "server span {} on {host} must stitch under a recorded engine op span",
                s.name
            );
            stitched += 1;
        }
    }
    assert!(
        stitched > 100,
        "a real run stitches many server spans: {stitched}"
    );
}

#[test]
fn health_reports_flag_the_injected_partition_and_recovery() {
    // The ops_console geometry: 3 shards, 6 windows, stock schedule —
    // shard 1's primary killed over windows [2, 4), engine 0 partitioned
    // from shard 2's primary over [3, 4).
    let (shards, windows) = (3usize, 6u64);
    let cfg = ShardedConfig {
        engines: 2,
        shards,
        windows,
        world: world_cfg(4242),
        mode: ExtractionMode::Calibrated,
        min_streamers: 3,
        plan: FaultPlan {
            net: default_net_fault(shards, windows),
            ..FaultPlan::quiet(4242)
        },
        net_seed: 4242,
        trace: false,
        merge_workers: 0,
    };
    let run = || {
        let mut monitor: Option<HealthMonitor> = None;
        let mut reports: Vec<HealthReport> = Vec::new();
        run_sharded_observed(&cfg, |view| {
            let monitor =
                monitor.get_or_insert_with(|| HealthMonitor::new(view.net, view.net_registry));
            reports.push(monitor.observe(view.window, view.clients, view.engine_registries));
        });
        reports
    };
    let reports = run();
    assert_eq!(reports.len(), windows as usize);

    // The kill window reads Partitioned with the primary visibly down,
    // and the verdict is *network* starvation.
    let w2 = &reports[2];
    assert_eq!(w2.shards[1].status, ShardStatus::Partitioned);
    assert!(!w2.shards[1].primary.reachable);
    assert_eq!(w2.starvation(), Starvation::Network);

    // Full recovery by the final window.
    let last = reports.last().expect("six windows ran");
    assert_eq!(
        last.count(ShardStatus::Healthy),
        shards as u64,
        "all shards healthy at the horizon: {}",
        last.render_text()
    );

    // Reports replay byte-identically, and the JSON round-trips.
    let reports_b = run();
    for (a, b) in reports.iter().zip(&reports_b) {
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.render_text(), b.render_text());
    }
    let parsed: HealthReport =
        serde_json::from_str(&reports[2].to_json()).expect("reports parse back");
    assert_eq!(parsed, reports[2].clone());
}

#[test]
fn starvation_advisory_off_path_is_byte_identical() {
    let run = |advisory: Option<Starvation>| {
        let mut world = World::build(world_cfg(77));
        let horizon = world.horizon;
        let kv = KvStore::new();
        let objects = ObjectStore::new();
        let registry = Registry::new();
        let mut module = DownloadModule::new(kv.clone(), objects.clone());
        module.instrument(&registry);
        module.starvation_advisory = advisory;
        let stats = module.run(&mut world, SimTime::EPOCH, horizon);
        (
            stats,
            kv.snapshot(),
            objects.snapshot(),
            registry.snapshot(),
        )
    };
    let (stats_off, kv_off, obj_off, snap_off) = run(None);
    let (stats_on, kv_on, obj_on, snap_on) = run(Some(Starvation::Network));

    // The knob is advisory: same stats, same stores, same work done.
    assert_eq!(stats_off, stats_on);
    assert_eq!(kv_off, kv_on);
    assert_eq!(obj_off, obj_on);
    for name in ["download.polls", "download.assignments", "download.retries"] {
        assert_eq!(snap_off.counter(name), snap_on.counter(name), "{name}");
    }

    // The only observable difference is the acknowledgement counter.
    assert_eq!(snap_off.counter("download.advisory_polls"), Some(0));
    let acks = snap_on.counter("download.advisory_polls").unwrap_or(0);
    assert!(acks > 0, "the on path acknowledges every poll");
}
