//! Trace explorer: run the pipeline with `tero-trace` recording on, write
//! the Chrome trace-event JSON to disk, and print the text timeline plus
//! the sample-provenance ledger.
//!
//! ```sh
//! cargo run --release --example trace_explore            # defaults
//! cargo run --release --example trace_explore -- 7 /tmp/tero-trace.json
//! cargo run --release --example trace_explore -- 7 /tmp/tero-trace.json 4
//! ```
//!
//! The first argument is the world seed, the second the output path for
//! the Chrome trace, the optional third a *window count*: when present,
//! the run is driven through `Tero::run_window` in that many equal time
//! slices (`1` = the legacy single-shot `run()`), and stdout prints the
//! sample funnel only — the trace's span structure legitimately varies
//! with the window schedule, but the funnel may not. Without the third
//! argument the JSON and the timeline are deterministic: for a fixed
//! seed they are byte-identical across runs and across `worker_threads`
//! values, which `scripts/ci.sh` checks by running this example twice
//! and comparing the files (and once single-shot vs once windowed,
//! comparing the funnels). Load the JSON at <https://ui.perfetto.dev>
//! (or `chrome://tracing`) to browse the spans.

use tero::core::pipeline::{ExtractionMode, Tero, TeroReport, WindowOutcome};
use tero::world::{World, WorldConfig};
use tero_types::{SimDuration, SimTime};

/// Drive the run as `n` equal windows through the staged engine.
fn run_windowed(tero: &Tero, world: &mut World, n: u64) -> TeroReport {
    let horizon = world.horizon;
    let step = SimDuration::from_micros(horizon.as_micros().div_ceil(n).max(1));
    let mut to = SimTime::EPOCH + step;
    loop {
        match tero.run_window(world, SimTime::EPOCH, to) {
            WindowOutcome::Complete(report) => return report,
            WindowOutcome::Advanced => to += step,
            WindowOutcome::Killed => {}
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be a u64"))
        .unwrap_or(7);
    let out_path = args
        .next()
        .unwrap_or_else(|| "target/trace_explore.json".to_string());
    let windows: Option<u64> = args
        .next()
        .map(|a| a.parse().expect("windows must be a u64"));

    let mut world = World::build(WorldConfig {
        seed,
        n_streamers: 12,
        days: 2,
        ..WorldConfig::default()
    });

    // Calibrated extraction keeps the run fast; the span structure is the
    // same as the full OCR path. Recording is off by default — flip it on
    // before `run` or the exporters will have nothing to show.
    let tero = Tero {
        mode: ExtractionMode::Calibrated,
        min_streamers: 2,
        ..Tero::default()
    };
    tero.trace.set_enabled(true);
    let report = match windows {
        None | Some(0) | Some(1) => tero.run(&mut world),
        Some(n) => run_windowed(&tero, &mut world, n),
    };

    if windows.is_none() {
        // The text timeline: every span indented under its parent, with
        // the journal events beneath the span that emitted them. Large
        // worlds produce one `extract.task[i]` span per thumbnail, so cap
        // the dump.
        let timeline = tero.trace.render_timeline();
        const HEAD: usize = 48;
        let total_lines = timeline.lines().count();
        for line in timeline.lines().take(HEAD) {
            println!("{line}");
        }
        if total_lines > HEAD {
            println!("... ({} more timeline lines)", total_lines - HEAD);
        }
    }

    // The provenance ledger: where every ingested sample ended up, proved
    // consistent with the `pipeline.funnel.*` counters.
    println!();
    match tero.trace.ledger().reconcile(&tero.obs) {
        Ok(summary) => print!("{}", summary.render_text()),
        Err(err) => {
            eprintln!("ledger reconcile FAILED: {err}");
            std::process::exit(1);
        }
    }

    // The Chrome trace, written to disk for Perfetto / chrome://tracing.
    let json = tero.trace.chrome_trace();
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&out_path, &json).expect("write chrome trace");
    // The path is run-specific, so it goes to stderr — stdout stays
    // byte-identical across runs with the same seed (ci.sh checks this).
    eprintln!(
        "wrote {} bytes of Chrome trace-event JSON to {out_path}",
        json.len()
    );
    println!();
    println!(
        "run summary: {} thumbnails, {} distributions published",
        report.thumbnails,
        report.distributions.len()
    );
}
