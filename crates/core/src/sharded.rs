//! The sharded deployment topology: N engines over a networked store.
//!
//! [`run_sharded`] runs `engines` [`Tero`] instances, each owning one
//! shard of the streamer population ([`ShardSpec`]), against a shared
//! mesh of `shards` primary/replica store-server pairs on a
//! [`SimNet`]. Every engine read and write crosses the simulated wire
//! through its own partition-tolerant [`ShardedStoreClient`] — with
//! deadlines, retries, circuit breakers and lease-based failover — so
//! the whole pipeline keeps committing through the `NetFault` schedule
//! of the supplied [`FaultPlan`].
//!
//! # How the merge preserves byte-identity
//!
//! Each engine ingests the **full world** (the download schedule is a
//! pure function of the seed, so every engine's committed cursor is
//! identical) but extracts only the streamers its shard owns. Per-shard
//! state is therefore:
//!
//! * **disjoint** for sample lists, raw sketches and name-hash fields —
//!   each streamer is owned by exactly one engine;
//! * **identical** for the download cursor and progress markers;
//! * **additive** for the per-engine task counters and the funnel
//!   ledger.
//!
//! Engines are driven window by window with [`Tero::advance_window`]
//! (ingest + extract + commit, no finalize), sequentially within each
//! window, with [`SimNet::set_window`] advancing the fault timeline
//! first. At the horizon the per-engine snapshots — already
//! namespace-scoped by the client — are folded with
//! [`KvSnapshot::merged`] (lists concatenate, hashes merge field-wise),
//! the additive markers are corrected to their across-engine sums, and
//! the merged state is restored into one fresh local [`Tero`] whose
//! only remaining work is the finalize stages. The report that
//! produces is byte-identical to a fault-free single-process run over
//! the same world — the invariant `tests/net_failover.rs` pins down.

use crate::engine::{StoreSnapshot, ENGINE_KEY};
use crate::pipeline::{ExtractionMode, Tero, TeroReport, WindowOutcome};
use std::sync::Arc;
use tero_chaos::{ChaosInjector, FaultPlan};
use tero_net::{default_link, engine_host, ShardedStoreClient, SimNet};
use tero_obs::Registry;
use tero_store::{KvSnapshot, KvStore, ObjectSnapshot, ObjectStore, RemoteStore};
use tero_trace::{merged_chrome_trace, Tracer};
use tero_types::{ShardSpec, SimTime};
use tero_world::{World, WorldConfig};

/// Configuration of one sharded run.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Engine instances; each owns `1/engines` of the streamers.
    pub engines: usize,
    /// Store shards; each is a primary/replica server pair on the mesh.
    pub shards: usize,
    /// Number of equal windows the horizon is cut into. Faults in the
    /// plan's `NetFault` schedule are expressed in these window indices.
    pub windows: u64,
    /// The world every engine builds its private copy of.
    pub world: WorldConfig,
    /// Extraction mode of every engine.
    pub mode: ExtractionMode,
    /// `min_streamers` of the merged finalize.
    pub min_streamers: usize,
    /// Fault plan. Only its `net` schedule is exercised here: the
    /// per-engine worlds carry no chaos injector (API/CDN faults would
    /// be drawn from per-engine streams and are covered by the
    /// single-process chaos suite), so the deterministic-merge
    /// invariant isolates exactly the network's contribution.
    pub plan: FaultPlan,
    /// Seed of the per-client backoff-jitter streams (engine index is
    /// folded in per client).
    pub net_seed: u64,
    /// Record a stitched mesh trace: every store host, engine and the
    /// merge instance gets its own enabled [`Tracer`] (collected in
    /// [`ShardedOutcome::mesh`]), and every store operation's span
    /// context rides the wire so server-side handling nests under the
    /// client op that caused it. Off by default — tracing a run it
    /// wasn't asked for would change nothing but still cost memory.
    pub trace: bool,
    /// Worker threads of the merge/finalize [`Tero`] instance. `0` (the
    /// default) keeps the machine default. The per-engine instances
    /// always run at `worker_threads: 1` (see the field comment in
    /// [`run_sharded_observed`]); this knob is how the worker-count
    /// invariance of the report *and the mesh trace* is exercised —
    /// both are byte-identical for every value.
    pub merge_workers: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            engines: 2,
            shards: 3,
            windows: 4,
            world: WorldConfig::default(),
            mode: ExtractionMode::Calibrated,
            min_streamers: 5,
            plan: FaultPlan::quiet(1),
            net_seed: 1,
            trace: false,
            merge_workers: 0,
        }
    }
}

/// The live state of a sharded run, handed to the observer closure of
/// [`run_sharded_observed`] after every completed window. Everything is
/// a borrow of the run's own handles — the observer reads (or polls
/// through `net`'s quiet ops plane) without owning any of it.
pub struct MeshView<'a> {
    /// The window that just completed (`0..windows`).
    pub window: u64,
    /// Total windows in the schedule.
    pub windows: u64,
    /// The store network — live servers, current fault window, and the
    /// quiet `poll` ops plane.
    pub net: &'a SimNet,
    /// The registry holding the run's `net.*` and `chaos.*` families.
    pub net_registry: &'a Registry,
    /// One store client per engine, in engine order: failover state
    /// (`shard_views`) for the health model.
    pub clients: &'a [Arc<ShardedStoreClient>],
    /// Each engine's own metric registry (`download.*`, `stage.*`, …),
    /// in engine order.
    pub engine_registries: &'a [Registry],
}

/// What a sharded run produces: the merged horizon report plus the
/// handles needed to assert on the run's network behaviour.
pub struct ShardedOutcome {
    /// The merged-and-finalized report. Byte-identical (see
    /// [`TeroReport::digest`]) to a fault-free single-process
    /// [`Tero::run`] over the same world.
    pub report: TeroReport,
    /// The registry all `net.*` client metrics and `chaos.injected.net_*`
    /// counters were recorded into.
    pub net_registry: Registry,
    /// The store network, post-run (server inspection in tests).
    pub net: SimNet,
    /// The mesh trace: one `(host, tracer)` per participant, sorted by
    /// host name — every engine (`engine0`, …), every store server
    /// (`shard0p`, `shard0r`, …) and the merge/finalize instance
    /// (`merge`). Empty unless [`ShardedConfig::trace`] was set.
    pub mesh: Vec<(String, Tracer)>,
}

impl ShardedOutcome {
    /// Export the stitched mesh trace as one Chrome-trace JSON document
    /// (`chrome://tracing` / Perfetto), one process per host. Requires
    /// [`ShardedConfig::trace`]; byte-identical across replays of the
    /// same `(plan, seed)` and across merge worker counts.
    pub fn mesh_chrome_trace(&self) -> String {
        let hosts: Vec<(&str, &Tracer)> = self
            .mesh
            .iter()
            .map(|(name, tracer)| (name.as_str(), tracer))
            .collect();
        merged_chrome_trace(&hosts)
    }
}

/// Run the sharded topology end to end. See the module docs for the
/// execution and merge model.
///
/// # Panics
///
/// Panics if the configuration is degenerate (`engines == 0`,
/// `shards == 0`, `windows == 0`), or if the fault plan makes recovery
/// impossible (both replicas of a store shard unreachable at once —
/// the client's panic, surfaced unchanged).
pub fn run_sharded(cfg: &ShardedConfig) -> ShardedOutcome {
    run_sharded_observed(cfg, |_| {})
}

/// [`run_sharded`] with an ops-plane observer: `observe` is called with
/// a [`MeshView`] after every completed window (fault timeline already
/// at that window), which is where a `tero-ops` `HealthMonitor` polls
/// the mesh mid-run. The observer sees the live network — anything it
/// sends must go through the quiet [`SimNet::poll`] plane, or it would
/// perturb the data plane's deterministic fault accounting.
///
/// # Panics
///
/// As [`run_sharded`].
pub fn run_sharded_observed(
    cfg: &ShardedConfig,
    mut observe: impl FnMut(&MeshView<'_>),
) -> ShardedOutcome {
    assert!(cfg.engines > 0, "need at least one engine");
    assert!(cfg.shards > 0, "need at least one store shard");
    assert!(cfg.windows > 0, "need at least one window");
    let net_registry = Registry::new();
    let chaos = ChaosInjector::new(cfg.plan.clone());
    chaos.instrument(&net_registry);
    let net = SimNet::with_shards(default_link(), chaos, cfg.shards);

    // When tracing, every store host records its handling into its own
    // tracer — attached before any client can reach the server, so the
    // trace covers the run from the first frame.
    let mut mesh: Vec<(String, Tracer)> = Vec::new();
    if cfg.trace {
        for host in net.hosts() {
            let tracer = Tracer::new();
            tracer.set_enabled(true);
            net.server(&host)
                .expect("with_shards registered every host it listed")
                .set_trace(&tracer);
            mesh.push((host, tracer));
        }
    }

    // One Tero + private world per engine. Store facades go through the
    // mesh; `worker_threads: 1` keeps every store access (and therefore
    // every chaos draw on the shared net stream) in one deterministic
    // sequential order. The merged report is unaffected: reports are
    // identical at any worker count.
    let mut clients: Vec<Arc<ShardedStoreClient>> = Vec::with_capacity(cfg.engines);
    let mut engines: Vec<(Tero, World, KvStore)> = (0..cfg.engines)
        .map(|i| {
            let client = Arc::new(ShardedStoreClient::new(
                net.clone(),
                i,
                cfg.shards,
                &net_registry,
                cfg.net_seed,
            ));
            let remote: Arc<dyn RemoteStore> = client.clone();
            let kv = KvStore::remote(remote.clone());
            let objects = ObjectStore::remote(remote);
            let tero = Tero {
                mode: cfg.mode,
                min_streamers: cfg.min_streamers,
                worker_threads: 1,
                stores: Some((kv.clone(), objects)),
                shard: Some(ShardSpec {
                    index: i as u32,
                    count: cfg.engines as u32,
                }),
                ..Tero::default()
            };
            if cfg.trace {
                // The engine's own tracer doubles as the host tracer for
                // its `net.*` op spans: client-side attempt/failover
                // activity nests under the pipeline stage that caused it.
                tero.trace.set_enabled(true);
                client.set_trace(&tero.trace);
                mesh.push((engine_host(i), tero.trace.clone()));
            }
            clients.push(client);
            (tero, World::build(cfg.world.clone()), kv)
        })
        .collect();
    let engine_registries: Vec<Registry> = engines
        .iter()
        .map(|(tero, _, _)| tero.obs.clone())
        .collect();

    // Drive every engine through the same window schedule, sequentially
    // within each window, advancing the fault timeline first. The
    // observer runs after each window, against the same fault window the
    // engines just lived through.
    let horizon = engines[0].1.horizon;
    for w in 0..cfg.windows {
        net.set_window(w);
        let to = SimTime::from_micros(horizon.as_micros() * (w + 1) / cfg.windows);
        for (tero, world, _) in engines.iter_mut() {
            let outcome = tero.advance_window(world, SimTime::EPOCH, to);
            assert!(
                matches!(outcome, WindowOutcome::Advanced),
                "advance_window never finalizes and the worlds carry no engine kills"
            );
        }
        observe(&MeshView {
            window: w,
            windows: cfg.windows,
            net: &net,
            net_registry: &net_registry,
            clients: &clients,
            engine_registries: &engine_registries,
        });
    }

    // Merge: namespace-scoped per-engine snapshots, plus a correction
    // part (appended last, so its fields win) fixing the additive
    // progress markers to their across-engine sums.
    let mut kv_parts = Vec::with_capacity(cfg.engines + 1);
    let mut obj_parts = Vec::with_capacity(cfg.engines);
    let mut tasks_processed = 0u64;
    let mut extracted = 0u64;
    for (tero, _, kv) in &engines {
        let snap = tero
            .engine_snapshot()
            .expect("engine still running after advance-only windows");
        kv_parts.push(snap.kv);
        obj_parts.push(snap.objects);
        let marker = |field: &str| -> u64 {
            kv.hget(ENGINE_KEY, field)
                .and_then(|v| v.parse().ok())
                .unwrap_or(0)
        };
        tasks_processed += marker("tasks_processed");
        extracted += marker("extracted");
    }
    let correction = KvStore::new();
    correction.hset(ENGINE_KEY, "tasks_processed", tasks_processed.to_string());
    correction.hset(ENGINE_KEY, "extracted", extracted.to_string());
    kv_parts.push(correction.snapshot());
    let merged = StoreSnapshot {
        kv: KvSnapshot::merged(&kv_parts),
        objects: ObjectSnapshot::merged(&obj_parts),
    };

    // Finalize the merged state exactly once, locally: the restored
    // engine sees ingest and extract already at the horizon, so the
    // first window call runs only clean → locate → publish.
    let mut merge_tero = Tero {
        mode: cfg.mode,
        min_streamers: cfg.min_streamers,
        ..Tero::default()
    };
    if cfg.merge_workers > 0 {
        merge_tero.worker_threads = cfg.merge_workers;
    }
    if cfg.trace {
        merge_tero.trace.set_enabled(true);
        mesh.push(("merge".to_string(), merge_tero.trace.clone()));
    }
    let mut merge_world = World::build(cfg.world.clone());
    merge_tero.restore_engine(merged);
    let report = loop {
        if let WindowOutcome::Complete(report) =
            merge_tero.run_window(&mut merge_world, SimTime::EPOCH, horizon)
        {
            break report;
        }
    };
    mesh.sort_by(|a, b| a.0.cmp(&b.0));
    ShardedOutcome {
        report,
        net_registry,
        net,
        mesh,
    }
}
