//! Isolation Forest (Liu, Ting & Zhou \[29\]) — the isolation-based baseline
//! of App. J.
//!
//! Points that are easy to isolate by random axis-aligned splits get short
//! average path lengths and hence anomaly scores near 1; dense inliers get
//! scores near 0.5 or below. Following App. J, the scores are thresholded
//! with the inter-quartile-range outlier rule rather than a fixed
//! contamination factor.

use tero_types::SimRng;

/// An ensemble of isolation trees over 1-D data.
#[derive(Debug, Clone)]
pub struct IsolationForest {
    trees: Vec<Tree>,
    sample_size: usize,
}

#[derive(Debug, Clone)]
enum Tree {
    Leaf {
        size: usize,
    },
    Split {
        value: f64,
        below: Box<Tree>,
        above: Box<Tree>,
    },
}

/// Average unsuccessful-search path length in a BST of `n` nodes — the
/// normalising constant `c(n)` from the paper.
fn c_factor(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let n = n as f64;
    // Harmonic number approximation H(n-1) ≈ ln(n-1) + γ.
    2.0 * ((n - 1.0).ln() + 0.577_215_664_9) - 2.0 * (n - 1.0) / n
}

fn build(values: &mut [f64], depth: usize, max_depth: usize, rng: &mut SimRng) -> Tree {
    let n = values.len();
    if n <= 1 || depth >= max_depth {
        return Tree::Leaf { size: n };
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if hi - lo < 1e-12 {
        return Tree::Leaf { size: n };
    }
    let split = rng.range_f64(lo, hi);
    let mid = itertools_partition(values, split);
    let (left, right) = values.split_at_mut(mid);
    Tree::Split {
        value: split,
        below: Box::new(build(left, depth + 1, max_depth, rng)),
        above: Box::new(build(right, depth + 1, max_depth, rng)),
    }
}

/// Partition `values` so that elements `< split` come first; returns the
/// boundary index.
fn itertools_partition(values: &mut [f64], split: f64) -> usize {
    let mut i = 0;
    for j in 0..values.len() {
        if values[j] < split {
            values.swap(i, j);
            i += 1;
        }
    }
    i
}

fn path_length(tree: &Tree, x: f64, depth: usize) -> f64 {
    match tree {
        Tree::Leaf { size } => depth as f64 + c_factor(*size),
        Tree::Split {
            value,
            below,
            above,
        } => {
            if x < *value {
                path_length(below, x, depth + 1)
            } else {
                path_length(above, x, depth + 1)
            }
        }
    }
}

impl IsolationForest {
    /// Fit a forest of `n_trees` trees, each on a subsample of
    /// `sample_size` points (256 in the original paper, clamped to the data
    /// size). Deterministic given the RNG.
    pub fn fit(xs: &[f64], n_trees: usize, sample_size: usize, rng: &mut SimRng) -> Self {
        let sample_size = sample_size.clamp(2, xs.len().max(2));
        let max_depth = (sample_size as f64).log2().ceil() as usize + 1;
        let mut trees = Vec::with_capacity(n_trees);
        for _ in 0..n_trees {
            let mut sample: Vec<f64> = if xs.len() <= sample_size {
                xs.to_vec()
            } else {
                rng.sample_indices(xs.len(), sample_size)
                    .into_iter()
                    .map(|i| xs[i])
                    .collect()
            };
            trees.push(build(&mut sample, 0, max_depth, rng));
        }
        IsolationForest { trees, sample_size }
    }

    /// Anomaly score in `(0, 1)` for one point: `2^(−E[h(x)] / c(ψ))`.
    /// Scores close to 1 indicate anomalies; ≤ 0.5, inliers.
    pub fn score(&self, x: f64) -> f64 {
        if self.trees.is_empty() {
            return 0.5;
        }
        let mean_path: f64 =
            self.trees.iter().map(|t| path_length(t, x, 0)).sum::<f64>() / self.trees.len() as f64;
        let c = c_factor(self.sample_size).max(1e-12);
        2f64.powf(-mean_path / c)
    }

    /// Score every input point.
    pub fn scores(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.score(x)).collect()
    }

    /// App. J's thresholding: rather than a fixed contamination factor,
    /// flag points whose *scores* are IQR outliers on the high side, with
    /// whisker factor `k_iqr` (the paper sweeps 0.5–2.0).
    pub fn outliers_by_iqr(&self, xs: &[f64], k_iqr: f64) -> Vec<usize> {
        let scores = self.scores(xs);
        crate::outliers::iqr_high_outliers(&scores, k_iqr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outlier_scores_higher_than_inliers() {
        let mut rng = SimRng::new(42);
        let mut xs: Vec<f64> = (0..200).map(|_| rng.normal_with(50.0, 2.0)).collect();
        xs.push(200.0);
        let mut frng = SimRng::new(7);
        let forest = IsolationForest::fit(&xs, 100, 128, &mut frng);
        let scores = forest.scores(&xs);
        let outlier = scores[200];
        let inlier_max = scores[..200].iter().cloned().fold(0.0, f64::max);
        assert!(
            outlier > inlier_max,
            "outlier {outlier} vs inlier max {inlier_max}"
        );
        assert!(outlier > 0.6, "outlier score {outlier}");
    }

    #[test]
    fn iqr_thresholding_flags_extreme_point() {
        let mut rng = SimRng::new(1);
        let mut xs: Vec<f64> = (0..300).map(|_| rng.normal_with(30.0, 1.0)).collect();
        xs.push(90.0);
        let mut frng = SimRng::new(2);
        let forest = IsolationForest::fit(&xs, 100, 256, &mut frng);
        let flagged = forest.outliers_by_iqr(&xs, 1.5);
        assert!(flagged.contains(&300), "flagged {flagged:?}");
        // The injected point must carry the highest score of all.
        let scores = forest.scores(&xs);
        let max_i = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_i, 300);
        // IQR whiskers on tight score distributions also pick up some noise
        // points (this is exactly why App. J sweeps the whisker factor);
        // just bound the false-positive fraction.
        assert!(
            flagged.len() < 60,
            "too many false positives: {}",
            flagged.len()
        );
    }

    #[test]
    fn constant_data_scores_uniformly() {
        let xs = vec![25.0; 100];
        let mut rng = SimRng::new(3);
        let forest = IsolationForest::fit(&xs, 50, 64, &mut rng);
        let scores = forest.scores(&xs);
        let first = scores[0];
        assert!(scores.iter().all(|s| (s - first).abs() < 1e-9));
        assert!(forest.outliers_by_iqr(&xs, 1.5).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let f1 = IsolationForest::fit(&xs, 20, 64, &mut SimRng::new(9));
        let f2 = IsolationForest::fit(&xs, 20, 64, &mut SimRng::new(9));
        assert_eq!(f1.scores(&xs), f2.scores(&xs));
    }

    #[test]
    fn c_factor_monotone() {
        assert_eq!(c_factor(1), 0.0);
        assert!(c_factor(10) < c_factor(100));
        assert!(c_factor(256) > 0.0);
    }
}
