//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock micro-benchmark harness with criterion's API shape:
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with throughput annotation, and `Bencher::iter`.
//! Timing uses `Instant` around batched iterations; results print as
//! `name  time: [median ns/iter]` lines. No plotting, no statistics beyond
//! median-of-samples — enough to compare runs by eye and to keep the
//! workspace's bench targets compiling and runnable offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimiser from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (the group name provides context).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    config: Config,
}

impl Bencher<'_> {
    /// Time `routine`, batching iterations so short routines are measurable.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until warm_up_time elapses (at least once).
        let warm_end = Instant::now() + self.config.warm_up;
        let mut warm_iters: u64 = 0;
        let mut warm_spent = Duration::ZERO;
        loop {
            let t0 = Instant::now();
            black_box(routine());
            warm_spent += t0.elapsed();
            warm_iters += 1;
            if Instant::now() >= warm_end || warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_spent.as_nanos().max(1) as f64 / warm_iters as f64;

        // Size batches so each sample takes roughly
        // measurement_time / sample_size.
        let target_ns = self.config.measurement.as_nanos() as f64 / self.config.sample_size as f64;
        let batch = ((target_ns / per_iter).ceil() as u64).clamp(1, 10_000_000);

        self.samples.clear();
        for _ in 0..self.config.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            self.samples.push(ns);
        }
    }
}

/// How `iter_batched` amortises setup cost (API parity with criterion).
/// The stand-in times every routine call individually — setup is always
/// excluded from the measurement — so the variants are equivalent here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are cheap to hold; criterion batches many per allocation.
    SmallInput,
    /// Inputs are large; criterion keeps few alive at once.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

impl Bencher<'_> {
    /// Time `routine` over inputs built by `setup`, excluding the setup
    /// from the measurement. For expensive setups (driving a pipeline to
    /// a known state before timing one step) this is the only honest
    /// shape — `iter` would fold the setup into every sample.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up: at least one full setup + routine round.
        let warm_end = Instant::now() + self.config.warm_up;
        loop {
            let input = setup();
            black_box(routine(input));
            if Instant::now() >= warm_end {
                break;
            }
        }
        // One timed routine call per sample; these benches are long
        // enough (micro-setups belong in `iter`) that batching within a
        // sample would only multiply the setup cost.
        self.samples.clear();
        for _ in 0..self.config.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed().as_nanos() as f64);
        }
    }
}

#[derive(Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            measurement: Duration::from_secs(1),
            warm_up: Duration::from_millis(300),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Total time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement = d;
        self
    }

    /// Warm-up time before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up = d;
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, f: F) {
        run_one(name, None, self.config, f);
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            config: self.config,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    config: Config,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: impl fmt::Display, f: F) {
        run_one(
            &format!("{}/{}", self.name, id),
            self.throughput,
            self.config,
            f,
        );
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(
            &format!("{}/{}", self.name, id),
            self.throughput,
            self.config,
            |b| f(b, input),
        );
    }

    /// Close the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(
    name: &str,
    throughput: Option<Throughput>,
    config: Config,
    mut f: F,
) {
    let mut samples = Vec::new();
    {
        let mut b = Bencher {
            samples: &mut samples,
            config,
        };
        f(&mut b);
    }
    if samples.is_empty() {
        println!("{name:<50} (no samples: Bencher::iter never called)");
        return;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(
                "  thrpt: {:>12.0} elem/s",
                n as f64 * 1e9 / (median * n as f64).max(1.0) * n as f64 / n as f64
            )
        }
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {:>12.0} B/s", n as f64 * 1e9 / median.max(1.0))
        }
        None => String::new(),
    };
    println!(
        "{name:<50} time: [{} {} {}]{rate}",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark group function (both criterion forms supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("x", 10), &10u32, |b, &n| b.iter(|| n * 2));
        g.finish();
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.5), "12.50 ns");
        assert_eq!(fmt_ns(1500.0), "1.500 µs");
    }
}
