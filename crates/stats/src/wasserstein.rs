//! 1-D Wasserstein (earth-mover) distance and the *uneven-ness* score of
//! Fig 8.
//!
//! The paper checks that, when multiple streamers play from one location,
//! their measurements are spread roughly uniformly over each 5-minute
//! interval rather than arriving in bursts. The score is the Wasserstein
//! distance between the observed arrival offsets and the uniform
//! distribution, normalised by the distance between the uniform distribution
//! and the most uneven one (all points at a single instant).

/// 1-D Wasserstein-1 distance between two empirical distributions given as
/// unsorted samples with equal weight per sample. Computed from the
/// quantile-function representation:
/// `W1 = ∫ |F⁻¹(q) − G⁻¹(q)| dq`.
pub fn wasserstein_1d(a: &[f64], b: &[f64]) -> f64 {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "wasserstein_1d: empty input"
    );
    let mut xa: Vec<f64> = a.to_vec();
    let mut xb: Vec<f64> = b.to_vec();
    xa.sort_by(|x, y| x.partial_cmp(y).expect("NaN in wasserstein input"));
    xb.sort_by(|x, y| x.partial_cmp(y).expect("NaN in wasserstein input"));

    // Merge the two sets of quantile breakpoints.
    let na = xa.len() as f64;
    let nb = xb.len() as f64;
    let mut dist = 0.0;
    let (mut ia, mut ib) = (0usize, 0usize);
    let mut q_prev = 0.0;
    while ia < xa.len() && ib < xb.len() {
        let qa = (ia + 1) as f64 / na;
        let qb = (ib + 1) as f64 / nb;
        let q = qa.min(qb);
        dist += (xa[ia] - xb[ib]).abs() * (q - q_prev);
        q_prev = q;
        if qa <= qb + 1e-15 {
            ia += 1;
        }
        if qb <= qa + 1e-15 {
            ib += 1;
        }
    }
    dist
}

/// 1-D Wasserstein-1 distance between an empirical sample (offsets within
/// `[0, span]`) and the continuous uniform distribution on `[0, span]`.
///
/// Uses the CDF-difference integral with exact piecewise-linear integration:
/// `W1 = ∫₀^span |F_emp(x) − x/span| dx`.
pub fn wasserstein_to_uniform(samples: &[f64], span: f64) -> f64 {
    assert!(!samples.is_empty(), "wasserstein_to_uniform: empty input");
    assert!(span > 0.0, "wasserstein_to_uniform: span must be positive");
    let mut xs: Vec<f64> = samples.iter().map(|&x| x.clamp(0.0, span)).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let n = xs.len() as f64;

    // Between consecutive sample points the empirical CDF is constant at
    // k/n while the uniform CDF is x/span; integrate |k/n − x/span| exactly
    // (the integrand is piecewise linear, possibly crossing zero once).
    let mut total = 0.0;
    let mut prev = 0.0;
    for (k, &x) in xs.iter().enumerate() {
        total += segment_integral(prev, x, k as f64 / n, span);
        prev = x;
    }
    total += segment_integral(prev, span, 1.0, span);
    total
}

/// ∫ₐᵇ |c − x/span| dx for constants `c`, handling the sign change.
fn segment_integral(a: f64, b: f64, c: f64, span: f64) -> f64 {
    if b <= a {
        return 0.0;
    }
    let f = |x: f64| c - x / span; // linear, decreasing
    let fa = f(a);
    let fb = f(b);
    if fa >= 0.0 && fb >= 0.0 {
        (fa + fb) / 2.0 * (b - a)
    } else if fa <= 0.0 && fb <= 0.0 {
        -((fa + fb) / 2.0) * (b - a)
    } else {
        // Crosses zero at x0 = c * span.
        let x0 = c * span;
        (fa / 2.0) * (x0 - a) + (-fb / 2.0) * (b - x0)
    }
}

/// The Fig 8 *uneven-ness* score for arrival offsets within a window of
/// length `span`: the Wasserstein distance to the uniform distribution,
/// normalised by the worst case (all mass at one endpoint), so the score is
/// in `[0, 1]` — 0 means perfectly uniform coverage, 1 means a single burst
/// at the window edge.
pub fn unevenness_score(offsets: &[f64], span: f64) -> f64 {
    let w = wasserstein_to_uniform(offsets, span);
    // Worst case: all points at an endpoint. W1(δ_0, U[0,span]) = span/2.
    (w / (span / 2.0)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_zero_distance() {
        let a = [1.0, 2.0, 3.0];
        assert!(wasserstein_1d(&a, &a) < 1e-12);
    }

    #[test]
    fn translation_shifts_by_constant() {
        let a = [0.0, 1.0, 2.0, 3.0];
        let b: Vec<f64> = a.iter().map(|x| x + 2.5).collect();
        assert!((wasserstein_1d(&a, &b) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let a = [0.0, 5.0, 9.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        assert!((wasserstein_1d(&a, &b) - wasserstein_1d(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn different_sizes_supported() {
        // W1 between {0} and {0, 1} = 0.5 (half the mass moves 1).
        assert!((wasserstein_1d(&[0.0], &[0.0, 1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn uniform_samples_score_near_zero() {
        let span = 300.0;
        let offsets: Vec<f64> = (0..100).map(|i| (i as f64 + 0.5) * 3.0).collect();
        let s = unevenness_score(&offsets, span);
        assert!(s < 0.02, "score {s}");
    }

    #[test]
    fn burst_scores_near_one() {
        let span = 300.0;
        let offsets = vec![0.0; 50];
        let s = unevenness_score(&offsets, span);
        assert!(s > 0.98, "score {s}");
        // A burst in the middle is "half as uneven" as one at the edge.
        let mid = vec![150.0; 50];
        let sm = unevenness_score(&mid, span);
        assert!((sm - 0.5).abs() < 0.02, "mid score {sm}");
    }

    #[test]
    fn score_bounded() {
        let span = 300.0;
        for pts in [vec![10.0, 290.0], vec![100.0], vec![0.0, 150.0, 300.0]] {
            let s = unevenness_score(&pts, span);
            assert!((0.0..=1.0).contains(&s), "score {s} for {pts:?}");
        }
    }

    #[test]
    fn to_uniform_matches_sampled_uniform() {
        // A dense grid approximates the continuous uniform distribution, so
        // the discrete-discrete and discrete-continuous computations should
        // roughly agree for a test distribution.
        let span = 100.0;
        let sample = [10.0, 20.0, 80.0, 90.0];
        let grid: Vec<f64> = (0..10_000).map(|i| (i as f64 + 0.5) / 100.0).collect();
        let approx = wasserstein_1d(&sample, &grid);
        let exact = wasserstein_to_uniform(&sample, span);
        assert!(
            (approx - exact).abs() < 0.05,
            "approx {approx} exact {exact}"
        );
    }

    #[test]
    fn samples_outside_span_clamp() {
        let s = wasserstein_to_uniform(&[-5.0, 400.0], 300.0);
        let t = wasserstein_to_uniform(&[0.0, 300.0], 300.0);
        assert!((s - t).abs() < 1e-12);
    }
}
