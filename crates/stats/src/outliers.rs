//! Inter-quartile-range outlier rule.
//!
//! App. J uses IQR whiskers (factor swept 0.5–2.0) to threshold Isolation
//! Forest scores instead of the original paper's contamination heuristic.

use crate::descriptive::percentile;

/// Indices of points outside `[Q1 − k·IQR, Q3 + k·IQR]`.
pub fn iqr_outliers(xs: &[f64], k: f64) -> Vec<usize> {
    if xs.len() < 4 {
        return vec![];
    }
    let q1 = percentile(xs, 25.0);
    let q3 = percentile(xs, 75.0);
    let iqr = q3 - q1;
    let lo = q1 - k * iqr;
    let hi = q3 + k * iqr;
    xs.iter()
        .enumerate()
        .filter(|(_, &x)| x < lo || x > hi)
        .map(|(i, _)| i)
        .collect()
}

/// Indices of points above `Q3 + k·IQR` only (high-side outliers, used for
/// anomaly *scores* where only large values matter).
pub fn iqr_high_outliers(xs: &[f64], k: f64) -> Vec<usize> {
    if xs.len() < 4 {
        return vec![];
    }
    let q1 = percentile(xs, 25.0);
    let q3 = percentile(xs, 75.0);
    let hi = q3 + k * (q3 - q1);
    xs.iter()
        .enumerate()
        .filter(|(_, &x)| x > hi)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_extremes_both_sides() {
        let mut xs: Vec<f64> = (0..100).map(|i| 50.0 + (i % 10) as f64).collect();
        xs.push(500.0);
        xs.push(-400.0);
        let out = iqr_outliers(&xs, 1.5);
        assert!(out.contains(&100));
        assert!(out.contains(&101));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn high_side_only() {
        let mut xs: Vec<f64> = (0..100).map(|i| 50.0 + (i % 10) as f64).collect();
        xs.push(500.0);
        xs.push(-400.0);
        let out = iqr_high_outliers(&xs, 1.5);
        assert_eq!(out, vec![100]);
    }

    #[test]
    fn whisker_factor_matters() {
        let mut xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        xs.push(90.0);
        assert!(iqr_outliers(&xs, 0.5).contains(&50));
        assert!(iqr_outliers(&xs, 3.0).is_empty());
    }

    #[test]
    fn tiny_inputs_yield_nothing() {
        assert!(iqr_outliers(&[1.0, 100.0], 1.5).is_empty());
        assert!(iqr_high_outliers(&[1.0, 2.0, 3.0], 1.5).is_empty());
    }

    #[test]
    fn constant_data_has_no_outliers() {
        let xs = vec![5.0; 40];
        assert!(iqr_outliers(&xs, 1.5).is_empty());
    }
}
