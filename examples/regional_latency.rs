//! Regional latency comparison — the paper's §5.2 workload: put League of
//! Legends streamers in a handful of places, run the pipeline, and compare
//! where the Internet is fast and where it is not.
//!
//! ```sh
//! cargo run --release --example regional_latency
//! ```

use tero::core::pipeline::{ExtractionMode, Tero};
use tero::types::{GameId, Location};
use tero::world::{World, WorldConfig};

fn main() {
    let locations = [
        Location::country("Netherlands"),
        Location::country("Switzerland"),
        Location::country("Poland"),
        Location::region("United States", "Illinois"),
        Location::region("United States", "District of Columbia"),
        Location::country("Jamaica"),
    ];
    let pinned = locations
        .iter()
        .map(|l| (l.clone(), GameId::LeagueOfLegends, 40))
        .collect();
    let mut world = World::build(WorldConfig {
        seed: 7,
        n_streamers: 0,
        days: 7,
        pinned,
        api_budget_per_min: 2_000,
        ..WorldConfig::default()
    });

    // The calibrated extraction mode skips pixel rendering — right for
    // analysis-scale runs (see DESIGN.md §2 for what it preserves).
    let tero = Tero {
        mode: ExtractionMode::Calibrated,
        ..Tero::default()
    };
    let report = tero.run(&mut world);

    println!("LoL latency by location (5/25/50/75/95 percentiles):");
    println!();
    let mut rows: Vec<_> = locations
        .iter()
        .filter_map(|loc| {
            report
                .distribution(loc, GameId::LeagueOfLegends)
                .map(|d| (loc, d))
        })
        .collect();
    rows.sort_by(|a, b| a.1.stats.p50.partial_cmp(&b.1.stats.p50).unwrap());
    for (loc, dist) in rows {
        let server = dist
            .server
            .as_ref()
            .map(|s| s.to_string())
            .unwrap_or_else(|| "?".into());
        println!("  {loc}");
        println!(
            "    {}   → {server} ({:.0} km corrected)",
            dist.stats,
            dist.corrected_distance_km.unwrap_or(0.0)
        );
        if let Some(norm) = &dist.normalized {
            println!(
                "    distance-normalised median: {:.1} ms per 1000 km",
                norm.p50
            );
        }
    }
    println!();
    println!("The spread between same-doughnut locations is the paper's headline:");
    println!("distance does not explain everything — eyeball ISPs do the rest.");
}
