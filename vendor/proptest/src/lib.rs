//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] / [`prop_assert!`] macro family, range strategies over
//! numbers, `[class]{m,n}` regex string strategies, tuples,
//! `prop::collection::vec`, `prop::option::of`, and `any::<T>()`.
//!
//! Differences from the real crate, by design:
//! * cases are generated from a seed derived from the test name, so every
//!   run of a given test sees the same inputs (fully deterministic);
//! * failing cases are reported with their inputs but NOT shrunk;
//! * each test runs a fixed 256 cases.

pub mod strategy;

pub mod collection;
pub mod option;
pub mod test_runner;

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Define property tests. Each generated `#[test]` runs 256 deterministic
/// cases of its body with fresh inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    ($(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )+) => {
        $(
            #[test]
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__rng| {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), __rng);
                    )+
                    let __inputs = || {
                        let mut s = String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&format!("{:?}; ", $arg));
                        )+
                        s
                    };
                    let __result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        Ok(())
                    })();
                    __result.map_err(|e| e.with_inputs(__inputs()))
                });
            }
        )+
    };
}

/// Assert a condition inside a [`proptest!`] body; failure reports the
/// generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} ({})",
                    stringify!($cond),
                    format!($($fmt)+),
                ),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = &$left;
        let r = &$right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {} (left: {:?}, right: {:?})",
                    stringify!($left), stringify!($right), l, r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = &$left;
        let r = &$right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                    stringify!($left), stringify!($right), l, r, format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = &$left;
        let r = &$right;
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l,
            )));
        }
    }};
}
