//! Fig 8 — uneven-ness of measurement arrival times within 5-minute
//! windows, by number of concurrently active streamers.
//!
//! The paper checks that thumbnails from co-located streamers are spread
//! roughly uniformly over time (Twitch does not post them in bursts): the
//! Wasserstein distance between arrival offsets and the uniform
//! distribution, normalised by the worst case, leans toward 0 once ≥3
//! streamers are active (≤0.5 for 80 % of windows).
//!
//! Usage: `fig08_unevenness [--n 120] [--days 6]`

use serde::Serialize;
use std::collections::BTreeMap;
use tero_bench::{arg_usize, header, write_json};
use tero_core::download::DownloadModule;
use tero_stats::unevenness_score;
use tero_store::{KvStore, ObjectStore};
use tero_types::SimTime;
use tero_world::{World, WorldConfig};

#[derive(Serialize)]
struct Output {
    per_count: Vec<(usize, Vec<f64>)>, // (streamers per window, score CDF deciles)
}

fn main() {
    let n = arg_usize("--n", 120);
    let days = arg_usize("--days", 6) as u64;
    header("Fig 8: uneven-ness of arrivals per 5-minute window");

    let mut world = World::build(WorldConfig {
        seed: 808,
        n_streamers: n,
        days,
        ..WorldConfig::default()
    });
    let mut module = DownloadModule::new(KvStore::new(), ObjectStore::new());
    let horizon = world.horizon;
    module.run(&mut world, SimTime::EPOCH, horizon);
    let tasks = module.drain_tasks();

    // Group thumbnail arrivals into 5-minute windows; each window's
    // arrivals come from however many streamers were captured in it.
    let window_us: u64 = 300 * 1_000_000;
    let mut windows: BTreeMap<u64, Vec<(String, f64)>> = BTreeMap::new();
    for t in &tasks {
        let w = t.generated_at.as_micros() / window_us;
        let offset = (t.generated_at.as_micros() % window_us) as f64 / 1e6;
        windows
            .entry(w)
            .or_default()
            .push((t.streamer.as_str().to_string(), offset));
    }

    // Scores grouped by the number of distinct streamers in the window.
    let mut by_count: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    for arrivals in windows.values() {
        let mut streamers: Vec<&String> = arrivals.iter().map(|(s, _)| s).collect();
        streamers.sort();
        streamers.dedup();
        let count = streamers.len().min(6);
        if count < 2 {
            continue;
        }
        let offsets: Vec<f64> = arrivals.iter().map(|&(_, o)| o).collect();
        by_count
            .entry(count)
            .or_default()
            .push(unevenness_score(&offsets, 300.0));
    }

    println!();
    println!(
        "{:>20} {:>8} {:>10} {:>10} {:>14}",
        "streamers/window", "windows", "median", "p80", "share ≤ 0.5"
    );
    let mut per_count = Vec::new();
    for (count, scores) in &by_count {
        let mut s = scores.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = tero_stats::descriptive::percentile_sorted(&s, 50.0);
        let p80 = tero_stats::descriptive::percentile_sorted(&s, 80.0);
        let below = s.iter().filter(|&&x| x <= 0.5).count() as f64 / s.len() as f64;
        println!(
            "{:>19}{} {:>8} {:>10.2} {:>10.2} {:>13.0}%",
            count,
            if *count == 6 { "+" } else { " " },
            s.len(),
            med,
            p80,
            100.0 * below
        );
        let deciles: Vec<f64> = (0..=10)
            .map(|d| tero_stats::descriptive::percentile_sorted(&s, d as f64 * 10.0))
            .collect();
        per_count.push((*count, deciles));
    }
    println!();
    println!("(paper: with ≥3 active streamers, uneven-ness leans uniform — scores");
    println!(" below ~0.5 for 80 % of windows)");

    write_json("fig08_unevenness", &Output { per_count });
}
