//! The remote-store boundary: typed request/response pairs for every
//! KV and object operation, and the [`RemoteStore`] trait a networked
//! client implements.
//!
//! [`KvStore`](crate::KvStore) and [`ObjectStore`](crate::ObjectStore)
//! are facades: their public API is identical whether the backend is
//! the in-process shard array or a [`RemoteStore`] speaking a wire
//! protocol (see the `tero-net` crate). The facade keeps metrics and
//! chaos write-drops on its side of the boundary, so a networked
//! deployment observes exactly the same `store.*` accounting and fault
//! semantics as a single-process run — only the transport differs.
//!
//! Requests and responses are plain data so they can be framed onto a
//! wire verbatim; `tero-net::frame` gives them a length-prefixed
//! binary encoding.

use crate::{KvSnapshot, ObjectSnapshot};
use serde::{Deserialize, Serialize};
use tero_types::SimTime;

/// One KV operation, as data. Mirrors the [`KvStore`](crate::KvStore)
/// method surface one-to-one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum KvRequest {
    /// `set(key, value)`.
    Set {
        /// Target key.
        key: String,
        /// String value to store.
        value: String,
    },
    /// `set_with_ttl(key, value, expires_at)`.
    SetWithTtl {
        /// Target key.
        key: String,
        /// String value to store.
        value: String,
        /// Logical expiry instant.
        expires_at: SimTime,
    },
    /// `get(key)`.
    Get {
        /// Target key.
        key: String,
    },
    /// `del(key)`.
    Del {
        /// Target key.
        key: String,
    },
    /// `exists(key)`.
    Exists {
        /// Target key.
        key: String,
    },
    /// `incr_by(key, delta)` — applied atomically by the owning server.
    IncrBy {
        /// Target key.
        key: String,
        /// Signed increment.
        delta: i64,
    },
    /// `rpush(key, value)`.
    Rpush {
        /// Target list key.
        key: String,
        /// Element to append.
        value: String,
    },
    /// `rpush_batch(key, values)`.
    RpushBatch {
        /// Target list key.
        key: String,
        /// Elements to append, in order.
        values: Vec<String>,
    },
    /// `lpop(key)`.
    Lpop {
        /// Target list key.
        key: String,
    },
    /// `lpop_batch(key, n)`.
    LpopBatch {
        /// Target list key.
        key: String,
        /// Maximum number of elements to pop.
        n: u64,
    },
    /// `lpop_exact_batch(key, n)`.
    LpopExactBatch {
        /// Target list key.
        key: String,
        /// Exact batch size (all-or-nothing).
        n: u64,
    },
    /// `llen(key)`.
    Llen {
        /// Target list key.
        key: String,
    },
    /// `lrange_from(key, start)` — non-destructive suffix read.
    LrangeFrom {
        /// Target list key.
        key: String,
        /// Index of the first element to return.
        start: u64,
    },
    /// `hset(key, field, value)`.
    Hset {
        /// Target hash key.
        key: String,
        /// Field name.
        field: String,
        /// Field value.
        value: String,
    },
    /// `hget(key, field)`.
    Hget {
        /// Target hash key.
        key: String,
        /// Field name.
        field: String,
    },
    /// `hgetall(key)` — the response carries sorted `(field, value)`
    /// pairs so it is deterministic on the wire.
    Hgetall {
        /// Target hash key.
        key: String,
    },
    /// `keys_with_prefix(prefix)` — fans out to every shard.
    KeysWithPrefix {
        /// Key prefix to scan for.
        prefix: String,
    },
    /// `sweep_expired(now)` — fans out to every shard. `prefix` scopes
    /// the sweep: only expired keys starting with it are removed (empty
    /// = the whole store). A namespaced client rewrites the prefix so
    /// one tenant's sweep never evicts another tenant's TTL leases.
    SweepExpired {
        /// Logical sweep instant.
        now: SimTime,
        /// Key-prefix scope of the sweep.
        prefix: String,
    },
    /// `len()` — fans out to every shard.
    Len,
    /// `clear()` — fans out to every shard.
    Clear,
    /// `snapshot()` — fans out and merges (the client filters to its
    /// own namespace).
    Snapshot,
    /// `restore(snapshot)` — administrative full-state replacement,
    /// also used for replica resync after a partition heals.
    Restore {
        /// State to install.
        snapshot: KvSnapshot,
    },
}

impl KvRequest {
    /// The key this request routes by, or `None` for fan-out
    /// (all-shard) operations.
    pub fn routing_key(&self) -> Option<&str> {
        match self {
            KvRequest::Set { key, .. }
            | KvRequest::SetWithTtl { key, .. }
            | KvRequest::Get { key }
            | KvRequest::Del { key }
            | KvRequest::Exists { key }
            | KvRequest::IncrBy { key, .. }
            | KvRequest::Rpush { key, .. }
            | KvRequest::RpushBatch { key, .. }
            | KvRequest::Lpop { key }
            | KvRequest::LpopBatch { key, .. }
            | KvRequest::LpopExactBatch { key, .. }
            | KvRequest::Llen { key }
            | KvRequest::LrangeFrom { key, .. }
            | KvRequest::Hset { key, .. }
            | KvRequest::Hget { key, .. }
            | KvRequest::Hgetall { key } => Some(key),
            _ => None,
        }
    }

    /// Whether this request mutates server state (and therefore must be
    /// replicated and deduplicated on retry).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            KvRequest::Set { .. }
                | KvRequest::SetWithTtl { .. }
                | KvRequest::Del { .. }
                | KvRequest::IncrBy { .. }
                | KvRequest::Rpush { .. }
                | KvRequest::RpushBatch { .. }
                | KvRequest::Lpop { .. }
                | KvRequest::LpopBatch { .. }
                | KvRequest::LpopExactBatch { .. }
                | KvRequest::Hset { .. }
                | KvRequest::SweepExpired { .. }
                | KvRequest::Clear
                | KvRequest::Restore { .. }
        )
    }
}

/// The result of one [`KvRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum KvResponse {
    /// No payload (`set`, `hset`, `clear`, `restore`).
    Unit,
    /// A boolean (`del`, `exists`).
    Bool(bool),
    /// A signed integer (`incr_by`).
    Int(i64),
    /// An unsigned count (`rpush`, `llen`, `sweep_expired`, `len`).
    Uint(u64),
    /// An optional string (`get`, `lpop`, `hget`).
    MaybeStr(Option<String>),
    /// A string list (`lpop_batch`, `keys_with_prefix`).
    Strs(Vec<String>),
    /// Sorted `(field, value)` pairs (`hgetall`).
    Pairs(Vec<(String, String)>),
    /// A full-state snapshot (`snapshot`).
    Snapshot(KvSnapshot),
}

/// One object-store operation, as data. Mirrors the
/// [`ObjectStore`](crate::ObjectStore) method surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ObjRequest {
    /// `put(bucket, key, data)`.
    Put {
        /// Target bucket.
        bucket: String,
        /// Object key.
        key: String,
        /// Payload bytes.
        data: Vec<u8>,
    },
    /// `get(bucket, key)`.
    Get {
        /// Target bucket.
        bucket: String,
        /// Object key.
        key: String,
    },
    /// `delete(bucket, key)`.
    Delete {
        /// Target bucket.
        bucket: String,
        /// Object key.
        key: String,
    },
    /// `delete_bucket(bucket)`.
    DeleteBucket {
        /// Bucket to drop entirely.
        bucket: String,
    },
    /// `list(bucket)`.
    List {
        /// Bucket to enumerate.
        bucket: String,
    },
    /// `count(bucket)`.
    Count {
        /// Bucket to count.
        bucket: String,
    },
    /// `total_bytes()` — fans out to every shard.
    TotalBytes,
    /// `snapshot()` — fans out and merges.
    Snapshot,
    /// `restore(snapshot)` — administrative, also used for resync.
    Restore {
        /// State to install.
        snapshot: ObjectSnapshot,
    },
}

impl ObjRequest {
    /// The bucket this request routes by, or `None` for fan-out
    /// operations.
    pub fn routing_bucket(&self) -> Option<&str> {
        match self {
            ObjRequest::Put { bucket, .. }
            | ObjRequest::Get { bucket, .. }
            | ObjRequest::Delete { bucket, .. }
            | ObjRequest::DeleteBucket { bucket }
            | ObjRequest::List { bucket }
            | ObjRequest::Count { bucket } => Some(bucket),
            _ => None,
        }
    }

    /// Whether this request mutates server state.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            ObjRequest::Put { .. }
                | ObjRequest::Delete { .. }
                | ObjRequest::DeleteBucket { .. }
                | ObjRequest::Restore { .. }
        )
    }
}

/// The result of one [`ObjRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ObjResponse {
    /// No payload (`put`, `restore`).
    Unit,
    /// A boolean (`delete`).
    Bool(bool),
    /// An unsigned count (`delete_bucket`, `count`, `total_bytes`).
    Uint(u64),
    /// Optional payload bytes (`get`).
    MaybeBytes(Option<Vec<u8>>),
    /// Sorted object keys (`list`).
    Strs(Vec<String>),
    /// A full-state snapshot (`snapshot`).
    Snapshot(ObjectSnapshot),
}

/// A store backend reached over a transport rather than a shard array.
///
/// Implementations (see `tero-net::ShardedStoreClient`) own routing,
/// retries, deadlines, circuit breaking and failover: by the time a
/// call returns, the operation has durably happened on whichever
/// replica currently holds the shard lease. The facade treats the
/// remote exactly like local memory — which is the point: the engine
/// above never learns the difference.
pub trait RemoteStore: Send + Sync {
    /// Execute one KV operation to completion.
    fn kv(&self, req: KvRequest) -> KvResponse;
    /// Execute one object operation to completion.
    fn obj(&self, req: ObjRequest) -> ObjResponse;
}

/// Execute one [`KvRequest`] against a concrete store — the server side
/// of the wire protocol. Used by `tero-net::StoreServer` (and any
/// loopback test double).
pub fn apply_kv(store: &crate::KvStore, req: KvRequest) -> KvResponse {
    match req {
        KvRequest::Set { key, value } => {
            store.set(&key, value);
            KvResponse::Unit
        }
        KvRequest::SetWithTtl {
            key,
            value,
            expires_at,
        } => {
            store.set_with_ttl(&key, value, expires_at);
            KvResponse::Unit
        }
        KvRequest::Get { key } => KvResponse::MaybeStr(store.get(&key)),
        KvRequest::Del { key } => KvResponse::Bool(store.del(&key)),
        KvRequest::Exists { key } => KvResponse::Bool(store.exists(&key)),
        KvRequest::IncrBy { key, delta } => KvResponse::Int(store.incr_by(&key, delta)),
        KvRequest::Rpush { key, value } => KvResponse::Uint(store.rpush(&key, value) as u64),
        KvRequest::RpushBatch { key, values } => {
            KvResponse::Uint(store.rpush_batch(&key, values) as u64)
        }
        KvRequest::Lpop { key } => KvResponse::MaybeStr(store.lpop(&key)),
        KvRequest::LpopBatch { key, n } => KvResponse::Strs(store.lpop_batch(&key, n as usize)),
        KvRequest::LpopExactBatch { key, n } => {
            KvResponse::Strs(store.lpop_exact_batch(&key, n as usize))
        }
        KvRequest::Llen { key } => KvResponse::Uint(store.llen(&key) as u64),
        KvRequest::LrangeFrom { key, start } => {
            KvResponse::Strs(store.lrange_from(&key, start as usize))
        }
        KvRequest::Hset { key, field, value } => {
            store.hset(&key, &field, value);
            KvResponse::Unit
        }
        KvRequest::Hget { key, field } => KvResponse::MaybeStr(store.hget(&key, &field)),
        KvRequest::Hgetall { key } => {
            let mut pairs: Vec<(String, String)> = store.hgetall(&key).into_iter().collect();
            pairs.sort();
            KvResponse::Pairs(pairs)
        }
        KvRequest::KeysWithPrefix { prefix } => KvResponse::Strs(store.keys_with_prefix(&prefix)),
        KvRequest::SweepExpired { now, prefix } => {
            KvResponse::Uint(store.sweep_expired_scoped(now, &prefix) as u64)
        }
        KvRequest::Len => KvResponse::Uint(store.len() as u64),
        KvRequest::Clear => {
            store.clear();
            KvResponse::Unit
        }
        KvRequest::Snapshot => KvResponse::Snapshot(store.snapshot()),
        KvRequest::Restore { snapshot } => {
            store.restore(&snapshot);
            KvResponse::Unit
        }
    }
}

/// Execute one [`ObjRequest`] against a concrete store — the server
/// side of the wire protocol.
pub fn apply_obj(store: &crate::ObjectStore, req: ObjRequest) -> ObjResponse {
    match req {
        ObjRequest::Put { bucket, key, data } => {
            store.put(&bucket, &key, data);
            ObjResponse::Unit
        }
        ObjRequest::Get { bucket, key } => {
            ObjResponse::MaybeBytes(store.get(&bucket, &key).map(|b| b.to_vec()))
        }
        ObjRequest::Delete { bucket, key } => ObjResponse::Bool(store.delete(&bucket, &key)),
        ObjRequest::DeleteBucket { bucket } => {
            ObjResponse::Uint(store.delete_bucket(&bucket) as u64)
        }
        ObjRequest::List { bucket } => ObjResponse::Strs(store.list(&bucket)),
        ObjRequest::Count { bucket } => ObjResponse::Uint(store.count(&bucket) as u64),
        ObjRequest::TotalBytes => ObjResponse::Uint(store.total_bytes() as u64),
        ObjRequest::Snapshot => ObjResponse::Snapshot(store.snapshot()),
        ObjRequest::Restore { snapshot } => {
            store.restore(&snapshot);
            ObjResponse::Unit
        }
    }
}
