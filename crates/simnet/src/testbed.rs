//! The Fig 3 testbed: two play-stations, a controlled bottleneck, and
//! traffic generator/sink devices.
//!
//! ```text
//!  Control ── Switch1 ── Server
//!                 │
//!  Test ── Switch2 ── Router ──(joins Switch1)
//!            │          │
//!           Sink       Gen
//! ```
//!
//! The Control play-station shares the path to the game server with the
//! Test play-station, except that Test's path crosses an additional
//! bottleneck (Router → Switch2) whose bandwidth and queue size we control
//! and which carries the generator→sink background traffic.

use crate::game::GameClient;
use crate::link::{LinkConfig, LinkId};
use crate::packet::NodeId;
use crate::sim::Simulator;
use tero_types::SimDuration;

/// Node/link handles of a built testbed.
#[derive(Debug)]
pub struct Testbed {
    /// The simulator with topology and routes ready.
    pub sim: Simulator,
    /// Control play-station node.
    pub control: NodeId,
    /// Test play-station node.
    pub test: NodeId,
    /// Background-traffic generator node (router side).
    pub gen: NodeId,
    /// Background-traffic sink node (switch-2 side).
    pub sink: NodeId,
    /// Game-server node.
    pub server: NodeId,
    /// The bottleneck link Router → Switch2 (congested direction).
    pub bottleneck_down: LinkId,
    /// The reverse direction Switch2 → Router.
    pub bottleneck_up: LinkId,
    /// Index of the Control game client.
    pub control_client: usize,
    /// Index of the Test game client.
    pub test_client: usize,
}

/// Build the testbed.
///
/// * `bottleneck_bps` / `bottleneck_queue` — the Table 2 knobs;
/// * `server_one_way` — propagation to the game server (sets the base
///   gaming latency, which differs per game);
/// * `display_window` — the server's RTT-averaging window.
pub fn build_testbed(
    bottleneck_bps: f64,
    bottleneck_queue: usize,
    server_one_way: SimDuration,
    display_window: SimDuration,
) -> Testbed {
    let mut sim = Simulator::new();
    let control = sim.add_node();
    let test = sim.add_node();
    let gen = sim.add_node();
    let sink = sim.add_node();
    let switch1 = sim.add_node();
    let switch2 = sim.add_node();
    let router = sim.add_node();
    let server = sim.add_node();

    // LAN links: 1 Gbps, 50 µs propagation, deep queues.
    let lan = LinkConfig {
        rate_bps: 1e9,
        prop: SimDuration::from_micros(50),
        queue_packets: 1_000,
    };
    sim.add_duplex_link(control, switch1, lan);
    sim.add_duplex_link(test, switch2, lan);
    sim.add_duplex_link(gen, router, lan);
    sim.add_duplex_link(sink, switch2, lan);
    sim.add_duplex_link(router, switch1, lan);

    // Bottleneck between Router and Switch2.
    let bottleneck = LinkConfig {
        rate_bps: bottleneck_bps,
        prop: SimDuration::from_micros(100),
        queue_packets: bottleneck_queue,
    };
    let (bottleneck_down, bottleneck_up) = sim.add_duplex_link(router, switch2, bottleneck);

    // Server uplink carries the game's base propagation delay.
    let server_link = LinkConfig {
        rate_bps: 1e9,
        prop: server_one_way,
        queue_packets: 1_000,
    };
    sim.add_duplex_link(switch1, server, server_link);

    sim.compute_routes();
    sim.set_game_server(server);

    let mut control_gc = GameClient::new(control, server);
    control_gc.input_interval = SimDuration::from_millis(33);
    let mut test_gc = GameClient::new(test, server);
    test_gc.input_interval = SimDuration::from_millis(33);
    let control_client = sim.add_game_client(control_gc);
    let test_client = sim.add_game_client(test_gc);
    for s in &mut sim.game_sessions {
        s.window = display_window;
    }

    Testbed {
        sim,
        control,
        test,
        gen,
        sink,
        server,
        bottleneck_down,
        bottleneck_up,
        control_client,
        test_client,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tero_types::SimTime;

    #[test]
    fn both_clients_see_base_latency_when_idle() {
        let mut tb = build_testbed(
            100e6,
            500,
            SimDuration::from_millis(18),
            SimDuration::from_secs(3),
        );
        tb.sim.run_until(SimTime::from_secs(20));
        let control = tb.sim.game_clients[tb.control_client].displayed_ms.unwrap();
        let test = tb.sim.game_clients[tb.test_client].displayed_ms.unwrap();
        // Base RTT ≈ 2×18 ms plus sub-ms overheads, same for both.
        assert!((control - 36.0).abs() < 2.0, "control {control}");
        assert!(
            (test - control).abs() < 1.0,
            "paths agree: test {test} control {control}"
        );
    }

    #[test]
    fn test_path_crosses_bottleneck_and_control_does_not() {
        let mut tb = build_testbed(
            1e6, // 1 Mbps so congestion is easy to create
            20,
            SimDuration::from_millis(5),
            SimDuration::from_secs(1),
        );
        // Saturate the bottleneck downstream (gen → sink).
        tb.sim.add_udp_flow(
            crate::udp::UdpFlow::cbr(
                tb.gen,
                tb.sink,
                2e6,
                1250,
                SimTime::from_secs(5),
                SimTime::from_secs(30),
            )
            .with_jitter(0.1),
        );
        tb.sim.run_until(SimTime::from_secs(25));
        let control = tb.sim.game_clients[tb.control_client].displayed_ms.unwrap();
        let test = tb.sim.game_clients[tb.test_client].displayed_ms.unwrap();
        assert!(
            test > control + 50.0,
            "bottleneck must hit Test only: test {test} control {control}"
        );
        assert!(control < 15.0, "control unaffected: {control}");
    }
}
