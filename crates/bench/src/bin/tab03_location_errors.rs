//! Table 3 — extraction and error rates of the location techniques.
//!
//! Protocol follows App. H.1: generate streamer profiles with known ground
//! truth (Twitch descriptions in the paper's style mix, Twitter location
//! fields, profile links), run each technique, and compare:
//!
//! * raw geocoders (CLIFF / Xponents / Mordecai) on descriptions;
//! * the same with the conservative filter ("Tool++", App. D.1);
//! * the Twitch combination (App. D.2);
//! * the Twitch↔Twitter mapping (§3.1);
//! * raw geoparsers (Nominatim / GeoNames) on Twitter fields and their
//!   combination (App. D.3);
//! * the full Tero location module.
//!
//! Paper's Table 3: raw tools err 23–36 %; Tool++ 2.4–3.6 %; Twitch comb.
//! 3.47 %; mapping 1.6 %; Twitter comb. 1.91 %; Tero 1.46 %. The shape:
//! the conservative filter slashes tool error by an order of magnitude;
//! combinations refine further.
//!
//! Usage: `tab03_location_errors [--n 3000]`

use serde::Serialize;
use tero_bench::{arg_usize, header, write_json};
use tero_core::location::LocationModule;
use tero_geoparse::combine::{combine_twitch_description, combine_twitter_location};
use tero_geoparse::filter::conservative_filter;
use tero_geoparse::tools::{GeoTool, ToolKind};
use tero_geoparse::{match_profile, Gazetteer, PlaceKind};
use tero_types::{Location, SimRng, SimTime};
use tero_world::streamer::Streamer;

#[derive(Serialize)]
struct Row {
    technique: String,
    extracted_pct: f64,
    error_pct: f64,
    paper_extracted_pct: Option<f64>,
    paper_error_pct: Option<f64>,
}

/// An output is *correct* if the truth subsumes it or it subsumes the
/// truth (tools legitimately output coarser or equal granularity).
fn correct(output: &Location, truth: &Location) -> bool {
    output == truth || output.subsumes(truth) || truth.subsumes(output)
}

fn main() {
    let n = arg_usize("--n", 3_000);
    header("Table 3: extraction and error rates of location techniques");
    println!("({n} generated streamers)");

    let gaz = Gazetteer::new();
    let homes: Vec<_> = gaz
        .places()
        .iter()
        .filter(|p| p.kind == PlaceKind::City)
        .cloned()
        .collect();
    let mut rng = SimRng::new(303);
    let streamers: Vec<Streamer> = (0..n)
        .map(|_| {
            let home = homes[rng.range_usize(0, homes.len())].clone();
            Streamer::generate(&gaz, home, SimTime::from_hours(100), &mut rng)
        })
        .collect();
    // Social directory (all profiles, as the location module sees it),
    // plus ~1 % fan/impersonator profiles under streamer usernames with a
    // wrong location — the source of the paper's 1.6 % mapping errors.
    let mut directory: Vec<_> = streamers
        .iter()
        .flat_map(|s| s.twitter.iter().chain(s.steam.iter()).cloned())
        .collect();
    for s in &streamers {
        if rng.chance(0.01) {
            let wrong = &homes[rng.range_usize(0, homes.len())];
            directory.push(tero_geoparse::SocialProfile {
                platform: tero_geoparse::profiles::SocialPlatform::Steam,
                username: s.id.as_str().to_string(),
                location_field: Some(wrong.location.country.clone()),
                bio: format!("fan of twitch.tv/{}", s.id.as_str()),
                links_to_twitch: Some(s.id.as_str().to_string()),
            });
        }
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut add =
        |name: &str, extracted: usize, wrong: usize, total: usize, paper: Option<(f64, f64)>| {
            rows.push(Row {
                technique: name.to_string(),
                extracted_pct: 100.0 * extracted as f64 / total.max(1) as f64,
                error_pct: if extracted == 0 {
                    0.0
                } else {
                    100.0 * wrong as f64 / extracted as f64
                },
                paper_extracted_pct: paper.map(|p| p.0),
                paper_error_pct: paper.map(|p| p.1),
            });
        };

    // --- Raw geocoders and Tool++ on Twitch descriptions -------------------
    for kind in ToolKind::GEOCODERS {
        let tool = GeoTool::new(kind, &gaz);
        let (mut ext, mut wrong) = (0, 0);
        let (mut ext_pp, mut wrong_pp) = (0, 0);
        for s in &streamers {
            let outputs = tool.extract(&s.description);
            let truth = s.home.location.clone();
            // Mordecai counts as correct if *any* candidate is correct
            // (App. H.1).
            if !outputs.is_empty() {
                ext += 1;
                if !outputs.iter().any(|o| correct(o, &truth)) {
                    wrong += 1;
                }
                // Tool++: conservative filter.
                let passing: Vec<_> = outputs
                    .iter()
                    .filter(|o| conservative_filter(&gaz, &s.description, o))
                    .collect();
                if !passing.is_empty() {
                    ext_pp += 1;
                    if !passing.iter().any(|o| correct(o, &truth)) {
                        wrong_pp += 1;
                    }
                }
            }
        }
        let paper = match kind {
            ToolKind::Cliff => (0.44, 33.4),
            ToolKind::Xponents => (3.55, 36.27),
            ToolKind::Mordecai => (0.81, 23.0),
            _ => unreachable!(),
        };
        add(kind.name(), ext, wrong, n, Some(paper));
        let paper_pp = match kind {
            ToolKind::Cliff => (63.99, 3.6),
            ToolKind::Xponents => (41.85, 2.87),
            ToolKind::Mordecai => (17.94, 2.43),
            _ => unreachable!(),
        };
        add(
            &format!("{}++", kind.name()),
            ext_pp,
            wrong_pp,
            n,
            Some(paper_pp),
        );
    }

    // --- Twitch combination -------------------------------------------------
    {
        let (mut ext, mut wrong) = (0, 0);
        for s in &streamers {
            if let Some(out) = combine_twitch_description(&gaz, &s.description) {
                ext += 1;
                if !correct(&out, &s.home.location) {
                    wrong += 1;
                }
            }
        }
        add("Twitch Comb.", ext, wrong, n, Some((1.91, 3.47)));
    }

    // --- Twitch↔Twitter mapping ---------------------------------------------
    {
        let (mut mapped, mut wrong) = (0, 0);
        for s in &streamers {
            if let Some(profile) = match_profile(s.id.as_str(), &directory) {
                mapped += 1;
                // The mapping is wrong if the matched profile is not the
                // streamer's own.
                let own = s.twitter.iter().chain(s.steam.iter()).any(|p| p == profile);
                if !own {
                    wrong += 1;
                }
            }
        }
        add(
            "Twitter-Twitch mapping",
            mapped,
            wrong,
            n,
            Some((1.96, 1.6)),
        );
    }

    // --- Raw geoparsers + Twitter combination on location fields ------------
    let with_fields: Vec<&Streamer> = streamers
        .iter()
        .filter(|s| {
            s.twitter
                .as_ref()
                .and_then(|p| p.location_field.as_ref())
                .is_some()
        })
        .collect();
    for kind in ToolKind::GEOPARSERS {
        let tool = GeoTool::new(kind, &gaz);
        let (mut ext, mut wrong) = (0, 0);
        for s in &with_fields {
            let field = s
                .twitter
                .as_ref()
                .and_then(|p| p.location_field.as_deref())
                .unwrap();
            let outputs = tool.extract(field);
            if let Some(out) = outputs.first() {
                ext += 1;
                if !correct(out, &s.home.location) {
                    wrong += 1;
                }
            }
        }
        let paper = match kind {
            ToolKind::Nominatim => (70.83, 7.93),
            ToolKind::GeoNames => (69.55, 11.87),
            _ => unreachable!(),
        };
        add(kind.name(), ext, wrong, with_fields.len(), Some(paper));
    }
    {
        let (mut ext, mut wrong) = (0, 0);
        for s in &with_fields {
            let field = s
                .twitter
                .as_ref()
                .and_then(|p| p.location_field.as_deref())
                .unwrap();
            if let Some(out) = combine_twitter_location(&gaz, field) {
                ext += 1;
                if !correct(&out, &s.home.location) {
                    wrong += 1;
                }
            }
        }
        add(
            "Twitter Comb.",
            ext,
            wrong,
            with_fields.len(),
            Some((70.77, 1.91)),
        );
    }

    // --- Full Tero location module -------------------------------------------
    {
        let module = LocationModule::new(&gaz);
        let (mut ext, mut wrong) = (0, 0);
        for s in &streamers {
            if let Some((out, _src)) =
                module.locate(s.id.as_str(), Some(&s.description), &directory, &[])
            {
                ext += 1;
                if !correct(&out, &s.home.location) {
                    wrong += 1;
                }
            }
        }
        add("Tero", ext, wrong, n, Some((2.5, 1.46)));
    }

    println!();
    println!(
        "{:<26} {:>11} {:>9}    (paper: extracted / error)",
        "technique", "extracted %", "error %"
    );
    for r in &rows {
        let paper = match (r.paper_extracted_pct, r.paper_error_pct) {
            (Some(e), Some(err)) => format!("({e:>6.2}% / {err:>5.2}%)"),
            _ => String::new(),
        };
        println!(
            "{:<26} {:>10.2}% {:>8.2}%    {paper}",
            r.technique, r.extracted_pct, r.error_pct
        );
    }
    println!();
    println!("note: raw-tool denominators are all streamers (tools see every");
    println!("description); geoparser denominators are streamers with a Twitter");
    println!("location field, as in App. H.1's protocol.");

    write_json("tab03_location_errors", &rows);
}
