//! Observability substrate for the Tero pipeline.
//!
//! Every module of the pipeline (download, image processing, analysis, the
//! storage substrate, the network simulator) reports into a shared
//! [`Registry`] of named metrics:
//!
//! * [`Counter`] — monotonically increasing event counts (relaxed atomics);
//! * [`Gauge`] — instantaneous levels that move both ways, with a
//!   high-watermark;
//! * [`Histogram`] — power-of-two-bucketed value distributions (latencies
//!   in µs, queue depths), with interpolated p50/p95/p99;
//! * [`StageTimer`] — an RAII guard that records wall-clock stage latency
//!   into a histogram, active only when the registry's timing knob is on.
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path cost.** Counter bumps are a single relaxed atomic add;
//!    handles are `Arc`s resolved once at wiring time, so steady-state
//!    recording takes no locks and no name lookups. With timing disabled
//!    (the default) a [`StageTimer`] never reads the clock.
//! 2. **Determinism.** Snapshots list metrics in name order, so two runs
//!    over the same world produce byte-identical text and JSON (timing
//!    histograms excluded — wall clocks are not deterministic — which is
//!    exactly why the timing knob defaults to off).
//! 3. **Zero dependencies** beyond the workspace's serde shims: the crate
//!    must be usable from every layer, including `tero-store` at the
//!    bottom of the dependency graph.
//!
//! ```
//! use tero_obs::Registry;
//!
//! let registry = Registry::new();
//! let hits = registry.counter("download.get.hits");
//! hits.inc();
//! let depth = registry.histogram("download.queue_depth");
//! depth.record(3);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("download.get.hits"), Some(1));
//! println!("{}", snap.render_text());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod hist;
mod metrics;
mod registry;
mod snapshot;
mod stage;
mod timer;

pub use hist::Histogram;
pub use metrics::{Counter, Gauge};
pub use registry::{CounterHandle, GaugeHandle, HistogramHandle, Registry};
pub use snapshot::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, Snapshot};
pub use stage::StageMetrics;
pub use timer::StageTimer;
