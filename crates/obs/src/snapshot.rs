//! Point-in-time metric snapshots: JSON and aligned-text export.

use serde::{Deserialize, Serialize};

/// One counter's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Count at snapshot time.
    pub value: u64,
}

/// One gauge's level at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Level at snapshot time.
    pub value: i64,
    /// Highest level reached during the run.
    pub high_watermark: i64,
}

/// One histogram's summary at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Mean recorded value (0.0 when empty).
    pub mean: f64,
    /// Interpolated 50th percentile.
    pub p50: f64,
    /// Interpolated 95th percentile.
    pub p95: f64,
    /// Interpolated 99th percentile.
    pub p99: f64,
}

/// A complete, ordered snapshot of a registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// All counters, in name order.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, in name order.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, in name order.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Value of the counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<&GaugeSnapshot> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// The histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Every metric name in the snapshot, sorted.
    pub fn metric_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .counters
            .iter()
            .map(|c| c.name.clone())
            .chain(self.gauges.iter().map(|g| g.name.clone()))
            .chain(self.histograms.iter().map(|h| h.name.clone()))
            .collect();
        names.sort();
        names
    }

    /// Pretty-printed JSON (deterministic field and metric order).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialisation is infallible")
    }

    /// Aligned, human-readable text rendering.
    pub fn render_text(&self) -> String {
        let name_width = self
            .metric_names()
            .iter()
            .map(|n| n.len())
            .max()
            .unwrap_or(4)
            .max("metric".len());
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str(&format!("{:<name_width$}  {:>12}\n", "counter", "value"));
            for c in &self.counters {
                out.push_str(&format!("{:<name_width$}  {:>12}\n", c.name, c.value));
            }
        }
        if !self.gauges.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!(
                "{:<name_width$}  {:>12}  {:>12}\n",
                "gauge", "value", "high-water"
            ));
            for g in &self.gauges {
                out.push_str(&format!(
                    "{:<name_width$}  {:>12}  {:>12}\n",
                    g.name, g.value, g.high_watermark
                ));
            }
        }
        if !self.histograms.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!(
                "{:<name_width$}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}\n",
                "histogram", "count", "p50", "p95", "p99", "max"
            ));
            for h in &self.histograms {
                out.push_str(&format!(
                    "{:<name_width$}  {:>10}  {:>10.1}  {:>10.1}  {:>10.1}  {:>10}\n",
                    h.name, h.count, h.p50, h.p95, h.p99, h.max
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    fn populated() -> Registry {
        let r = Registry::new();
        r.counter("dl.hits").add(10);
        r.counter("dl.miss").add(2);
        r.gauge("q.depth").set(5);
        let h = r.histogram("op.us");
        for v in [10, 20, 30] {
            h.record(v);
        }
        r
    }

    #[test]
    fn lookup_helpers() {
        let snap = populated().snapshot();
        assert_eq!(snap.counter("dl.hits"), Some(10));
        assert_eq!(snap.counter("nope"), None);
        assert_eq!(snap.gauge("q.depth").unwrap().value, 5);
        assert_eq!(snap.histogram("op.us").unwrap().count, 3);
    }

    #[test]
    fn json_roundtrip() {
        let snap = populated().snapshot();
        let json = snap.to_json();
        let back: crate::Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn text_render_aligns_columns() {
        let text = populated().snapshot().render_text();
        assert!(text.contains("dl.hits"));
        assert!(text.contains("histogram"));
        // Every non-empty line is equally indented per section: the name
        // column is padded to the longest name.
        let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
        assert!(lines.len() >= 6);
    }

    #[test]
    fn snapshots_are_deterministic() {
        let a = populated().snapshot();
        let b = populated().snapshot();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.render_text(), b.render_text());
    }
}
